"""The two visualization modes compared (paper Fig. 2).

Renders the temperature field of the lifted-flame simulation with

(a) the fully in-situ algorithm — every rank ray-casts its
    full-resolution block, partial images composited (overview view);
(b) the hybrid algorithm — blocks down-sampled in-situ (stride 8 in the
    paper; stride 2 and 4 here, scaled to the laptop grid) and rendered
    serially in-transit from the block look-up table;
(c) both again with the Fig. 2 zoom-in camera.

Writes PPM images side by side and reports image error and data reduction.

Run:  python examples/visualization_modes.py
"""

import pathlib

from repro.analysis.visualization import (
    Camera,
    TransferFunction,
    downsample_decomposed,
    render_blocks_insitu,
    render_intransit,
)
from repro.sim import LiftedFlameCase, S3DProxy, StructuredGrid3D
from repro.util import TextTable, fmt_bytes, image_rmse, write_ppm
from repro.vmpi import BlockDecomposition3D


def main() -> None:
    shape = (32, 24, 16)
    grid = StructuredGrid3D(shape, lengths=(4.0, 3.0, 2.0))
    case = LiftedFlameCase(grid, seed=3, kernel_rate=2.0)
    solver = S3DProxy(case)
    print("advancing the lifted-flame simulation 6 steps...")
    solver.step(6)
    temperature = solver.fields["T"]
    decomp = BlockDecomposition3D(shape, (2, 2, 2))

    tf = TransferFunction.hot(float(temperature.min()), float(temperature.max()))
    views = {
        "overview": Camera(image_shape=(48, 48), azimuth_deg=30, elevation_deg=20),
        "zoom": Camera(image_shape=(48, 48), azimuth_deg=30, elevation_deg=20,
                       zoom=2.5, center=(10.0, 12.0, 8.0)),
    }

    outdir = pathlib.Path("fig2_images")
    outdir.mkdir(exist_ok=True)
    table = TextTable(["view", "mode", "payload", "RMSE vs in-situ"],
                      title="\nFig. 2 comparison")

    for view_name, camera in views.items():
        insitu = render_blocks_insitu(temperature, decomp, camera, tf)
        write_ppm(outdir / f"{view_name}_insitu.ppm", insitu)
        table.add_row([view_name, "in-situ full-res",
                       fmt_bytes(temperature.nbytes), 0.0])
        for stride in (2, 4):
            blocks = downsample_decomposed(temperature, decomp, stride)
            hybrid = render_intransit(blocks, shape, camera, tf)
            write_ppm(outdir / f"{view_name}_hybrid_stride{stride}.ppm", hybrid)
            moved = sum(b.nbytes for b in blocks)
            table.add_row([view_name, f"hybrid (stride {stride})",
                           fmt_bytes(moved), round(image_rmse(insitu, hybrid), 4)])
    print(table)
    print(f"\nimages written under {outdir}/ — the hybrid renders convey the "
          f"same structures at a fraction of the data")


if __name__ == "__main__":
    main()
