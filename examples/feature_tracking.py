"""Feature tracking at high temporal resolution (paper Fig. 1).

The paper's motivating observation: intermittent features (ignition
kernels, small vortical structures) live ~10 simulation steps, but
post-processing only sees every ~400th step — the features are born,
advect, and die entirely between two snapshots.

This example simulates the lifted flame, segments the temperature field
into merge-tree features at every step, and tracks them by spatial
overlap. It then re-runs tracking using only every 8th snapshot and shows
the tracks disintegrate — exactly the failure mode concurrent analysis
eliminates.

Run:  python examples/feature_tracking.py
"""

from repro.analysis.topology import segment_superlevel, track_features
from repro.analysis.topology.tracking import jaccard
from repro.sim import LiftedFlameCase, S3DProxy, StructuredGrid3D
from repro.util import TextTable


def main() -> None:
    shape = (32, 16, 12)
    grid = StructuredGrid3D(shape, lengths=(4.0, 2.0, 1.5))
    case = LiftedFlameCase(grid, seed=11, kernel_rate=1.2,
                           kernel_amplitude=2.0)
    solver = S3DProxy(case)

    n_steps = 16
    threshold = 1.6  # ignition kernels are well above the coflow T=1
    segmentations = []
    print(f"simulating {n_steps} steps, segmenting T >= {threshold} "
          f"(merge-tree features, persistence-filtered)...")
    for _ in range(n_steps):
        solver.step()
        seg = segment_superlevel(solver.fields["T"].copy(), threshold,
                                 min_persistence=0.15)
        segmentations.append(seg)

    # --- full temporal resolution: every step -------------------------------
    tracks = track_features(segmentations)
    table = TextTable(["track", "birth step", "death step", "lifetime (steps)"],
                      title="\nTracks at full temporal resolution")
    for t in tracks:
        table.add_row([t.track_id, t.birth, t.death, t.lifetime])
    print(table)

    durable = [t for t in tracks if t.lifetime >= 3]
    if durable:
        t = max(durable, key=lambda t: t.lifetime)
        first, last = t.steps[0], t.steps[-1]
        overlap = jaccard(segmentations[first], t.labels[0],
                          segmentations[last], t.labels[-1])
        print(f"\nlongest track: feature lived steps {first}..{last}; "
              f"Jaccard overlap of first vs last footprint: {overlap:.3f}")
        print("(the Fig. 1 'overlap' panel: nonzero because consecutive-step "
              "connectivity bridges the motion)")

    # --- post-processing temporal resolution: every 8th step -----------------
    coarse_idx = list(range(0, n_steps, 8))
    coarse = [segmentations[i] for i in coarse_idx]
    coarse_tracks = track_features(coarse, steps=coarse_idx)
    broken = sum(1 for t in coarse_tracks if t.lifetime == 1)
    print(f"\nsampling every 8th step instead: {len(coarse_tracks)} tracks, "
          f"{broken} of them single-snapshot (connectivity lost)")
    full_linked = sum(1 for t in tracks if t.lifetime > 1)
    print(f"at full resolution {full_linked} of {len(tracks)} tracks span "
          f"multiple steps — the temporal connectivity conventional "
          f"post-processing cannot see")


if __name__ == "__main__":
    main()
