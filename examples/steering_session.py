"""Computational steering off concurrent analysis results (paper §V).

The concurrent pipeline's advantage over post-processing is that results
exist *while the simulation runs* — so they can steer it. This example
runs the hybrid pipeline with two steering rules:

* start at a lazy analysis cadence (every 3rd step); when the in-transit
  merge tree reports 3+ persistent features (an ignition burst), refine to
  every step — catching the transient at full temporal resolution;
* the first time the in-transit statistics report a temperature above a
  trigger, write a full checkpoint for offline deep-dive.

Run:  python examples/steering_session.py
"""

import pathlib

from repro.core import HybridFramework
from repro.core.steering import (
    checkpoint_on_hot_spot,
    refine_cadence_on_topology,
)
from repro.sim import LiftedFlameCase, StructuredGrid3D
from repro.util import TextTable
from repro.vmpi import BlockDecomposition3D


def main() -> None:
    shape = (24, 16, 12)
    grid = StructuredGrid3D(shape, lengths=(3.0, 2.0, 1.5))
    case = LiftedFlameCase(grid, seed=29, kernel_rate=1.0,
                           kernel_amplitude=2.4)
    decomp = BlockDecomposition3D(shape, (2, 2, 1))

    ckpt = pathlib.Path("ignition_event.bp")
    rules = (
        refine_cadence_on_topology(n_maxima=3, new_interval=1,
                                   min_persistence=0.2),
        checkpoint_on_hot_spot(threshold=3.0, path=str(ckpt)),
    )
    fw = HybridFramework(case, decomp,
                         analyses=("statistics", "topology"),
                         stats_variables=("T",),
                         n_buckets=3, steering=rules)

    print("running 12 steps, starting at analysis cadence = every 3rd step;")
    print("steering rules: refine cadence on 3+ persistent maxima; "
          "checkpoint on max T >= 3.0\n")
    result = fw.run(12, analysis_interval=3)

    table = TextTable(["analysed step", "max T", "merge-tree maxima"])
    for step in result.analysed_steps:
        stats = result.statistics.get(step)
        tree = result.merge_trees.get(step)
        table.add_row([step,
                       round(stats["T"].maximum, 3) if stats else "—",
                       len(tree.reduced().leaves()) if tree else "—"])
    print(table)

    print(f"\nanalysed {len(result.analysed_steps)} of 12 steps "
          f"(un-steered cadence would analyse 4)")
    for ev in result.steering_events:
        print(f"steering event at step {ev.timestep}: {ev.rule} "
              f"-> cadence now every {ev.detail['analysis_interval']} step(s)")
    if ckpt.exists():
        print(f"event checkpoint written: {ckpt} "
              f"({ckpt.stat().st_size} bytes)")
        ckpt.unlink()


if __name__ == "__main__":
    main()
