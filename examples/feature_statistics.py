"""Feature-based statistics: merge trees x moments (paper §VI, implemented).

The paper's future-work list includes "combining the merge tree
computation ... with statistical analyses to enable the computation of
feature-based statistics". This example does exactly that on the lifted
flame: every step, the temperature field is segmented into merge-tree
features (ignition kernels / burning regions), per-feature conditional
statistics of temperature and the OH radical are computed with the same
in-situ partial / in-transit merge pattern as the global statistics, and
features are tracked over time so each track carries a statistical
history.

Run:  python examples/feature_statistics.py
"""

from repro.analysis.feature_stats import feature_statistics_hybrid
from repro.analysis.topology import segment_superlevel, track_features
from repro.sim import LiftedFlameCase, S3DProxy, StructuredGrid3D
from repro.util import TextTable
from repro.vmpi import BlockDecomposition3D


def main() -> None:
    shape = (32, 16, 12)
    grid = StructuredGrid3D(shape, lengths=(4.0, 2.0, 1.5))
    case = LiftedFlameCase(grid, seed=19, kernel_rate=1.5, kernel_amplitude=2.2)
    solver = S3DProxy(case)
    decomp = BlockDecomposition3D(shape, (2, 2, 1))

    n_steps = 10
    threshold = 1.6
    print(f"simulating {n_steps} steps; per-step feature segmentation of "
          f"T >= {threshold} + per-feature conditional statistics...")

    segmentations = []
    stats_per_step = []
    for _ in range(n_steps):
        solver.step()
        seg = segment_superlevel(solver.fields["T"].copy(), threshold,
                                 min_persistence=0.15)
        fields = {"T": solver.fields["T"].copy(),
                  "OH": solver.fields["OH"].copy()}
        stats_per_step.append(feature_statistics_hybrid(seg, fields, decomp))
        segmentations.append(seg)

    tracks = track_features(segmentations)
    durable = [t for t in tracks if t.lifetime >= 2]
    print(f"\n{len(tracks)} features tracked; {len(durable)} lived >= 2 steps\n")

    for track in durable:
        table = TextTable(
            ["step", "cells", "mean T", "max T", "T std", "mean OH"],
            title=f"Track {track.track_id}: statistical history of one "
                  f"feature (steps {track.birth}..{track.death})")
        for step, label in zip(track.steps, track.labels):
            fs = stats_per_step[step][label]
            t_stats = fs.statistics["T"]
            oh_stats = fs.statistics["OH"]
            table.add_row([step, fs.n_cells, round(t_stats.mean, 3),
                           round(t_stats.maximum, 3), round(t_stats.std, 3),
                           f"{oh_stats.mean:.2e}"])
        print(table)
        print()

    print("each row was produced by the hybrid pattern: per-rank partial "
          "moments over the feature's cells, merged and derived serially — "
          "the same staging-friendly payload as the global statistics.")


if __name__ == "__main__":
    main()
