"""Linked multi-view exploration (paper §III).

"Multiple instances of each visualization mode can be dynamically created
in-situ and/or in-transit on demand, enabling scientists to explore
different aspects of simulation and analysis data in linked-views."

This example builds a four-view session over one flame state — overview
temperature (in-situ full-res), zoomed temperature, the OH radical field
(hybrid/down-sampled), and water vapour — then selects the largest
merge-tree feature and renders all views again with the *same* feature
highlighted, the linked-selection interaction.

Run:  python examples/linked_views.py
"""

import pathlib

from repro.analysis.topology import segment_superlevel
from repro.analysis.visualization import Camera, ViewSession, ViewSpec
from repro.sim import LiftedFlameCase, S3DProxy, StructuredGrid3D
from repro.util import image_rmse, write_ppm
from repro.vmpi import BlockDecomposition3D


def main() -> None:
    shape = (32, 24, 16)
    grid = StructuredGrid3D(shape, lengths=(4.0, 3.0, 2.0))
    solver = S3DProxy(LiftedFlameCase(grid, seed=3, kernel_rate=2.0))
    print("advancing the flame 6 steps...")
    solver.step(6)
    fields = {name: solver.fields[name] for name in ("T", "OH", "H2O")}
    decomp = BlockDecomposition3D(shape, (2, 2, 2))

    session = ViewSession(decomp, views=[
        ViewSpec(name="T-overview", variable="T",
                 camera=Camera(image_shape=(48, 48))),
        ViewSpec(name="T-zoom", variable="T",
                 camera=Camera(image_shape=(48, 48), zoom=2.5,
                               center=(10.0, 12.0, 8.0))),
        ViewSpec(name="OH-hybrid", variable="OH", mode="hybrid",
                 downsample_stride=2, camera=Camera(image_shape=(48, 48))),
    ])
    # "created ... on demand":
    session.add_view(ViewSpec(name="H2O-product", variable="H2O",
                              camera=Camera(image_shape=(48, 48))))

    print(f"session views: {session.view_names}")
    plain = session.render_all(fields)

    # linked selection: the largest hot feature, highlighted everywhere
    seg = segment_superlevel(fields["T"], 1.5, min_persistence=0.2)
    if seg.features:
        label = max(seg.features, key=lambda l: seg.features[l].n_cells)
        feat = seg.features[label]
        print(f"\nselecting feature {label}: {feat.n_cells} cells, "
              f"max T {feat.max_value:.2f}")
        linked = session.render_all(fields, highlight=(seg, label))
    else:
        print("\nno features above threshold; rendering unlinked")
        linked = plain

    outdir = pathlib.Path("linked_views")
    outdir.mkdir(exist_ok=True)
    for name in session.view_names:
        write_ppm(outdir / f"{name}.ppm", plain[name])
        write_ppm(outdir / f"{name}_linked.ppm", linked[name])
        delta = image_rmse(plain[name], linked[name])
        print(f"  {name:14s} highlight footprint RMSE {delta:.4f}")
    print(f"\nimages written under {outdir}/ — the selected region is "
          f"outlined in every view, across variables and modes")


if __name__ == "__main__":
    main()
