"""Replay the paper's full-scale Jaguar experiment on the machine model.

Reproduces Table I (core allocations, data size, simulation and I/O times
at 4896 and 9440 cores), Table II (per-analysis in-situ / movement /
in-transit costs), and demonstrates the temporal multiplexing that lets a
119.8-second serial topology stage keep up with a 16.85-second simulation
step.

Run:  python examples/scaled_experiment.py
"""

from repro.core import AnalyticsVariant, ExperimentConfig, ScaledExperiment
from repro.core.workload import HYBRID_VARIANTS
from repro.util import TextTable


def main() -> None:
    configs = [ExperimentConfig.paper_4896(), ExperimentConfig.paper_9440()]
    experiments = [ScaledExperiment(c) for c in configs]
    breakdowns = [e.breakdown() for e in experiments]

    t1 = TextTable(["", configs[0].name, configs[1].name],
                   title="Table I (modeled on the Jaguar XK6 calibration)")
    t1.add_row(["No. of simulation/in-situ cores",
                *(b.n_sim_cores for b in breakdowns)])
    t1.add_row(["No. of DataSpaces-service cores",
                *(b.n_service_cores for b in breakdowns)])
    t1.add_row(["No. of in-transit cores",
                *(b.n_intransit_cores for b in breakdowns)])
    t1.add_row(["Data size (GB)", *(round(b.data_gb, 1) for b in breakdowns)])
    t1.add_row(["Simulation time (sec.)",
                *(round(b.simulation_time, 2) for b in breakdowns)])
    t1.add_row(["I/O read time (sec.)",
                *(round(b.io_read_time, 2) for b in breakdowns)])
    t1.add_row(["I/O write time (sec.)",
                *(round(b.io_write_time, 2) for b in breakdowns)])
    print(t1)

    b = breakdowns[0]
    t2 = TextTable(["analysis", "in-situ (s)", "movement (s)",
                    "movement (MB)", "in-transit (s)"],
                   title="\nTable II at 4896 cores (per simulation time step)")
    for variant in AnalyticsVariant:
        t2.add_row(b.analytics[variant.value].table_row())
    print(t2)

    viz = b.analytics[AnalyticsVariant.VIS_INSITU.value]
    stats = b.analytics[AnalyticsVariant.STATS_INSITU.value]
    print(f"\nin-situ visualization is {100 * viz.insitu_time / b.simulation_time:.2f}% "
          f"of the simulation step (paper: 4.33%)")
    print(f"in-situ statistics is {100 * stats.insitu_time / b.simulation_time:.2f}% "
          f"of the simulation step (paper: 9.73%)")

    print("\nTemporal multiplexing (DES replay of the staging schedule,"
          " topology only):")
    for n_buckets in (1, 4, 8, 16):
        sched = experiments[0].run_schedule(
            n_steps=8, n_buckets=n_buckets,
            analyses=(AnalyticsVariant.TOPO_HYBRID,))
        state = "keeps pace" if sched.keeps_pace() else "queue grows"
        print(f"  {n_buckets:3d} staging buckets: max queue wait "
              f"{sched.max_queue_wait():8.2f} s -> {state}")
    print("\nthe ~120 s serial glue is hidden by assigning successive "
          "timesteps to different buckets — analysis at every step without "
          "slowing the simulation")


if __name__ == "__main__":
    main()
