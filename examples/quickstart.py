"""Quickstart: run the hybrid in-situ/in-transit pipeline end to end.

Simulates a small lifted hydrogen jet flame with the S3D proxy, decomposed
over 8 virtual ranks, and runs all three of the paper's analyses
concurrently with the simulation:

* descriptive statistics (learn in-situ, derive in-transit),
* merge-tree topology (subtrees in-situ, streaming glue in-transit),
* volume rendering (down-sample in-situ, LUT render in-transit).

Run:  python examples/quickstart.py
"""

import pathlib

from repro.core import HybridFramework
from repro.sim import LiftedFlameCase, StructuredGrid3D
from repro.util import TextTable, fmt_bytes, write_ppm
from repro.vmpi import BlockDecomposition3D


def main() -> None:
    shape = (24, 16, 12)
    grid = StructuredGrid3D(shape, lengths=(3.0, 2.0, 1.5))
    case = LiftedFlameCase(grid, seed=7, kernel_rate=1.5)
    decomp = BlockDecomposition3D(shape, proc_grid=(2, 2, 2))

    framework = HybridFramework(
        case, decomp,
        analyses=("statistics", "topology", "visualization"),
        stats_variables=("T", "H2", "OH"),
        downsample_stride=2,
        n_buckets=4,
    )
    print(f"simulating {shape} grid on {decomp.n_ranks} virtual ranks, "
          f"analysing every step...")
    result = framework.run(n_steps=5)

    table = TextTable(["step", "mean T", "max T", "T std", "merge-tree maxima"],
                      title="\nPer-step concurrent analysis results")
    for step in result.analysed_steps:
        stats = result.statistics[step]["T"]
        tree = result.merge_trees[step].reduced()
        table.add_row([step, round(stats.mean, 4), round(stats.maximum, 3),
                       round(stats.std, 4), len(tree.leaves())])
    print(table)

    out = pathlib.Path("quickstart_render.ppm")
    write_ppm(out, result.hybrid_images[result.analysed_steps[-1]])
    print(f"\nin-transit rendered frame written to {out}")
    print(f"intermediate data moved through staging: {fmt_bytes(result.bytes_moved)}")
    print(f"raw solution state per step would have been: "
          f"{fmt_bytes(framework.solver.assemble().nbytes)}")


if __name__ == "__main__":
    main()
