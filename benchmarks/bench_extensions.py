"""§VI future-work features, implemented and measured.

The paper's conclusion names its next steps; this module exercises each
one end to end and benchmarks its kernels:

* hybrid auto-correlative statistics (AR(1) recovery + wire size);
* feature-based statistics (merge tree x moments);
* streaming in-transit processing (latency hiding, also see
  ``bench_ablation_streaming.py``);
* computational steering (cadence refinement on topology events).

Run standalone:  python benchmarks/bench_extensions.py
"""

import numpy as np
import pytest

from repro.analysis.feature_stats import feature_statistics_hybrid
from repro.analysis.statistics.autocorrelation import (
    AutocorrelationLearner,
    derive_autocorrelation,
)
from repro.analysis.topology import segment_superlevel
from repro.core import HybridFramework
from repro.core.steering import refine_cadence_on_topology
from repro.sim import LiftedFlameCase, StructuredGrid3D
from repro.util import TextTable
from repro.vmpi import BlockDecomposition3D

from conftest import blob_field


def ar1_series(rho=0.8, n_steps=50, shape=(8, 6, 4), seed=6):
    rng = np.random.default_rng(seed)
    out = [rng.normal(size=shape)]
    for _ in range(n_steps - 1):
        out.append(rho * out[-1] + np.sqrt(1 - rho**2) * rng.normal(size=shape))
    return out


def autocorrelation_experiment(max_lag=4):
    decomp = BlockDecomposition3D((8, 6, 4), (2, 1, 1))
    learners = [AutocorrelationLearner(max_lag) for _ in range(decomp.n_ranks)]
    for step in ar1_series():
        for learner, b in zip(learners, decomp.blocks()):
            learner.observe(step[b.slices])
    packed = [l.pack() for l in learners]
    rho = derive_autocorrelation(packed, max_lag)
    wire = sum(p.nbytes for p in packed)
    return rho, wire


def render_autocorrelation(rho, wire) -> str:
    t = TextTable(["lag k", "rho(k) measured", "rho^k expected"],
                  title="Extension: hybrid auto-correlative statistics "
                        "(AR(1), rho = 0.8)")
    for k, v in sorted(rho.items()):
        t.add_row([k, round(v, 3), round(0.8 ** k, 3)])
    return t.render() + f"\nwire payload: {wire} bytes (vs raw series ~"\
        f"{50 * 8 * 6 * 4 * 8} bytes)"


def test_autocorrelation_recovers_ar1(benchmark):
    (rho, wire) = benchmark(autocorrelation_experiment)
    print("\n" + render_autocorrelation(rho, wire))
    for k, v in rho.items():
        assert v == pytest.approx(0.8 ** k, abs=0.15)
    # movement stays tiny: the staging-friendly property
    assert wire < 50 * 8 * 6 * 4 * 8 / 10


def test_feature_statistics_split_features(benchmark):
    field = blob_field((20, 16, 12), n_blobs=4, seed=31)
    seg = segment_superlevel(field, 0.4)
    decomp = BlockDecomposition3D(field.shape, (2, 2, 2))
    stats = benchmark(feature_statistics_hybrid, seg, {"f": field}, decomp)
    assert set(stats) == set(seg.features)
    for fid, fs in stats.items():
        mask = seg.labels == fid
        assert fs.statistics["f"].mean == pytest.approx(field[mask].mean())


def steering_experiment():
    grid = StructuredGrid3D((12, 10, 8))
    case = LiftedFlameCase(grid, seed=44, kernel_rate=2.0)
    decomp = BlockDecomposition3D((12, 10, 8), (2, 1, 1))
    rule = refine_cadence_on_topology(n_maxima=1, new_interval=1)
    fw = HybridFramework(case, decomp, analyses=("topology",), n_buckets=2,
                         steering=(rule,))
    result = fw.run(6, analysis_interval=3)
    return fw, result


def test_steering_refines_cadence():
    fw, result = steering_experiment()
    assert result.steering_events, "expected the rule to fire"
    assert fw.analysis_interval == 1
    # more analysed steps than the un-steered cadence would produce
    assert len(result.analysed_steps) > 2
    t = TextTable(["event", "rule", "at step"],
                  title="Extension: computational steering events")
    for i, ev in enumerate(result.steering_events):
        t.add_row([i, ev.rule, ev.timestep])
    print("\n" + t.render())


def test_streaming_topology_equivalence():
    """The streaming glue (§VI) and buffered glue agree in the framework."""
    def run(streaming):
        grid = StructuredGrid3D((10, 8, 6))
        case = LiftedFlameCase(grid, seed=33, kernel_rate=1.0)
        decomp = BlockDecomposition3D((10, 8, 6), (2, 2, 1))
        fw = HybridFramework(case, decomp, analyses=("topology",),
                             n_buckets=2, streaming_topology=streaming)
        return fw.run(2)

    a, b = run(False), run(True)
    for step in (0, 1):
        assert a.merge_trees[step].reduced().signature() == \
            b.merge_trees[step].reduced().signature()


if __name__ == "__main__":
    rho, wire = autocorrelation_experiment()
    print(render_autocorrelation(rho, wire))
    _fw, result = steering_experiment()
    print(f"\nsteering: {len(result.steering_events)} rule firings; final "
          f"cadence = every {_fw.analysis_interval} step(s)")
