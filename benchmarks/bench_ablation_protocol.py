"""Ablation: DART's size-adaptive SMSG/BTE protocol selection (§IV).

DART switches from the low-latency FMA short-message path to the
Block Transfer Engine RDMA path based on message size. This ablation
sweeps message sizes under three policies (always-SMSG, always-BTE,
adaptive) and shows the adaptive policy tracks the lower envelope — the
design rationale the paper states.

Run standalone:  python benchmarks/bench_ablation_protocol.py
"""

import pytest

from repro.machine.gemini import GeminiNetwork, Protocol
from repro.util import TextTable, fmt_bytes

SIZES = [64, 1024, 4 * 1024, 16 * 1024, 64 * 1024, 1024 * 1024, 16 * 1024 * 1024]


def sweep(net=None):
    net = net or GeminiNetwork()
    rows = []
    for n in SIZES:
        rows.append({
            "size": n,
            "smsg": net.transfer_time(n, Protocol.SMSG),
            "bte": net.transfer_time(n, Protocol.BTE),
            "adaptive": net.transfer_time(n),
        })
    return rows


def render(rows) -> str:
    t = TextTable(["message size", "SMSG (us)", "BTE (us)", "adaptive (us)",
                   "choice"],
                  title="Ablation: transfer protocol vs message size")
    net = GeminiNetwork()
    for r in rows:
        t.add_row([fmt_bytes(r["size"]), round(r["smsg"] * 1e6, 2),
                   round(r["bte"] * 1e6, 2), round(r["adaptive"] * 1e6, 2),
                   net.select_protocol(r["size"]).value])
    return t.render()


def test_adaptive_tracks_lower_envelope():
    rows = sweep()
    print("\n" + render(rows))
    net = GeminiNetwork()
    for r in rows:
        # the adaptive pick is never worse than either fixed policy beyond
        # the modeling crossover tolerance
        crossover = net.crossover_bytes()
        if r["size"] < 0.5 * crossover or r["size"] > 2 * crossover:
            assert r["adaptive"] <= min(r["smsg"], r["bte"]) * 1.01


def test_small_messages_prefer_smsg():
    rows = sweep()
    small = rows[0]
    assert small["smsg"] < small["bte"]
    assert small["adaptive"] == small["smsg"]


def test_large_messages_prefer_bte():
    rows = sweep()
    large = rows[-1]
    assert large["bte"] < large["smsg"]
    assert large["adaptive"] == large["bte"]


def test_threshold_position_matters():
    """A badly placed switch-over threshold wastes time on mid-size
    messages — quantifies why DART tunes it."""
    good = GeminiNetwork()
    bad = GeminiNetwork(smsg_max_bytes=16 * 1024 * 1024)  # never uses BTE
    n = 1024 * 1024
    assert bad.transfer_time(n) > 3 * good.transfer_time(n)


def test_protocol_sweep_benchmark(benchmark):
    rows = benchmark(sweep)
    assert len(rows) == len(SIZES)


if __name__ == "__main__":
    print(render(sweep()))
