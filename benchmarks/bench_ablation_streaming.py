"""Ablation: buffered vs streaming in-transit processing (§VI refinement).

"A more optimal approach would be to process in-transit data in a
streaming fashion, starting as soon as the first data arrives. This has
the potential to hide much of the in-transit computational costs and
improve overall system utilization."

Implemented and measured here: the streaming bucket consumes each payload
on arrival and prefetches the next pull while computing, so task time
approaches max(total pull, total compute) instead of their sum. The sweep
varies the compute/transfer balance and reports the hiding factor.

Run standalone:  python benchmarks/bench_ablation_streaming.py
"""

import pytest

from repro.costmodel import CostModel
from repro.des import Engine
from repro.staging import DataSpaces
from repro.transport import DartTransport
from repro.util import TextTable

N_PAYLOADS = 16
PAYLOAD_BYTES = 32 * 2**20  # ~5.3 ms wire each


def run_task(mode: str, compute_ms: float) -> float:
    eng = Engine()
    tr = DartTransport(eng)
    model = CostModel("m", {"buffered.op": compute_ms / 1000.0})
    ds = DataSpaces(eng, tr, cost_model=model)
    ds.spawn_buckets(["b0"])
    descs = [tr.register(f"sim-{i}", None, nbytes=PAYLOAD_BYTES)
             for i in range(N_PAYLOADS)]
    if mode == "stream":
        ds.submit_grouped_result("x", 0, descs,
                                 stream_compute=lambda s, p: s,
                                 stream_cost_per_payload=compute_ms / 1000.0)
    else:
        ds.submit_grouped_result("x", 0, descs, cost_op="buffered.op",
                                 cost_elements=N_PAYLOADS)
    ds.shutdown_buckets()
    eng.run()
    return ds.all_results()[0].finish_time


def sweep():
    wire_ms = DartTransport(Engine()).network.transfer_time(PAYLOAD_BYTES) * 1e3
    rows = []
    for compute_ms in (1.0, 2.5, 5.0, 10.0, 20.0):
        buffered = run_task("buffered", compute_ms)
        streaming = run_task("stream", compute_ms)
        rows.append({
            "compute_ms": compute_ms,
            "wire_ms": wire_ms,
            "buffered": buffered,
            "streaming": streaming,
            "speedup": buffered / streaming,
        })
    return rows


def render(rows) -> str:
    t = TextTable(["compute/payload (ms)", "wire/payload (ms)",
                   "buffered task (s)", "streaming task (s)", "speedup"],
                  title="Ablation: streaming vs buffered in-transit processing")
    for r in rows:
        t.add_row([r["compute_ms"], round(r["wire_ms"], 2),
                   round(r["buffered"], 4), round(r["streaming"], 4),
                   f"{r['speedup']:.2f}x"])
    return t.render()


def test_streaming_never_slower():
    rows = sweep()
    print("\n" + render(rows))
    for r in rows:
        assert r["streaming"] <= r["buffered"] * 1.001


def test_peak_hiding_at_balanced_ratio():
    """Hiding is strongest when compute ~ wire time (approaching 2x)."""
    rows = sweep()
    balanced = min(rows, key=lambda r: abs(r["compute_ms"] - r["wire_ms"]))
    assert balanced["speedup"] > 1.6


def test_streaming_bounded_by_max_component():
    """Streaming task time ~ max(total pull, total compute) + one stage."""
    rows = sweep()
    for r in rows:
        total_pull = N_PAYLOADS * r["wire_ms"] / 1e3
        total_compute = N_PAYLOADS * r["compute_ms"] / 1e3
        lower = max(total_pull, total_compute)
        upper = lower + max(r["wire_ms"], r["compute_ms"]) / 1e3 + 0.01
        assert lower * 0.99 <= r["streaming"] <= upper


def test_streaming_ablation_benchmark(benchmark):
    t = benchmark(run_task, "stream", 5.0)
    assert t > 0


if __name__ == "__main__":
    print(render(sweep()))
