"""Backend replays: the numpy kernels against the reference on the two
paper workloads that dominate `repro blame` — Fig. 6's distributed merge
tree (topology, the largest in-transit bar) and Fig. 5's in-transit
statistics merge (the staging-node reduction the scheduler feeds).

Each replay is timed min-of-repeats under both backends and the ≥5x
speedup floor is asserted; both measurements are appended to the shared
``benchmarks/results/perf`` run store (schema-compatible with
``python -m repro perf``), and per-kernel speedups are recorded to
``BENCH_backend_kernels.json`` without assertions — the replay floors,
not the microbenchmarks, are the contract.

Run standalone:  python benchmarks/bench_backend.py
"""

import timeit

import numpy as np
import pytest

from repro.analysis.statistics.autocorrelation import AutocorrelationLearner
from repro.analysis.statistics.moments import MomentAccumulator
from repro.analysis.topology.distributed import distributed_merge_tree
from repro.backend import kernel_impl, use_backend
from repro.vmpi import BlockDecomposition3D

#: The ISSUE's acceptance floor for the two paper-figure replays.
SPEEDUP_FLOOR = 5.0

RESULTS_STORE = "perf"


def _best(fn, number=1, repeat=5):
    """Fastest observed execution — noise only ever adds time."""
    return min(timeit.repeat(fn, number=number, repeat=repeat)) / number


# ---------------------------------------------------------------------------
# Fig. 6 replay: the distributed merge tree pipeline
# ---------------------------------------------------------------------------

FIG6_SHAPE = (36, 30, 24)
FIG6_RANKS = (2, 2, 2)


def _fig6_field() -> np.ndarray:
    """Combustion-like blobs plus grid-scale noise, quantized to 8
    levels — the precision-reduced representation the in-situ stage
    ships to staging. The plateau runs that quantization creates are
    exactly what degrades the reference's streaming glue."""
    rng = np.random.default_rng(42)
    coords = np.stack(
        np.mgrid[[slice(0, s) for s in FIG6_SHAPE]]).astype(float)
    f = np.zeros(FIG6_SHAPE)
    for _ in range(6):
        c = [rng.uniform(1, s - 1) for s in FIG6_SHAPE]
        d2 = sum((coords[a] - c[a]) ** 2 for a in range(3))
        f += rng.uniform(0.5, 1.5) * np.exp(-d2 / rng.uniform(6, 14))
    f += rng.uniform(0, 1, FIG6_SHAPE)
    return np.floor(f / f.max() * 7)


def fig6_replay(backend: str) -> float:
    field = _fig6_field()
    decomp = BlockDecomposition3D(FIG6_SHAPE, FIG6_RANKS)
    with use_backend(backend):
        return _best(lambda: distributed_merge_tree(field, decomp),
                     number=1, repeat=3)


# ---------------------------------------------------------------------------
# Fig. 5 replay: the in-transit statistics merge on the staging node
# ---------------------------------------------------------------------------

FIG5_RANKS = 256
FIG5_VARS = 8
FIG5_MAX_LAG = 16


def _fig5_payload():
    """Per-rank packed moment vectors + packed autocorrelation partials
    — the byte-streams the DART pull delivers to the staging node."""
    rng = np.random.default_rng(43)
    packed_moments = []
    for _ in range(FIG5_RANKS):
        accs = [MomentAccumulator.from_data(rng.uniform(0, 1, 64))
                for _ in range(FIG5_VARS)]
        packed_moments.append(np.concatenate([a.pack() for a in accs]))
    partials = []
    for _ in range(FIG5_RANKS):
        learner = AutocorrelationLearner(FIG5_MAX_LAG)
        for _ in range(FIG5_MAX_LAG + 4):
            learner.observe(rng.uniform(0, 1, 64))
        partials.append(learner.pack())
    return packed_moments, partials


def fig5_replay(backend: str) -> float:
    packed_moments, partials = _fig5_payload()
    merge_packed = kernel_impl("statistics.merge_packed_moments", backend)
    autocorr = kernel_impl("statistics.autocorr_merge", backend)

    def replay():
        merge_packed(packed_moments, FIG5_VARS)
        autocorr(partials, FIG5_MAX_LAG)

    return _best(replay, number=1, repeat=5)


# ---------------------------------------------------------------------------
# replay floor tests (recorded into the perf run store)
# ---------------------------------------------------------------------------


def _record(which: str, ref_s: float, numpy_s: float,
            bench_json_writer) -> float:
    from repro.obs.perf import RunRecord, RunStore

    from conftest import RESULTS_DIR

    speedup = ref_s / numpy_s
    bench_json_writer(f"backend_{which}_replay", {
        "name": f"backend_{which}_replay",
        "reference_s": ref_s,
        "numpy_s": numpy_s,
        "speedup": speedup,
        "floor": SPEEDUP_FLOOR,
    })
    store = RunStore(RESULTS_DIR / RESULTS_STORE)
    for backend, wall in (("reference", ref_s), ("numpy", numpy_s)):
        store.append(RunRecord.new(
            source=f"bench-backend-{which}",
            metrics={f"wall.{which}_replay_s": wall},
            meta={"backend": backend, "speedup_vs_reference":
                  (speedup if backend == "numpy" else 1.0)}))
    return speedup


def test_fig6_replay_speedup_floor(bench_json_writer):
    ref_s = fig6_replay("reference")
    numpy_s = fig6_replay("numpy")
    speedup = _record("fig6", ref_s, numpy_s, bench_json_writer)
    print(f"\nfig6 replay: reference {ref_s * 1e3:.1f}ms, "
          f"numpy {numpy_s * 1e3:.1f}ms -> {speedup:.1f}x")
    assert speedup >= SPEEDUP_FLOOR, (
        f"fig6 replay speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR}x floor")


def test_fig5_replay_speedup_floor(bench_json_writer):
    ref_s = fig5_replay("reference")
    numpy_s = fig5_replay("numpy")
    speedup = _record("fig5", ref_s, numpy_s, bench_json_writer)
    print(f"\nfig5 replay: reference {ref_s * 1e3:.1f}ms, "
          f"numpy {numpy_s * 1e3:.1f}ms -> {speedup:.1f}x")
    assert speedup >= SPEEDUP_FLOOR, (
        f"fig5 replay speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR}x floor")


# ---------------------------------------------------------------------------
# per-kernel speedups (recorded, not asserted)
# ---------------------------------------------------------------------------


def _kernel_cases():
    rng = np.random.default_rng(44)
    packed_moments, partials = _fig5_payload()
    blocks = [rng.uniform(0, 1, 128) for _ in range(512)]
    field = _fig6_field()
    decomp = BlockDecomposition3D(FIG6_SHAPE, FIG6_RANKS)
    from repro.analysis.topology.distributed import (
        compute_block_boundary_trees,
        cross_block_edges,
    )

    bts = compute_block_boundary_trees(field, decomp)
    edges = cross_block_edges(decomp)
    return {
        "statistics.merge_packed_moments":
            lambda impl: impl(packed_moments, FIG5_VARS),
        "statistics.autocorr_merge":
            lambda impl: impl(partials, FIG5_MAX_LAG),
        "statistics.learn_blocks": lambda impl: impl(blocks),
        "topology.glue_batch": lambda impl: impl(bts, edges),
        "topology.merge_tree": lambda impl: impl(field),
    }


def test_per_kernel_speedups_recorded(bench_json_writer):
    rows = {}
    for name, call in _kernel_cases().items():
        ref = kernel_impl(name, "reference")
        fast = kernel_impl(name, "numpy")
        ref_s = _best(lambda: call(ref), number=1, repeat=3)
        fast_s = _best(lambda: call(fast), number=1, repeat=3)
        rows[name] = {"reference_s": ref_s, "numpy_s": fast_s,
                      "speedup": ref_s / fast_s}
    bench_json_writer("backend_kernels", {"name": "backend_kernels",
                                          "kernels": rows})
    print()
    for name, row in sorted(rows.items()):
        print(f"  {name:36s} {row['speedup']:6.1f}x")
    # Every ported kernel must at least not regress on its home regime.
    for name, row in rows.items():
        assert row["speedup"] > 1.0, (
            f"{name} slower than reference: {row['speedup']:.2f}x")


if __name__ == "__main__":
    for which, replay in (("fig6", fig6_replay), ("fig5", fig5_replay)):
        ref_s = replay("reference")
        numpy_s = replay("numpy")
        print(f"{which} replay: reference {ref_s * 1e3:.1f}ms, numpy "
              f"{numpy_s * 1e3:.1f}ms -> {ref_s / numpy_s:.1f}x "
              f"(floor {SPEEDUP_FLOOR}x)")
