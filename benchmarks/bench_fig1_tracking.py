"""Fig. 1: tracking a small transient structure over consecutive steps.

The figure shows a feature tracked over 5 consecutive time steps and the
overlap between the 1st and 5th footprints, then argues such connectivity
is lost when data is only saved every few hundred steps. We regenerate
the experiment: segment the simulated temperature field at every step,
track by overlap, and compare tracking at full temporal resolution vs the
post-processing cadence.

Run standalone:  python benchmarks/bench_fig1_tracking.py
"""

import numpy as np
import pytest

from repro.analysis.topology import segment_superlevel, track_features
from repro.analysis.topology.tracking import jaccard
from repro.sim import LiftedFlameCase, S3DProxy, StructuredGrid3D
from repro.util import TextTable

N_STEPS = 12
THRESHOLD = 1.6


def simulate_and_segment(n_steps=N_STEPS):
    grid = StructuredGrid3D((32, 16, 12), lengths=(4.0, 2.0, 1.5))
    case = LiftedFlameCase(grid, seed=11, kernel_rate=1.2, kernel_amplitude=2.0)
    solver = S3DProxy(case)
    segs = []
    for _ in range(n_steps):
        solver.step()
        segs.append(segment_superlevel(solver.fields["T"].copy(), THRESHOLD,
                                       min_persistence=0.15))
    return segs


def render(segs) -> str:
    tracks = track_features(segs)
    t = TextTable(["track", "birth", "death", "lifetime"],
                  title="Fig. 1 (regenerated): feature tracks, full cadence")
    for tr in tracks:
        t.add_row([tr.track_id, tr.birth, tr.death, tr.lifetime])
    lines = [t.render()]
    durable = [tr for tr in tracks if tr.lifetime >= 5]
    if durable:
        tr = max(durable, key=lambda tr: tr.lifetime)
        first5 = jaccard(segs[tr.steps[0]], tr.labels[0],
                         segs[tr.steps[4]], tr.labels[4])
        lines.append(f"overlap of 1st vs 5th footprint of track "
                     f"{tr.track_id}: Jaccard {first5:.3f}")
    return "\n".join(lines)


@pytest.fixture(scope="module")
def segmentations():
    return simulate_and_segment()


def test_fig1_feature_tracked_over_five_steps(segmentations):
    print("\n" + render(segmentations))
    tracks = track_features(segmentations)
    durable = [t for t in tracks if t.lifetime >= 5]
    assert durable, "expected at least one feature alive >= 5 steps"
    # Fig. 1's overlap panel: the 1st and 5th footprints still overlap.
    t = max(durable, key=lambda t: t.lifetime)
    assert jaccard(segmentations[t.steps[0]], t.labels[0],
                   segmentations[t.steps[4]], t.labels[4]) > 0.0


def test_fig1_coarse_cadence_breaks_connectivity(segmentations):
    """The paper's loss claim: at post-processing cadence (every 8th step
    here, standing in for every 400th), features no longer connect."""
    tracks_full = track_features(segmentations)
    coarse_idx = list(range(0, len(segmentations), 8))
    tracks_coarse = track_features([segmentations[i] for i in coarse_idx],
                                   steps=coarse_idx)
    multi_full = sum(1 for t in tracks_full if t.lifetime > 1)
    multi_coarse = sum(1 for t in tracks_coarse if t.lifetime > 1)
    assert multi_full > multi_coarse
    assert multi_full >= 1


def test_fig1_intermittent_features_exist(segmentations):
    """Kernels live ~10 steps: some tracks are short-lived (transient)."""
    tracks = track_features(segmentations)
    assert any(t.lifetime < len(segmentations) for t in tracks)


def test_fig1_segmentation_benchmark(benchmark, segmentations):
    """Time the per-step in-situ segmentation kernel."""
    grid = StructuredGrid3D((32, 16, 12), lengths=(4.0, 2.0, 1.5))
    case = LiftedFlameCase(grid, seed=11, kernel_rate=1.2)
    solver = S3DProxy(case)
    solver.step(3)
    field = solver.fields["T"].copy()
    seg = benchmark(segment_superlevel, field, THRESHOLD, 0.15)
    assert seg.labels.shape == field.shape


if __name__ == "__main__":
    print(render(simulate_and_segment()))
