"""Table II: per-timestep analytics costs at 4896 cores.

Two complementary reproductions:

* **modeled** — the calibrated cost model + workload model regenerate the
  five Table II rows (in-situ time, movement time and size, in-transit
  time);
* **measured** — the *real* Python kernels (moment learn, merge-tree
  subtree build, down-sampling, streaming glue) run on a laptop-scale
  block via pytest-benchmark, grounding the per-element rates the model
  charges.

Run standalone:  python benchmarks/bench_table2.py
"""

import numpy as np
import pytest

from repro.analysis.statistics.moments import MomentAccumulator
from repro.analysis.topology.distributed import (
    compute_block_boundary_trees,
    cross_block_edges,
    glue_boundary_trees,
)
from repro.analysis.topology.merge_tree import compute_merge_tree
from repro.analysis.visualization.downsample import downsample_block
from repro.core import AnalyticsVariant, ExperimentConfig, ScaledExperiment
from repro.util import TextTable
from repro.vmpi import BlockDecomposition3D

from conftest import blob_field

PAPER_ROWS = {
    AnalyticsVariant.VIS_INSITU: dict(insitu=0.73),
    AnalyticsVariant.STATS_INSITU: dict(insitu=1.64),
    AnalyticsVariant.VIS_HYBRID: dict(insitu=0.08, move_mb=49.19, intransit=5.06),
    AnalyticsVariant.TOPO_HYBRID: dict(insitu=2.72, move_mb=87.02, intransit=119.81),
    AnalyticsVariant.STATS_HYBRID: dict(insitu=1.69, move_mb=13.30, intransit=0.01),
}


def generate_table2():
    exp = ScaledExperiment(ExperimentConfig.paper_4896())
    return exp.breakdown()


def render(breakdown) -> str:
    t = TextTable(["analysis", "in-situ (s)", "movement (s)", "movement (MB)",
                   "in-transit (s)"],
                  title="Table II at 4896 cores (modeled, per time step)")
    for variant in AnalyticsVariant:
        t.add_row(breakdown.analytics[variant.value].table_row())
    return t.render()


def test_table2_modeled_rows(benchmark):
    b = benchmark(generate_table2)
    print("\n" + render(b))
    for variant, paper in PAPER_ROWS.items():
        row = b.analytics[variant.value]
        assert row.insitu_time == pytest.approx(paper["insitu"], rel=0.05)
        if "move_mb" in paper:
            assert row.movement_mb == pytest.approx(paper["move_mb"], rel=0.3)
        if "intransit" in paper:
            assert row.intransit_time == pytest.approx(paper["intransit"], rel=0.3)


def test_table2_shape_claims():
    b = generate_table2()
    rows = {v: b.analytics[v.value] for v in AnalyticsVariant}
    # movement sizes are orders of magnitude below the 98.5 GB raw state
    for v in (AnalyticsVariant.VIS_HYBRID, AnalyticsVariant.TOPO_HYBRID,
              AnalyticsVariant.STATS_HYBRID):
        assert rows[v].movement_bytes < b.data_bytes / 1000
    # topology dominates the in-transit budget; stats derive is negligible
    assert rows[AnalyticsVariant.TOPO_HYBRID].intransit_time > \
        10 * rows[AnalyticsVariant.VIS_HYBRID].intransit_time
    assert rows[AnalyticsVariant.STATS_HYBRID].intransit_time < 0.1
    # hybrid viz burdens the simulation ~10x less than fully in-situ viz
    assert rows[AnalyticsVariant.VIS_HYBRID].insitu_time < \
        rows[AnalyticsVariant.VIS_INSITU].insitu_time / 5


# -- measured kernels (real Python implementations at laptop scale) -----------

BLOCK = (20, 16, 12)  # per-rank block for measured rates


def test_measured_stats_learn(benchmark):
    data = np.random.default_rng(1).random(BLOCK)
    acc = benchmark(MomentAccumulator.from_data, data)
    assert acc.n == data.size


def test_measured_topology_subtree(benchmark):
    field = blob_field(BLOCK, seed=2)
    tree, _ = benchmark(compute_merge_tree, field)
    assert len(tree.leaves()) >= 1


def test_measured_downsample(benchmark):
    field = blob_field(BLOCK, seed=3)
    ds = benchmark(downsample_block, field, (0, 0, 0), BLOCK, 2)
    assert ds.data.size == field.size // 8


def test_measured_streaming_glue(benchmark):
    field = blob_field((16, 14, 12), seed=4)
    decomp = BlockDecomposition3D(field.shape, (2, 2, 1))
    bts = compute_block_boundary_trees(field, decomp)
    cross = cross_block_edges(decomp)
    tree = benchmark(glue_boundary_trees, bts, cross)
    ref, _ = compute_merge_tree(field)
    assert tree.reduced().signature() == ref.reduced().signature()


if __name__ == "__main__":
    print(render(generate_table2()))
