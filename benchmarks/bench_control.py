"""Adaptive control: closing the in-situ/in-transit loop under faults.

The paper fixes the placement split and the staging allocation for the
whole run; this benchmark sweeps fault pressure over the full-scale
schedule replay and measures what the online controller buys back —
adaptive versus static makespan under the same seeded crash + RDMA-stall
plan, plus the decision count and final pool size behind each recovery.

Run standalone:  python benchmarks/bench_control.py
"""

from repro.control import run_control_scenario
from repro.util import TextTable

N_STEPS = 8
N_BUCKETS = 4


def scenarios():
    return [
        ("healthy", dict(crash_times=(), pull_stall_rate=0.0)),
        ("one crash", dict(crash_times=(30.0,), pull_stall_rate=0.0)),
        ("two crashes", dict(crash_times=(30.0, 55.0),
                             pull_stall_rate=0.0)),
        ("crashes + stalls 5%", dict(crash_times=(30.0, 55.0),
                                     pull_stall_rate=0.05,
                                     pull_stall_seconds=2.0)),
        ("crashes + stalls 20%", dict(crash_times=(30.0, 55.0),
                                      pull_stall_rate=0.20,
                                      pull_stall_seconds=5.0)),
    ]


def sweep():
    rows = []
    for name, kw in scenarios():
        report = run_control_scenario(n_steps=N_STEPS, n_buckets=N_BUCKETS,
                                      seed=0, **kw)
        rows.append({"name": name, "report": report})
    return rows


def render(rows) -> str:
    t = TextTable(["scenario", "static (s)", "adaptive (s)", "speedup",
                   "decisions", "final pool"],
                  title="Adaptive controller vs static split under faults")
    for row in rows:
        r = row["report"]
        ctrl = r.controller
        t.add_row([row["name"], f"{r.static_makespan:.2f}",
                   f"{r.adaptive_makespan:.2f}", f"{r.speedup:.2f}x",
                   len(ctrl.decisions), ctrl.pool_trajectory[-1][1]])
    return t.render()


def test_controller_never_loses_to_static(bench_json_writer):
    rows = sweep()
    print("\n" + render(rows))
    for row in rows:
        assert row["report"].improved, \
            f"{row['name']}: adaptive makespan exceeds static"
    faulted = rows[-1]["report"]
    assert faulted.controller.decisions
    assert faulted.speedup > 1.0
    bench_json_writer("control_sweep", {
        "name": "control_sweep",
        "rows": [{"scenario": row["name"],
                  "static_makespan": row["report"].static_makespan,
                  "adaptive_makespan": row["report"].adaptive_makespan,
                  "speedup": row["report"].speedup,
                  "decisions": len(row["report"].controller.decisions),
                  "pool_final":
                      row["report"].controller.pool_trajectory[-1][1]}
                 for row in rows],
    })


def test_provisioned_pool_is_a_noop():
    # A pool that keeps pace gives the controller nothing to do: zero
    # decisions and a replay bit-identical to the static split. (The
    # 4-bucket sweep rows above are deliberately underprovisioned, so
    # even their fault-free row earns a pool-grow decision.)
    report = run_control_scenario(n_steps=N_STEPS, n_buckets=8, seed=0,
                                  crash_times=(), pull_stall_rate=0.0)
    assert report.controller.decisions == []
    assert report.adaptive_makespan == report.static_makespan


def test_scenario_benchmark(benchmark):
    report = benchmark(run_control_scenario, n_steps=4,
                       n_buckets=N_BUCKETS, seed=0)
    assert report.improved


if __name__ == "__main__":
    print(render(sweep()))
