"""Sustainable analysis frequency (§III's constraint, quantified).

"In practice, the fastest sustainable analysis frequency is limited by
memory and processing constraints on the secondary system."

This experiment computes, from the calibrated model, the fastest cadence
the paper's 4896-core staging area can absorb for the topology pipeline at
each bucket count — cross-validated against the DES replay — and the
staging memory the cadence requires.

Run standalone:  python benchmarks/bench_frequency.py
"""

import pytest

from repro.core import AnalyticsVariant, ExperimentConfig, ScaledExperiment
from repro.util import TextTable, fmt_bytes
from repro.util.units import GB


def experiment():
    return ScaledExperiment(ExperimentConfig.paper_4896())


def sweep():
    exp = experiment()
    rows = []
    for n_buckets in (1, 2, 4, 8, 16, 32):
        interval = exp.min_sustainable_interval(n_buckets)
        mem = exp.staging_memory_needed(interval, n_buckets)
        rows.append({"buckets": n_buckets, "interval": interval,
                     "memory": mem})
    return exp, rows


def render(rows) -> str:
    t = TextTable(["buckets", "fastest sustainable cadence",
                   "staging memory needed"],
                  title="Sustainable analysis frequency (topology, 4896 cores)")
    for r in rows:
        cadence = ("every step" if r["interval"] == 1
                   else f"every {r['interval']} steps")
        t.add_row([r["buckets"], cadence, fmt_bytes(r["memory"])])
    return t.render()


def test_analytic_bound_matches_des_replay():
    """The closed-form sustainable interval agrees with the DES: at that
    interval the queue stays bounded; one step faster, it grows."""
    exp, rows = sweep()
    print("\n" + render(rows))
    for r in rows:
        if r["buckets"] > 8:
            continue  # at >= 8 buckets interval 1 is already sustainable
        ok = exp.run_schedule(n_steps=10, n_buckets=r["buckets"],
                              analyses=(AnalyticsVariant.TOPO_HYBRID,),
                              analysis_interval=r["interval"])
        assert ok.keeps_pace(slack=1.05), \
            f"{r['buckets']} buckets should sustain interval {r['interval']}"
        if r["interval"] > 1:
            too_fast = exp.run_schedule(
                n_steps=3 * r["interval"], n_buckets=r["buckets"],
                analyses=(AnalyticsVariant.TOPO_HYBRID,),
                analysis_interval=max(1, r["interval"] // 2))
            assert too_fast.max_queue_wait() > ok.max_queue_wait()


def test_every_step_needs_eight_buckets():
    """The headline §V configuration: analysis at every simulation step is
    sustainable with ~8 of the 256 in-transit cores."""
    exp = experiment()
    assert exp.min_sustainable_interval(8) == 1
    assert exp.min_sustainable_interval(1) > 1


def test_memory_fits_staging_allocation():
    """Even at cadence 1, the in-flight intermediate data (~8 steps x
    ~240 MB) is a few GB — comfortably inside 256 staging cores' memory
    (16 nodes x 32 GB on the XK6)."""
    exp = experiment()
    mem = exp.staging_memory_needed(1, n_buckets=8)
    staging_capacity = 16 * 32 * GB
    assert mem < staging_capacity / 100

    # and it shrinks as the cadence coarsens
    assert exp.staging_memory_needed(10, 8) <= mem


def test_validation():
    exp = experiment()
    with pytest.raises(ValueError):
        exp.min_sustainable_interval(0)
    with pytest.raises(ValueError):
        exp.staging_memory_needed(0, 1)


def test_frequency_benchmark(benchmark):
    exp = experiment()
    interval = benchmark(exp.min_sustainable_interval, 4)
    assert interval >= 1


if __name__ == "__main__":
    print(render(sweep()[1]))
