"""Fig. 6: the timing breakdown for simulation and all analytics at 4896
cores — in-situ, data movement, and in-transit components per task.

Regenerates the bar-chart data and asserts the figure's visual claims:
in-situ components are small fractions of the simulation bar; the hybrid
variants shift the bulk of their time into the asynchronous in-transit
component; topology's in-transit bar dwarfs everything else.

Run standalone:  python benchmarks/bench_fig6_breakdown.py
"""

import timeit

import pytest

from repro.core import AnalyticsVariant, ExperimentConfig, ScaledExperiment
from repro.util import TextTable


def generate_fig6():
    return ScaledExperiment(ExperimentConfig.paper_4896()).breakdown()


def render(breakdown) -> str:
    series = breakdown.fig6_series()
    t = TextTable(["task", "in-situ (s)", "data movement (s)", "in-transit (s)"],
                  title="Fig. 6 (regenerated): per-timestep breakdown, 4896 cores")
    for task, bars in series.items():
        t.add_row([task, round(bars["in-situ"], 3),
                   round(bars["data movement"], 3),
                   round(bars["in-transit"], 3)])
    return t.render()


def test_fig6_series_complete(benchmark):
    b = benchmark(generate_fig6)
    print("\n" + render(b))
    series = b.fig6_series()
    assert set(series) == {"simulation"} | {v.value for v in AnalyticsVariant}


def test_fig6_insitu_components_small_vs_simulation():
    b = generate_fig6()
    sim = b.simulation_time
    for v in AnalyticsVariant:
        assert b.analytics[v.value].insitu_time < 0.2 * sim


def test_fig6_hybrid_work_is_offloaded():
    """For every hybrid variant, the off-node share (movement+in-transit)
    exceeds the on-node (in-situ) share except stats, whose learn stage is
    inherently on-node."""
    b = generate_fig6()
    viz = b.analytics[AnalyticsVariant.VIS_HYBRID.value]
    topo = b.analytics[AnalyticsVariant.TOPO_HYBRID.value]
    assert viz.intransit_time + viz.movement_time > 5 * viz.insitu_time
    assert topo.intransit_time > 10 * topo.insitu_time


def test_fig6_topology_dominates_intransit():
    b = generate_fig6()
    topo = b.analytics[AnalyticsVariant.TOPO_HYBRID.value].intransit_time
    others = [b.analytics[v.value].intransit_time
              for v in AnalyticsVariant if v is not AnalyticsVariant.TOPO_HYBRID]
    assert topo > 10 * max(others)
    # ... and exceeds the simulation step itself — only viable because the
    # computation is asynchronous and temporally multiplexed.
    assert topo > b.simulation_time


def test_tracer_disabled_overhead_under_5pct(bench_json_writer):
    """The disabled tracer must cost < 5% on the breakdown hot path.

    ``breakdown()`` carries the tracer's instrument site (a get_tracer()
    lookup + enabled check); ``_breakdown()`` is the identical body with
    no instrumentation. min-of-repeats timing keeps scheduler noise out.
    """
    from repro.obs import get_tracer

    exp = ScaledExperiment(ExperimentConfig.paper_4896())
    assert not get_tracer().enabled  # tracing must be off for this measure
    n, repeats = 80, 9
    baseline = min(timeit.repeat(exp._breakdown, number=n,
                                 repeat=repeats)) / n
    instrumented = min(timeit.repeat(exp.breakdown, number=n,
                                     repeat=repeats)) / n
    overhead = instrumented / baseline - 1.0
    bench_json_writer("fig6_tracer_overhead", {
        "name": "fig6_tracer_overhead",
        "baseline_s": baseline,
        "instrumented_s": instrumented,
        "overhead_fraction": overhead,
        "threshold": 0.05,
        "rounds": repeats,
        "iterations": n,
    })
    assert overhead < 0.05, (
        f"disabled-tracer overhead {overhead:.2%} exceeds 5% "
        f"({instrumented * 1e6:.1f}us vs {baseline * 1e6:.1f}us)")


def test_probe_overhead_under_5pct(bench_json_writer):
    """Live probes on a 10-step traced replay must cost < 5%.

    Same min-of-repeats discipline as the tracer-overhead check: the
    traced schedule replay with a quarter-timestep probe interval (the
    ``perf record`` default — ~80 samples plus SLO evaluation) against
    the identical replay with no sampler attached.
    """
    exp = ScaledExperiment(ExperimentConfig.paper_4896())
    interval = exp.simulation_step_time() * 0.25
    n, repeats = 2, 15

    def traced_plain():
        exp.traced_schedule(n_steps=10, n_buckets=8)

    def traced_probed():
        exp.traced_schedule(n_steps=10, n_buckets=8,
                            probe_interval=interval)

    # A replay is ~20ms — long enough that host-load wander between the
    # two measurement loops shows up as multi-percent bias. Interleave
    # the variants so drift hits both, and compare the fastest observed
    # execution of each: noise only ever adds time, so with enough
    # repeats both minima converge to the true cost. A load burst can
    # still poison one variant's whole window, so one re-measure is
    # allowed before the verdict counts.
    def measure() -> tuple[float, float]:
        baselines, probeds = [], []
        for _ in range(repeats):
            baselines.append(timeit.timeit(traced_plain, number=n) / n)
            probeds.append(timeit.timeit(traced_probed, number=n) / n)
        return min(baselines), min(probeds)

    baseline, probed = measure()
    if probed / baseline - 1.0 >= 0.05:
        b2, p2 = measure()
        if p2 / b2 < probed / baseline:
            baseline, probed = b2, p2
    overhead = probed / baseline - 1.0
    bench_json_writer("fig6_probe_overhead", {
        "name": "fig6_probe_overhead",
        "baseline_s": baseline,
        "probed_s": probed,
        "overhead_fraction": overhead,
        "probe_interval_s": interval,
        "threshold": 0.05,
        "rounds": repeats,
        "iterations": n,
    })
    assert overhead < 0.05, (
        f"probe overhead {overhead:.2%} exceeds 5% "
        f"({probed * 1e3:.2f}ms vs {baseline * 1e3:.2f}ms)")


if __name__ == "__main__":
    print(render(generate_fig6()))
