"""Fig. 2: in-situ full-resolution rendering vs hybrid down-sampled rendering.

The figure shows overview and zoom views of the temperature field rendered
(a/c) fully in-situ at full resolution and (b/d) in-transit from data
down-sampled at every 8th grid point. We regenerate both modes on the
proxy simulation, check the hybrid image approximates the in-situ one at a
fraction of the data, and benchmark both render paths.

Run standalone:  python benchmarks/bench_fig2_visualization.py
"""

import pytest

from repro.analysis.visualization import (
    Camera,
    TransferFunction,
    downsample_decomposed,
    render_blocks_insitu,
    render_intransit,
)
from repro.util import TextTable, fmt_bytes, image_rmse
from repro.vmpi import BlockDecomposition3D


def setup_scene(flame_solver):
    temperature = flame_solver.fields["T"]
    decomp = BlockDecomposition3D(temperature.shape, (2, 2, 2))
    tf = TransferFunction.hot(float(temperature.min()), float(temperature.max()))
    cameras = {
        "overview": Camera(image_shape=(32, 32), azimuth_deg=30, elevation_deg=20),
        "zoom": Camera(image_shape=(32, 32), azimuth_deg=30, elevation_deg=20,
                       zoom=2.5, center=(8.0, 8.0, 6.0)),
    }
    return temperature, decomp, tf, cameras


def render_rows(flame_solver):
    temperature, decomp, tf, cameras = setup_scene(flame_solver)
    rows = []
    for view, cam in cameras.items():
        insitu = render_blocks_insitu(temperature, decomp, cam, tf)
        for stride in (2, 4):
            blocks = downsample_decomposed(temperature, decomp, stride)
            hybrid = render_intransit(blocks, temperature.shape, cam, tf)
            rows.append({
                "view": view, "stride": stride,
                "payload": sum(b.nbytes for b in blocks),
                "raw": temperature.nbytes,
                "rmse": image_rmse(insitu, hybrid),
            })
    return rows


def render(rows) -> str:
    t = TextTable(["view", "stride", "moved", "raw", "RMSE vs in-situ"],
                  title="Fig. 2 (regenerated): hybrid vs in-situ rendering")
    for r in rows:
        t.add_row([r["view"], r["stride"], fmt_bytes(r["payload"]),
                   fmt_bytes(r["raw"]), round(r["rmse"], 4)])
    return t.render()


@pytest.fixture(scope="module")
def fig2_rows(flame_solver):
    return render_rows(flame_solver)


def test_fig2_hybrid_approximates_insitu(fig2_rows):
    print("\n" + render(fig2_rows))
    for r in fig2_rows:
        assert r["rmse"] < 0.25, f"{r['view']} stride {r['stride']} too far off"


def test_fig2_data_reduction(fig2_rows):
    """Stride s reduces moved bytes by ~s^3 (512x at the paper's stride 8)."""
    for r in fig2_rows:
        assert r["payload"] <= r["raw"] / (r["stride"] ** 3) * 1.5


def test_fig2_error_monotone_in_stride(fig2_rows):
    by_view = {}
    for r in fig2_rows:
        by_view.setdefault(r["view"], []).append(r)
    for view, rows in by_view.items():
        rows.sort(key=lambda r: r["stride"])
        rmses = [r["rmse"] for r in rows]
        assert rmses == sorted(rmses), f"error not monotone for {view}"


def test_fig2_insitu_render_benchmark(benchmark, flame_solver):
    temperature, decomp, tf, cameras = setup_scene(flame_solver)
    img = benchmark(render_blocks_insitu, temperature, decomp,
                    cameras["overview"], tf)
    assert img.shape == (32, 32, 3)


def test_fig2_hybrid_render_benchmark(benchmark, flame_solver):
    temperature, decomp, tf, cameras = setup_scene(flame_solver)
    blocks = downsample_decomposed(temperature, decomp, 2)
    img = benchmark(render_intransit, blocks, temperature.shape,
                    cameras["overview"], tf)
    assert img.shape == (32, 32, 3)


if __name__ == "__main__":
    from repro.sim import LiftedFlameCase, S3DProxy, StructuredGrid3D
    grid = StructuredGrid3D((24, 16, 12), lengths=(3.0, 2.0, 1.5))
    solver = S3DProxy(LiftedFlameCase(grid, seed=5, kernel_rate=1.5))
    solver.step(5)
    print(render(render_rows(solver)))
