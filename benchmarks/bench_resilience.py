"""Resilience: cost of fault recovery in the staging area (§IV).

The paper's staging design assumes failures in the analytics pipeline
must not take the simulation down. This benchmark sweeps fault pressure
over the synthetic staging workload and measures what recovery costs:
makespan overhead versus the fault-free baseline for pull retries with
exponential backoff, lease-based reassignment after bucket crashes,
supervisor restarts, and the fully-degraded in-situ fallback.

Run standalone:  python benchmarks/bench_resilience.py
"""

import pytest

from repro.faults import FaultConfig, run_resilience_experiment
from repro.util import TextTable

N_TASKS = 32
N_BUCKETS = 4
LEASE = 5.0e-3


def scenarios():
    return [
        ("baseline", FaultConfig(seed=9), {}),
        ("pull faults 10%", FaultConfig(seed=9, pull_failure_rate=0.10), {}),
        ("pull faults 30%", FaultConfig(seed=9, pull_failure_rate=0.30), {}),
        ("stalls 20%",
         FaultConfig(seed=9, pull_stall_rate=0.20, pull_stall_seconds=2.0e-3),
         {}),
        ("crashes", FaultConfig(seed=9, crash_rate=100.0, horizon=0.06), {}),
        ("crashes+restart",
         FaultConfig(seed=9, crash_rate=100.0, horizon=0.06),
         {"bucket_restart_delay": 2.0e-3, "max_bucket_restarts": 8}),
        ("staging down",
         FaultConfig(seed=9, crash_times=(0.001, 0.0012, 0.0014, 0.0016)),
         {}),
    ]


def sweep():
    rows = []
    baseline = None
    for name, cfg, extra in scenarios():
        r = run_resilience_experiment(cfg, n_tasks=N_TASKS,
                                      n_buckets=N_BUCKETS,
                                      lease_timeout=LEASE, **extra)
        if baseline is None:
            baseline = r.makespan
        rows.append({
            "name": name,
            "report": r,
            "overhead": r.makespan / baseline - 1.0,
        })
    return rows


def render(rows) -> str:
    t = TextTable(["scenario", "crashes", "reassigned", "restarts",
                   "fallback", "failed", "makespan (s)", "overhead"],
                  title="Resilience: recovery cost under injected faults")
    for row in rows:
        r = row["report"]
        t.add_row([row["name"], r.crashes_injected, r.reassignments,
                   r.restarts, r.fallback_tasks, r.accounting["failed"],
                   f"{r.makespan:.4f}", f"{row['overhead']:+.1%}"])
    return t.render()


def test_no_tasks_lost_under_any_scenario(bench_json_writer):
    rows = sweep()
    print("\n" + render(rows))
    for row in rows:
        r = row["report"]
        assert r.all_accounted, f"{row['name']}: tasks lost"
        assert r.values_ok, f"{row['name']}: wrong analysis values"
    bench_json_writer("resilience_sweep", {
        "name": "resilience_sweep",
        "rows": [{"scenario": row["name"],
                  "makespan": row["report"].makespan,
                  "overhead": row["overhead"],
                  "crashes": row["report"].crashes_injected,
                  "reassignments": row["report"].reassignments,
                  "restarts": row["report"].restarts,
                  "fallback_tasks": row["report"].fallback_tasks,
                  "failed": row["report"].accounting["failed"]}
                 for row in rows],
    })


def test_reassignment_bounded_by_lease():
    r = run_resilience_experiment(
        FaultConfig(seed=9, crash_rate=100.0, horizon=0.06),
        n_tasks=N_TASKS, n_buckets=N_BUCKETS, lease_timeout=LEASE)
    assert r.crashes_injected > 0
    for delay in r.recovery_delays:
        # crash -> requeue within one lease period (plus renewal phase)
        assert delay <= 2 * LEASE + 1e-12


def test_determinism_same_seed_same_outcome():
    cfg = FaultConfig(seed=9, crash_rate=100.0, horizon=0.06,
                      pull_failure_rate=0.15)
    a = run_resilience_experiment(cfg, n_tasks=N_TASKS, n_buckets=N_BUCKETS)
    b = run_resilience_experiment(cfg, n_tasks=N_TASKS, n_buckets=N_BUCKETS)
    assert a.makespan == b.makespan
    assert a.crashes_injected == b.crashes_injected
    assert a.pull_failures_injected == b.pull_failures_injected
    assert a.reassignments == b.reassignments
    assert a.accounting == b.accounting


def test_resilience_experiment_benchmark(benchmark):
    cfg = FaultConfig(seed=9, pull_failure_rate=0.10)
    r = benchmark(run_resilience_experiment, cfg,
                  n_tasks=16, n_buckets=N_BUCKETS)
    assert r.all_accounted


@pytest.mark.parametrize("rate", [0.0, 0.3])
def test_pull_fault_overhead_is_finite(rate):
    cfg = (FaultConfig(seed=9, pull_failure_rate=rate) if rate
           else FaultConfig(seed=9))
    r = run_resilience_experiment(cfg, n_tasks=N_TASKS, n_buckets=N_BUCKETS)
    assert r.all_accounted and r.values_ok


if __name__ == "__main__":
    print(render(sweep()))
