"""Fig. 3: merge trees encode contour merging; branches <-> regions.

The figure shows a 2-D scalar function whose merge tree records contours
appearing at maxima and merging at saddles, with a color-coded
correspondence between tree branches and regions of the domain. We
regenerate it: build a 2-D two-peak function, compute its merge tree,
verify the appearance/merge structure, and check the branch <-> region
segmentation correspondence.

Run standalone:  python benchmarks/bench_fig3_mergetree.py
"""

import numpy as np
import pytest

from repro.analysis.topology import compute_merge_tree, segment_superlevel
from repro.util import TextTable


def fig3_function(n=48):
    """A smooth 2-D field with two maxima merging at one saddle, carried as
    a thin 3-D slab (the library's grids are 3-D)."""
    x, y = np.meshgrid(np.linspace(0, 1, n), np.linspace(0, 1, n),
                       indexing="ij")
    f = (np.exp(-((x - 0.3) ** 2 + (y - 0.4) ** 2) / 0.02)
         + 0.75 * np.exp(-((x - 0.7) ** 2 + (y - 0.6) ** 2) / 0.02))
    return f[..., None]  # (n, n, 1)


def analyse():
    f = fig3_function()
    tree, arc = compute_merge_tree(f)
    red = tree.reduced()
    saddle = red.saddles()[0] if red.saddles() else None
    rows = []
    for leaf in red.leaves():
        rows.append({
            "node": leaf, "kind": "maximum", "value": red.value[leaf],
        })
    if saddle is not None:
        rows.append({"node": saddle, "kind": "merge saddle",
                     "value": red.value[saddle]})
    return f, tree, arc, red, rows


def render(rows) -> str:
    t = TextTable(["node", "kind", "f value"],
                  title="Fig. 3 (regenerated): merge tree of the 2-D example")
    for r in rows:
        t.add_row([r["node"], r["kind"], round(r["value"], 4)])
    return t.render()


def test_fig3_tree_structure():
    f, _tree, _arc, red, rows = analyse()
    print("\n" + render(rows))
    # two contours appear (two maxima), merging at one saddle
    assert len(red.leaves()) == 2
    assert len(red.saddles()) == 1
    saddle = red.saddles()[0]
    # both maxima merge at that saddle
    for leaf in red.leaves():
        assert red.parent[leaf] == saddle
    # the saddle sits below both maxima
    assert all(red.value[saddle] < red.value[leaf] for leaf in red.leaves())


def test_fig3_branch_region_correspondence():
    """Above the saddle: two regions, one per branch; below: they merge —
    the figure's color coding."""
    f, tree, arc, red, _rows = analyse()
    saddle_value = red.value[red.saddles()[0]]
    above = segment_superlevel(f[..., 0:1].reshape(f.shape), saddle_value + 0.02,
                               tree=tree, vertex_arc=arc)
    below = segment_superlevel(f, saddle_value - 0.02,
                               tree=tree, vertex_arc=arc)
    assert above.n_features == 2
    assert below.n_features == 1
    # each region of `above` contains exactly one of the two maxima
    labels = set(above.features)
    assert labels == set(red.leaves())


def test_fig3_isovalue_sweep_counts_contours():
    """Sweeping the isovalue top to bottom: 1 contour after the first max
    appears, 2 after the second, 1 after the saddle merge."""
    f, tree, arc, red, _ = analyse()
    leaves = sorted(red.leaves(), key=lambda n: red.value[n], reverse=True)
    saddle = red.saddles()[0]
    v_hi, v_lo = red.value[leaves[0]], red.value[leaves[1]]
    v_saddle = red.value[saddle]
    counts = []
    for tau in ((v_hi + v_lo) / 2, (v_lo + v_saddle) / 2, v_saddle * 0.5):
        seg = segment_superlevel(f, tau, tree=tree, vertex_arc=arc)
        counts.append(seg.n_features)
    assert counts == [1, 2, 1]


def test_fig3_merge_tree_benchmark(benchmark):
    f = fig3_function()
    tree, _ = benchmark(compute_merge_tree, f)
    assert len(tree.reduced().leaves()) == 2


if __name__ == "__main__":
    print(render(analyse()[-1]))
