"""Shared fixtures and field factories for the benchmark harness.

Every module in this directory regenerates one table or figure of the
paper (see DESIGN.md's experiment index). Each can also be executed as a
script (``python benchmarks/bench_table1.py``) to print the regenerated
rows; under pytest the same logic runs with assertions on the paper's
shape claims, and ``pytest-benchmark`` times the representative kernels.

Every ``pytest-benchmark`` result is additionally written to
``benchmarks/results/BENCH_<name>.json`` at session end (the ``test_``
prefix is stripped from the slug), so runs leave a machine-readable
record without extra flags; tests can record their own figures through
the ``bench_json_writer`` fixture. The session also appends one
:class:`repro.obs.perf.RunRecord` (metrics ``wall.bench.<slug>.<stat>``)
to the ``benchmarks/results/perf`` run store — the same schema the
``python -m repro perf`` CLI reads, so benchmark timings show up in the
cross-run dashboard.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import numpy as np
import pytest

from repro.sim import LiftedFlameCase, S3DProxy, StructuredGrid3D

RESULTS_DIR = Path(__file__).resolve().parent / "results"

_STAT_KEYS = ("min", "max", "mean", "stddev", "median", "iqr", "rounds",
              "iterations", "ops")


def _slug(name: str) -> str:
    name = re.sub(r"^test_", "", name)
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", name).strip("_")


def write_bench_json(name: str, payload: dict) -> Path:
    """Write one ``BENCH_<name>.json`` record under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{_slug(name)}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def bench_json_writer():
    """Session fixture handing tests the BENCH_<name>.json writer."""
    return write_bench_json


def pytest_sessionfinish(session, exitstatus):
    """Emit one BENCH_<name>.json per pytest-benchmark result, plus one
    run record (``wall.bench.*`` metrics) into the shared run store."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    run_metrics: dict[str, float] = {}
    for bench in getattr(bench_session, "benchmarks", []):
        stats = getattr(bench, "stats", None)
        name = getattr(bench, "name", "unknown")
        record = {
            "name": name,
            "fullname": getattr(bench, "fullname", None),
            "group": getattr(bench, "group", None),
            "param": getattr(bench, "param", None),
            "unit": "seconds",
        }
        for key in _STAT_KEYS:
            value = getattr(stats, key, None)
            if value is not None:
                try:
                    record[key] = float(value)
                except (TypeError, ValueError):
                    pass
        if stats is not None:
            write_bench_json(name, record)
            slug = _slug(name)
            for key in ("min", "mean", "median"):
                if key in record:
                    run_metrics[f"wall.bench.{slug}.{key}"] = record[key]
    if run_metrics:
        from repro.obs.perf import RunRecord, RunStore

        store = RunStore(RESULTS_DIR / "perf")
        store.append(RunRecord.new(source="bench", metrics=run_metrics,
                                   meta={"exitstatus": int(exitstatus)}))


def blob_field(shape=(16, 14, 12), n_blobs=5, seed=0) -> np.ndarray:
    """Smooth multi-feature scalar field (combustion-like structure)."""
    rng = np.random.default_rng(seed)
    coords = np.stack(np.mgrid[[slice(0, s) for s in shape]]).astype(float)
    f = np.zeros(shape)
    for _ in range(n_blobs):
        c = [rng.uniform(1, s - 1) for s in shape]
        d2 = sum((coords[a] - c[a]) ** 2 for a in range(3))
        f += rng.uniform(0.5, 1.5) * np.exp(-d2 / rng.uniform(4, 10))
    return f


@pytest.fixture(scope="session")
def flame_solver() -> S3DProxy:
    """A small lifted-flame run shared by the figure benchmarks."""
    grid = StructuredGrid3D((24, 16, 12), lengths=(3.0, 2.0, 1.5))
    case = LiftedFlameCase(grid, seed=5, kernel_rate=1.5)
    solver = S3DProxy(case)
    solver.step(5)
    return solver
