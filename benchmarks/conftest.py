"""Shared fixtures and field factories for the benchmark harness.

Every module in this directory regenerates one table or figure of the
paper (see DESIGN.md's experiment index). Each can also be executed as a
script (``python benchmarks/bench_table1.py``) to print the regenerated
rows; under pytest the same logic runs with assertions on the paper's
shape claims, and ``pytest-benchmark`` times the representative kernels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import LiftedFlameCase, S3DProxy, StructuredGrid3D


def blob_field(shape=(16, 14, 12), n_blobs=5, seed=0) -> np.ndarray:
    """Smooth multi-feature scalar field (combustion-like structure)."""
    rng = np.random.default_rng(seed)
    coords = np.stack(np.mgrid[[slice(0, s) for s in shape]]).astype(float)
    f = np.zeros(shape)
    for _ in range(n_blobs):
        c = [rng.uniform(1, s - 1) for s in shape]
        d2 = sum((coords[a] - c[a]) ** 2 for a in range(3))
        f += rng.uniform(0.5, 1.5) * np.exp(-d2 / rng.uniform(4, 10))
    return f


@pytest.fixture(scope="session")
def flame_solver() -> S3DProxy:
    """A small lifted-flame run shared by the figure benchmarks."""
    grid = StructuredGrid3D((24, 16, 12), lengths=(3.0, 2.0, 1.5))
    case = LiftedFlameCase(grid, seed=5, kernel_rate=1.5)
    solver = S3DProxy(case)
    solver.step(5)
    return solver
