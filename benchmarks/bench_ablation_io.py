"""Ablation: I/O aggregation strategy (Table I's file-per-process note).

The paper writes file-per-process because it "achieves near peak I/O
bandwidths over a wide range of core counts". This ablation sweeps the
N-to-M aggregation spectrum on the Lustre + Gemini models at the 4896-core
checkpoint and shows (a) file-per-process indeed sits near the optimum at
the paper's scale, and (b) where that stops being true (metadata-limited
extreme scales).

Run standalone:  python benchmarks/bench_ablation_io.py
"""

import pytest

from repro.io.aggregation import AggregationModel
from repro.machine.gemini import GeminiNetwork
from repro.machine.lustre import LustreModel
from repro.util import TextTable
from repro.util.units import GB

DATA = int(98.5 * GB)
N_RANKS = 4480


def model():
    return AggregationModel(LustreModel(), GeminiNetwork())


def sweep(n_ranks=N_RANKS):
    m = model()
    rows = []
    for agg in (1, 8, 64, 512, n_ranks // 4, n_ranks):
        t = m.write_time(DATA, n_ranks, agg)
        rows.append({"aggregators": agg, "time": t,
                     "fpp": agg == n_ranks})
    return rows


def render(rows) -> str:
    t = TextTable(["aggregators (M)", "write time (s)", "note"],
                  title=f"Ablation: N-to-M aggregation, N={N_RANKS}, 98.5 GB")
    for r in rows:
        t.add_row([r["aggregators"], round(r["time"], 2),
                   "file-per-process" if r["fpp"] else ""])
    return t.render()


def test_file_per_process_near_optimal_at_paper_scale():
    rows = sweep()
    print("\n" + render(rows))
    best = min(r["time"] for r in rows)
    fpp = [r for r in rows if r["fpp"]][0]
    assert fpp["time"] <= best * 1.25

    # and it reproduces Table I's 3.28 s within tolerance
    assert fpp["time"] == pytest.approx(3.28, rel=0.05)


def test_single_aggregator_is_terrible():
    rows = sweep()
    one = [r for r in rows if r["aggregators"] == 1][0]
    fpp = [r for r in rows if r["fpp"]][0]
    assert one["time"] > 10 * fpp["time"]


def test_metadata_wall_at_extreme_scale():
    """At 10x more ranks, per-file metadata costs grow and moderate
    aggregation overtakes file-per-process — the post-Jaguar shift ADIOS's
    subfiling anticipated."""
    m = AggregationModel(LustreModel(), GeminiNetwork(),
                         metadata_ops_per_s=2000.0)  # stressed MDS
    n = 10 * N_RANKS
    fpp = m.write_time(DATA, n, n)
    best_m = m.best_aggregator_count(DATA, n)
    best = m.write_time(DATA, n, best_m)
    assert best < fpp
    assert best_m < n


def test_best_count_consistent():
    m = model()
    best = m.best_aggregator_count(DATA, N_RANKS)
    t_best = m.write_time(DATA, N_RANKS, best)
    for probe in (1, 64, N_RANKS):
        assert t_best <= m.write_time(DATA, N_RANKS, probe) + 1e-9


def test_validation():
    m = model()
    with pytest.raises(ValueError):
        m.write_time(-1, 10, 1)
    with pytest.raises(ValueError):
        m.write_time(10, 0, 1)
    with pytest.raises(ValueError):
        m.write_time(10, 4, 5)
    with pytest.raises(ValueError):
        AggregationModel(LustreModel(), GeminiNetwork(), metadata_ops_per_s=0)


def test_aggregation_benchmark(benchmark):
    m = model()
    best = benchmark(m.best_aggregator_count, DATA, N_RANKS)
    assert best >= 1


if __name__ == "__main__":
    print(render(sweep()))
