"""Fig. 4: the four statistics operations and their communication pattern.

The figure defines learn / derive / assess / test and the caption's claim:
"The learn stage is the only stage that requires inter-process
communication by design." We regenerate the pattern on decomposed data,
assert the communication claim via the comm tracker, verify the two
deployments agree, and benchmark each stage.

Run standalone:  python benchmarks/bench_fig4_statistics.py
"""

import numpy as np
import pytest

from repro.analysis.statistics import (
    StatisticsEngine,
    assess,
    derive,
    learn,
    merge_accumulators,
)
from repro.analysis.statistics.stages import test_mean_zscore as mean_zscore_test
from repro.util import TextTable
from repro.vmpi import VirtualComm

N_RANKS = 8
BLOCK_N = 4000


def make_blocks(seed=17):
    rng = np.random.default_rng(seed)
    return [{"T": rng.normal(2.0, 0.5, BLOCK_N),
             "H2": rng.gamma(2.0, 0.1, BLOCK_N)} for _ in range(N_RANKS)]


def run_stages():
    comm = VirtualComm(N_RANKS)
    engine = StatisticsEngine(comm)
    blocks = make_blocks()
    rows = []

    # learn: per-rank, then the only communication (model exchange)
    partials = engine.learn_partials(blocks)
    merged = merge_accumulators([p["T"] for p in partials])
    rows.append(("learn", "per-rank pass + model merge",
                 comm.tracker.count("allreduce")))

    # derive: local on the merged model
    stats = derive(merged)
    rows.append(("derive", f"mean={stats.mean:.3f} var={stats.variance:.4f}", 0))

    # assess: local per observation
    z = assess(blocks[0]["T"], stats)
    rows.append(("assess", f"{(np.abs(z) > 3).sum()} outliers in rank 0", 0))

    # test: local on the model
    zstat = mean_zscore_test(stats, 2.0)
    rows.append(("test", f"H0 mean=2.0 -> z={zstat:.2f}", 0))
    return comm, engine, blocks, stats, rows


def render(rows) -> str:
    t = TextTable(["stage", "result", "collectives used"],
                  title="Fig. 4 (regenerated): the four statistics stages")
    for r in rows:
        t.add_row(list(r))
    return t.render()


def test_fig4_only_learn_communicates():
    comm = VirtualComm(N_RANKS)
    engine = StatisticsEngine(comm)
    blocks = make_blocks()
    result = engine.run_insitu(blocks)
    # the only collectives are the learn-merge allreduces (one per variable)
    ops = {r.op for r in comm.tracker.records}
    assert ops == {"allreduce"}
    assert comm.tracker.count("allreduce") == 2
    # derive/assess/test run locally afterwards with no further records
    n_before = len(comm.tracker.records)
    stats = result.statistics["T"]
    assess(blocks[0]["T"], stats)
    mean_zscore_test(stats, 0.0)
    assert len(comm.tracker.records) == n_before


def test_fig4_stage_pipeline_results():
    _comm, _engine, blocks, stats, rows = run_stages()
    print("\n" + render(rows))
    all_t = np.concatenate([b["T"] for b in blocks])
    assert stats.mean == pytest.approx(all_t.mean())
    assert stats.n == all_t.size
    # an honest null hypothesis is not rejected; a false one is
    assert abs(mean_zscore_test(stats, 2.0)) < 5
    assert abs(mean_zscore_test(stats, 2.5)) > 20


def test_fig4_deployments_agree():
    blocks = make_blocks()
    engine = StatisticsEngine(VirtualComm(N_RANKS))
    insitu = engine.run_insitu(blocks)
    hybrid = engine.run_hybrid(blocks)
    for var in ("T", "H2"):
        assert insitu.statistics[var].variance == pytest.approx(
            hybrid.statistics[var].variance, rel=1e-10)


def test_fig4_learn_benchmark(benchmark):
    data = make_blocks()[0]["T"]
    acc = benchmark(learn, data)
    assert acc.n == BLOCK_N


def test_fig4_derive_benchmark(benchmark):
    acc = learn(make_blocks()[0]["T"])
    stats = benchmark(derive, acc)
    assert stats.n == BLOCK_N


def test_fig4_assess_benchmark(benchmark):
    data = make_blocks()[0]["T"]
    stats = derive(learn(data))
    z = benchmark(assess, data, stats)
    assert z.shape == data.shape


if __name__ == "__main__":
    print(render(run_stages()[-1]))
