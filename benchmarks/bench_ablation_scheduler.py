"""Ablation: pull-based FCFS scheduling vs static push assignment (§IV).

The paper argues its asynchronous *pull*-based scheduler "can effectively
and scalably address the heterogeneity and dynamic nature of the analytics
pipeline, and manage load-balancing within the staging area." This
ablation quantifies that: with data-dependent (heterogeneous) in-transit
durations, FCFS pull — work goes to whichever bucket frees up first —
beats static round-robin push, which ignores bucket state.

Run standalone:  python benchmarks/bench_ablation_scheduler.py
"""

import heapq

import numpy as np
import pytest

from repro.util import TextTable

N_BUCKETS = 8
N_TASKS = 200
ARRIVAL_GAP = 1.0  # one burst per simulated step


def make_workload(heterogeneity: float, seed=23):
    """Arrival times and service times; heterogeneity = lognormal sigma of
    the data-dependent in-transit durations."""
    rng = np.random.default_rng(seed)
    arrivals = np.repeat(np.arange(N_TASKS // N_BUCKETS) * ARRIVAL_GAP, N_BUCKETS)
    mean_service = ARRIVAL_GAP * N_BUCKETS * 0.8  # ~80% utilisation
    services = mean_service * rng.lognormal(-heterogeneity**2 / 2,
                                            heterogeneity, size=N_TASKS)
    return arrivals, services


def simulate_pull_fcfs(arrivals, services):
    """Single queue, earliest-free bucket takes the next task."""
    free = [0.0] * N_BUCKETS
    heapq.heapify(free)
    waits, finish = [], []
    for a, s in zip(arrivals, services):
        t_free = heapq.heappop(free)
        start = max(a, t_free)
        waits.append(start - a)
        heapq.heappush(free, start + s)
        finish.append(start + s)
    return np.array(waits), max(finish)


def simulate_push_round_robin(arrivals, services):
    """Task i statically assigned to bucket i % k."""
    free = [0.0] * N_BUCKETS
    waits, finish = [], []
    for i, (a, s) in enumerate(zip(arrivals, services)):
        b = i % N_BUCKETS
        start = max(a, free[b])
        waits.append(start - a)
        free[b] = start + s
        finish.append(start + s)
    return np.array(waits), max(finish)


def sweep():
    rows = []
    for sigma in (0.0, 0.5, 1.0, 1.5):
        arrivals, services = make_workload(sigma)
        w_pull, mk_pull = simulate_pull_fcfs(arrivals, services)
        w_push, mk_push = simulate_push_round_robin(arrivals, services)
        rows.append({
            "sigma": sigma,
            "pull_mean_wait": float(w_pull.mean()),
            "push_mean_wait": float(w_push.mean()),
            "pull_makespan": mk_pull,
            "push_makespan": mk_push,
        })
    return rows


def render(rows) -> str:
    t = TextTable(["heterogeneity (sigma)", "pull mean wait", "push mean wait",
                   "pull makespan", "push makespan"],
                  title="Ablation: FCFS pull vs round-robin push scheduling")
    for r in rows:
        t.add_row([r["sigma"], round(r["pull_mean_wait"], 2),
                   round(r["push_mean_wait"], 2),
                   round(r["pull_makespan"], 1), round(r["push_makespan"], 1)])
    return t.render()


def test_pull_beats_push_under_heterogeneity():
    rows = sweep()
    print("\n" + render(rows))
    hetero = [r for r in rows if r["sigma"] >= 1.0]
    for r in hetero:
        assert r["pull_mean_wait"] < r["push_mean_wait"]
        assert r["pull_makespan"] <= r["push_makespan"] * 1.02


def test_advantage_grows_with_heterogeneity():
    rows = sweep()
    gains = [r["push_mean_wait"] - r["pull_mean_wait"] for r in rows]
    assert gains[-1] > gains[0]


def test_homogeneous_tasks_near_tie():
    rows = sweep()
    r0 = rows[0]  # sigma = 0: identical service times
    assert r0["pull_mean_wait"] == pytest.approx(r0["push_mean_wait"], abs=1e-9)


def test_scheduler_simulation_benchmark(benchmark):
    arrivals, services = make_workload(1.0)
    waits, _ = benchmark(simulate_pull_fcfs, arrivals, services)
    assert len(waits) == N_TASKS


if __name__ == "__main__":
    print(render(sweep()))
