"""Fig. 5: the framework architecture and its messaging scheme.

The figure specifies: in-situ computations raise *data-ready* events whose
descriptors enter a scheduling queue; staging buckets raise *bucket-ready*
requests; tasks are assigned first-come first-served; buckets then
asynchronously pull the data. We validate the event trace of a DES replay
against each of those properties and benchmark the scheduler throughput.

Run standalone:  python benchmarks/bench_fig5_scheduler.py
"""

import pytest

from repro.core import AnalyticsVariant, ExperimentConfig, ScaledExperiment
from repro.util import TextTable


def replay(n_steps=6, n_buckets=4):
    exp = ScaledExperiment(ExperimentConfig.paper_4896())
    return exp, exp.run_schedule(n_steps=n_steps, n_buckets=n_buckets)


def render(sched) -> str:
    from repro.util.gantt import Span, render_gantt
    t = TextTable(["task", "bucket", "queue wait (s)", "pull (s)",
                   "in-transit (s)"],
                  title="Fig. 5 (regenerated): in-transit task trace")
    for r in sched.results:
        t.add_row([r.task_id, r.bucket, round(r.queue_wait, 3),
                   round(r.pull_duration, 4), round(r.compute_duration, 2)])
    spans = [Span(r.bucket, r.assign_time, r.finish_time, r.task_id)
             for r in sched.results]
    return t.render() + "\n\nbucket occupancy:\n" + render_gantt(spans, 64)


@pytest.fixture(scope="module")
def trace():
    return replay()


def test_fig5_fcfs_assignment_order(trace):
    """Tasks are assigned in data-ready order (FCFS)."""
    exp, sched = trace
    print("\n" + render(sched))
    # reconstruct scheduler assignments via task results' enqueue order
    by_enqueue = sorted(sched.results, key=lambda r: (r.enqueue_time, r.task_id))
    by_assign = sorted(sched.results, key=lambda r: (r.assign_time, r.task_id))
    # when buckets are plentiful within a burst, assignment never reorders
    # across bursts: a later-arriving task is never assigned before an
    # earlier-arriving one has been assigned.
    for earlier, later in zip(by_enqueue, by_enqueue[1:]):
        if earlier.enqueue_time < later.enqueue_time:
            assert earlier.assign_time <= later.assign_time + 1e-9


def test_fig5_pull_happens_after_assignment(trace):
    _exp, sched = trace
    for r in sched.results:
        assert r.enqueue_time <= r.assign_time <= r.pull_done_time <= r.finish_time


def test_fig5_asynchronous_pull_moves_real_bytes(trace):
    exp, sched = trace
    w = exp.workload
    for r in sched.results:
        for v in AnalyticsVariant:
            if r.analysis == v.value:
                assert r.bytes_pulled == w.movement_bytes_total(v)


def test_fig5_all_buckets_participate(trace):
    _exp, sched = trace
    assert len({r.bucket for r in sched.results}) == sched.n_buckets


def test_fig5_assignment_wait_times_non_negative(trace):
    """Every AssignmentRecord in the replay has causally-sane times: a
    task is assigned no earlier than its data-ready event and no earlier
    than the bucket's ready announcement."""
    _exp, sched = trace
    assert sched.assignments  # run_schedule surfaces the scheduler records
    for rec in sched.assignments:
        assert rec.assign_time - rec.data_ready_time >= 0.0
        assert rec.assign_time - rec.bucket_ready_time >= 0.0


def test_fig5_rpc_load_balanced_over_servers():
    """§V: hashing balances RPC messages over DataSpaces servers."""
    from repro.staging import ServiceRing
    ring = ServiceRing(160)
    keys = [f"topology/t{i}/#{i}" for i in range(16000)]
    hist = ring.load_histogram(keys)
    mean = len(keys) / 160
    assert max(hist) < 3 * mean
    assert min(hist) > 0


def test_fig5_scheduler_benchmark(benchmark):
    exp = ScaledExperiment(ExperimentConfig.paper_4896())
    sched = benchmark(exp.run_schedule, 5, (AnalyticsVariant.STATS_HYBRID,), 4)
    assert len(sched.results) == 5


if __name__ == "__main__":
    print(render(replay()[1]))
