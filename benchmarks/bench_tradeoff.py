"""The abstract's headline claims: temporal resolution, I/O cost, time to
insight — post-processing vs fully in-situ vs concurrent hybrid (§VI's
planned trade-off study, implemented on the calibrated model).

Paper claims regenerated:
* "perform analyses at increased temporal resolutions" — stride 1 vs the
  ~400-step checkpoint stride post-processing needs to stay affordable;
* "mitigate I/O costs" — no raw checkpoints on the critical path;
* "significantly improve the time to insight" — minutes instead of
  waiting for the run to finish plus reading 98.5 GB back.

Run standalone:  python benchmarks/bench_tradeoff.py
"""

import pytest

from repro.core import ExperimentConfig, ScaledExperiment
from repro.core.tradeoff import TradeoffModel
from repro.util import TextTable, fmt_bytes, fmt_seconds

RUN_STEPS = 2000  # a production campaign segment


def build_outcomes():
    model = TradeoffModel(ScaledExperiment(ExperimentConfig.paper_4896()))
    return model, {
        "post @400": model.postprocessing(400, RUN_STEPS),
        "post @10": model.postprocessing(10, RUN_STEPS),
        "post @1": model.postprocessing(1, RUN_STEPS),
        "in-situ @1": model.fully_insitu(1),
        "hybrid @1": model.concurrent_hybrid(1),
        "hybrid @10": model.concurrent_hybrid(10),
    }


def render(outcomes) -> str:
    t = TextTable(["strategy", "stride", "sim slowdown", "time to insight",
                   "storage/analysed step"],
                  title="Trade-off: analysis delivery strategies (4896 cores)")
    for name, o in outcomes.items():
        t.add_row([name, o.temporal_stride,
                   f"{o.slowdown_percent:.2f}%",
                   fmt_seconds(o.time_to_insight),
                   fmt_bytes(o.storage_bytes)])
    return t.render()


def test_temporal_resolution_claim():
    """Post-processing at every step costs ~19% simulation slowdown and
    98.5 GB/step of storage; the hybrid analyses every step for a bounded
    on-node cost (~27%, dominated by topology's subtree pass — and ~2.7%
    at the every-10th-step cadence the paper says is typical)."""
    model, o = build_outcomes()
    print("\n" + render(o))
    assert o["post @1"].slowdown_percent > 15.0
    assert o["hybrid @1"].slowdown_percent < 30.0
    assert o["hybrid @1"].temporal_stride == 1
    assert o["post @400"].temporal_stride == 400


def test_io_cost_claim():
    """The hybrid persists ~1/70000th of the bytes per analysed step, and
    its on-node cost buys *finished results*; a checkpoint write (3.28 s)
    buys only raw data that still needs hours of post-hoc analysis."""
    _model, o = build_outcomes()
    assert o["hybrid @1"].storage_bytes < o["post @400"].storage_bytes / 1000
    # same cadence, comparable on-node cost — but insight arrives ~100x
    # sooner (the storage-vs-results asymmetry)
    assert o["hybrid @10"].critical_path_per_step < \
        2 * o["post @10"].critical_path_per_step
    assert o["hybrid @10"].time_to_insight < o["post @10"].time_to_insight / 50


def test_time_to_insight_claim():
    """Concurrent insight arrives within ~2 simulation steps; post-
    processing waits for the run (hours) plus read-back."""
    model, o = build_outcomes()
    sim = model.breakdown.simulation_time
    assert o["hybrid @1"].time_to_insight < 10 * sim
    assert o["post @400"].time_to_insight > 1000 * sim
    ratio = o["post @400"].time_to_insight / o["hybrid @1"].time_to_insight
    print(f"\ntime-to-insight improvement: {ratio:.0f}x")
    assert ratio > 100


def test_fully_insitu_topology_is_prohibitive():
    """§II/§III: topology has no data-parallel formulation; running its
    serial stage in-situ multiplies the step time several-fold — the
    reason the hybrid split exists."""
    _model, o = build_outcomes()
    assert o["in-situ @1"].slowdown_percent > 300.0
    assert o["hybrid @1"].slowdown_percent < o["in-situ @1"].slowdown_percent / 20


def test_hybrid_cadence_sustainability():
    """Stride-1 hybrid needs the multiplexing headroom; the paper's 256
    in-transit cores provide it amply."""
    model, o = build_outcomes()
    assert model.sustainable(o["hybrid @1"])
    tight = TradeoffModel(ScaledExperiment(ExperimentConfig.paper_4896()),
                          n_buckets=2)
    assert not tight.sustainable(tight.concurrent_hybrid(1))
    assert tight.sustainable(tight.concurrent_hybrid(10))


def test_tradeoff_benchmark(benchmark):
    model, _ = build_outcomes()
    out = benchmark(model.postprocessing, 400, RUN_STEPS)
    assert out.temporal_stride == 400


if __name__ == "__main__":
    _m, outcomes = build_outcomes()
    print(render(outcomes))
