"""Ablation: merge-tree boundary retention and subtree reduction (§III).

Two questions the hybrid topology design hinges on:

1. How much does the in-situ reduction shrink what must move? (subtree
   bytes vs raw block bytes, as block size grows — boundary scales as
   area, interior criticals as volume);
2. What does correctness *require*? Dropping the boundary vertices
   ("topological ghost cells") from the retained set breaks the glued
   tree — demonstrating why the paper includes them.

Run standalone:  python benchmarks/bench_ablation_topology.py
"""

import numpy as np
import pytest

from repro.analysis.topology import compute_merge_tree
from repro.analysis.topology.distributed import (
    compute_block_boundary_trees,
    cross_block_edges,
    glue_boundary_trees,
)
from repro.analysis.topology.local_tree import compute_boundary_tree
from repro.analysis.topology.merge_tree import MergeTree
from repro.analysis.topology.stream_merge import StreamingGlue
from repro.util import TextTable, fmt_bytes
from repro.vmpi import BlockDecomposition3D

from conftest import blob_field


def sweep_block_sizes():
    rows = []
    for n in (8, 12, 16, 24, 32):
        shape = (n, n, n)
        field = blob_field(shape, n_blobs=max(3, n // 4), seed=n)
        decomp = BlockDecomposition3D(shape, (2, 1, 1))
        bts = compute_block_boundary_trees(field, decomp)
        moved = sum(bt.nbytes for bt in bts)
        rows.append({
            "block": f"{n // 2}x{n}x{n}",
            "raw_bytes": field.nbytes // 2,
            "subtree_bytes": moved // 2,
            "nodes": sum(len(bt.nodes) for bt in bts) // 2,
            "reduction": field.nbytes / moved,
        })
    return rows


def render(rows) -> str:
    t = TextTable(["block", "raw block", "subtree", "nodes", "reduction"],
                  title="Ablation: in-situ subtree reduction vs block size")
    for r in rows:
        t.add_row([r["block"], fmt_bytes(r["raw_bytes"]),
                   fmt_bytes(r["subtree_bytes"]), r["nodes"],
                   f"{r['reduction']:.1f}x"])
    return t.render()


def test_reduction_improves_with_block_size():
    """Boundary cost scales with area, raw data with volume: bigger blocks
    reduce better — why the paper's 210k-cell blocks ship only ~19 KB."""
    rows = sweep_block_sizes()
    print("\n" + render(rows))
    reductions = [r["reduction"] for r in rows]
    assert reductions[-1] > reductions[0]
    assert reductions[-1] > 3.0


def test_dropping_boundary_vertices_breaks_gluing():
    """Keep only each block's critical vertices (no ghost-equivalent
    boundary set): the glue can no longer reconstruct the global tree."""
    shape = (12, 10, 8)
    field = blob_field(shape, 6, seed=77)
    decomp = BlockDecomposition3D(shape, (2, 2, 1))
    global_tree, _ = compute_merge_tree(field)

    correct, _ = (lambda bts: (glue_boundary_trees(
        bts, cross_block_edges(decomp)), bts))(
            compute_block_boundary_trees(field, decomp))
    assert correct.reduced().signature() == global_tree.reduced().signature()

    # ablated: strip boundary vertices from the retained sets
    from repro.analysis.topology.distributed import (
        block_boundary_mask,
        global_id_array,
    )
    ids = global_id_array(shape)
    broken = StreamingGlue()
    declared = set()
    for block in decomp.blocks():
        local_tree, _ = compute_merge_tree(field[block.slices],
                                           id_map=ids[block.slices])
        for vid, val in local_tree.value.items():
            if vid not in declared:
                declared.add(vid)
                broken.add_vertex(vid, val)
        for child, parent in local_tree.arcs():
            broken.add_edge(child, parent)
    # cross edges can only reference declared vertices — most boundary
    # vertices are gone, so the blocks cannot be stitched
    usable_cross = [e for e in cross_block_edges(decomp)
                    if e[0] in declared and e[1] in declared]
    for u, v in usable_cross:
        broken.add_edge(u, v)
    glued = broken.finalize()
    assert glued.reduced().signature() != global_tree.reduced().signature()


def test_glue_memory_footprint_bounded():
    """Streaming finalization: the glue's live-vertex high-water mark stays
    at the size of the reduced inputs, far below the full grid."""
    shape = (20, 16, 12)
    field = blob_field(shape, 8, seed=13)
    decomp = BlockDecomposition3D(shape, (2, 2, 2))
    bts = compute_block_boundary_trees(field, decomp)
    glue = StreamingGlue()
    glue_boundary_trees(bts, cross_block_edges(decomp), glue)
    assert glue.all_finalized()
    assert glue.peak_live_vertices <= sum(len(bt.nodes) for bt in bts)
    assert glue.peak_live_vertices < field.size


def test_boundary_tree_benchmark(benchmark):
    from repro.analysis.topology.distributed import (
        block_boundary_mask,
        global_id_array,
    )
    shape = (16, 14, 12)
    field = blob_field(shape, 5, seed=21)
    decomp = BlockDecomposition3D(shape, (2, 1, 1))
    ids = global_id_array(shape)
    block = decomp.block(0)
    bt = benchmark(compute_boundary_tree, field[block.slices],
                   ids[block.slices],
                   block_boundary_mask(block, shape))
    assert len(bt.nodes) > 0


if __name__ == "__main__":
    print(render(sweep_block_sizes()))
