"""Ablation: staging-bucket count vs sustainable analysis frequency (§V).

The temporal-multiplexing claim: mapping successive timesteps' in-transit
tasks to different buckets decouples a slow serial stage (topology's
~120 s glue) from the fast simulation cadence (16.85 s/step). This
ablation sweeps the bucket count on the full-scale DES replay and locates
the knee: ceil(task duration / step time) ~ 8 buckets.

Run standalone:  python benchmarks/bench_ablation_buckets.py
"""

import math

import pytest

from repro.core import AnalyticsVariant, ExperimentConfig, ScaledExperiment
from repro.util import TextTable

N_STEPS = 8


def sweep(bucket_counts=(1, 2, 4, 8, 12, 16)):
    exp = ScaledExperiment(ExperimentConfig.paper_4896())
    rows = []
    for n in bucket_counts:
        sched = exp.run_schedule(n_steps=N_STEPS, n_buckets=n,
                                 analyses=(AnalyticsVariant.TOPO_HYBRID,))
        rows.append({
            "buckets": n,
            "max_wait": sched.max_queue_wait(),
            "keeps_pace": sched.keeps_pace(),
            "makespan": sched.makespan,
        })
    return exp, rows


def render(rows) -> str:
    t = TextTable(["buckets", "max queue wait (s)", "keeps pace", "makespan (s)"],
                  title="Ablation: bucket count vs topology pipeline health")
    for r in rows:
        t.add_row([r["buckets"], round(r["max_wait"], 2),
                   "yes" if r["keeps_pace"] else "NO",
                   round(r["makespan"], 1)])
    return t.render()


def test_knee_at_duration_over_cadence():
    exp, rows = sweep()
    print("\n" + render(rows))
    b = exp.breakdown()
    topo = b.analytics[AnalyticsVariant.TOPO_HYBRID.value]
    task_duration = topo.movement_time + topo.intransit_time
    knee = math.ceil(task_duration / b.simulation_time)
    print(f"predicted knee: ceil({task_duration:.1f} / "
          f"{b.simulation_time:.2f}) = {knee} buckets")
    for r in rows:
        if r["buckets"] >= knee:
            assert r["keeps_pace"], f"{r['buckets']} buckets should keep pace"
        if r["buckets"] <= knee // 2:
            assert not r["keeps_pace"], \
                f"{r['buckets']} buckets should fall behind"


def test_queue_wait_monotone_in_buckets():
    _exp, rows = sweep()
    waits = [r["max_wait"] for r in rows]
    assert all(a >= b - 1e-9 for a, b in zip(waits, waits[1:]))


def test_single_bucket_wait_grows_linearly_with_steps():
    """With one bucket the backlog grows each analysed step."""
    exp = ScaledExperiment(ExperimentConfig.paper_4896())
    short = exp.run_schedule(n_steps=3, n_buckets=1,
                             analyses=(AnalyticsVariant.TOPO_HYBRID,))
    long = exp.run_schedule(n_steps=6, n_buckets=1,
                            analyses=(AnalyticsVariant.TOPO_HYBRID,))
    assert long.max_queue_wait() > 1.5 * short.max_queue_wait()


def test_bucket_sweep_benchmark(benchmark):
    exp = ScaledExperiment(ExperimentConfig.paper_4896())
    sched = benchmark(exp.run_schedule, 4,
                      (AnalyticsVariant.TOPO_HYBRID,), 8)
    assert len(sched.results) == 4


if __name__ == "__main__":
    print(render(sweep()[1]))
