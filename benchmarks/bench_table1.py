"""Table I: core allocations, data sizes, simulation and I/O times.

Regenerates both columns (4896 and 9440 cores) from the machine model and
Jaguar calibration, and checks the paper's shape claims: perfect strong
scaling of the simulation step, core-count-independent I/O, 98.5 GB state.

Run standalone:  python benchmarks/bench_table1.py
"""

import pytest

from repro.core import ExperimentConfig, ScaledExperiment
from repro.util import TextTable

PAPER = {
    "4896 cores": {"sim": 16.85, "read": 6.56, "write": 3.28, "gb": 98.5},
    "9440 cores": {"sim": 8.42, "read": 6.56, "write": 3.28, "gb": 98.5},
}


def generate_table1():
    configs = [ExperimentConfig.paper_4896(), ExperimentConfig.paper_9440()]
    return {c.name: ScaledExperiment(c).breakdown() for c in configs}


def render(breakdowns) -> str:
    t = TextTable(["", *breakdowns], title="Table I (modeled)")
    rows = [
        ("No. of simulation/in-situ cores", lambda b: b.n_sim_cores),
        ("No. of DataSpaces-service cores", lambda b: b.n_service_cores),
        ("No. of in-transit cores", lambda b: b.n_intransit_cores),
        ("Volume size", lambda b: "x".join(map(str, b.global_shape))),
        ("No. of variables", lambda b: b.n_vars),
        ("Data size (GB)", lambda b: round(b.data_gb, 1)),
        ("Simulation time (sec.)", lambda b: round(b.simulation_time, 2)),
        ("I/O read time (sec.)", lambda b: round(b.io_read_time, 2)),
        ("I/O write time (sec.)", lambda b: round(b.io_write_time, 2)),
    ]
    for name, get in rows:
        t.add_row([name, *(get(b) for b in breakdowns.values())])
    return t.render()


def test_table1_rows_match_paper(benchmark):
    breakdowns = benchmark(generate_table1)
    print("\n" + render(breakdowns))
    for col, paper in PAPER.items():
        b = breakdowns[col]
        assert b.simulation_time == pytest.approx(paper["sim"], rel=0.01)
        assert b.io_read_time == pytest.approx(paper["read"], rel=0.02)
        assert b.io_write_time == pytest.approx(paper["write"], rel=0.02)
        assert b.data_gb == pytest.approx(paper["gb"], rel=0.01)


def test_table1_shape_claims():
    b = generate_table1()
    # strong scaling: 2x cores -> simulation time halves
    assert (b["4896 cores"].simulation_time
            / b["9440 cores"].simulation_time) == pytest.approx(2.0, rel=0.01)
    # I/O independent of core count (OST-limited)
    assert b["4896 cores"].io_read_time == pytest.approx(
        b["9440 cores"].io_read_time, rel=1e-6)
    # allocations sum to the named totals
    assert b["4896 cores"].n_cores == 4896
    assert b["9440 cores"].n_cores == 9440


if __name__ == "__main__":
    print(render(generate_table1()))
