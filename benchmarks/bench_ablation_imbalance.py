"""Ablation: data-dependent in-situ imbalance (the §VI straggler problem).

"The performance of the analysis algorithms can be highly data-dependent
and it is likely that different in-situ processes finish at significantly
different times."

The in-situ stage completes when the *slowest* rank finishes; with
lognormal per-rank durations the expected maximum over p ranks grows with
both p and the heterogeneity sigma. This ablation quantifies the effective
in-situ stretch at the paper's 4480 ranks, measures the same effect for
real merge-tree subtree builds (block topology varies per rank), and shows
why the streaming/in-transit refinement matters: the straggler penalty is
paid on the critical path only by in-situ stages.

Run standalone:  python benchmarks/bench_ablation_imbalance.py
"""

import numpy as np
import pytest

from repro.analysis.topology import compute_merge_tree
from repro.util import TextTable, WallTimer

from conftest import blob_field

N_RANKS = 4480


def straggler_factor(sigma: float, n_ranks: int = N_RANKS, n_trials: int = 200,
                     seed: int = 12) -> float:
    """E[max of n lognormal(mu=-sigma^2/2, sigma)] — mean 1 per rank."""
    rng = np.random.default_rng(seed)
    draws = rng.lognormal(-sigma * sigma / 2.0, sigma,
                          size=(n_trials, n_ranks))
    return float(draws.max(axis=1).mean())


def sweep():
    rows = []
    for sigma in (0.0, 0.1, 0.25, 0.5, 1.0):
        factor = straggler_factor(sigma)
        rows.append({
            "sigma": sigma,
            "factor": factor,
            # topology's nominal 2.72 s in-situ stage, stretched
            "topo_insitu": 2.72 * factor,
        })
    return rows


def render(rows) -> str:
    t = TextTable(["per-rank sigma", "straggler stretch (4480 ranks)",
                   "effective topo in-situ (s)"],
                  title="Ablation: data-dependent in-situ imbalance")
    for r in rows:
        t.add_row([r["sigma"], f"{r['factor']:.2f}x",
                   round(r["topo_insitu"], 2)])
    return t.render()


def test_stretch_grows_with_heterogeneity():
    rows = sweep()
    print("\n" + render(rows))
    factors = [r["factor"] for r in rows]
    assert factors[0] == pytest.approx(1.0)
    assert all(a <= b + 1e-9 for a, b in zip(factors, factors[1:]))
    assert factors[-1] > 3.0  # sigma=1 at 4480 ranks: heavy stragglers


def test_moderate_heterogeneity_is_tolerable():
    """At the mild (sigma ~ 0.1) imbalance of near-uniform blocks, the
    stretch stays under ~1.5x — consistent with the paper reporting a
    single in-situ number per analysis."""
    rows = sweep()
    mild = [r for r in rows if r["sigma"] == 0.1][0]
    assert mild["factor"] < 1.6


def test_real_subtree_times_vary_with_block_content():
    """Merge-tree build time genuinely depends on data: feature-rich
    blocks cost more than smooth ones (same size)."""
    smooth = blob_field((16, 14, 12), n_blobs=1, seed=1)
    rough = blob_field((16, 14, 12), n_blobs=2, seed=2)
    rough = rough + 0.5 * np.random.default_rng(3).random(rough.shape)

    def time_tree(field, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            with WallTimer() as t:
                compute_merge_tree(field)
            best = min(best, t.elapsed)
        return best

    t_smooth = time_tree(smooth)
    t_rough = time_tree(rough)
    # the noisy, feature-rich block is measurably slower
    assert t_rough > t_smooth


def test_straggler_monte_carlo_benchmark(benchmark):
    factor = benchmark(straggler_factor, 0.5, 1000, 50)
    assert factor > 1.0


if __name__ == "__main__":
    print(render(sweep()))
