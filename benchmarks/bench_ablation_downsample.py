"""Ablation: down-sampling stride vs moved bytes vs image fidelity (§III).

The hybrid renderer's single tunable is the stride ("predefined or
user-specified sampling rates"). This ablation sweeps it on the flame
field and quantifies the trade-off the paper exploits at stride 8: moved
bytes fall cubically while the monitoring-quality image degrades slowly.

Run standalone:  python benchmarks/bench_ablation_downsample.py
"""

import pytest

from repro.analysis.visualization import (
    Camera,
    TransferFunction,
    downsample_decomposed,
    render_blocks_insitu,
    render_intransit,
)
from repro.util import TextTable, fmt_bytes, image_rmse
from repro.vmpi import BlockDecomposition3D

from conftest import blob_field

STRIDES = (1, 2, 4, 8)
SHAPE = (32, 32, 24)


def sweep():
    field = blob_field(SHAPE, n_blobs=8, seed=9)
    decomp = BlockDecomposition3D(SHAPE, (2, 2, 2))
    tf = TransferFunction.hot(float(field.min()), float(field.max()))
    cam = Camera(image_shape=(24, 24), azimuth_deg=30, elevation_deg=20)
    reference = render_blocks_insitu(field, decomp, cam, tf)
    rows = []
    for stride in STRIDES:
        blocks = downsample_decomposed(field, decomp, stride)
        img = render_intransit(blocks, SHAPE, cam, tf)
        rows.append({
            "stride": stride,
            "moved": sum(b.nbytes for b in blocks),
            "raw": field.nbytes,
            "rmse": image_rmse(reference, img),
        })
    return rows


def render(rows) -> str:
    t = TextTable(["stride", "moved", "reduction", "image RMSE"],
                  title="Ablation: down-sampling stride trade-off")
    for r in rows:
        t.add_row([r["stride"], fmt_bytes(r["moved"]),
                   f"{r['raw'] / r['moved']:.0f}x", round(r["rmse"], 4)])
    return t.render()


def test_bytes_fall_cubically():
    rows = sweep()
    print("\n" + render(rows))
    for r in rows:
        expected = r["raw"] / r["stride"] ** 3
        assert r["moved"] == pytest.approx(expected, rel=0.35)


def test_error_monotone_but_graceful():
    rows = sweep()
    rmses = [r["rmse"] for r in rows]
    assert all(a <= b + 1e-9 for a, b in zip(rmses, rmses[1:]))
    # even at the paper's stride 8 the image is usable for monitoring
    assert rmses[-1] < 0.4


def test_stride8_reduction_matches_paper_scale():
    """Paper scale: 98.5 GB -> ~49 MB moved, a ~3 orders-of-magnitude cut.
    Per-variable that is the stride-8 cubic factor (~512x before block
    rounding)."""
    rows = sweep()
    r8 = [r for r in rows if r["stride"] == 8][0]
    assert r8["raw"] / r8["moved"] > 200


def test_downsample_sweep_benchmark(benchmark):
    field = blob_field(SHAPE, n_blobs=8, seed=9)
    decomp = BlockDecomposition3D(SHAPE, (2, 2, 2))
    blocks = benchmark(downsample_decomposed, field, decomp, 4)
    assert len(blocks) == 8


if __name__ == "__main__":
    print(render(sweep()))
