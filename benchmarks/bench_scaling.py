"""Scaling sweep beyond the paper's two points (extension experiment).

Table I gives 4896 and 9440 cores; the calibrated model extends the sweep
across 2240-35840 simulation cores and exposes the trend §V only hints
at: the simulation step shrinks with scale, but the serial in-transit
topology stage does not — so the staging buckets needed for temporal
multiplexing grow roughly linearly with core count, until the in-transit
stage itself must be parallelised ("this can easily be made parallel as
well").

Run standalone:  python benchmarks/bench_scaling.py
"""

import pytest

from repro.core.campaign import Campaign
from repro.util import TextTable


def sweep():
    campaign = Campaign(x_factors=(8, 16, 32, 64))
    return campaign, campaign.sweep()


def render(points) -> str:
    t = TextTable(["sim cores", "sim step (s)", "in-situ frac",
                   "topo in-transit (s)", "buckets needed",
                   "moved MB/step", "ckpt write frac"],
                  title="Scaling sweep (modeled; paper points: 4480, 8960)")
    for p in points:
        t.add_row([p.n_sim_cores, round(p.simulation_time, 2),
                   f"{p.insitu_fraction:.1%}",
                   round(p.topo_intransit_time, 1), p.buckets_needed,
                   round(p.movement_mb_per_step, 1),
                   f"{p.io_fraction:.1%}"])
    return t.render()


def test_paper_points_reproduced_in_sweep():
    _c, points = sweep()
    print("\n" + render(points))
    by_cores = {p.n_sim_cores: p for p in points}
    assert by_cores[4480].simulation_time == pytest.approx(16.85, rel=0.01)
    assert by_cores[8960].simulation_time == pytest.approx(8.42, rel=0.01)


def test_strong_scaling_ideal_in_model():
    c, points = sweep()
    for eff in c.strong_scaling_efficiency(points):
        assert eff == pytest.approx(1.0, rel=0.01)


def test_serial_stage_pressure_grows_linearly():
    """Buckets needed ~ doubles with core count: the scaling wall of the
    serial in-transit formulation."""
    c, points = sweep()
    demand = c.serial_stage_pressure(points)
    assert demand == sorted(demand)
    assert demand[-1] >= 3.5 * demand[0]
    # at the paper's 4480-core point the demand (~8) fits comfortably in
    # the 256 allocated in-transit cores
    by_cores = {p.n_sim_cores: p for p in points}
    assert by_cores[4480].buckets_needed <= 16


def test_insitu_fraction_roughly_scale_invariant():
    """Per-rank in-situ work shrinks with the block, so its *fraction* of
    the (also shrinking) step stays flat — in-situ stages scale."""
    _c, points = sweep()
    fracs = [p.insitu_fraction for p in points]
    assert max(fracs) / min(fracs) < 1.5


def test_io_pressure_grows_with_scale():
    """The checkpoint write is scale-independent while the step shrinks:
    post-processing I/O takes an ever larger fraction — the I/O wall that
    motivates the whole paper."""
    _c, points = sweep()
    fracs = [p.io_fraction for p in points]
    assert fracs == sorted(fracs)
    assert fracs[-1] > 3 * fracs[0]


def test_campaign_validation():
    with pytest.raises(ValueError):
        Campaign(x_factors=(7,))  # does not divide 1600


def test_campaign_benchmark(benchmark):
    campaign = Campaign(x_factors=(16,))
    points = benchmark(campaign.sweep)
    assert len(points) == 1


if __name__ == "__main__":
    print(render(sweep()[1]))
