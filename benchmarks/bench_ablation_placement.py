"""Ablation: staging-node placement on the torus.

The paper's secondary resources live "on the same or on another machine";
on a shared torus, *where* the staging nodes sit relative to the
simulation partition sets the hop distance every intermediate-data pull
pays. This ablation compares placements on the Jaguar torus model:

* ``corner``  — staging nodes packed in one corner (the default
  contiguous-allocation outcome);
* ``center``  — staging nodes at the torus center of the sim partition;
* ``spread``  — staging nodes interleaved through the partition.

Hop counts feed the Gemini per-hop latency; for the paper's small
per-message sizes the effect is visible but second-order — consistent
with the paper not reporting placement tuning.

Run standalone:  python benchmarks/bench_ablation_placement.py
"""

import numpy as np
import pytest

from repro.machine import GeminiNetwork, TorusTopology
from repro.util import TextTable

N_SIM_NODES = 280      # 4480 ranks / 16 cores
N_STAGING = 16         # 256 in-transit cores / 16
PER_MSG_BYTES = 19_520  # one topology subtree


def placements(torus: TorusTopology):
    sim_nodes = list(range(N_SIM_NODES))
    last = torus.n_nodes - 1
    return {
        # right after the simulation partition (contiguous allocation)
        "adjacent": [N_SIM_NODES + i for i in range(N_STAGING)],
        # the far side of the torus (maximally distant region)
        "far": [torus.node_at((torus.dims[0] // 2 + i, torus.dims[1] // 2,
                               torus.dims[2] // 2)) for i in range(N_STAGING)],
        # the end of the node numbering — which the torus wraps back around
        # to the beginning, so it is *near* the sim partition again
        "wraparound-end": [last - i for i in range(N_STAGING)],
    }, sim_nodes


def mean_pull_hops(torus, sim_nodes, staging_nodes, n_samples=400, seed=4):
    rng = np.random.default_rng(seed)
    total = 0
    for _ in range(n_samples):
        src = int(rng.choice(sim_nodes))
        dst = int(rng.choice(staging_nodes))
        total += torus.hops(src, dst)
    return total / n_samples


def sweep():
    torus = TorusTopology.jaguar()
    net = GeminiNetwork()
    placed, sim_nodes = placements(torus)
    base = net.transfer_time(PER_MSG_BYTES)
    rows = []
    for name, staging in placed.items():
        hops = mean_pull_hops(torus, sim_nodes, staging)
        with_hops = net.transfer_time(PER_MSG_BYTES, hops=round(hops))
        rows.append({
            "placement": name,
            "mean_hops": hops,
            "per_pull_us": with_hops * 1e6,
            "overhead_pct": 100.0 * (with_hops - base) / base,
        })
    return rows


def render(rows) -> str:
    t = TextTable(["placement", "mean hops", "per-pull time (us)",
                   "hop overhead"],
                  title="Ablation: staging placement on the Jaguar torus")
    for r in rows:
        t.add_row([r["placement"], round(r["mean_hops"], 1),
                   round(r["per_pull_us"], 2), f"{r['overhead_pct']:.1f}%"])
    return t.render()


def test_adjacent_placement_beats_far():
    rows = sweep()
    print("\n" + render(rows))
    by = {r["placement"]: r for r in rows}
    assert by["adjacent"]["mean_hops"] < by["far"]["mean_hops"]


def test_torus_wraparound_rescues_end_placement():
    """The end of the node numbering wraps around next to the start: a
    naive 'end-of-machine' staging allocation is actually near the
    simulation partition on a torus."""
    rows = sweep()
    by = {r["placement"]: r for r in rows}
    assert by["wraparound-end"]["mean_hops"] < by["far"]["mean_hops"]


def test_hop_effect_is_second_order():
    """Even the worst placement adds only a modest fraction to a subtree
    pull — placement tuning is real but not where the paper's costs live."""
    rows = sweep()
    for r in rows:
        assert r["overhead_pct"] < 50.0


def test_hops_bounded_by_diameter():
    torus = TorusTopology.jaguar()
    placed, sim_nodes = placements(torus)
    for staging in placed.values():
        hops = mean_pull_hops(torus, sim_nodes, staging, n_samples=100)
        assert 0 <= hops <= torus.diameter


def test_placement_benchmark(benchmark):
    torus = TorusTopology.jaguar()
    placed, sim_nodes = placements(torus)
    hops = benchmark(mean_pull_hops, torus, sim_nodes, placed["adjacent"], 100)
    assert hops > 0


if __name__ == "__main__":
    print(render(sweep()))
