"""Tests for the discrete-event engine and its resources."""

import pytest

from repro.des import Engine, Interrupt, Resource, Store


class TestEngineBasics:
    def test_timeout_advances_clock(self):
        eng = Engine()
        log = []

        def proc():
            yield eng.timeout(1.5)
            log.append(eng.now)
            yield eng.timeout(2.0)
            log.append(eng.now)

        eng.process(proc())
        eng.run()
        assert log == [1.5, 3.5]

    def test_negative_delay_raises(self):
        eng = Engine()
        with pytest.raises(ValueError):
            eng.timeout(-1.0)

    def test_run_until_stops_clock(self):
        eng = Engine()

        def proc():
            yield eng.timeout(10.0)

        eng.process(proc())
        t = eng.run(until=4.0)
        assert t == 4.0
        assert eng.now == 4.0
        eng.run()
        assert eng.now == 10.0

    def test_deterministic_tie_breaking(self):
        eng = Engine()
        order = []

        def proc(tag):
            yield eng.timeout(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            eng.process(proc(tag))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_event_value_passed_to_waiter(self):
        eng = Engine()
        ev = eng.event()
        got = []

        def waiter():
            value = yield ev
            got.append(value)

        eng.process(waiter())
        eng.schedule_event(ev, 2.0, "payload")
        eng.run()
        assert got == ["payload"]
        assert eng.now == 2.0

    def test_event_double_trigger_raises(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.succeed(2)

    def test_wait_on_already_triggered_event(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed("x")
        got = []

        def waiter():
            got.append((yield ev))

        eng.process(waiter())
        eng.run()
        assert got == ["x"]

    def test_process_join(self):
        eng = Engine()
        trace = []

        def child():
            yield eng.timeout(3.0)
            return "done"

        def parent():
            result = yield eng.process(child())
            trace.append((eng.now, result))

        eng.process(parent())
        eng.run()
        assert trace == [(3.0, "done")]

    def test_run_until_done_returns_result(self):
        eng = Engine()

        def proc():
            yield eng.timeout(1.0)
            return 42

        p = eng.process(proc())
        assert eng.run_until_done(p) == 42

    def test_run_until_done_detects_deadlock(self):
        eng = Engine()
        ev = eng.event()  # never triggered

        def proc():
            yield ev

        p = eng.process(proc())
        with pytest.raises(RuntimeError, match="deadlock"):
            eng.run_until_done(p)

    def test_interrupt_raises_in_process(self):
        eng = Engine()
        seen = []

        def victim():
            try:
                yield eng.timeout(100.0)
            except Interrupt as i:
                seen.append(i.cause)

        def attacker(p):
            yield eng.timeout(1.0)
            p.interrupt("stop")

        p = eng.process(victim())
        eng.process(attacker(p))
        eng.run()
        assert seen == ["stop"]

    def test_call_at(self):
        eng = Engine()
        hits = []
        eng.call_at(5.0, lambda: hits.append(eng.now))
        eng.run()
        assert hits == [5.0]

    def test_call_at_past_raises(self):
        eng = Engine()
        eng.call_at(1.0, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.call_at(0.5, lambda: None)

    def test_yield_bad_object_raises_typeerror_in_process(self):
        eng = Engine()
        caught = []

        def proc():
            try:
                yield "not-an-event"
            except TypeError as e:
                caught.append(str(e))

        eng.process(proc())
        eng.run()
        assert caught and "unsupported" in caught[0]


class TestStore:
    def test_fifo_order(self):
        eng = Engine()
        store = Store(eng)
        got = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        eng.process(consumer())
        for i in range(3):
            store.put(i)
        eng.run()
        assert got == [0, 1, 2]

    def test_get_blocks_until_put(self):
        eng = Engine()
        store = Store(eng)
        got = []

        def consumer():
            item = yield store.get()
            got.append((item, eng.now))

        def producer():
            yield eng.timeout(4.0)
            store.put("x")

        eng.process(consumer())
        eng.process(producer())
        eng.run()
        assert got == [("x", 4.0)]

    def test_multiple_getters_fcfs(self):
        eng = Engine()
        store = Store(eng)
        got = []

        def consumer(tag):
            item = yield store.get()
            got.append((tag, item))

        eng.process(consumer("first"))
        eng.process(consumer("second"))
        eng.run()
        store.put(1)
        store.put(2)
        eng.run()
        assert got == [("first", 1), ("second", 2)]

    def test_snapshot(self):
        eng = Engine()
        store = Store(eng)
        store.put("a")
        store.put("b")
        assert store.items_snapshot() == ["a", "b"]
        assert len(store) == 2


class TestResource:
    def test_capacity_enforced(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        times = []

        def worker(tag):
            yield res.acquire()
            yield eng.timeout(2.0)
            times.append((tag, eng.now))
            res.release()

        eng.process(worker("a"))
        eng.process(worker("b"))
        eng.run()
        assert times == [("a", 2.0), ("b", 4.0)]

    def test_parallel_capacity(self):
        eng = Engine()
        res = Resource(eng, capacity=2)
        times = []

        def worker(tag):
            yield res.acquire()
            yield eng.timeout(2.0)
            times.append((tag, eng.now))
            res.release()

        for tag in "abc":
            eng.process(worker(tag))
        eng.run()
        assert times == [("a", 2.0), ("b", 2.0), ("c", 4.0)]

    def test_release_idle_raises(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        with pytest.raises(RuntimeError):
            res.release()

    def test_bad_capacity_raises(self):
        eng = Engine()
        with pytest.raises(ValueError):
            Resource(eng, capacity=0)


class TestEventCancel:
    def test_cancelled_event_ignores_succeed(self):
        eng = Engine()
        ev = eng.event()
        assert ev.cancel() is True
        ev.succeed("late")  # silent no-op
        assert not ev.triggered
        assert ev.cancelled

    def test_cancel_after_trigger_returns_false(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed(1)
        assert ev.cancel() is False
        assert ev.triggered

    def test_cancelled_timeout_never_resumes_waiter(self):
        eng = Engine()
        fired = []

        def proc():
            t = eng.timeout(1.0)
            eng.call_at(0.5, lambda: t.cancel())
            got = yield eng.any_of(t, eng.timeout(3.0))
            fired.append((eng.now, got))

        eng.process(proc())
        eng.run()
        # the cancelled 1.0 s timeout lost; the 3.0 s one won the race
        assert fired == [(3.0, (1, None))]

    def test_double_trigger_still_raises(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.succeed(2)


class TestAnyOf:
    def test_first_event_wins(self):
        eng = Engine()
        got = []

        def proc():
            result = yield eng.any_of(eng.timeout(2.0), eng.timeout(1.0))
            got.append((eng.now, result))

        eng.process(proc())
        eng.run()
        assert got == [(1.0, (1, None))]

    def test_winner_value_propagates(self):
        eng = Engine()
        ev = eng.event()
        eng.call_at(0.5, lambda: ev.succeed("payload"))
        got = []

        def proc():
            result = yield eng.any_of(eng.timeout(2.0), ev)
            got.append(result)

        eng.process(proc())
        eng.run()
        assert got == [(1, "payload")]

    def test_already_triggered_event_wins_immediately(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed("now")
        got = []

        def proc():
            result = yield eng.any_of(eng.timeout(5.0), ev)
            got.append((eng.now, result))

        eng.process(proc())
        eng.run()
        assert got == [(0.0, (1, "now"))]

    def test_losers_do_not_retrigger_race(self):
        eng = Engine()
        got = []

        def proc():
            result = yield eng.any_of(eng.timeout(1.0), eng.timeout(2.0))
            got.append(result)
            yield eng.timeout(5.0)  # outlive the losing timeout

        eng.process(proc())
        eng.run()
        assert got == [(0, None)]

    def test_empty_any_of_raises(self):
        eng = Engine()
        with pytest.raises(ValueError):
            eng.any_of()


class TestResourceCancel:
    def test_cancel_queued_request_lets_next_waiter_in(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        order = []

        def holder():
            yield res.acquire()
            yield eng.timeout(2.0)
            res.release()

        def quitter():
            grant = res.acquire()
            timeout = eng.timeout(1.0)
            idx, _ = yield eng.any_of(grant, timeout)
            if idx == 1:  # gave up waiting
                res.cancel(grant)
                order.append(("quit", eng.now))

        def patient():
            yield res.acquire()
            order.append(("got-it", eng.now))
            res.release()

        eng.process(holder())
        eng.process(quitter())
        eng.process(patient())
        eng.run()
        # quitter's abandoned slot was skipped; patient got the unit
        assert order == [("quit", 1.0), ("got-it", 2.0)]
        assert res.in_use == 0

    def test_cancel_granted_request_returns_unit(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        grant = res.acquire()

        def proc():
            yield grant

        eng.process(proc())
        eng.run()
        assert res.in_use == 1
        res.cancel(grant)  # already granted: behaves like release
        assert res.in_use == 0

    def test_capacity_never_leaks_after_cancel(self):
        eng = Engine()
        res = Resource(eng, capacity=2)
        grants = [res.acquire() for _ in range(4)]
        for g in grants[2:]:
            res.cancel(g)  # cancel the two queued ones
        eng.run()
        assert res.in_use == 2
        res.cancel(grants[0])
        res.cancel(grants[1])
        assert res.in_use == 0
