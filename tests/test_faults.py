"""Tests for the fault injector and the recovery machinery end to end.

Acceptance criteria exercised here: under every injected fault scenario
(bucket crash mid-task, pull failure, compute exception, staging fully
down) the drain event fires, every task ends completed or terminally
failed, and a crash mid-task leads to reassignment within one lease
timeout.
"""

import numpy as np
import pytest

from repro.costmodel.models import CostModel
from repro.des import Engine
from repro.faults import FaultConfig, FaultInjector, run_resilience_experiment
from repro.staging import DataSpaces
from repro.transport import DartTransport

LEASE = 5.0e-3


def _space(n_buckets=2, lease_timeout=LEASE, cost_model=None, **ds_kw):
    eng = Engine()
    tr = DartTransport(eng, pull_max_attempts=3)
    ds = DataSpaces(eng, tr, n_servers=1, lease_timeout=lease_timeout,
                    cost_model=cost_model, **ds_kw)
    ds.spawn_buckets([f"b{i}" for i in range(n_buckets)])
    return eng, tr, ds


def _assert_accounted(ds):
    acct = ds.task_accounting()
    assert acct["completed"] + acct["failed"] == acct["submitted"]
    assert acct["outstanding"] == 0


class TestFaultConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(pull_failure_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(pull_stall_rate=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(pull_stall_seconds=-1.0)
        with pytest.raises(ValueError):
            FaultConfig(crash_rate=-1.0)

    def test_crash_rate_needs_horizon(self):
        with pytest.raises(ValueError):
            FaultConfig(crash_rate=10.0)
        FaultConfig(crash_rate=10.0, horizon=1.0)  # fine

    def test_negative_crash_times_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(crash_times=(-0.5,))

    def test_inject_properties(self):
        assert not FaultConfig().injects_crashes
        assert FaultConfig(crash_times=(1.0,)).injects_crashes
        assert FaultConfig(crash_rate=1.0, horizon=1.0).injects_crashes
        assert FaultConfig(pull_failure_rate=0.1).injects_pull_faults
        assert FaultConfig(pull_stall_rate=0.1).injects_pull_faults


class TestInjectorWiring:
    def test_crash_injection_requires_lease(self):
        eng, tr, ds = _space(lease_timeout=None)
        inj = FaultInjector(eng, FaultConfig(crash_times=(1.0,)))
        with pytest.raises(ValueError, match="lease"):
            inj.attach(ds)

    def test_double_attach_rejected(self):
        eng, tr, ds = _space()
        inj = FaultInjector(eng, FaultConfig())
        inj.attach(ds)
        with pytest.raises(RuntimeError):
            inj.attach(ds)

    def test_pull_faults_allowed_without_lease(self):
        eng, tr, ds = _space(lease_timeout=None)
        FaultInjector(eng, FaultConfig(pull_failure_rate=0.5)).attach(ds)
        assert tr.pull_fault_hook is not None


class TestInjectorDeterminism:
    def _run(self, seed):
        eng, tr, ds = _space(n_buckets=2)
        inj = FaultInjector(eng, FaultConfig(
            seed=seed, crash_rate=100.0, horizon=0.05,
            pull_failure_rate=0.3)).attach(ds)
        for i in range(8):
            descs = [tr.register("sim-0", np.full(8, float(i)),
                                 nbytes=4 << 20)]
            ds.submit_grouped_result("a", i, descs,
                                     compute=lambda p: float(p[0].sum()),
                                     max_retries=3)
        ds.shutdown_buckets()
        eng.run()
        return [(f.kind, f.time, f.target) for f in inj.injected], ds

    def test_same_seed_identical_fault_sequence(self):
        seq_a, ds_a = self._run(7)
        seq_b, ds_b = self._run(7)
        assert seq_a == seq_b
        assert ds_a.task_accounting() == ds_b.task_accounting()

    def test_different_seed_different_sequence(self):
        seq_a, _ = self._run(7)
        seq_b, _ = self._run(8)
        assert seq_a != seq_b


class TestCrashRecovery:
    def test_crash_mid_pull_reassigns_within_one_lease(self):
        # Each pull takes ~10 ms (64 MiB), so both buckets are mid-task
        # when the crash lands at 4 ms; whichever bucket dies, its task is
        # requeued once the 5 ms lease expires and finishes elsewhere.
        eng, tr, ds = _space(n_buckets=2)
        payloads = [np.arange(16.0), np.arange(16.0) * 2]
        for i, payload in enumerate(payloads):
            descs = [tr.register("sim-0", payload, nbytes=64 << 20)]
            ds.submit_grouped_result("a", i, descs,
                                     compute=lambda p: float(p[0].sum()))
        inj = FaultInjector(eng, FaultConfig(crash_times=(4.0e-3,)))
        inj.attach(ds)
        ds.shutdown_buckets()
        drained = []
        ds.drained().callbacks.append(lambda _: drained.append(eng.now))
        eng.run()

        assert inj.count("crash") == 1
        recs = ds.scheduler.reassignments
        assert len(recs) == 1
        # crash -> requeue within one lease period of the assignment
        assert recs[0].requeue_time - recs[0].assign_time <= LEASE + 1e-12
        results = ds.all_results()
        assert sorted(r.value for r in results) == sorted(
            float(p.sum()) for p in payloads)
        reassigned = next(r for r in results
                          if r.task_id == recs[0].task_id)
        assert reassigned.bucket != recs[0].dead_bucket
        assert drained  # drain event fired despite the crash
        _assert_accounted(ds)
        assert len(tr.registry) == 0  # retained regions released on success

    def test_crash_idle_bucket_harmless(self):
        eng, tr, ds = _space(n_buckets=2)
        descs = [tr.register("sim-0", np.ones(4))]
        ds.submit_grouped_result("a", 0, descs,
                                 compute=lambda p: float(p[0].sum()))
        # crash long after the (fast) task finished
        FaultInjector(eng, FaultConfig(crash_times=(1.0,))).attach(ds)
        ds.shutdown_buckets()
        eng.run()
        assert ds.scheduler.reassignments == []
        assert len(ds.all_results()) == 1
        _assert_accounted(ds)

    def test_supervisor_restart_restores_pool(self):
        eng, tr, ds = _space(n_buckets=2, bucket_restart_delay=1.0e-3,
                             max_bucket_restarts=2)
        descs = [tr.register("sim-0", np.ones(4), nbytes=64 << 20)]
        ds.submit_grouped_result("a", 0, descs,
                                 compute=lambda p: float(p[0].sum()))
        FaultInjector(eng, FaultConfig(crash_times=(2.0e-3,))).attach(ds)
        ds.shutdown_buckets()
        eng.run()
        assert ds.restarts_used == 1
        assert ds.live_buckets() == 2  # replacement joined the pool
        assert any("~r" in b.name for b in ds.buckets)
        assert len(ds.all_results()) == 1
        _assert_accounted(ds)

    def test_crash_unknown_bucket_raises(self):
        eng, tr, ds = _space()
        with pytest.raises(KeyError):
            ds.crash_bucket("nope")


class TestPullFaults:
    def test_pull_failures_retry_with_backoff(self):
        eng, tr, ds = _space(n_buckets=1, lease_timeout=None)
        inj = FaultInjector(eng, FaultConfig(pull_failure_rate=1.0))
        # fail the first two attempts deterministically, then succeed
        original = inj._pull_hook

        def two_failures(desc, dest, attempt):
            if attempt <= 2:
                return original(desc, dest, attempt)
            return 0.0

        inj.attach(ds)
        tr.pull_fault_hook = two_failures
        descs = [tr.register("sim-0", np.ones(4))]
        ds.submit_grouped_result("a", 0, descs,
                                 compute=lambda p: float(p[0].sum()))
        ds.shutdown_buckets()
        eng.run()
        fails = [f for f in inj.injected if f.kind == "pull_failure"]
        assert [f.detail["attempt"] for f in fails] == [1, 2]
        # exponential backoff between attempts: base, then base * factor
        gap1 = fails[1].time - fails[0].time
        assert gap1 == pytest.approx(tr.pull_backoff_base)
        assert len(ds.all_results()) == 1
        _assert_accounted(ds)

    def test_pull_exhaustion_fails_task_terminally(self):
        eng, tr, ds = _space(n_buckets=1, lease_timeout=None)
        FaultInjector(eng, FaultConfig(pull_failure_rate=1.0)).attach(ds)
        descs = [tr.register("sim-0", np.ones(4))]
        task = ds.submit_grouped_result("a", 0, descs,
                                        compute=lambda p: float(p[0].sum()))
        ds.shutdown_buckets()
        drained = []
        ds.drained().callbacks.append(lambda _: drained.append(eng.now))
        eng.run()
        assert task.task_id in ds.failed_task_ids()
        assert drained
        _assert_accounted(ds)
        assert ds.live_buckets() == 1  # pull faults never kill the bucket
        assert len(tr.registry) == 0

    def test_stall_slows_pull_but_completes(self):
        def run(stall_rate):
            eng, tr, ds = _space(n_buckets=1, lease_timeout=None)
            FaultInjector(eng, FaultConfig(
                pull_stall_rate=stall_rate,
                pull_stall_seconds=2.0e-3)).attach(ds)
            descs = [tr.register("sim-0", np.ones(4))]
            ds.submit_grouped_result("a", 0, descs,
                                     compute=lambda p: float(p[0].sum()))
            ds.shutdown_buckets()
            eng.run()
            return ds.all_results()[0].finish_time

        assert run(1.0) >= run(0.0) + 2.0e-3


class TestDegradedMode:
    def _kill_all(self, n_buckets):
        return FaultConfig(crash_times=tuple(1.0e-4 * (i + 1)
                                             for i in range(n_buckets)))

    def test_staging_fully_down_falls_back_insitu(self):
        eng, tr, ds = _space(n_buckets=2)
        payloads = [np.full(8, float(i)) for i in range(4)]
        for i, p in enumerate(payloads):
            descs = [tr.register("sim-0", p, nbytes=64 << 20)]
            ds.submit_grouped_result("a", i, descs,
                                     compute=lambda ps: float(ps[0].sum()))
        FaultInjector(eng, self._kill_all(2)).attach(ds)
        ds.shutdown_buckets()
        drained = []
        ds.drained().callbacks.append(lambda _: drained.append(eng.now))
        eng.run()
        assert ds.degraded
        assert ds.live_buckets() == 0
        results = ds.all_results()
        assert sorted(r.value for r in results) == [
            float(p.sum()) for p in payloads]
        assert all(r.bucket == "insitu-fallback" for r in ds.fallback_results)
        assert ds.fallback_results  # at least some ran degraded
        assert drained
        _assert_accounted(ds)
        assert len(tr.registry) == 0

    def test_degraded_mode_charges_insitu_price(self):
        model = CostModel(name="m", rates={"fast-intransit": 1.0e-9,
                                           "slow-insitu": 1.0e-6})
        eng, tr, ds = _space(n_buckets=1, cost_model=model)
        descs = [tr.register("sim-0", np.ones(8))]
        ds.submit_grouped_result("a", 0, descs,
                                 compute=lambda p: float(p[0].sum()),
                                 cost_op="fast-intransit",
                                 cost_elements=10**6,
                                 insitu_cost_op="slow-insitu")
        ds.crash_bucket("b0")
        ds.shutdown_buckets()
        eng.run()
        assert ds.degraded
        r = ds.all_results()[0]
        # charged at the in-situ rate: 1e6 elements * 1e-6 s/element = 1 s
        assert r.finish_time >= 1.0
        _assert_accounted(ds)

    def test_fallback_compute_exception_is_contained(self):
        eng, tr, ds = _space(n_buckets=1)

        def boom(payloads):
            raise RuntimeError("bad analysis")

        descs = [tr.register("sim-0", np.ones(4))]
        task = ds.submit_grouped_result("a", 0, descs, compute=boom,
                                        max_retries=0)
        ds.crash_bucket("b0")
        ds.shutdown_buckets()
        eng.run()
        assert task.task_id in ds.failed_task_ids()
        _assert_accounted(ds)
        assert len(tr.registry) == 0


class TestResilienceExperiment:
    def test_baseline_clean_run(self):
        r = run_resilience_experiment(n_tasks=8, n_buckets=2)
        assert r.accounting["completed"] == 8
        assert r.all_accounted and r.drained and r.values_ok
        assert r.retries == 0 and r.reassignments == 0

    def test_every_scenario_accounts_all_tasks(self):
        scenarios = [
            (FaultConfig(seed=3, pull_failure_rate=0.3), {}),
            (FaultConfig(seed=3, crash_rate=100.0, horizon=0.05), {}),
            (FaultConfig(seed=3, crash_rate=100.0, horizon=0.05),
             {"bucket_restart_delay": 2.0e-3, "max_bucket_restarts": 4}),
            (FaultConfig(seed=3, crash_times=(0.001, 0.002)),
             {"n_buckets": 2}),
        ]
        for cfg, extra in scenarios:
            kw = {"n_tasks": 12, "n_buckets": 2, **extra}
            r = run_resilience_experiment(cfg, **kw)
            assert r.all_accounted, (cfg, r.accounting)
            assert r.values_ok, cfg

    def test_report_drained_property(self):
        r = run_resilience_experiment(n_tasks=4, n_buckets=2)
        assert r.drained
