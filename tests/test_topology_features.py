"""Tests for persistence simplification, segmentation (Fig. 3), and
feature tracking (Fig. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.topology import (
    compute_merge_tree,
    persistence_pairs,
    segment_superlevel,
    simplify,
    track_features,
)
from repro.analysis.topology.segmentation import Segmentation
from repro.analysis.topology.simplify import (
    representative_maxima,
    surviving_maximum_map,
)
from repro.analysis.topology.tracking import jaccard, overlap_matrix


def _two_blob_field(shape=(16, 16, 8), amp2=0.8):
    x, y, z = np.mgrid[0:shape[0], 0:shape[1], 0:shape[2]].astype(float)
    f = (np.exp(-((x - 4) ** 2 + (y - 4) ** 2 + (z - 4) ** 2) / 6.0)
         + amp2 * np.exp(-((x - 12) ** 2 + (y - 12) ** 2 + (z - 4) ** 2) / 6.0))
    return f


def _moving_blob(shape, center, width=2.0, amp=1.0):
    coords = np.stack(np.mgrid[[slice(0, s) for s in shape]]).astype(float)
    d2 = sum((coords[a] - center[a]) ** 2 for a in range(3))
    return amp * np.exp(-d2 / (2 * width * width))


class TestPersistence:
    def test_two_peaks_pairing(self):
        f = np.array([5.0, 2.0, 1.0, 2.0, 4.0])
        tree, _ = compute_merge_tree(f)
        pairs = persistence_pairs(tree)
        by_max = {p.maximum: p for p in pairs}
        assert by_max[0].saddle is None                 # global max
        assert by_max[0].persistence == float("inf")
        assert by_max[4].saddle == 2                    # lower peak dies at saddle
        assert by_max[4].persistence == pytest.approx(3.0)

    def test_every_leaf_paired_exactly_once(self):
        f = np.random.default_rng(30).random((6, 6, 6))
        tree, _ = compute_merge_tree(f)
        pairs = persistence_pairs(tree)
        assert sorted(p.maximum for p in pairs) == tree.leaves()

    def test_persistence_nonnegative(self):
        f = np.random.default_rng(31).random((5, 5, 5))
        tree, _ = compute_merge_tree(f)
        for p in persistence_pairs(tree):
            assert p.persistence >= 0.0

    def test_elder_rule_survivor_is_higher(self):
        """At every saddle the surviving max is higher than the dying ones."""
        f = np.random.default_rng(32).random((6, 5, 4))
        tree, _ = compute_merge_tree(f)
        rep = representative_maxima(tree)
        for p in persistence_pairs(tree):
            if p.saddle is None:
                continue
            survivor = rep[p.saddle]
            assert (tree.value[survivor], survivor) > (tree.value[p.maximum], p.maximum)

    def test_pairs_sorted_by_persistence(self):
        f = np.random.default_rng(33).random((6, 6, 4))
        tree, _ = compute_merge_tree(f)
        pers = [p.persistence for p in persistence_pairs(tree)]
        assert pers == sorted(pers, reverse=True)


class TestSimplify:
    def test_removes_weak_peak(self):
        f = _two_blob_field(amp2=0.3)  # weak second blob
        tree, _ = compute_merge_tree(f)
        assert len(tree.reduced().leaves()) >= 2
        simple = simplify(tree, threshold=0.5)
        assert len(simple.leaves()) == 1

    def test_keeps_strong_peaks(self):
        f = _two_blob_field(amp2=0.8)
        tree, _ = compute_merge_tree(f)
        simple = simplify(tree, threshold=0.1)
        assert len(simple.leaves()) == 2

    def test_threshold_zero_keeps_all(self):
        f = np.random.default_rng(34).random((5, 5, 5))
        tree, _ = compute_merge_tree(f)
        simple = simplify(tree, 0.0)
        assert sorted(simple.leaves()) == tree.reduced().leaves()

    def test_huge_threshold_leaves_global_max(self):
        f = np.random.default_rng(35).random((6, 6, 6))
        tree, _ = compute_merge_tree(f)
        simple = simplify(tree, 1e9)
        assert len(simple.leaves()) == 1
        gmax = max(tree.leaves(), key=lambda n: (tree.value[n], n))
        assert simple.leaves() == [gmax]

    def test_negative_threshold_raises(self):
        f = np.zeros((2, 2, 2))
        tree, _ = compute_merge_tree(f)
        with pytest.raises(ValueError):
            simplify(tree, -1.0)

    def test_monotone_in_threshold(self):
        """Higher thresholds never yield more features."""
        f = np.random.default_rng(36).random((8, 8, 6))
        tree, _ = compute_merge_tree(f)
        counts = [len(simplify(tree, t).leaves())
                  for t in (0.0, 0.1, 0.3, 0.6, 1.1)]
        assert counts == sorted(counts, reverse=True)

    def test_result_is_valid_tree(self):
        f = np.random.default_rng(37).random((7, 6, 5))
        tree, _ = compute_merge_tree(f)
        simple = simplify(tree, 0.2)
        simple.validate()

    def test_surviving_map_identity_when_zero(self):
        f = np.random.default_rng(38).random((5, 5, 4))
        tree, _ = compute_merge_tree(f)
        m = surviving_maximum_map(tree, 0.0)
        assert all(k == v for k, v in m.items())

    def test_surviving_map_targets_survive(self):
        f = np.random.default_rng(39).random((6, 6, 6))
        tree, _ = compute_merge_tree(f)
        m = surviving_maximum_map(tree, 0.3)
        kept = set(simplify(tree, 0.3).leaves())
        assert set(m.values()) <= kept


class TestSegmentation:
    def test_two_blob_labels(self):
        f = _two_blob_field()
        seg = segment_superlevel(f, threshold=0.3)
        assert seg.n_features == 2
        # the two blob centers carry different labels
        assert seg.labels[4, 4, 4] != seg.labels[12, 12, 4]
        assert seg.labels[4, 4, 4] >= 0
        # far corner is background
        assert seg.labels[0, 15, 7] == -1

    def test_low_threshold_merges_components(self):
        f = _two_blob_field()
        seg = segment_superlevel(f, threshold=1e-4)
        assert seg.n_features == 1

    def test_labels_are_representative_maxima(self):
        f = _two_blob_field()
        tree, arc = compute_merge_tree(f)
        seg = segment_superlevel(f, 0.3, tree=tree, vertex_arc=arc)
        for label in seg.features:
            assert label in tree.leaves()

    def test_components_match_bruteforce_connectivity(self):
        """Feature regions == 6-connected components of the superlevel set."""
        from scipy import ndimage
        f = np.random.default_rng(40).random((8, 8, 8))
        tau = 0.7
        seg = segment_superlevel(f, tau)
        ref_labels, n_ref = ndimage.label(f >= tau)
        assert seg.n_features == n_ref
        # bijection between label sets
        for ref_id in range(1, n_ref + 1):
            ours = np.unique(seg.labels[ref_labels == ref_id])
            assert len(ours) == 1 and ours[0] >= 0

    def test_persistence_merging_reduces_feature_count(self):
        f = _two_blob_field(amp2=0.4) + 0.02 * np.random.default_rng(41).random((16, 16, 8))
        plain = segment_superlevel(f, 0.25)
        merged = segment_superlevel(f, 0.25, min_persistence=0.5)
        assert merged.n_features <= plain.n_features
        # same cells are foreground either way
        np.testing.assert_array_equal(plain.labels >= 0, merged.labels >= 0)

    def test_feature_summaries(self):
        f = _two_blob_field()
        seg = segment_superlevel(f, 0.3)
        for feat in seg.features.values():
            assert feat.n_cells > 0
            assert feat.max_value >= 0.3
            assert len(feat.centroid) == 3

    def test_mask_roundtrip(self):
        f = _two_blob_field()
        seg = segment_superlevel(f, 0.3)
        label = next(iter(seg.features))
        assert seg.mask(label).sum() == seg.features[label].n_cells
        with pytest.raises(KeyError):
            seg.mask(-5)

    def test_threshold_above_max_gives_empty(self):
        f = _two_blob_field()
        seg = segment_superlevel(f, f.max() + 1.0)
        assert seg.n_features == 0
        assert (seg.labels == -1).all()

    @given(st.integers(0, 1000), st.floats(0.2, 0.9))
    @settings(max_examples=20, deadline=None)
    def test_property_label_cells_above_threshold(self, seed, tau):
        f = np.random.default_rng(seed).random((5, 6, 4))
        seg = segment_superlevel(f, tau)
        np.testing.assert_array_equal(seg.labels >= 0, f >= tau)


class TestTracking:
    def _moving_sequence(self, n_steps=5, shape=(20, 12, 8)):
        """A blob moving +x by one cell per step (a Fig.-1 style feature)."""
        segs = []
        for t in range(n_steps):
            f = _moving_blob(shape, (4.0 + t, 6.0, 4.0))
            segs.append(segment_superlevel(f, 0.3))
        return segs

    def test_overlap_matrix_diagonal_for_identical(self):
        seg = self._moving_sequence(1)[0]
        om = overlap_matrix(seg, seg)
        for (a, b), count in om.items():
            assert a == b
            assert count == seg.features[a].n_cells

    def test_overlap_matrix_shape_mismatch(self):
        a = self._moving_sequence(1)[0]
        f = _moving_blob((4, 4, 4), (2, 2, 2))
        b = segment_superlevel(f, 0.3)
        with pytest.raises(ValueError):
            overlap_matrix(a, b)

    def test_single_track_through_motion(self):
        """The moving blob is one feature tracked across all 5 steps."""
        segs = self._moving_sequence(5)
        tracks = track_features(segs)
        long_tracks = [t for t in tracks if t.lifetime == 5]
        assert len(long_tracks) == 1
        assert long_tracks[0].steps == [0, 1, 2, 3, 4]

    def test_fig1_overlap_decays_with_lag(self):
        """Fig. 1's point: consecutive steps overlap strongly; step 1 vs
        step 5 overlap is smaller but nonzero (trackable only at high
        temporal resolution)."""
        segs = self._moving_sequence(5)
        track = [t for t in track_features(segs) if t.lifetime == 5][0]
        j_consecutive = jaccard(segs[0], track.labels[0], segs[1], track.labels[1])
        j_first_last = jaccard(segs[0], track.labels[0], segs[4], track.labels[4])
        assert j_consecutive > j_first_last > 0.0

    def test_coarse_sampling_loses_feature(self):
        """Sampling every 8th step: the blob has moved past itself — no
        overlap, the track breaks (the paper's stride-400 failure mode)."""
        shape = (20, 12, 8)
        seg_t0 = segment_superlevel(_moving_blob(shape, (4.0, 6.0, 4.0)), 0.3)
        seg_t8 = segment_superlevel(_moving_blob(shape, (12.0, 6.0, 4.0)), 0.3)
        tracks = track_features([seg_t0, seg_t8])
        assert all(t.lifetime == 1 for t in tracks)
        assert len(tracks) == 2

    def test_birth_and_death(self):
        shape = (16, 10, 6)
        empty = segment_superlevel(np.zeros(shape), 0.5)
        blob = segment_superlevel(_moving_blob(shape, (8.0, 5.0, 3.0)), 0.3)
        tracks = track_features([empty, blob, blob, empty])
        assert len(tracks) == 1
        assert tracks[0].birth == 1 and tracks[0].death == 2

    def test_two_features_tracked_independently(self):
        shape = (24, 12, 8)
        segs = []
        for t in range(3):
            f = (_moving_blob(shape, (4.0 + t, 6.0, 4.0))
                 + _moving_blob(shape, (18.0 - t, 6.0, 4.0)))
            segs.append(segment_superlevel(f, 0.3))
        tracks = track_features(segs)
        assert len([t for t in tracks if t.lifetime == 3]) == 2

    def test_custom_steps_recorded(self):
        segs = self._moving_sequence(3)
        tracks = track_features(segs, steps=[100, 110, 120])
        t = [t for t in tracks if t.lifetime == 3][0]
        assert t.steps == [100, 110, 120]

    def test_validation(self):
        segs = self._moving_sequence(2)
        with pytest.raises(ValueError):
            track_features(segs, steps=[0])
        with pytest.raises(ValueError):
            track_features(segs, min_overlap_cells=0)
