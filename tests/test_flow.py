"""Tests for causal flow tracing: recording, propagation, the causal
critical path, the tag index, and the Chrome/JSONL flow exports."""

import json

import pytest

from repro.core import ExperimentConfig, ScaledExperiment
from repro.obs import (
    NULL_TRACER,
    Tracer,
    causal_critical_path,
    critical_path,
    lane_summary,
    load_trace,
    load_trace_jsonl,
    reconcile_paths,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.flow import (
    EDGE_GRANT,
    EDGE_NOTIFY,
    EDGE_QUEUE,
    EDGE_RETRY,
    EDGE_SERVICE,
    FlowContext,
)


def _traced_schedule(n_steps=4, n_buckets=4):
    exp = ScaledExperiment(ExperimentConfig.paper_4896())
    tracer, result, expected = exp.traced_schedule(n_steps=n_steps,
                                                   n_buckets=n_buckets)
    return tracer.trace


class TestFlowRecording:
    def test_flow_begin_step_end_chains(self):
        tracer = Tracer()
        src = tracer.add_span("produce", lane="sim", t_start=0.0, t_end=1.0,
                              stage="insitu")
        flow = tracer.flow_begin("task", src_span=src, t=1.0, step=0)
        assert isinstance(flow, FlowContext)
        assert flow.src_span_id == src.span_id
        assert src.flow_out == [flow.flow_id]
        assert not flow.closed

        tracer.flow_step(flow, EDGE_NOTIFY, "scheduler", t=1.1)
        tracer.flow_step(flow, EDGE_QUEUE, "scheduler", t=1.5)
        wire = tracer.add_span("pull", lane="bucket", t_start=1.5, t_end=2.0,
                               stage="movement")
        tracer.flow_through(flow, EDGE_GRANT, wire)
        dst = tracer.add_span("consume", lane="bucket", t_start=2.0,
                              t_end=5.0, stage="intransit")
        tracer.flow_end(flow, EDGE_SERVICE, dst)

        assert flow.closed and flow.dst_span_id == dst.span_id
        assert wire.flow_in == [flow.flow_id]
        assert wire.flow_out == [flow.flow_id]
        assert dst.flow_in == [flow.flow_id]
        assert flow.span_ids() == [src.span_id, wire.span_id, dst.span_id]
        assert [h.kind for h in flow.hops] == [
            EDGE_NOTIFY, EDGE_QUEUE, EDGE_GRANT, EDGE_SERVICE]

    def test_edge_totals_naive_hop_gaps(self):
        tracer = Tracer()
        flow = tracer.flow_begin("task", t=0.0)
        tracer.flow_step(flow, EDGE_NOTIFY, "s", t=0.5)
        tracer.flow_step(flow, EDGE_QUEUE, "s", t=2.0)
        totals = flow.edge_totals()
        assert totals[EDGE_NOTIFY] == pytest.approx(0.5)
        assert totals[EDGE_QUEUE] == pytest.approx(1.5)

    def test_null_tracer_flow_methods_are_inert(self):
        flow = NULL_TRACER.flow_begin("task")
        assert flow is None
        assert NULL_TRACER.flow_step(None, EDGE_QUEUE, "l") is None
        assert NULL_TRACER.flow_through(None, EDGE_GRANT, None) is None
        assert NULL_TRACER.flow_end(None, EDGE_SERVICE, None) is None
        assert NULL_TRACER.trace.flows == []

    def test_none_flow_short_circuits_on_real_tracer(self):
        tracer = Tracer()
        assert tracer.flow_step(None, EDGE_QUEUE, "l") is None
        assert tracer.flow_end(None, EDGE_SERVICE, None) is None
        assert tracer.trace.flows == []


class TestFlowPropagation:
    def test_traced_schedule_records_one_flow_per_task(self):
        trace = _traced_schedule()
        # 4 steps x 3 hybrid analyses
        assert len(trace.flows) == 12
        assert all(f.closed for f in trace.flows)
        smap = trace.span_map()
        for flow in trace.flows:
            chain = flow.span_ids()
            assert len(chain) >= 3  # insitu src, wire, intransit dst
            assert smap[chain[0]].stage == "insitu"
            assert smap[chain[-1]].stage == "intransit"
            kinds = [h.kind for h in flow.hops]
            assert kinds[0] == EDGE_NOTIFY
            assert EDGE_QUEUE in kinds and EDGE_SERVICE in kinds
            # hop times are monotone along the chain
            times = [h.t for h in flow.hops]
            assert times == sorted(times)

    def test_flows_carry_task_identity_tags(self):
        trace = _traced_schedule()
        for flow in trace.flows:
            assert "task_id" in flow.tags
            assert "analysis" in flow.tags
            assert "step" in flow.tags

    def test_retry_hop_recorded_on_pull_backoff(self):
        from repro.faults import FaultConfig, run_resilience_experiment
        from repro.obs import tracing

        with tracing() as tracer:
            run_resilience_experiment(
                config=FaultConfig(pull_failure_rate=0.5, seed=3),
                n_tasks=8, n_buckets=2, pull_backoff_base=1e-3)
        retry_hops = [h for f in tracer.trace.flows for h in f.hops
                      if h.kind == EDGE_RETRY]
        assert retry_hops, "injected pull faults must leave retry hops"
        # transport-level retry hops carry their backoff delay
        assert any(h.tags.get("backoff", 0) > 0 for h in retry_hops)


class TestCausalCriticalPath:
    def test_agrees_with_heuristic_on_clean_schedule(self):
        trace = _traced_schedule()
        causal = causal_critical_path(trace)
        heuristic = critical_path(trace)
        assert causal.method == "causal"
        assert heuristic.method == "heuristic"
        # Acceptance: recorded causality explains at least as much time
        # as the guessed path.
        assert causal.makespan >= heuristic.makespan - 1e-9
        assert causal.spans[-1].t_end == pytest.approx(
            heuristic.spans[-1].t_end)

    def test_reconcile_paths_reports_agreement(self):
        trace = _traced_schedule()
        rec = reconcile_paths(trace)
        assert rec.ok
        text = rec.table()
        assert "causal" in text and "heuristic" in text

    def test_falls_back_to_heuristic_without_flows(self):
        tracer = Tracer()
        tracer.add_span("a", lane="l", t_start=0.0, t_end=1.0,
                        stage="simulation")
        cp = causal_critical_path(tracer.trace)
        assert cp.method == "heuristic"

    def test_prefers_recorded_producer_over_time_order(self):
        # Two producers end before the consumer starts; the flow names the
        # *earlier* one as the true cause. The heuristic would pick the
        # later-ending lane predecessor; the causal path must not.
        tracer = Tracer()
        true_src = tracer.add_span("true-src", lane="a", t_start=0.0,
                                   t_end=2.0, stage="insitu")
        tracer.add_span("red-herring", lane="b", t_start=0.0, t_end=3.9,
                        stage="insitu")
        flow = tracer.flow_begin("task", src_span=true_src, t=2.0)
        dst = tracer.add_span("consume", lane="c", t_start=4.0, t_end=6.0,
                              stage="intransit")
        tracer.flow_end(flow, EDGE_SERVICE, dst)
        causal = causal_critical_path(tracer.trace)
        names = [s.name for s in causal.spans]
        assert names == ["true-src", "consume"]


class TestAnalysisEdgeCases:
    def test_empty_trace(self):
        empty = Tracer().trace
        assert critical_path(empty).spans == []
        assert causal_critical_path(empty).spans == []
        assert critical_path(empty).makespan == 0.0
        text = lane_summary(empty)
        assert "trace lanes" in text

    def test_single_span(self):
        tracer = Tracer()
        tracer.add_span("only", lane="l", t_start=1.0, t_end=4.0,
                        stage="simulation")
        for cp in (critical_path(tracer.trace),
                   causal_critical_path(tracer.trace)):
            assert [s.name for s in cp.spans] == ["only"]
            assert cp.makespan == pytest.approx(3.0)
            assert cp.bounding_stage == "simulation"

    def test_no_stage_tagged_spans(self):
        tracer = Tracer()
        tracer.add_span("untagged", lane="l", t_start=0.0, t_end=2.0)
        assert critical_path(tracer.trace).spans == []
        assert causal_critical_path(tracer.trace).spans == []
        # lane_summary still counts the span
        assert "untagged" not in lane_summary(tracer.trace)  # names elided
        assert "l" in lane_summary(tracer.trace)

    def test_lane_summary_open_spans_only(self):
        tracer = Tracer()
        tracer.begin("open", lane="l")
        text = lane_summary(tracer.trace)
        assert "l" in text  # lane listed even with zero closed spans


class TestTagIndex:
    def test_index_matches_linear_scan(self):
        trace = _traced_schedule()
        indexed = trace.spans_with(stage="intransit")
        linear = [s for s in trace.closed_spans()
                  if s.tags.get("stage") == "intransit"]
        assert indexed == linear
        both = trace.spans_with(stage="intransit", step=0)
        assert both == [s for s in linear if s.tags.get("step") == 0]

    def test_index_invalidated_by_new_spans(self):
        tracer = Tracer()
        tracer.add_span("a", lane="l", t_start=0.0, t_end=1.0, stage="x")
        assert len(tracer.trace.spans_with(stage="x")) == 1
        tracer.add_span("b", lane="l", t_start=1.0, t_end=2.0, stage="x")
        assert len(tracer.trace.spans_with(stage="x")) == 2

    def test_index_invalidated_by_end(self):
        tracer = Tracer()
        span = tracer.begin("w", lane="l", stage="x")
        assert tracer.trace.spans_with(stage="x") == []
        tracer.end(span)
        assert tracer.trace.spans_with(stage="x") == [span]

    def test_unhashable_query_value_falls_back(self):
        tracer = Tracer()
        tracer.add_span("a", lane="l", t_start=0.0, t_end=1.0, key=[1, 2])
        assert tracer.trace.spans_with(key=[1, 2])  # no TypeError

    def test_no_tags_returns_all_closed(self):
        trace = _traced_schedule()
        assert trace.spans_with() == trace.closed_spans()


class TestFlowExport:
    def test_chrome_doc_carries_flow_events(self):
        trace = _traced_schedule()
        doc = to_chrome_trace(trace)
        flow_events = [e for e in doc["traceEvents"]
                       if e.get("ph") in ("s", "t", "f")]
        assert flow_events
        ids = {e["id"] for e in flow_events}
        assert len(ids) == len(trace.flows)
        by_ph = {ph: sum(1 for e in flow_events if e["ph"] == ph)
                 for ph in ("s", "t", "f")}
        assert by_ph["s"] == by_ph["f"] == len(ids)
        assert all(e.get("bp") == "e" for e in flow_events
                   if e["ph"] == "f")
        assert validate_chrome_trace(doc) == []

    def test_validator_flags_flow_event_without_id(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "B", "ts": 0, "pid": 1, "tid": 0},
            {"name": "x", "ph": "E", "ts": 10, "pid": 1, "tid": 0},
            {"name": "flow:task", "ph": "s", "ts": 5, "pid": 1, "tid": 0},
        ]}
        assert any("no 'id'" in p for p in validate_chrome_trace(doc))

    def test_validator_flags_unpaired_flow(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "B", "ts": 0, "pid": 1, "tid": 0},
            {"name": "x", "ph": "E", "ts": 10, "pid": 1, "tid": 0},
            {"name": "flow:task", "ph": "s", "ts": 5, "pid": 1, "tid": 0,
             "id": 1},
        ]}
        assert any("no finish" in p for p in validate_chrome_trace(doc))

    def test_validator_flags_finish_before_start(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "B", "ts": 0, "pid": 1, "tid": 0},
            {"name": "x", "ph": "E", "ts": 10, "pid": 1, "tid": 0},
            {"name": "f", "ph": "f", "ts": 2, "pid": 1, "tid": 0, "id": 9,
             "bp": "e"},
            {"name": "f", "ph": "s", "ts": 8, "pid": 1, "tid": 0, "id": 9},
        ]}
        assert any("before it starts" in p
                   for p in validate_chrome_trace(doc))

    def test_validator_flags_unbound_flow_event(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "B", "ts": 0, "pid": 1, "tid": 0},
            {"name": "x", "ph": "E", "ts": 10, "pid": 1, "tid": 0},
            {"name": "f", "ph": "s", "ts": 50, "pid": 1, "tid": 0, "id": 2},
            {"name": "f", "ph": "f", "ts": 60, "pid": 1, "tid": 0, "id": 2,
             "bp": "e"},
        ]}
        problems = validate_chrome_trace(doc)
        assert any("binds to no slice" in p for p in problems)

    def test_jsonl_round_trip_preserves_flows(self, tmp_path):
        trace = _traced_schedule()
        path = tmp_path / "t.jsonl"
        write_jsonl(str(path), trace)
        back = load_trace_jsonl(str(path))
        assert len(back.spans) == len(trace.spans)
        assert len(back.flows) == len(trace.flows)
        assert len(back.instants) == len(trace.instants)
        for a, b in zip(trace.flows, back.flows):
            assert a.flow_id == b.flow_id
            assert a.span_ids() == b.span_ids()
            assert [h.kind for h in a.hops] == [h.kind for h in b.hops]
            assert [h.t for h in a.hops] == pytest.approx(
                [h.t for h in b.hops])

    def test_load_trace_sniffs_both_formats(self, tmp_path):
        trace = _traced_schedule()
        chrome = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        write_chrome_trace(str(chrome), trace)
        write_jsonl(str(jsonl), trace)
        from_chrome = load_trace(str(chrome))
        from_jsonl = load_trace(str(jsonl))
        assert len(from_chrome.spans) == len(trace.closed_spans())
        assert from_chrome.flows == []  # chrome drops hop fidelity
        assert len(from_jsonl.flows) == len(trace.flows)
        # stage totals survive either way
        assert from_chrome.stage_totals() == pytest.approx(
            trace.stage_totals())

    def test_jsonl_flow_line_shape(self, tmp_path):
        trace = _traced_schedule()
        path = tmp_path / "t.jsonl"
        write_jsonl(str(path), trace)
        flow_lines = [json.loads(line) for line in path.read_text().splitlines()
                      if '"type": "flow"' in line]
        assert flow_lines
        first = flow_lines[0]
        assert {"flow_id", "kind", "t_begin", "src_span_id", "dst_span_id",
                "hops", "tags"} <= set(first)
        assert all({"t", "kind", "lane"} <= set(h) for h in first["hops"])
