"""Bit-exact equivalence of the numpy backend against the reference.

Every kernel behind the ``repro.backend`` seam must produce *identical*
outputs under every backend — not approximately equal: merge trees,
moment accumulators, collective folds, and DES dispatch orders are
compared with ``==`` / ``np.array_equal``, never with tolerances. The
suites here are parametrized over ``["reference", "numpy"]`` so the
dispatch path itself is exercised, and the regime gates of the numpy
backend are monkeypatched to force both its vectorized and fallback
paths through the same assertions.
"""

import heapq
import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.statistics.autocorrelation import (
    AutocorrelationLearner,
    _autocorr_cross_sums,
    _autocorr_merge,
)
from repro.analysis.statistics.contingency import _bivariate_histogram
from repro.analysis.statistics.moments import (
    MomentAccumulator,
    learn_blocks,
    merge_accumulators,
    merge_packed_moments,
    moment_merge_op,
)
from repro.analysis.topology.distributed import distributed_merge_tree
from repro.analysis.topology.merge_tree import compute_merge_tree
from repro.analysis.topology.stream_merge import compute_merge_tree_graph
from repro.backend import (
    available_backends,
    get_backend,
    kernel_impl,
    kernel_names,
    known_backends,
    register_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.backend import numpy_backend as nb
from repro.backend.registry import _warned
from repro.des import Engine
from repro.des.engine import HeapEventQueue
from repro.vmpi import BlockDecomposition3D

BACKENDS = ["reference", "numpy"]


@pytest.fixture(autouse=True)
def _clean_backend_state(monkeypatch):
    """Isolate override/env state so suites cannot leak into each other."""
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    previous = set_backend(None)
    yield
    set_backend(previous)


def both(name):
    """(reference_impl, numpy_impl) for one kernel."""
    return kernel_impl(name, "reference"), kernel_impl(name, "numpy")


def assert_trees_equal(a, b):
    assert a.value == b.value
    assert a.parent == b.parent


# ---------------------------------------------------------------------------
# registry semantics
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_both_backends_known_and_available(self):
        assert {"reference", "numpy"} <= set(known_backends())
        assert {"reference", "numpy"} <= set(available_backends())

    def test_default_is_reference(self):
        assert get_backend() == "reference"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert get_backend() == "numpy"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        prev = set_backend("reference")
        try:
            assert get_backend() == "reference"
        finally:
            set_backend(prev)

    def test_use_backend_restores_previous(self):
        set_backend("numpy")
        with use_backend("reference") as active:
            assert active == "reference"
        assert get_backend() == "numpy"

    def test_unknown_backend_warns_once_and_falls_back(self):
        _warned.discard("nosuch")
        with pytest.warns(RuntimeWarning, match="unknown backend"):
            assert resolve_backend("nosuch") == "reference"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("nosuch") == "reference"

    def test_loader_import_error_falls_back(self):
        def broken():
            raise ImportError("no such optional dependency")

        register_backend("broken-backend", broken)
        try:
            _warned.discard("broken-backend")
            with pytest.warns(RuntimeWarning, match="unavailable"):
                assert resolve_backend("broken-backend") == "reference"
            assert "broken-backend" not in available_backends()
            # dispatch under the broken backend runs the reference body
            with use_backend("broken-backend"):
                tree, arc = compute_merge_tree(np.arange(6.0).reshape(2, 3))
            assert arc.size == 6
        finally:
            from repro.backend import registry

            registry._LOADERS.pop("broken-backend", None)
            registry._LOADED.pop("broken-backend", None)

    def test_reference_backend_cannot_be_replaced(self):
        with pytest.raises(ValueError):
            register_backend("reference", dict)

    def test_kernel_names_cover_the_four_hot_paths(self):
        names = kernel_names()
        assert "des.event_queue" in names
        assert "vmpi.pairwise_reduce" in names
        assert "topology.merge_tree" in names
        assert "statistics.merge_packed_moments" in names

    def test_numpy_table_only_overrides_declared_kernels(self):
        assert set(nb.KERNELS) <= set(kernel_names())

    def test_kernel_impl_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            kernel_impl("no.such.kernel")


# ---------------------------------------------------------------------------
# DES event queue: dispatch-order equivalence + tie-breaking
# ---------------------------------------------------------------------------


def drain(queue):
    """Pop every event in engine order: (when, seq-ordered runs)."""
    out = []
    while len(queue):
        when = queue.next_time()
        while True:
            hit = queue.pop_due(when)
            if hit is None:
                break
            fn, arg = hit
            out.append((when, arg))
    return out


class TestEventQueue:
    def _fill(self, queue, ops):
        for seq, (when, arg) in enumerate(ops):
            queue.push(when, seq, lambda _: None, arg)

    def _compare(self, ops):
        ref, arr = HeapEventQueue(), nb.ArrayEventQueue()
        self._fill(ref, ops)
        self._fill(arr, ops)
        assert len(ref) == len(arr)
        assert drain(ref) == drain(arr)

    def test_small_random_order(self):
        rng = np.random.default_rng(0)
        ops = [(float(t), i) for i, t in enumerate(rng.uniform(0, 10, 64))]
        self._compare(ops)

    def test_flush_boundary_with_duplicate_timestamps(self):
        rng = np.random.default_rng(1)
        # > FLUSH_THRESHOLD events with heavy timestamp collisions
        times = rng.integers(0, 40, size=3 * nb.ArrayEventQueue.
                             FLUSH_THRESHOLD).astype(float)
        ops = [(float(t), i) for i, t in enumerate(times)]
        self._compare(ops)

    def test_interleaved_push_pop(self):
        rng = np.random.default_rng(2)
        ref, arr = HeapEventQueue(), nb.ArrayEventQueue()
        seq = 0
        log_ref, log_arr = [], []
        for _ in range(50):
            for _ in range(int(rng.integers(1, 80))):
                when = float(rng.integers(0, 25))
                for q in (ref, arr):
                    q.push(when, seq, lambda _: None, seq)
                seq += 1
            for _ in range(int(rng.integers(0, 60))):
                t_ref, t_arr = ref.next_time(), arr.next_time()
                assert t_ref == t_arr
                if t_ref is None:
                    break
                hit_ref = ref.pop_due(t_ref)
                hit_arr = arr.pop_due(t_arr)
                assert (hit_ref is None) == (hit_arr is None)
                if hit_ref is not None:
                    log_ref.append((t_ref, hit_ref[1]))
                    log_arr.append((t_arr, hit_arr[1]))
        log_ref += drain(ref)
        log_arr += drain(arr)
        assert log_ref == log_arr

    def test_pop_due_misses_return_none(self):
        arr = nb.ArrayEventQueue()
        assert arr.next_time() is None
        assert arr.pop_due(0.0) is None
        arr.push(2.0, 0, lambda _: None, "x")
        assert arr.pop_due(1.0) is None
        assert arr.next_time() == 2.0

    def test_pending_events_merge_into_current_batch(self):
        """An event pushed *at* the batch timestamp after the flush must
        still dispatch inside that timestamp's run, in seq order."""
        arr = nb.ArrayEventQueue()
        n = nb.ArrayEventQueue.FLUSH_THRESHOLD + 8
        for seq in range(n):
            arr.push(5.0, seq, lambda _: None, seq)
        # flushed by now; these two land in the pending heap
        arr.push(5.0, n, lambda _: None, n)
        arr.push(7.0, n + 1, lambda _: None, n + 1)
        order = drain(arr)
        assert order == [(5.0, i) for i in range(n + 1)] + [(7.0, n + 1)]


@pytest.mark.parametrize("backend", BACKENDS)
class TestEngineDispatch:
    def test_equal_timestamp_events_fire_in_schedule_order(self, backend):
        with use_backend(backend):
            eng = Engine()
            fired = []
            for tag in range(8):
                eng._schedule(1.0, fired.append, tag)
            # a chained event scheduled *during* the 1.0 cascade, at 1.0
            eng._schedule(
                1.0, lambda _: eng._schedule(0.0, fired.append, "late"),
                None)
            eng.run()
        assert fired == list(range(8)) + ["late"]

    def test_seeded_replay_digest(self, backend):
        def run_once():
            eng = Engine()
            rng = np.random.default_rng(7)
            log = []

            def proc(tag):
                for _ in range(40):
                    yield eng.timeout(float(rng.integers(0, 5)))
                    log.append((eng.now, tag))

            for tag in range(12):
                eng.process(proc(tag))
            eng.run()
            return log

        with use_backend("reference"):
            expected = run_once()
        with use_backend(backend):
            got = run_once()
        assert got == expected

    def test_storm_replay_crosses_flush_threshold(self, backend):
        def run_once():
            eng = Engine()
            log = []
            for i in range(3 * nb.ArrayEventQueue.FLUSH_THRESHOLD):
                eng._schedule(float(i % 9), log.append, i)
            eng.run()
            return log

        with use_backend("reference"):
            expected = run_once()
        with use_backend(backend):
            got = run_once()
        assert got == expected


# ---------------------------------------------------------------------------
# vmpi collectives
# ---------------------------------------------------------------------------


class TestCollectives:
    def test_float_reduce_identical(self):
        rng = np.random.default_rng(3)
        vals = [float(v) for v in rng.uniform(-4, 9, 97)]
        ref, fast = both("vmpi.pairwise_reduce")
        import operator

        assert ref(list(vals), operator.add) == fast(list(vals),
                                                     operator.add)

    def test_ndarray_reduce_gated_path(self, monkeypatch):
        monkeypatch.setattr(nb, "PAIRWISE_STACK_MIN_RANKS", 4)
        rng = np.random.default_rng(4)
        vals = [rng.uniform(-2, 2, 16) for _ in range(37)]
        ref, fast = both("vmpi.pairwise_reduce")
        a = ref([v.copy() for v in vals], np.add)
        b = fast([v.copy() for v in vals], np.add)
        assert a.dtype == b.dtype
        assert np.array_equal(a, b)

    def test_ndarray_reduce_fallback_path(self):
        # below the rank gate: must route to the reference body verbatim
        rng = np.random.default_rng(5)
        vals = [rng.uniform(-2, 2, 16) for _ in range(7)]
        ref, fast = both("vmpi.pairwise_reduce")
        assert np.array_equal(ref([v.copy() for v in vals], np.add),
                              fast([v.copy() for v in vals], np.add))

    def test_object_reduce_fallback(self):
        ref, fast = both("vmpi.pairwise_reduce")

        def cat(a, b):
            return a + b

        vals = [f"<{i}>" for i in range(13)]
        assert ref(list(vals), cat) == fast(list(vals), cat)

    def test_moment_merge_route(self):
        rng = np.random.default_rng(6)
        accs = [MomentAccumulator.from_data(rng.uniform(0, 1, 50))
                for _ in range(9)]
        ref, fast = both("vmpi.pairwise_reduce")
        a = ref(list(accs), moment_merge_op)
        b = fast(list(accs), moment_merge_op)
        assert np.array_equal(a.pack(), b.pack())

    def test_scan_gated_path(self, monkeypatch):
        monkeypatch.setattr(nb, "SCAN_STACK_MIN_RANKS", 4)
        rng = np.random.default_rng(7)
        vals = [rng.uniform(-1, 1, 8) for _ in range(33)]
        ref, fast = both("vmpi.scan")
        a = ref([v.copy() for v in vals], np.add)
        b = fast([v.copy() for v in vals], np.add)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_scan_fallback_path(self):
        ref, fast = both("vmpi.scan")
        vals = [float(v) for v in range(1, 20)]
        import operator

        assert ref(list(vals), operator.mul) == fast(list(vals),
                                                     operator.mul)


# ---------------------------------------------------------------------------
# statistics kernels
# ---------------------------------------------------------------------------


class TestStatistics:
    def _blocks(self, seed, n_blocks, m):
        rng = np.random.default_rng(seed)
        return [rng.uniform(-3, 7, m) for _ in range(n_blocks)]

    @pytest.mark.parametrize("m", [16, 3000])  # below / above the gate
    def test_learn_blocks_both_regimes(self, m):
        blocks = self._blocks(8, 24, m)
        assert m <= nb.LEARN_BLOCK_MAX_ELEMS or m > nb.LEARN_BLOCK_MAX_ELEMS
        ref, fast = both("statistics.learn_blocks")
        a = ref([b.copy() for b in blocks])
        b_ = fast([b.copy() for b in blocks])
        for x, y in zip(a, b_):
            assert np.array_equal(x.pack(), y.pack())

    def test_learn_blocks_ragged_falls_back(self):
        rng = np.random.default_rng(9)
        blocks = [rng.uniform(0, 1, m) for m in (8, 12, 8)]
        ref, fast = both("statistics.learn_blocks")
        for x, y in zip(ref(blocks), fast(blocks)):
            assert np.array_equal(x.pack(), y.pack())

    def test_merge_moments_identical(self):
        accs = [MomentAccumulator.from_data(b)
                for b in self._blocks(10, 31, 40)]
        ref, fast = both("statistics.merge_moments")
        assert np.array_equal(ref(list(accs)).pack(),
                              fast(list(accs)).pack())

    def test_merge_moments_with_empty_accumulator(self):
        accs = [MomentAccumulator(), *(MomentAccumulator.from_data(b)
                                       for b in self._blocks(11, 5, 9))]
        ref, fast = both("statistics.merge_moments")
        assert np.array_equal(ref(list(accs)).pack(),
                              fast(list(accs)).pack())

    def test_merge_packed_moments_identical(self):
        n_vars = 5
        rng = np.random.default_rng(12)
        packed = []
        for _ in range(64):
            accs = [MomentAccumulator.from_data(rng.uniform(0, 1, 30))
                    for _ in range(n_vars)]
            packed.append(np.concatenate([a.pack() for a in accs]))
        ref, fast = both("statistics.merge_packed_moments")
        a = ref([p.copy() for p in packed], n_vars)
        b = fast([p.copy() for p in packed], n_vars)
        for x, y in zip(a, b):
            assert np.array_equal(x.pack(), y.pack())

    def test_bivariate_histogram_identical(self):
        rng = np.random.default_rng(13)
        x = rng.uniform(-1, 11, 4000)
        y = rng.uniform(-1, 11, 4000)
        edges = np.linspace(0, 10, 12)
        ref, fast = both("statistics.bivariate_histogram")
        a = ref(x, y, edges, edges, (11, 11))
        b = fast(x, y, edges, edges, (11, 11))
        assert a.dtype == b.dtype
        assert np.array_equal(a, b)

    def test_autocorr_cross_sums_identical(self):
        rng = np.random.default_rng(14)
        current = rng.uniform(-2, 2, 400)
        history = [rng.uniform(-2, 2, 400) for _ in range(12)]
        ref, fast = both("statistics.autocorr_cross_sums")
        assert np.array_equal(ref(current, list(history)),
                              fast(current, list(history)))

    def test_autocorr_merge_identical(self):
        rng = np.random.default_rng(15)
        max_lag = 6
        partials = []
        for _ in range(32):
            learner = AutocorrelationLearner(max_lag)
            for _ in range(max_lag + 4):
                learner.observe(rng.uniform(0, 1, 64))
            partials.append(learner.pack())
        ref, fast = both("statistics.autocorr_merge")
        assert np.array_equal(ref([p.copy() for p in partials], max_lag),
                              fast([p.copy() for p in partials], max_lag))

    def test_autocorr_merge_zero_lag(self):
        ref, fast = both("statistics.autocorr_merge")
        assert np.array_equal(ref([], 0), fast([], 0))


# ---------------------------------------------------------------------------
# topology kernels
# ---------------------------------------------------------------------------


def _plateau_field(rng, shape):
    """Quantized values: many exact ties exercise the plateau rules."""
    return rng.integers(0, 6, size=shape).astype(np.float64)


class TestTopology:
    @pytest.mark.parametrize("shape", [(40,), (9, 7), (6, 5, 4),
                                       (3, 4, 3, 2)])
    def test_merge_tree_identical_any_dimension(self, shape):
        rng = np.random.default_rng(16)
        field = _plateau_field(rng, shape)
        ref, fast = both("topology.merge_tree")
        tree_a, arc_a = ref(field)
        tree_b, arc_b = fast(field)
        assert_trees_equal(tree_a, tree_b)
        assert arc_a.dtype == arc_b.dtype
        assert np.array_equal(arc_a, arc_b)

    def test_merge_tree_with_id_map(self):
        rng = np.random.default_rng(17)
        field = rng.uniform(0, 1, (5, 6))
        ids = (np.arange(30) * 13 + 101).reshape(5, 6)
        ref, fast = both("topology.merge_tree")
        tree_a, arc_a = ref(field, ids)
        tree_b, arc_b = fast(field, ids)
        assert_trees_equal(tree_a, tree_b)
        assert np.array_equal(arc_a, arc_b)

    def test_graph_merge_tree_identical(self):
        rng = np.random.default_rng(18)
        n = 80
        ids = [int(i * 7 + 3) for i in range(n)]
        values = {i: float(v)
                  for i, v in zip(ids, rng.integers(0, 10, n))}
        edges = [(ids[int(a)], ids[int(b)])
                 for a, b in rng.integers(0, n, (200, 2)) if a != b]
        ref, fast = both("topology.graph_merge_tree")
        assert_trees_equal(ref(dict(values), list(edges)),
                           fast(dict(values), list(edges)))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_distributed_pipeline_identical(self, backend):
        shape = (12, 10, 8)
        rng = np.random.default_rng(19)
        field = _plateau_field(rng, shape)
        decomp = BlockDecomposition3D(shape, (2, 2, 2))
        with use_backend("reference"):
            tree_ref, bts_ref = distributed_merge_tree(field, decomp)
        with use_backend(backend):
            tree, bts = distributed_merge_tree(field, decomp)
        assert_trees_equal(tree_ref, tree)
        assert len(bts_ref) == len(bts)


# ---------------------------------------------------------------------------
# property-based: union-find and moments
# ---------------------------------------------------------------------------


class TestHypothesis:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=7),
                    min_size=1, max_size=48))
    def test_merge_tree_union_find_property(self, levels):
        field = np.asarray(levels, dtype=np.float64)
        ref, fast = both("topology.merge_tree")
        tree_a, arc_a = ref(field)
        tree_b, arc_b = fast(field)
        assert_trees_equal(tree_a, tree_b)
        assert np.array_equal(arc_a, arc_b)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                       allow_nan=False, width=32),
                             min_size=1, max_size=20),
                    min_size=1, max_size=12))
    def test_moments_property(self, rows):
        blocks = [np.asarray(r, dtype=np.float64) for r in rows]
        ref_learn, fast_learn = both("statistics.learn_blocks")
        ref_merge, fast_merge = both("statistics.merge_moments")
        accs_a = ref_learn([b.copy() for b in blocks])
        accs_b = fast_learn([b.copy() for b in blocks])
        for x, y in zip(accs_a, accs_b):
            assert np.array_equal(x.pack(), y.pack())
        assert np.array_equal(ref_merge(accs_a).pack(),
                              fast_merge(accs_b).pack())


# ---------------------------------------------------------------------------
# full functional pipeline parity under dispatch
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_functional_pipeline_digest_identical(backend):
    from repro.core import HybridFramework
    from repro.sim import LiftedFlameCase, StructuredGrid3D

    shape = (12, 8, 6)

    def run_once():
        fw = HybridFramework(LiftedFlameCase(StructuredGrid3D(shape),
                                             seed=3),
                             BlockDecomposition3D(shape, (2, 2, 1)),
                             n_buckets=2)
        return fw.run(3)

    with use_backend("reference"):
        expected = run_once()
    with use_backend(backend):
        got = run_once()
    assert _digest(got) == _digest(expected)


def _digest(result):
    """A stable, exact fingerprint of whatever the framework returned.

    Private attributes are skipped: they are derived bookkeeping (e.g.
    ``MergeTree._children`` adjacency order, which the streaming and
    batch glues populate in different insertion orders while producing
    the identical node/arc structure held in the public fields).
    """
    import json

    def norm(obj):
        if isinstance(obj, np.ndarray):
            return ["nd", obj.shape, obj.dtype.str, obj.tobytes().hex()]
        if isinstance(obj, np.generic):
            return obj.item()
        if isinstance(obj, dict):
            return {str(k): norm(v) for k, v in sorted(obj.items(),
                                                       key=lambda kv:
                                                       str(kv[0]))}
        if isinstance(obj, (list, tuple)):
            return [norm(v) for v in obj]
        if hasattr(obj, "__dict__"):
            return {k: norm(v) for k, v in sorted(vars(obj).items())
                    if not k.startswith("_")}
        return repr(obj)

    return json.dumps(norm(result), sort_keys=True, default=repr)
