"""Retry lifecycle: the full journey of a failing in-transit task.

Covers the paths ISSUE 3 hardened: compute failure followed by success on
requeue, retry exhaustion, streaming-mode failure isolation (including
in-flight prefetch pulls), transport-level pull failure folding into the
same retry path, and exact region-release accounting when
``max_retries > 0`` retains regions across attempts.
"""

import numpy as np
import pytest

from repro.des import Engine
from repro.staging import DataSpaces
from repro.transport import DartTransport, PullFault


def _space(n_buckets=2, pull_max_attempts=1, **ds_kw):
    eng = Engine()
    tr = DartTransport(eng, pull_max_attempts=pull_max_attempts)
    ds = DataSpaces(eng, tr, n_servers=1, **ds_kw)
    ds.spawn_buckets([f"b{i}" for i in range(n_buckets)])
    return eng, tr, ds


def _assert_no_leaks(tr):
    """No retained regions, no stuck NIC channels."""
    assert len(tr.registry) == 0
    for node, nic in tr._nics.items():
        assert nic.in_use == 0, f"NIC {node} leaked {nic.in_use} channels"


class TestComputeRetries:
    def test_fail_then_succeed_on_requeue(self):
        eng, tr, ds = _space()
        attempts = []

        def flaky(payloads):
            attempts.append(len(attempts))
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return float(sum(p.sum() for p in payloads))

        descs = [tr.register("sim-0", np.arange(4.0)),
                 tr.register("sim-1", np.arange(4.0))]
        task = ds.submit_grouped_result("a", 0, descs, compute=flaky,
                                        max_retries=2)
        ds.shutdown_buckets()
        eng.run()
        assert len(attempts) == 2
        assert task.attempts == 1  # one failed attempt recorded
        r = ds.all_results()
        assert len(r) == 1 and r[0].value == 12.0
        acct = ds.task_accounting()
        assert acct == {"submitted": 1, "completed": 1, "failed": 0,
                        "outstanding": 0}
        _assert_no_leaks(tr)

    def test_exhaustion_counts_every_attempt(self):
        eng, tr, ds = _space()

        def always_fails(payloads):
            raise RuntimeError("permanent")

        descs = [tr.register("sim-0", np.ones(4))]
        task = ds.submit_grouped_result("a", 0, descs, compute=always_fails,
                                        max_retries=3)
        ds.shutdown_buckets()
        eng.run()
        assert task.attempts == 4  # initial + 3 retries
        assert task.task_id in ds.failed_task_ids()
        assert ds.task_accounting()["failed"] == 1
        assert all(not b.dead for b in ds.buckets)
        _assert_no_leaks(tr)

    def test_failure_records_error_and_time(self):
        eng, tr, ds = _space(n_buckets=1)

        def boom(payloads):
            raise ValueError("detail message")

        descs = [tr.register("sim-0", np.ones(4))]
        task = ds.submit_grouped_result("a", 0, descs, compute=boom)
        ds.shutdown_buckets()
        eng.run()
        failures = [f for b in ds.buckets for f in b.failures]
        assert len(failures) == 1
        task_id, when, error = failures[0]
        assert task_id == task.task_id
        assert when > 0.0
        assert "detail message" in error


class TestStreamingFailures:
    def test_stream_compute_failure_is_contained(self):
        eng, tr, ds = _space(n_buckets=1)
        seen = []

        def stream(state, payload):
            seen.append(payload)
            if len(seen) == 2:
                raise RuntimeError("bad payload")
            return (state or 0.0) + float(payload.sum())

        descs = [tr.register(f"sim-{i}", np.full(4, float(i)))
                 for i in range(4)]
        task = ds.submit_grouped_result("a", 0, descs, stream_compute=stream)
        ds.shutdown_buckets()
        eng.run()
        # failure recorded, task accounted, bucket alive, nothing leaked
        failures = [f for b in ds.buckets for f in b.failures]
        assert len(failures) == 1
        assert task.task_id in ds.failed_task_ids()
        assert ds.task_accounting()["outstanding"] == 0
        assert all(not b.dead for b in ds.buckets)
        _assert_no_leaks(tr)

    def test_stream_failure_then_retry_succeeds(self):
        eng, tr, ds = _space(n_buckets=1)
        calls = []

        def stream(state, payload):
            calls.append(1)
            if len(calls) == 2:  # fail mid-stream on the first attempt
                raise RuntimeError("transient")
            return (state or 0.0) + float(payload.sum())

        descs = [tr.register(f"sim-{i}", np.full(4, float(i)))
                 for i in range(3)]
        ds.submit_grouped_result("a", 0, descs, stream_compute=stream,
                                 max_retries=1)
        ds.shutdown_buckets()
        eng.run()
        r = ds.all_results()
        assert len(r) == 1
        assert r[0].value == 4.0 * (0 + 1 + 2)
        _assert_no_leaks(tr)

    def test_stream_finalize_failure_is_contained(self):
        eng, tr, ds = _space(n_buckets=1)

        def finalize(state):
            raise RuntimeError("finalize blew up")

        descs = [tr.register("sim-0", np.ones(4))]
        task = ds.submit_grouped_result(
            "a", 0, descs, stream_compute=lambda s, p: p,
            stream_finalize=finalize)
        ds.shutdown_buckets()
        eng.run()
        assert task.task_id in ds.failed_task_ids()
        assert ds.task_accounting()["outstanding"] == 0
        _assert_no_leaks(tr)


class TestPullFailures:
    def test_pull_exhaustion_folds_into_task_retry(self):
        # Transport retries (3 attempts) exhaust on the first task attempt;
        # the task-level retry then pulls cleanly and succeeds.
        eng, tr, ds = _space(n_buckets=1, pull_max_attempts=3)
        pull_attempts = []

        def fail_first_three(descriptor, dest, attempt):
            pull_attempts.append(attempt)
            if len(pull_attempts) <= 3:
                raise PullFault("injected")
            return 0.0

        tr.pull_fault_hook = fail_first_three
        descs = [tr.register("sim-0", np.arange(4.0))]
        task = ds.submit_grouped_result(
            "a", 0, descs, compute=lambda p: float(p[0].sum()),
            max_retries=1)
        ds.shutdown_buckets()
        eng.run()
        assert pull_attempts == [1, 2, 3, 1]  # exhausted, then fresh attempt
        assert task.attempts == 1
        r = ds.all_results()
        assert len(r) == 1 and r[0].value == 6.0
        _assert_no_leaks(tr)

    def test_pull_backoff_delays_are_exponential(self):
        eng, tr, ds = _space(n_buckets=1, pull_max_attempts=3)
        times = []

        def always_fail(descriptor, dest, attempt):
            times.append(eng.now)
            raise PullFault("injected")

        tr.pull_fault_hook = always_fail
        descs = [tr.register("sim-0", np.ones(4))]
        ds.submit_grouped_result("a", 0, descs,
                                 compute=lambda p: float(p[0].sum()))
        ds.shutdown_buckets()
        eng.run()
        assert len(times) == 3
        gap1, gap2 = times[1] - times[0], times[2] - times[1]
        assert gap1 == pytest.approx(tr.pull_backoff_base)
        assert gap2 == pytest.approx(tr.pull_backoff_base
                                     * tr.pull_backoff_factor)
        assert ds.task_accounting()["failed"] == 1
        _assert_no_leaks(tr)

    def test_streaming_pull_failure_is_contained(self):
        eng, tr, ds = _space(n_buckets=1, pull_max_attempts=1)
        calls = []

        def fail_second_region(descriptor, dest, attempt):
            calls.append(descriptor.region_id)
            if len(calls) == 2:
                raise PullFault("injected")
            return 0.0

        tr.pull_fault_hook = fail_second_region
        descs = [tr.register(f"sim-{i}", np.full(4, float(i)),
                             nbytes=4 << 20)
                 for i in range(3)]
        task = ds.submit_grouped_result(
            "a", 0, descs,
            stream_compute=lambda s, p: (s or 0.0) + float(p.sum()))
        ds.shutdown_buckets()
        eng.run()
        assert task.task_id in ds.failed_task_ids()
        assert ds.task_accounting()["outstanding"] == 0
        assert all(not b.dead for b in ds.buckets)
        _assert_no_leaks(tr)


class TestRegionAccounting:
    def test_regions_retained_across_attempts_released_on_success(self):
        eng, tr, ds = _space(n_buckets=1)
        calls = []
        region_state = []

        def flaky(payloads):
            calls.append(1)
            # regions must still be registered while retries remain
            region_state.append(
                [d.region_id in tr.registry for d in descs])
            if len(calls) == 1:
                raise RuntimeError("transient")
            return float(sum(p.sum() for p in payloads))

        descs = [tr.register(f"sim-{i}", np.arange(3.0)) for i in range(2)]
        ds.submit_grouped_result("a", 0, descs, compute=flaky,
                                 max_retries=1)
        ds.shutdown_buckets()
        eng.run()
        assert region_state == [[True, True], [True, True]]
        assert len(ds.all_results()) == 1
        _assert_no_leaks(tr)

    def test_regions_released_on_terminal_failure(self):
        eng, tr, ds = _space(n_buckets=1)

        def always_fails(payloads):
            raise RuntimeError("permanent")

        descs = [tr.register(f"sim-{i}", np.ones(4)) for i in range(3)]
        ds.submit_grouped_result("a", 0, descs, compute=always_fails,
                                 max_retries=2)
        ds.shutdown_buckets()
        eng.run()
        assert ds.task_accounting()["failed"] == 1
        _assert_no_leaks(tr)

    def test_zero_retries_releases_on_first_failure(self):
        eng, tr, ds = _space(n_buckets=1)

        def boom(payloads):
            raise RuntimeError("fatal")

        descs = [tr.register("sim-0", np.ones(4))]
        ds.submit_grouped_result("a", 0, descs, compute=boom)
        ds.shutdown_buckets()
        eng.run()
        _assert_no_leaks(tr)

    def test_mixed_success_and_failure_accounting(self):
        eng, tr, ds = _space(n_buckets=2)

        def bad(payloads):
            raise RuntimeError("bad task")

        for i in range(4):
            descs = [tr.register("sim-0", np.full(2, float(i)))]
            compute = bad if i % 2 else (lambda p: float(p[0].sum()))
            ds.submit_grouped_result("a", i, descs, compute=compute,
                                     max_retries=1)
        ds.shutdown_buckets()
        eng.run()
        acct = ds.task_accounting()
        assert acct == {"submitted": 4, "completed": 2, "failed": 2,
                        "outstanding": 0}
        assert len(ds.failed_task_ids()) == 2
        _assert_no_leaks(tr)
