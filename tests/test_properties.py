"""Cross-cutting property-based tests (hypothesis) on core invariants.

These complement the per-module suites with randomized, shrinkable checks
of the library's load-bearing contracts.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.analysis.statistics.moments import MomentAccumulator
from repro.analysis.topology import compute_merge_tree
from repro.des import Engine
from repro.io.bp import BPFile
from repro.machine.gemini import GeminiNetwork, Protocol
from repro.staging import DataSpaces
from repro.transport import DartTransport
from repro.vmpi import BlockDecomposition3D

DTYPES = [np.float64, np.float32, np.int64, np.int32, np.uint8, np.complex128]


class TestBPFormatProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, len(DTYPES) - 1),
                st.lists(st.integers(1, 6), min_size=1, max_size=3),
            ),
            min_size=1, max_size=5),
        st.integers(0, 10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_any_dtype_and_shape(self, specs, seed):
        import tempfile
        from pathlib import Path
        tmp = Path(tempfile.mkdtemp(prefix="bp-prop-"))
        rng = np.random.default_rng(seed)
        arrays = {}
        for i, (dt_idx, shape) in enumerate(specs):
            dtype = DTYPES[dt_idx]
            raw = rng.random(tuple(shape))
            if np.issubdtype(dtype, np.complexfloating):
                arrays[f"v{i}"] = (raw + 1j * raw).astype(dtype)
            else:
                arrays[f"v{i}"] = (raw * 100).astype(dtype)
        path = tmp / "x.bp"
        with BPFile.create(path, attrs={"seed": seed}) as bp:
            for name, arr in arrays.items():
                bp.write(name, arr)
        r = BPFile.open(path)
        assert r.attrs["seed"] == seed
        for name, arr in arrays.items():
            got = r.read(name)
            assert got.dtype == arr.dtype
            np.testing.assert_array_equal(got, arr)


class TestDataSpacesGeometryProperties:
    @given(
        st.tuples(st.integers(2, 10), st.integers(2, 8), st.integers(2, 6)),
        st.tuples(st.integers(1, 3), st.integers(1, 3), st.integers(1, 2)),
        st.integers(0, 10**6),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_distributed_puts_assemble_any_box(self, shape, grid, seed, data):
        assume(all(g <= s for s, g in zip(shape, grid)))
        field = np.random.default_rng(seed).random(shape)
        decomp = BlockDecomposition3D(shape, grid)
        eng = Engine()
        ds = DataSpaces(eng, DartTransport(eng), n_servers=2)
        for b in decomp.blocks():
            ds.put("f", 0, field[b.slices],
                   bounds=tuple((lo, hi) for lo, hi in zip(b.lo, b.hi)))
        # query a random sub-box
        lo = [data.draw(st.integers(0, s - 1)) for s in shape]
        hi = [data.draw(st.integers(lo[a] + 1, shape[a])) for a in range(3)]
        box = tuple((lo[a], hi[a]) for a in range(3))
        got = ds.get("f", 0, bounds=box)
        np.testing.assert_array_equal(
            got, field[tuple(slice(lo[a], hi[a]) for a in range(3))])


class TestNetworkProperties:
    @given(st.integers(0, 10**9), st.integers(0, 10**9))
    @settings(max_examples=60, deadline=None)
    def test_transfer_time_monotone_per_protocol(self, a, b):
        net = GeminiNetwork()
        lo, hi = min(a, b), max(a, b)
        for proto in (Protocol.SMSG, Protocol.BTE):
            assert net.transfer_time(lo, proto) <= net.transfer_time(hi, proto)

    @given(st.integers(0, 10**9))
    @settings(max_examples=60, deadline=None)
    def test_adaptive_never_worse_than_double_best(self, n):
        """The size-adaptive pick is within the crossover band of optimal."""
        net = GeminiNetwork()
        best = min(net.transfer_time(n, Protocol.SMSG),
                   net.transfer_time(n, Protocol.BTE))
        assert net.transfer_time(n) <= 2.0 * best


class TestMergeTreeProperties:
    @given(st.integers(0, 10**6),
           st.tuples(st.integers(2, 6), st.integers(2, 6), st.integers(2, 5)))
    @settings(max_examples=25, deadline=None)
    def test_leaves_are_exactly_local_maxima(self, seed, shape):
        f = np.random.default_rng(seed).random(shape)
        tree, _ = compute_merge_tree(f)
        brute = 0
        for idx in np.ndindex(f.shape):
            is_max = True
            for axis in range(3):
                for d in (-1, 1):
                    j = list(idx)
                    j[axis] += d
                    if 0 <= j[axis] < f.shape[axis] and f[tuple(j)] > f[idx]:
                        is_max = False
            brute += is_max
        assert len(tree.leaves()) == brute

    @given(st.integers(0, 10**6),
           st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
           st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=25, deadline=None)
    def test_structure_invariant_under_affine_maps(self, seed, shift, scale):
        f = np.random.default_rng(seed).random((4, 4, 4))
        t1, _ = compute_merge_tree(f)
        t2, _ = compute_merge_tree(scale * f + shift)
        assert t1.arcs() == t2.arcs()
        assert t1.leaves() == t2.leaves()


class TestMomentProperties:
    @given(st.integers(0, 10**6), st.integers(2, 5))
    @settings(max_examples=30, deadline=None)
    def test_merge_associative_random_grouping(self, seed, n_chunks):
        rng = np.random.default_rng(seed)
        chunks = [rng.normal(size=rng.integers(1, 40))
                  for _ in range(n_chunks)]
        accs = [MomentAccumulator.from_data(c) for c in chunks]
        # left fold vs right fold
        left = accs[0]
        for a in accs[1:]:
            left = left.merge(a)
        right = accs[-1]
        for a in accs[-2::-1]:
            right = a.merge(right)
        assert left.n == right.n
        assert left.mean == pytest.approx(right.mean, rel=1e-10, abs=1e-12)
        assert left.M2 == pytest.approx(right.M2, rel=1e-8, abs=1e-9)

    @given(st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_extrema_exact_under_any_split(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=50)
        k = int(rng.integers(1, 49))
        a = MomentAccumulator.from_data(x[:k])
        b = MomentAccumulator.from_data(x[k:])
        m = a.merge(b)
        assert m.minimum == x.min() and m.maximum == x.max()
