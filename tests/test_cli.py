"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.steps == 5
        assert args.grid == [24, 16, 12]
        assert not args.streaming


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out
        assert "16.85" in out
        assert "hybrid in-situ/in-transit topology" in out

    def test_simulate_small(self, capsys):
        rc = main(["simulate", "--steps", "2", "--grid", "10", "8", "6",
                   "--ranks", "2", "1", "1", "--buckets", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean T" in out
        assert "intermediate data moved" in out

    def test_simulate_streaming_mode(self, capsys):
        rc = main(["simulate", "--steps", "2", "--grid", "10", "8", "6",
                   "--ranks", "2", "1", "1", "--streaming"])
        assert rc == 0

    def test_track(self, capsys):
        rc = main(["track", "--steps", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lifetime" in out

    def test_render(self, tmp_path, capsys):
        prefix = str(tmp_path / "frame")
        rc = main(["render", "--steps", "2", "--size", "16",
                   "--prefix", prefix])
        assert rc == 0
        assert (tmp_path / "frame_insitu.ppm").exists()
        assert (tmp_path / "frame_hybrid.ppm").exists()
        assert "RMSE" in capsys.readouterr().out

    def test_tradeoff(self, capsys):
        assert main(["tradeoff"]) == 0
        out = capsys.readouterr().out
        assert "post @400" in out and "hybrid @1" in out

    def test_schedule_healthy(self, capsys):
        rc = main(["schedule", "--steps", "4", "--buckets", "8"])
        assert rc == 0
        assert "keeps pace" in capsys.readouterr().out

    def test_schedule_overloaded_returns_nonzero(self, capsys):
        rc = main(["schedule", "--steps", "4", "--buckets", "1"])
        assert rc == 1
        assert "queue grows" in capsys.readouterr().out

    def test_trace_writes_valid_chrome_trace(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        rc = main(["trace", "--steps", "10", "--out", str(out),
                   "--jsonl", str(jsonl)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        assert len(doc["traceEvents"]) > 0
        assert jsonl.exists() and jsonl.read_text().count("\n") > 10
        text = capsys.readouterr().out
        assert "trace validation: ok" in text
        assert "critical path" in text
        assert "trace vs core.breakdown" in text

    def test_trace_functional_mode(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "func.json"
        rc = main(["trace", "--functional", "--steps", "2",
                   "--out", str(out)])
        assert rc == 0
        assert validate_chrome_trace(json.loads(out.read_text())) == []

    def test_simulate_with_report(self, capsys):
        rc = main(["simulate", "--steps", "2", "--grid", "10", "8", "6",
                   "--ranks", "2", "1", "1", "--report"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bucket occupancy" in out
        assert "in-transit activity" in out
