"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.steps == 5
        assert args.grid == [24, 16, 12]
        assert not args.streaming


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out
        assert "16.85" in out
        assert "hybrid in-situ/in-transit topology" in out

    def test_simulate_small(self, capsys):
        rc = main(["simulate", "--steps", "2", "--grid", "10", "8", "6",
                   "--ranks", "2", "1", "1", "--buckets", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean T" in out
        assert "intermediate data moved" in out

    def test_simulate_streaming_mode(self, capsys):
        rc = main(["simulate", "--steps", "2", "--grid", "10", "8", "6",
                   "--ranks", "2", "1", "1", "--streaming"])
        assert rc == 0

    def test_track(self, capsys):
        rc = main(["track", "--steps", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lifetime" in out

    def test_render(self, tmp_path, capsys):
        prefix = str(tmp_path / "frame")
        rc = main(["render", "--steps", "2", "--size", "16",
                   "--prefix", prefix])
        assert rc == 0
        assert (tmp_path / "frame_insitu.ppm").exists()
        assert (tmp_path / "frame_hybrid.ppm").exists()
        assert "RMSE" in capsys.readouterr().out

    def test_tradeoff(self, capsys):
        assert main(["tradeoff"]) == 0
        out = capsys.readouterr().out
        assert "post @400" in out and "hybrid @1" in out

    def test_schedule_healthy(self, capsys):
        rc = main(["schedule", "--steps", "4", "--buckets", "8"])
        assert rc == 0
        assert "keeps pace" in capsys.readouterr().out

    def test_schedule_overloaded_returns_nonzero(self, capsys):
        rc = main(["schedule", "--steps", "4", "--buckets", "1"])
        assert rc == 1
        assert "queue grows" in capsys.readouterr().out

    def test_trace_writes_valid_chrome_trace(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        rc = main(["trace", "--steps", "10", "--out", str(out),
                   "--jsonl", str(jsonl)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        assert len(doc["traceEvents"]) > 0
        assert jsonl.exists() and jsonl.read_text().count("\n") > 10
        text = capsys.readouterr().out
        assert "trace validation: ok" in text
        assert "critical path" in text
        assert "trace vs core.breakdown" in text

    def test_trace_functional_mode(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "func.json"
        rc = main(["trace", "--functional", "--steps", "2",
                   "--out", str(out)])
        assert rc == 0
        assert validate_chrome_trace(json.loads(out.read_text())) == []

    def test_trace_relative_out_lands_under_out_dir(self, tmp_path,
                                                    monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        rc = main(["trace", "--steps", "3", "--buckets", "4",
                   "--out-dir", "artifacts", "--out", "mytrace.json",
                   "--jsonl", "events.jsonl"])
        assert rc == 0
        # explicit relative paths are re-rooted under --out-dir, not CWD
        assert (tmp_path / "artifacts" / "mytrace.json").exists()
        assert (tmp_path / "artifacts" / "events.jsonl").exists()
        assert not (tmp_path / "mytrace.json").exists()
        assert not (tmp_path / "events.jsonl").exists()

    def test_trace_reports_causal_path(self, tmp_path, capsys):
        rc = main(["trace", "--steps", "3", "--out-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "causal vs heuristic critical path" in out
        assert "reconcile:" in out

    def test_trace_diff_against_previous_run(self, tmp_path, capsys):
        jsonl = tmp_path / "base.jsonl"
        assert main(["trace", "--steps", "3", "--buckets", "4",
                     "--out-dir", str(tmp_path),
                     "--jsonl", str(jsonl)]) == 0
        capsys.readouterr()
        rc = main(["trace", "--steps", "3", "--buckets", "2",
                   "--out-dir", str(tmp_path), "--diff", str(jsonl)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace diff" in out
        assert "retry_backoff" in out
        assert (tmp_path / "trace_diff.html").exists()

    def test_blame_writes_report(self, tmp_path, capsys):
        import json

        rc = main(["blame", "--steps", "3", "--buckets", "4",
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "blame attribution" in out
        assert "exact-sum check: ok" in out
        payload = json.loads((tmp_path / "repro_blame.json").read_text())
        assert payload["makespan"] == pytest.approx(
            sum(payload["overall"].values()))

    def test_blame_from_exported_trace(self, tmp_path, capsys):
        jsonl = tmp_path / "run.jsonl"
        assert main(["trace", "--steps", "3", "--out-dir", str(tmp_path),
                     "--jsonl", str(jsonl)]) == 0
        capsys.readouterr()
        rc = main(["blame", "--trace", str(jsonl),
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "causal path" in out
        assert "exact-sum check: ok" in out

    def test_simulate_with_report(self, capsys):
        rc = main(["simulate", "--steps", "2", "--grid", "10", "8", "6",
                   "--ranks", "2", "1", "1", "--report"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bucket occupancy" in out
        assert "in-transit activity" in out
