"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.steps == 5
        assert args.grid == [24, 16, 12]
        assert not args.streaming


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out
        assert "16.85" in out
        assert "hybrid in-situ/in-transit topology" in out

    def test_simulate_small(self, capsys):
        rc = main(["simulate", "--steps", "2", "--grid", "10", "8", "6",
                   "--ranks", "2", "1", "1", "--buckets", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean T" in out
        assert "intermediate data moved" in out

    def test_simulate_streaming_mode(self, capsys):
        rc = main(["simulate", "--steps", "2", "--grid", "10", "8", "6",
                   "--ranks", "2", "1", "1", "--streaming"])
        assert rc == 0

    def test_track(self, capsys):
        rc = main(["track", "--steps", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lifetime" in out

    def test_render(self, tmp_path, capsys):
        prefix = str(tmp_path / "frame")
        rc = main(["render", "--steps", "2", "--size", "16",
                   "--prefix", prefix])
        assert rc == 0
        assert (tmp_path / "frame_insitu.ppm").exists()
        assert (tmp_path / "frame_hybrid.ppm").exists()
        assert "RMSE" in capsys.readouterr().out

    def test_tradeoff(self, capsys):
        assert main(["tradeoff"]) == 0
        out = capsys.readouterr().out
        assert "post @400" in out and "hybrid @1" in out

    def test_schedule_healthy(self, capsys):
        rc = main(["schedule", "--steps", "4", "--buckets", "8"])
        assert rc == 0
        assert "keeps pace" in capsys.readouterr().out

    def test_control_gate_passes_and_writes_artifact(self, tmp_path,
                                                     capsys):
        import json
        rc = main(["control", "--steps", "8", "--gate",
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "adaptive" in out and "speedup" in out
        assert "decision log" in out
        artifact = json.loads(
            (tmp_path / "repro_control.json").read_text())
        assert artifact["improved"] is True
        assert artifact["decisions"]
        assert artifact["adaptive_makespan_s"] <= artifact["static_makespan_s"]

    def test_control_parser_defaults(self):
        args = build_parser().parse_args(["control"])
        assert args.steps == 12
        assert args.crash_times == [30.0, 55.0]
        assert not args.gate

    def test_schedule_overloaded_returns_nonzero(self, capsys):
        rc = main(["schedule", "--steps", "4", "--buckets", "1"])
        assert rc == 1
        assert "queue grows" in capsys.readouterr().out

    def test_trace_writes_valid_chrome_trace(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        rc = main(["trace", "--steps", "10", "--out", str(out),
                   "--jsonl", str(jsonl)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        assert len(doc["traceEvents"]) > 0
        assert jsonl.exists() and jsonl.read_text().count("\n") > 10
        text = capsys.readouterr().out
        assert "trace validation: ok" in text
        assert "critical path" in text
        assert "trace vs core.breakdown" in text

    def test_trace_functional_mode(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "func.json"
        rc = main(["trace", "--functional", "--steps", "2",
                   "--out", str(out)])
        assert rc == 0
        assert validate_chrome_trace(json.loads(out.read_text())) == []

    def test_trace_relative_out_lands_under_out_dir(self, tmp_path,
                                                    monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        rc = main(["trace", "--steps", "3", "--buckets", "4",
                   "--out-dir", "artifacts", "--out", "mytrace.json",
                   "--jsonl", "events.jsonl"])
        assert rc == 0
        # explicit relative paths are re-rooted under --out-dir, not CWD
        assert (tmp_path / "artifacts" / "mytrace.json").exists()
        assert (tmp_path / "artifacts" / "events.jsonl").exists()
        assert not (tmp_path / "mytrace.json").exists()
        assert not (tmp_path / "events.jsonl").exists()

    def test_trace_reports_causal_path(self, tmp_path, capsys):
        rc = main(["trace", "--steps", "3", "--out-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "causal vs heuristic critical path" in out
        assert "reconcile:" in out

    def test_trace_diff_against_previous_run(self, tmp_path, capsys):
        jsonl = tmp_path / "base.jsonl"
        assert main(["trace", "--steps", "3", "--buckets", "4",
                     "--out-dir", str(tmp_path),
                     "--jsonl", str(jsonl)]) == 0
        capsys.readouterr()
        rc = main(["trace", "--steps", "3", "--buckets", "2",
                   "--out-dir", str(tmp_path), "--diff", str(jsonl)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace diff" in out
        assert "retry_backoff" in out
        assert (tmp_path / "trace_diff.html").exists()

    def test_blame_writes_report(self, tmp_path, capsys):
        import json

        rc = main(["blame", "--steps", "3", "--buckets", "4",
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "blame attribution" in out
        assert "exact-sum check: ok" in out
        payload = json.loads((tmp_path / "repro_blame.json").read_text())
        assert payload["makespan"] == pytest.approx(
            sum(payload["overall"].values()))

    def test_blame_from_exported_trace(self, tmp_path, capsys):
        jsonl = tmp_path / "run.jsonl"
        assert main(["trace", "--steps", "3", "--out-dir", str(tmp_path),
                     "--jsonl", str(jsonl)]) == 0
        capsys.readouterr()
        rc = main(["blame", "--trace", str(jsonl),
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "causal path" in out
        assert "exact-sum check: ok" in out

    def test_simulate_with_report(self, capsys):
        rc = main(["simulate", "--steps", "2", "--grid", "10", "8", "6",
                   "--ranks", "2", "1", "1", "--report"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bucket occupancy" in out
        assert "in-transit activity" in out

    def test_blame_default_output_lands_under_out_dir(self, tmp_path,
                                                      monkeypatch, capsys):
        """The default blame JSON must land under --out-dir, never the
        process CWD (regression lock for the artifact-scatter bug)."""
        monkeypatch.chdir(tmp_path)
        rc = main(["blame", "--steps", "2", "--buckets", "2",
                   "--out-dir", "artifacts"])
        assert rc == 0
        assert (tmp_path / "artifacts" / "repro_blame.json").exists()
        assert not (tmp_path / "repro_blame.json").exists()


class TestServiceCli:
    def _submit(self, jobs, tenant, name, steps, **extra):
        argv = ["submit", "--jobs", str(jobs), "--tenant", tenant,
                "--name", name, "--steps", str(steps), "--buckets", "4"]
        for flag, value in extra.items():
            argv += [f"--{flag}", str(value)]
        assert main(argv) == 0

    def test_submit_appends_valid_jsonl(self, tmp_path, capsys):
        import json

        jobs = tmp_path / "batch.jsonl"
        self._submit(jobs, "alpha", "a1", 3)
        self._submit(jobs, "beta", "b1", 2, shards=2)
        lines = [json.loads(x) for x in jobs.read_text().splitlines()]
        assert [x["tenant"] for x in lines] == ["alpha", "beta"]
        assert lines[1]["n_shards"] == 2
        assert "queued beta/b1" in capsys.readouterr().out

    def test_submit_rejects_invalid_spec(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["submit", "--jobs", str(tmp_path / "b.jsonl"),
                  "--tenant", "a", "--name", "x", "--steps", "0"])

    def test_serve_batch_quota_and_cache(self, tmp_path, capsys):
        import json

        jobs = tmp_path / "batch.jsonl"
        # Distinct specs per tenant so gamma's jobs cannot ride another
        # tenant's cache entry and must really contend for its quota.
        self._submit(jobs, "alpha", "a1", 2)
        self._submit(jobs, "alpha", "a2", 3)
        self._submit(jobs, "beta", "b1", 4, shards=2)
        self._submit(jobs, "beta", "b2", 5, shards=2)
        self._submit(jobs, "gamma", "g1", 6)
        self._submit(jobs, "gamma", "g2", 7)
        capsys.readouterr()

        rc = main(["serve", "--jobs", str(jobs), "--workers", "3",
                   "--quota", "gamma=1", "--expect-quota-held",
                   "--out-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "quota hold(s)" in out
        assert "shard balance" in out
        report = json.loads((tmp_path / "service_report.json").read_text())
        assert report["all_done"] is True
        assert report["held_events"] > 0
        assert report["cache_hit_rate"] == 0.0
        assert set(report["tenants"]) == {"alpha", "beta", "gamma"}
        gamma_jobs = [j for j in report["jobs"] if j["tenant"] == "gamma"]
        held = [j for j in gamma_jobs if j["held"] > 0]
        assert held  # over-quota job was queued, not run

        # Resubmitting the identical batch over the same state dir hits
        # the schedule cache for every job.
        rc = main(["serve", "--jobs", str(jobs), "--workers", "3",
                   "--quota", "gamma=1", "--min-cache-hit-rate", "1.0",
                   "--out-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "hit rate 100%" in out

    def test_serve_fails_below_min_hit_rate(self, tmp_path, capsys):
        jobs = tmp_path / "batch.jsonl"
        self._submit(jobs, "a", "cold", 2)
        rc = main(["serve", "--jobs", str(jobs),
                   "--min-cache-hit-rate", "1.0",
                   "--out-dir", str(tmp_path)])
        assert rc == 1
        assert "CACHE MISS RATE TOO HIGH" in capsys.readouterr().out

    def test_serve_quota_lines_in_batch_file(self, tmp_path, capsys):
        import json

        jobs = tmp_path / "batch.jsonl"
        with open(jobs, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"quota": {"tenant": "a",
                                           "max_concurrent": 1}}) + "\n")
            fh.write(json.dumps({"tenant": "a", "name": "j1",
                                 "n_steps": 2, "n_buckets": 3}) + "\n")
            fh.write(json.dumps({"tenant": "a", "name": "j2",
                                 "n_steps": 3, "n_buckets": 3}) + "\n")
        rc = main(["serve", "--jobs", str(jobs), "--workers", "2",
                   "--expect-quota-held", "--out-dir", str(tmp_path)])
        assert rc == 0, capsys.readouterr().out

    def test_serve_rejects_bad_batch(self, tmp_path):
        jobs = tmp_path / "bad.jsonl"
        jobs.write_text('{"tenant": "a"}\n')
        with pytest.raises(SystemExit, match="name"):
            main(["serve", "--jobs", str(jobs)])
        with pytest.raises(SystemExit, match="no such batch"):
            main(["serve", "--jobs", str(tmp_path / "missing.jsonl")])

    def test_jobs_lists_records(self, tmp_path, capsys):
        jobs = tmp_path / "batch.jsonl"
        self._submit(jobs, "alpha", "a1", 2)
        self._submit(jobs, "beta", "b1", 3)
        assert main(["serve", "--jobs", str(jobs),
                     "--out-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        rc = main(["jobs", "--out-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "alpha/a1" in out and "beta/b1" in out
        rc = main(["jobs", "--out-dir", str(tmp_path),
                   "--tenant", "alpha", "--limit", "5"])
        out = capsys.readouterr().out
        assert "alpha/a1" in out and "beta/b1" not in out

    def test_jobs_empty_store(self, tmp_path, capsys):
        assert main(["jobs", "--out-dir", str(tmp_path)]) == 0
        assert "no job records" in capsys.readouterr().out


class TestTopCli:
    def _batch(self, jobs):
        """2 tenants: alpha clean, beta fault-injected past the 3.5x
        slowdown objective (stalls under a short lease)."""
        self._submit(jobs, "alpha", "a1", 4)
        self._submit(jobs, "beta", "b1", 4, **{
            "lease-timeout": 5, "fault-seed": 3,
            "stall-rate": 0.5, "stall-seconds": 40})

    _submit = TestServiceCli._submit

    def test_jsonl_once_streams_attributed_events(self, tmp_path, capsys):
        import json

        jobs = tmp_path / "batch.jsonl"
        self._batch(jobs)
        capsys.readouterr()  # drop the submit confirmations
        rc = main(["top", "--jobs", str(jobs), "--out-dir", str(tmp_path),
                   "--workers", "2", "--follow", "--jsonl", "--once"])
        assert rc == 0
        lines = [json.loads(x) for x in
                 capsys.readouterr().out.strip().splitlines()]
        summary = lines[-1]["summary"]
        events = [x for x in lines if "summary" not in x]
        assert summary["all_done"] and summary["jobs"] == 2
        assert summary["alerts"] == {"alpha": 0, "beta": 1}
        assert summary["events_published"] == len(events)
        # every event is tenant/job-attributed
        assert all(e["tenant"] and e["job_id"] for e in events)
        kinds = {e["kind"] for e in events}
        assert {"job", "span", "probe", "alert"} <= kinds

    def test_same_seed_stream_is_byte_identical(self, tmp_path, capsys):
        jobs = tmp_path / "batch.jsonl"
        self._batch(jobs)
        argv = ["top", "--jobs", str(jobs), "--out-dir", str(tmp_path),
                "--workers", "2", "--follow", "--jsonl", "--once",
                "--out", "stream_a.jsonl"]
        assert main(argv) == 0
        capsys.readouterr()
        argv[-1] = "stream_b.jsonl"
        assert main(argv) == 0
        a = (tmp_path / "stream_a.jsonl").read_bytes()
        b = (tmp_path / "stream_b.jsonl").read_bytes()
        assert a == b and a

    def test_expect_alert_gates(self, tmp_path, capsys):
        jobs = tmp_path / "batch.jsonl"
        self._batch(jobs)
        base = ["top", "--jobs", str(jobs), "--out-dir", str(tmp_path),
                "--workers", "2", "--follow", "--jsonl", "--once"]
        assert main(base + ["--expect-alerts", "beta",
                            "--expect-clean", "alpha"]) == 0
        capsys.readouterr()
        # inverted expectations must fail the gate
        assert main(base + ["--expect-alerts", "alpha"]) == 1
        capsys.readouterr()
        assert main(base + ["--expect-clean", "beta"]) == 1
        capsys.readouterr()

    def test_follow_text_view(self, tmp_path, capsys):
        jobs = tmp_path / "batch.jsonl"
        self._submit(jobs, "alpha", "a1", 2)
        rc = main(["top", "--jobs", str(jobs), "--out-dir", str(tmp_path),
                   "--workers", "2", "--follow", "--once"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "events published" in out

    def test_control_artifact_lands_under_out_dir(self, tmp_path,
                                                  monkeypatch, capsys):
        """`repro control` from a subdirectory with a relative --out-dir
        must anchor the JSON at the invoking CWD (regression lock)."""
        monkeypatch.chdir(tmp_path)
        rc = main(["control", "--steps", "4", "--buckets", "3",
                   "--out-dir", "artifacts"])
        assert rc == 0
        assert (tmp_path / "artifacts" / "repro_control.json").exists()
        assert not (tmp_path / "repro_control.json").exists()
