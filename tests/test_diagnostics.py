"""Tests for the combustion diagnostic fields."""

import numpy as np
import pytest

from repro.sim import LiftedFlameCase, S3DProxy, StructuredGrid3D
from repro.sim.diagnostics import (
    add_diagnostics,
    heat_release_rate,
    mixture_fraction,
    scalar_dissipation,
    stoichiometric_mixture_fraction,
    takeno_flame_index,
)
from repro.sim.fields import FieldSet


@pytest.fixture(scope="module")
def flame_fields():
    grid = StructuredGrid3D((24, 16, 12), (3.0, 2.0, 1.5))
    solver = S3DProxy(LiftedFlameCase(grid, seed=71, kernel_rate=1.5))
    solver.step(5)
    return solver.fields


class TestMixtureFraction:
    def test_bounds(self, flame_fields):
        z = mixture_fraction(flame_fields)
        assert z.min() >= 0.0 and z.max() <= 1.0

    def test_pure_streams(self):
        grid = StructuredGrid3D((4, 4, 4))
        fs = FieldSet(grid)
        # pure fuel stream
        fs["H2"] = np.full(grid.shape, 0.3)
        z = mixture_fraction(fs)
        np.testing.assert_allclose(z, 1.0)
        # pure oxidizer stream
        fs["H2"] = np.zeros(grid.shape)
        fs["O2"] = np.full(grid.shape, 0.233)
        np.testing.assert_allclose(mixture_fraction(fs), 0.0)

    def test_conserved_under_reaction(self):
        """Z built on the element-conserved coupling function: consuming
        H2 and O2 stoichiometrically while producing H2O leaves Z fixed."""
        grid = StructuredGrid3D((2, 2, 2))
        fs = FieldSet(grid)
        fs["H2"] = np.full(grid.shape, 0.1)
        fs["O2"] = np.full(grid.shape, 0.2)
        z_before = mixture_fraction(fs)
        # react: dH2 = -w/9, dO2 = -8w/9, dH2O = +w
        w = 0.05
        fs["H2"] = fs["H2"] - w / 9.0
        fs["O2"] = fs["O2"] - 8.0 * w / 9.0
        fs["H2O"] = fs["H2O"] + w
        np.testing.assert_allclose(mixture_fraction(fs), z_before, atol=1e-12)

    def test_jet_structure(self, flame_fields):
        """Z is high on the jet axis, low in the coflow."""
        z = mixture_fraction(flame_fields)
        assert z[:, 8, 6].mean() > z[:, 0, 0].mean()

    def test_stoichiometric_value(self):
        z_st = stoichiometric_mixture_fraction()
        assert 0.0 < z_st < 1.0
        # for the defaults: beta_ox = -0.0291, beta_fu = 0.3
        assert z_st == pytest.approx(0.0291 / 0.3291, rel=1e-2)

    def test_validation(self, flame_fields):
        with pytest.raises(ValueError):
            mixture_fraction(flame_fields, fuel_h2=0.0)
        with pytest.raises(ValueError):
            mixture_fraction(flame_fields, oxidizer_o2=-1.0)


class TestScalarDissipation:
    def test_nonnegative(self, flame_fields):
        chi = scalar_dissipation(flame_fields, 1.5e-3)
        assert chi.min() >= 0.0

    def test_peaks_in_mixing_layer(self, flame_fields):
        """chi concentrates where Z gradients live — the shear layer, not
        the jet core or the far coflow."""
        chi = scalar_dissipation(flame_fields, 1.5e-3)
        corner = chi[:, 0, 0].mean()    # far coflow: essentially unmixed
        assert chi.max() > 1e3 * max(corner, 1e-30)

    def test_scales_linearly_with_diffusivity(self, flame_fields):
        a = scalar_dissipation(flame_fields, 1e-3)
        b = scalar_dissipation(flame_fields, 2e-3)
        np.testing.assert_allclose(b, 2 * a, rtol=1e-12)

    def test_validation(self, flame_fields):
        with pytest.raises(ValueError):
            scalar_dissipation(flame_fields, 0.0)


class TestHeatRelease:
    def test_nonnegative_and_localised(self, flame_fields):
        hrr = heat_release_rate(flame_fields)
        assert hrr.min() >= 0.0
        assert hrr.max() > 0.0
        # burning is localised: most of the domain is (near) inert
        assert np.quantile(hrr, 0.5) < 0.1 * hrr.max()

    def test_zero_without_fuel(self):
        grid = StructuredGrid3D((3, 3, 3))
        fs = FieldSet(grid)
        fs["T"] = np.full(grid.shape, 2.0)
        fs["O2"] = np.full(grid.shape, 0.2)
        np.testing.assert_array_equal(heat_release_rate(fs), 0.0)


class TestFlameIndex:
    def test_bounds(self, flame_fields):
        fi = takeno_flame_index(flame_fields)
        assert fi.min() >= -1.0 and fi.max() <= 1.0

    def test_opposed_gradients_negative(self):
        """A pure diffusion-flame structure: fuel and oxidizer approach
        from opposite sides -> index = -1."""
        grid = StructuredGrid3D((16, 4, 4), (1.0, 1.0, 1.0))
        fs = FieldSet(grid)
        x = grid.meshgrid()[0]
        fs["H2"] = 0.3 * x            # fuel increases with x
        fs["O2"] = 0.233 * (1.0 - x)  # oxidizer decreases
        fi = takeno_flame_index(fs)
        interior = fi[2:-2]
        np.testing.assert_allclose(interior, -1.0, atol=1e-9)

    def test_aligned_gradients_positive(self):
        grid = StructuredGrid3D((16, 4, 4))
        fs = FieldSet(grid)
        x = grid.meshgrid()[0]
        fs["H2"] = 0.3 * x
        fs["O2"] = 0.233 * x  # both increase together (premixed front)
        fi = takeno_flame_index(fs)
        np.testing.assert_allclose(fi[2:-2], 1.0, atol=1e-9)


class TestAddDiagnostics:
    def test_fields_attached(self, flame_fields):
        fs = flame_fields.copy()
        add_diagnostics(fs)
        for name in ("Z", "chi", "HRR", "FI"):
            assert name in fs
            assert fs[name].shape == fs.grid.shape

    def test_diagnostics_usable_by_analyses(self, flame_fields):
        """Derived fields feed the existing pipelines unchanged."""
        from repro.analysis.topology import segment_superlevel
        fs = flame_fields.copy()
        add_diagnostics(fs)
        seg = segment_superlevel(fs["HRR"], 0.5 * float(fs["HRR"].max()))
        assert seg.n_features >= 1
