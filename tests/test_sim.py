"""Tests for the S3D proxy: grid, fields, stencils, chemistry, solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import (
    ArrheniusChemistry,
    DecomposedS3D,
    FieldSet,
    LiftedFlameCase,
    S3DProxy,
    SPECIES_NAMES,
    StructuredGrid3D,
    VARIABLE_NAMES,
    synthetic_turbulence,
)
from repro.sim.s3d import SolverParams
from repro.sim.stencil import (
    crop_ghosts,
    gradient,
    halo_exchange_bytes,
    laplacian,
    pad_with_ghosts,
    upwind_advection,
    vorticity_magnitude,
)
from repro.vmpi import BlockDecomposition3D


class TestGrid:
    def test_spacing(self):
        g = StructuredGrid3D((10, 20, 40), (1.0, 2.0, 4.0))
        assert g.spacing == (0.1, 0.1, 0.1)

    def test_n_cells(self):
        assert StructuredGrid3D((4, 5, 6)).n_cells == 120

    def test_axes_cell_centered(self):
        g = StructuredGrid3D((4, 4, 4), (1.0, 1.0, 1.0))
        x, _, _ = g.axes()
        np.testing.assert_allclose(x, [0.125, 0.375, 0.625, 0.875])

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            StructuredGrid3D((1, 4, 4))
        with pytest.raises(ValueError):
            StructuredGrid3D((4, 4, 4), (0.0, 1.0, 1.0))

    def test_cfl_dt_positive_and_stable(self):
        g = StructuredGrid3D((16, 16, 16))
        dt = g.cfl_dt(max_speed=2.0, diffusivity=1e-3)
        h = min(g.spacing)
        assert 0 < dt <= 0.4 * h / 2.0

    def test_cfl_requires_some_physics(self):
        g = StructuredGrid3D((8, 8, 8))
        with pytest.raises(ValueError):
            g.cfl_dt(0.0, 0.0)
        with pytest.raises(ValueError):
            g.cfl_dt(-1.0, 0.0)


class TestFieldSet:
    def setup_method(self):
        self.grid = StructuredGrid3D((4, 5, 6))

    def test_fourteen_variables(self):
        """Table I: 14 variables."""
        assert len(VARIABLE_NAMES) == 14
        fs = FieldSet(self.grid)
        assert len(fs) == 14

    def test_nbytes_matches_table1_scaling(self):
        fs = FieldSet(self.grid)
        assert fs.nbytes == 14 * 4 * 5 * 6 * 8

    def test_setitem_validates_shape(self):
        fs = FieldSet(self.grid)
        with pytest.raises(ValueError):
            fs["T"] = np.zeros((2, 2, 2))

    def test_unknown_field_raises_with_list(self):
        fs = FieldSet(self.grid)
        with pytest.raises(KeyError, match="available"):
            fs["vorticity"]

    def test_new_field_appends(self):
        fs = FieldSet(self.grid)
        fs["extra"] = np.ones(self.grid.shape)
        assert "extra" in fs
        assert fs.names[-1] == "extra"

    def test_array_roundtrip(self):
        fs = FieldSet(self.grid)
        fs["T"] = np.random.default_rng(0).random(self.grid.shape)
        arr = fs.as_array()
        fs2 = FieldSet.from_array(self.grid, arr)
        np.testing.assert_array_equal(fs2["T"], fs["T"])

    def test_copy_is_deep(self):
        fs = FieldSet(self.grid)
        fs2 = fs.copy()
        fs2["T"][0, 0, 0] = 99.0
        assert fs["T"][0, 0, 0] == 0.0

    def test_species_view(self):
        fs = FieldSet(self.grid)
        assert set(fs.species()) == set(SPECIES_NAMES)


class TestStencils:
    def setup_method(self):
        self.grid = StructuredGrid3D((16, 16, 16), (2 * np.pi,) * 3)
        self.X, self.Y, self.Z = self.grid.meshgrid()

    def test_gradient_of_sin_is_cos(self):
        f = np.sin(self.X)
        gx, gy, gz = gradient(f, self.grid.spacing)
        np.testing.assert_allclose(gx, np.cos(self.X), atol=0.03)
        np.testing.assert_allclose(gy, 0.0, atol=1e-12)
        np.testing.assert_allclose(gz, 0.0, atol=1e-12)

    def test_laplacian_of_sin(self):
        f = np.sin(self.X)
        lap = laplacian(f, self.grid.spacing)
        np.testing.assert_allclose(lap, -np.sin(self.X), atol=0.05)

    def test_laplacian_of_constant_is_zero(self):
        f = np.full(self.grid.shape, 3.7)
        np.testing.assert_allclose(laplacian(f, self.grid.spacing), 0.0, atol=1e-12)

    def test_upwind_constant_advection(self):
        """Advecting a constant field changes nothing."""
        f = np.full(self.grid.shape, 2.0)
        vel = tuple(np.ones(self.grid.shape) for _ in range(3))
        np.testing.assert_allclose(
            upwind_advection(f, vel, self.grid.spacing), 0.0, atol=1e-12)

    def test_upwind_sign_convention(self):
        """For u>0 and df/dx>0, -u df/dx < 0."""
        f = self.X.copy()
        vel = (np.ones(self.grid.shape), np.zeros(self.grid.shape),
               np.zeros(self.grid.shape))
        adv = upwind_advection(f, vel, self.grid.spacing)
        # interior away from the periodic seam
        assert np.all(adv[2:-2] < 0)

    def test_vorticity_of_rigid_rotation(self):
        """u = (-y, x, 0) has |curl| = 2 everywhere."""
        u = -(self.Y - np.pi)
        v = self.X - np.pi
        w = np.zeros(self.grid.shape)
        vort = vorticity_magnitude((u, v, w), self.grid.spacing)
        interior = vort[3:-3, 3:-3, :]
        np.testing.assert_allclose(interior, 2.0, atol=0.05)


class TestGhostExchange:
    def test_pad_matches_periodic_neighbors(self):
        decomp = BlockDecomposition3D((8, 8, 8), (2, 2, 2))
        field = np.random.default_rng(1).random((8, 8, 8))
        parts = decomp.scatter(field)
        padded = pad_with_ghosts(parts, decomp, width=1)
        padded_global = np.pad(field, 1, mode="wrap")
        for b, p in zip(decomp.blocks(), padded):
            sl = tuple(slice(lo, hi + 2) for lo, hi in zip(b.lo, b.hi))
            np.testing.assert_array_equal(p, padded_global[sl])

    def test_crop_inverts_pad(self):
        decomp = BlockDecomposition3D((6, 6, 6), (2, 1, 3))
        field = np.random.default_rng(2).random((6, 6, 6))
        parts = decomp.scatter(field)
        padded = pad_with_ghosts(parts, decomp)
        for part, p in zip(parts, padded):
            np.testing.assert_array_equal(crop_ghosts(p), part)

    def test_stencil_on_ghosted_blocks_matches_global(self):
        """The decomposed-solver invariant: block stencils == global stencil."""
        decomp = BlockDecomposition3D((12, 8, 10), (3, 2, 2))
        spacing = (0.1, 0.2, 0.3)
        field = np.random.default_rng(3).random((12, 8, 10))
        global_lap = laplacian(field, spacing)
        parts = decomp.scatter(field)
        padded = pad_with_ghosts(parts, decomp)
        for b, p in zip(decomp.blocks(), padded):
            local = crop_ghosts(laplacian(p, spacing))
            np.testing.assert_array_equal(local, global_lap[b.slices])

    def test_invalid_width(self):
        decomp = BlockDecomposition3D((4, 4, 4), (2, 2, 2))
        parts = decomp.scatter(np.zeros((4, 4, 4)))
        with pytest.raises(ValueError):
            pad_with_ghosts(parts, decomp, width=0)

    def test_halo_bytes(self):
        decomp = BlockDecomposition3D((8, 8, 8), (2, 2, 2))
        # 4x4x4 blocks: 6 faces of 16 cells = 96 cells * 8 B
        assert halo_exchange_bytes(decomp) == 96 * 8


class TestChemistry:
    def test_rate_zero_without_fuel(self):
        chem = ArrheniusChemistry()
        T = np.full((2, 2, 2), 2.0)
        zero = np.zeros((2, 2, 2))
        np.testing.assert_array_equal(chem.reaction_rate(T, zero, np.ones_like(T)), 0.0)

    def test_rate_increases_with_temperature(self):
        chem = ArrheniusChemistry()
        y = np.full((1, 1, 1), 0.2)
        r_cold = chem.reaction_rate(np.full((1, 1, 1), 0.5), y, y)
        r_hot = chem.reaction_rate(np.full((1, 1, 1), 3.0), y, y)
        assert r_hot > r_cold

    def test_source_terms_mass_stoichiometry(self):
        """H2 and O2 are consumed 1:8 by mass."""
        chem = ArrheniusChemistry()
        T = np.full((1, 1, 1), 2.0)
        Y = {s: np.full((1, 1, 1), 0.1) for s in SPECIES_NAMES}
        _dT, dY = chem.source_terms(T, Y)
        assert dY["H2"][0, 0, 0] < 0
        assert dY["O2"][0, 0, 0] == pytest.approx(8 * dY["H2"][0, 0, 0])
        assert dY["H2O"][0, 0, 0] > 0
        np.testing.assert_array_equal(dY["N2"], 0.0)

    def test_heat_release_positive(self):
        chem = ArrheniusChemistry()
        T = np.full((1, 1, 1), 2.0)
        Y = {s: np.full((1, 1, 1), 0.1) for s in SPECIES_NAMES}
        dT, _ = chem.source_terms(T, Y)
        assert dT[0, 0, 0] > 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ArrheniusChemistry(pre_exponential=-1.0)


class TestTurbulence:
    def test_divergence_free(self):
        grid = StructuredGrid3D((24, 24, 24), (2 * np.pi,) * 3)
        u, v, w = synthetic_turbulence(grid, seed=4)
        gx, _, _ = gradient(u, grid.spacing)
        _, gy, _ = gradient(v, grid.spacing)
        _, _, gz = gradient(w, grid.spacing)
        div = gx + gy + gz
        # Discrete central-difference divergence of an exactly periodic,
        # analytically solenoidal field is small relative to the velocity.
        assert np.max(np.abs(div)) < 0.25 * np.max(np.abs(u))

    def test_rms_normalisation(self):
        grid = StructuredGrid3D((16, 16, 16))
        u, v, w = synthetic_turbulence(grid, rms_velocity=0.5, seed=5)
        rms = np.sqrt(np.mean(u * u + v * v + w * w))
        assert rms == pytest.approx(0.5, rel=1e-9)

    def test_deterministic(self):
        grid = StructuredGrid3D((8, 8, 8))
        u1, _, _ = synthetic_turbulence(grid, seed=6)
        u2, _, _ = synthetic_turbulence(grid, seed=6)
        np.testing.assert_array_equal(u1, u2)

    def test_zero_rms(self):
        grid = StructuredGrid3D((8, 8, 8))
        u, v, w = synthetic_turbulence(grid, rms_velocity=0.0, seed=1)
        assert np.all(u == 0) and np.all(v == 0) and np.all(w == 0)

    def test_invalid_args(self):
        grid = StructuredGrid3D((8, 8, 8))
        with pytest.raises(ValueError):
            synthetic_turbulence(grid, n_modes=0)
        with pytest.raises(ValueError):
            synthetic_turbulence(grid, rms_velocity=-1.0)


class TestLiftedFlame:
    def setup_method(self):
        self.grid = StructuredGrid3D((24, 16, 16), (3.0, 2.0, 2.0))
        self.case = LiftedFlameCase(self.grid)

    def test_initial_fields_complete(self):
        fs = self.case.initial_fields()
        assert set(VARIABLE_NAMES) <= set(fs.names)

    def test_jet_is_cold_and_fueled(self):
        fs = self.case.initial_fields()
        center = fs["T"][:, 8, 8]
        edge = fs["T"][:, 0, 0]
        assert center.mean() < edge.mean()
        assert fs["H2"][:, 8, 8].mean() > fs["H2"][:, 0, 0].mean()

    def test_mass_fractions_sum_to_one(self):
        fs = self.case.initial_fields()
        total = sum(fs[s] for s in SPECIES_NAMES)
        np.testing.assert_allclose(total, 1.0, atol=1e-12)

    def test_flammable_mask_in_mixing_layer(self):
        fs = self.case.initial_fields()
        mask = self.case.flammable_mask(fs)
        assert mask.any()
        assert not mask.all()

    def test_kernels_only_in_flammable_region(self):
        fs = self.case.initial_fields()
        mask = self.case.flammable_mask(fs)
        case = LiftedFlameCase(self.grid, kernel_rate=5.0, seed=11)
        centers = []
        for step in range(5):
            centers += case.seed_kernels(fs, step)
        assert centers, "expected at least one kernel over 5 steps at rate 5"
        for c in centers:
            assert mask[c]

    def test_kernel_raises_temperature(self):
        fs = self.case.initial_fields()
        t_before = fs["T"].max()
        case = LiftedFlameCase(self.grid, kernel_rate=20.0, seed=3)
        seeded = case.seed_kernels(fs, 0)
        if seeded:
            assert fs["T"].max() > t_before

    def test_deterministic_kernel_sequence(self):
        a = LiftedFlameCase(self.grid, kernel_rate=3.0, seed=9)
        b = LiftedFlameCase(self.grid, kernel_rate=3.0, seed=9)
        fa, fb = a.initial_fields(), b.initial_fields()
        assert a.seed_kernels(fa, 0) == b.seed_kernels(fb, 0)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            LiftedFlameCase(self.grid, jet_radius_fraction=0.9)
        with pytest.raises(ValueError):
            LiftedFlameCase(self.grid, kernel_rate=-1.0)


class TestS3DProxy:
    def _solver(self, shape=(16, 12, 12), **kw):
        grid = StructuredGrid3D(shape, (2.0, 1.5, 1.5))
        case = LiftedFlameCase(grid, seed=13, **kw)
        return S3DProxy(case)

    def test_step_advances_counter_and_state(self):
        s = self._solver()
        t0 = s.fields["T"].copy()
        s.step(3)
        assert s.step_count == 3
        assert not np.array_equal(s.fields["T"], t0)

    def test_species_stay_physical(self):
        s = self._solver(kernel_rate=2.0)
        s.step(10)
        for sp in SPECIES_NAMES:
            arr = s.fields[sp]
            assert arr.min() >= 0.0 and arr.max() <= 1.0

    def test_temperature_bounded_below(self):
        s = self._solver()
        s.step(10)
        assert s.fields["T"].min() >= 1e-3

    def test_no_kernels_when_disabled(self):
        grid = StructuredGrid3D((12, 12, 12))
        case = LiftedFlameCase(grid, kernel_rate=50.0, seed=1)
        s = S3DProxy(case, seed_kernels=False)
        s.step(3)
        assert s.kernel_history == []

    def test_reaction_consumes_fuel_globally(self):
        s = self._solver(kernel_rate=5.0, kernel_amplitude=3.0)
        fuel0 = s.fields["H2"].sum()
        s.step(15)
        assert s.fields["H2"].sum() < fuel0

    def test_op_descriptor(self):
        s = self._solver()
        d = s.op_descriptor()
        assert d.op == "s3d.step"
        assert d.n_elements == s.grid.n_cells

    def test_invalid_step_count(self):
        with pytest.raises(ValueError):
            self._solver().step(0)

    def test_explicit_dt_respected(self):
        grid = StructuredGrid3D((8, 8, 8))
        case = LiftedFlameCase(grid)
        s = S3DProxy(case, params=SolverParams(dt=1e-4))
        assert s.dt == 1e-4
        with pytest.raises(ValueError):
            S3DProxy(case, params=SolverParams(dt=-1.0))


class TestDecomposedMatchesGlobal:
    """The headline solver invariant: block-parallel == global, bitwise."""

    @pytest.mark.parametrize("grid_shape,proc_grid", [
        ((12, 8, 8), (2, 2, 2)),
        ((12, 8, 8), (3, 1, 2)),
        ((9, 7, 5), (2, 2, 1)),  # uneven split
    ])
    def test_bitwise_equal_after_steps(self, grid_shape, proc_grid):
        grid = StructuredGrid3D(grid_shape, (1.5, 1.0, 1.0))
        case_a = LiftedFlameCase(grid, seed=21, kernel_rate=1.0)
        case_b = LiftedFlameCase(grid, seed=21, kernel_rate=1.0)
        global_solver = S3DProxy(case_a)
        decomp = BlockDecomposition3D(grid_shape, proc_grid)
        block_solver = DecomposedS3D(case_b, decomp)
        global_solver.step(4)
        block_solver.step(4)
        assembled = block_solver.assemble()
        for name in VARIABLE_NAMES:
            np.testing.assert_array_equal(
                assembled[name], global_solver.fields[name],
                err_msg=f"variable {name} diverged")

    def test_mismatched_decomp_raises(self):
        grid = StructuredGrid3D((8, 8, 8))
        case = LiftedFlameCase(grid)
        with pytest.raises(ValueError):
            DecomposedS3D(case, BlockDecomposition3D((6, 6, 6), (2, 1, 1)))

    def test_rank_descriptor(self):
        grid = StructuredGrid3D((8, 8, 8))
        case = LiftedFlameCase(grid)
        d = DecomposedS3D(case, BlockDecomposition3D((8, 8, 8), (2, 2, 2)))
        assert d.rank_op_descriptor(0).n_elements == 64
