"""Tests for binary-swap parallel compositing and its cost model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.visualization import (
    Camera,
    TransferFunction,
    binary_swap_composite,
    binary_swap_time,
    direct_send_time,
    pad_to_power_of_two,
)
from repro.analysis.visualization.compositing import (
    composite_partials,
    render_block_partial,
    visibility_order,
)
from repro.machine.gemini import GeminiNetwork
from repro.util import image_rmse
from repro.util.units import MB
from repro.vmpi import BlockDecomposition3D


def _partials_from_scene(proc_grid=(2, 2, 2), shape=(12, 10, 8), seed=70):
    rng = np.random.default_rng(seed)
    coords = np.stack(np.mgrid[[slice(0, s) for s in shape]]).astype(float)
    f = np.zeros(shape)
    for _ in range(4):
        c = [rng.uniform(1, s - 1) for s in shape]
        f += rng.uniform(0.5, 1.5) * np.exp(
            -sum((coords[a] - c[a]) ** 2 for a in range(3)) / 6.0)
    decomp = BlockDecomposition3D(shape, proc_grid)
    tf = TransferFunction.hot(float(f.min()), float(f.max()))
    cam = Camera(image_shape=(10, 10), azimuth_deg=25, elevation_deg=15)
    partials = [render_block_partial(f, b, decomp, cam, tf)
                for b in decomp.blocks()]
    _, direction, _ = cam.rays(shape)
    order = visibility_order(decomp, direction)
    return partials, order


class TestBinarySwap:
    def test_matches_direct_compositing(self):
        partials, order = _partials_from_scene()
        direct = composite_partials(partials, order)
        rgb, alpha, _ = binary_swap_composite(partials, order)
        swapped = rgb + (1.0 - alpha[..., None]) * 0.0
        assert image_rmse(direct, swapped) < 1e-9

    @given(st.integers(0, 1000))
    @settings(max_examples=8, deadline=None)
    def test_property_matches_direct_random_scenes(self, seed):
        partials, order = _partials_from_scene(seed=seed)
        direct = composite_partials(partials, order)
        rgb, alpha, _ = binary_swap_composite(partials, order)
        assert image_rmse(direct, rgb) < 1e-9

    def test_two_ranks(self):
        partials, order = _partials_from_scene(proc_grid=(2, 1, 1))
        direct = composite_partials(partials, order)
        rgb, _a, _ = binary_swap_composite(partials, order)
        assert image_rmse(direct, rgb) < 1e-9

    def test_non_power_of_two_rejected(self):
        partials, _ = _partials_from_scene(proc_grid=(3, 1, 1))
        with pytest.raises(ValueError, match="power-of-two"):
            binary_swap_composite(partials, [0, 1, 2])

    def test_padding_enables_any_count(self):
        partials, order = _partials_from_scene(proc_grid=(3, 1, 1))
        direct = composite_partials(partials, order)
        padded = pad_to_power_of_two(partials)
        assert len(padded) == 4
        rgb, _a, _ = binary_swap_composite(padded, order + [3])
        assert image_rmse(direct, rgb) < 1e-9

    def test_bad_order_rejected(self):
        partials, _ = _partials_from_scene(proc_grid=(2, 1, 1))
        with pytest.raises(ValueError, match="permutation"):
            binary_swap_composite(partials, [0, 0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            binary_swap_composite([], [])
        with pytest.raises(ValueError):
            pad_to_power_of_two([])

    def test_bytes_exchanged_bounded_by_one_image(self):
        """The binary-swap property: per-rank traffic ~ one image."""
        partials, order = _partials_from_scene()
        h, w, _ = partials[0][0].shape
        image_bytes = h * w * 4 * 8
        _rgb, _a, sent = binary_swap_composite(partials, order)
        assert sent <= image_bytes


class TestCompositingCostModel:
    def setup_method(self):
        self.net = GeminiNetwork()

    def test_swap_beats_direct_at_scale(self):
        """At the paper's 4480 ranks, binary swap is orders of magnitude
        cheaper than funnelling full partials into one root."""
        image = 4 * MB
        swap = binary_swap_time(self.net, 4480, image)
        direct = direct_send_time(self.net, 4480, image)
        assert swap < direct / 100

    def test_swap_time_grows_sublinearly_with_ranks(self):
        """64x more ranks costs ~5x (gather latency terms), far below the
        64x a naive direct send pays."""
        image = 4 * MB
        t64 = binary_swap_time(self.net, 64, image)
        t4096 = binary_swap_time(self.net, 4096, image)
        assert t4096 < 10 * t64
        assert (direct_send_time(self.net, 4096, image)
                / direct_send_time(self.net, 64, image)) > 50

    def test_single_rank_free(self):
        assert binary_swap_time(self.net, 1, MB) == 0.0
        assert direct_send_time(self.net, 1, MB) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            binary_swap_time(self.net, 0, MB)
        with pytest.raises(ValueError):
            binary_swap_time(self.net, 4, -1)
