"""Tests for latency blame attribution and trace diffing."""

import pytest

from repro.core import ExperimentConfig, ScaledExperiment
from repro.faults import FaultConfig, run_resilience_experiment
from repro.obs import (
    BLAME_BUCKETS,
    Tracer,
    blame,
    diff_traces,
    flow_edge_totals,
    render_trace_diff,
    tracing,
    write_trace_diff,
)
from repro.obs.blame import BlameBreakdown
from repro.obs.flow import (
    BLAME_COMPUTE,
    BLAME_QUEUE_WAIT,
    BLAME_RETRY_BACKOFF,
    BLAME_SCHEDULER_IDLE,
    BLAME_TRANSPORT,
    EDGE_NOTIFY,
    EDGE_QUEUE,
    EDGE_RETRY,
    EDGE_SERVICE,
)


def _traced_schedule(n_steps=4, n_buckets=4):
    exp = ScaledExperiment(ExperimentConfig.paper_4896())
    tracer, result, expected = exp.traced_schedule(n_steps=n_steps,
                                                   n_buckets=n_buckets)
    return tracer.trace


def _traced_resilience(config, **kwargs):
    with tracing() as tracer:
        report = run_resilience_experiment(config=config, **kwargs)
    return tracer.trace, report


class TestBlameBreakdown:
    def test_exact_sum_on_paper_schedule(self):
        trace = _traced_schedule()
        report = blame(trace)
        assert report.method == "causal"
        # Acceptance: the five buckets sum to the makespan within 1e-6.
        assert abs(report.overall.total - report.makespan) <= 1e-6
        assert report.overall.check(tol=1e-6)
        assert set(report.overall.buckets) == set(BLAME_BUCKETS)
        assert all(v >= 0.0 for v in report.overall.buckets.values())

    def test_per_step_windows_sum_exactly(self):
        trace = _traced_schedule()
        report = blame(trace)
        assert len(report.steps) == 4
        for step in report.steps:
            assert step.breakdown.check(tol=1e-6)
            assert step.latency > 0
            assert step.n_flows == 3  # three hybrid analyses per step

    def test_compute_dominates_fault_free_schedule(self):
        report = blame(_traced_schedule())
        assert report.overall.share(BLAME_COMPUTE) > 0.9
        assert report.overall.buckets[BLAME_RETRY_BACKOFF] == 0.0

    def test_hand_built_chain_buckets(self):
        # insitu [0,1] --notify 1.2--queue 2--> wire [2,3] --> dst [3,6]
        tracer = Tracer()
        src = tracer.add_span("produce", lane="sim", t_start=0.0, t_end=1.0,
                              stage="insitu")
        flow = tracer.flow_begin("task", src_span=src, t=1.0)
        tracer.flow_step(flow, EDGE_NOTIFY, "sched", t=1.2)
        tracer.flow_step(flow, EDGE_QUEUE, "sched", t=2.0)
        wire = tracer.add_span("pull", lane="b", t_start=2.0, t_end=3.0,
                               stage="movement")
        tracer.flow_through(flow, EDGE_SERVICE, wire)
        dst = tracer.add_span("consume", lane="b", t_start=3.0, t_end=6.0,
                              stage="intransit")
        tracer.flow_end(flow, EDGE_SERVICE, dst)

        report = blame(tracer.trace)
        b = report.overall.buckets
        assert report.makespan == pytest.approx(6.0)
        assert b[BLAME_COMPUTE] == pytest.approx(1.0 + 3.0)  # insitu + dst
        assert b[BLAME_TRANSPORT] == pytest.approx(0.2 + 1.0)  # notify+wire
        assert b[BLAME_QUEUE_WAIT] == pytest.approx(0.8)
        assert report.overall.check()

    def test_unexplained_gap_charges_scheduler_idle(self):
        tracer = Tracer()
        tracer.add_span("a", lane="l", t_start=0.0, t_end=1.0,
                        stage="simulation")
        tracer.add_span("b", lane="l", t_start=5.0, t_end=6.0,
                        stage="simulation")
        report = blame(tracer.trace)
        assert report.overall.buckets[BLAME_SCHEDULER_IDLE] == pytest.approx(
            4.0)
        assert report.overall.check()

    def test_empty_trace(self):
        report = blame(Tracer().trace)
        assert report.makespan == 0.0
        assert report.overall.check()
        assert report.steps == []

    def test_breakdown_always_has_all_buckets(self):
        bd = BlameBreakdown(t_start=0.0, t_end=0.0)
        assert set(bd.buckets) == set(BLAME_BUCKETS)
        assert bd.share(BLAME_COMPUTE) == 0.0

    def test_report_table_and_dict(self):
        report = blame(_traced_schedule())
        text = report.table()
        for bucket in BLAME_BUCKETS:
            assert bucket in text
        d = report.to_dict()
        assert d["makespan"] == pytest.approx(report.makespan)
        assert sum(d["overall"].values()) == pytest.approx(d["makespan"])
        assert len(d["steps"]) == len(report.steps)

    def test_flow_edge_totals_excludes_span_residency(self):
        trace = _traced_schedule()
        flow = trace.flows[0]
        exact = flow_edge_totals(trace, flow)
        naive = flow.edge_totals()
        # The wire span's residency leaks into the naive service figure
        # but must not appear in the exact decomposition.
        assert exact.get(EDGE_SERVICE, 0.0) <= naive.get(EDGE_SERVICE, 0.0)
        assert all(v >= 0.0 for v in exact.values())


class TestRetryBlame:
    def test_retry_backoff_charged_under_faults(self):
        trace, rep = _traced_resilience(
            FaultConfig(pull_failure_rate=0.35, seed=7),
            n_tasks=12, n_buckets=2, pull_backoff_base=5e-3)
        assert rep.pull_failures_injected > 0
        report = blame(trace)
        assert report.overall.check(tol=1e-6)
        assert report.overall.buckets[BLAME_RETRY_BACKOFF] > 0.0
        assert report.edge_totals.get(EDGE_RETRY, 0.0) > 0.0


class TestTraceDiff:
    def test_self_diff_is_all_zeros(self):
        trace = _traced_schedule()
        diff = diff_traces(trace, trace)
        assert diff.makespan_delta == 0.0
        assert all(a == b for a, b in diff.blame_buckets.values())
        assert diff.unmatched_a == diff.unmatched_b == 0
        assert all(fd.delta == 0.0 for fd in diff.flows)

    def test_fault_diff_blames_retry_backoff(self):
        """Acceptance: diffing a fault-injected run against the fault-free
        run attributes most of the makespan delta to retry-and-backoff."""
        clean, _ = _traced_resilience(
            FaultConfig(), n_tasks=12, n_buckets=2, pull_backoff_base=5e-3)
        faulted, rep = _traced_resilience(
            FaultConfig(pull_failure_rate=0.35, seed=7),
            n_tasks=12, n_buckets=2, pull_backoff_base=5e-3)
        assert rep.pull_failures_injected > 0
        diff = diff_traces(clean, faulted, a_label="clean",
                           b_label="faulted")
        assert diff.makespan_delta > 0
        assert diff.dominant_bucket() == BLAME_RETRY_BACKOFF
        assert diff.blame_delta_share(BLAME_RETRY_BACKOFF) > 0.5
        text = diff.table()
        assert "retry_backoff" in text and "faulted" in text

    def test_flows_align_by_task_id(self):
        clean, _ = _traced_resilience(FaultConfig(), n_tasks=6, n_buckets=2)
        other, _ = _traced_resilience(FaultConfig(), n_tasks=6, n_buckets=2)
        diff = diff_traces(clean, other)
        assert len(diff.flows) == 6
        assert diff.unmatched_a == diff.unmatched_b == 0

    def test_step_latencies_aligned(self):
        a = _traced_schedule(n_steps=3)
        b = _traced_schedule(n_steps=3)
        diff = diff_traces(a, b)
        assert set(diff.step_latencies) == {0, 1, 2}
        for la, lb in diff.step_latencies.values():
            assert la == pytest.approx(lb)

    def test_to_dict_round_trips_to_json(self):
        import json

        trace = _traced_schedule(n_steps=2)
        diff = diff_traces(trace, trace)
        payload = json.dumps(diff.to_dict())
        assert "makespan_delta" in payload


class TestDiffHtml:
    def test_render_contains_buckets_and_labels(self):
        clean, _ = _traced_resilience(
            FaultConfig(), n_tasks=6, n_buckets=2, pull_backoff_base=5e-3)
        faulted, _ = _traced_resilience(
            FaultConfig(pull_failure_rate=0.35, seed=7),
            n_tasks=6, n_buckets=2, pull_backoff_base=5e-3)
        diff = diff_traces(clean, faulted, a_label="clean",
                           b_label="faulted")
        page = render_trace_diff(diff)
        assert page.startswith("<!DOCTYPE html>")
        for bucket in BLAME_BUCKETS:
            assert bucket in page
        assert "clean" in page and "faulted" in page
        assert "<script" not in page  # self-contained, no JS

    def test_write_trace_diff(self, tmp_path):
        trace = _traced_schedule(n_steps=2)
        diff = diff_traces(trace, trace)
        out = write_trace_diff(tmp_path / "diff.html", diff)
        assert out.exists()
        assert "trace diff" in out.read_text()
