"""The live telemetry plane: bus, burn-rate SLOs, context, `repro top`."""

import json

import pytest

from repro.obs.live import (
    Alert,
    BurnRateMonitor,
    BusEvent,
    SloObjective,
    TelemetryBus,
    default_objectives,
    event_to_json,
    render_top,
)
from repro.obs.metrics import Gauge
from repro.obs.probes import ProbeSampler, SloRule, SummarySlo
from repro.obs.tracer import NULL_TRACER, Tracer, tracing
from repro.service import CampaignService, JobSpec, TenantQuota


class TestTelemetryBus:
    def test_publish_and_poll_in_order(self):
        bus = TelemetryBus(capacity=8)
        sub = bus.subscribe("reader")
        for i in range(3):
            bus.publish("instant", f"e{i}", t=float(i), tenant="t",
                        job_id="j")
        events = sub.poll()
        assert [e.name for e in events] == ["e0", "e1", "e2"]
        assert [e.seq for e in events] == [0, 1, 2]
        assert sub.poll() == []
        bus.publish("instant", "e3", t=3.0)
        assert [e.name for e in sub.poll()] == ["e3"]

    def test_independent_subscriber_cursors(self):
        bus = TelemetryBus(capacity=8)
        a, b = bus.subscribe("a"), bus.subscribe("b")
        bus.publish("instant", "x", t=0.0)
        assert len(a.poll()) == 1
        bus.publish("instant", "y", t=1.0)
        assert [e.name for e in b.poll()] == ["x", "y"]
        assert [e.name for e in a.poll()] == ["y"]

    def test_late_subscriber_starts_at_retained_head(self):
        bus = TelemetryBus(capacity=2)
        for i in range(5):
            bus.publish("instant", f"e{i}", t=float(i))
        sub = bus.subscribe("late")
        events = sub.poll()
        # Only the retained tail is visible; nothing counts as dropped
        # for a subscriber that never had a claim on the evicted events.
        assert [e.name for e in events] == ["e3", "e4"]
        assert sub.dropped == 0

    def test_overflow_counts_drops_and_cursor_never_regresses(self):
        bus = TelemetryBus(capacity=4)
        sub = bus.subscribe("slow")
        for i in range(4):
            bus.publish("instant", f"e{i}", t=float(i))
        assert [e.name for e in sub.poll()] == ["e0", "e1", "e2", "e3"]
        cursor_after_first = sub.cursor
        # Overflow the ring while the subscriber sleeps: 6 more events
        # into a 4-slot ring evicts e4 and e5 before the next poll.
        for i in range(4, 10):
            bus.publish("instant", f"e{i}", t=float(i))
        assert bus.dropped_total == 6  # e0..e5 evicted overall
        events = sub.poll()
        assert [e.name for e in events] == ["e6", "e7", "e8", "e9"]
        assert sub.dropped == 2  # e4, e5 were lost to this subscriber
        assert sub.cursor == bus.published
        assert sub.cursor >= cursor_after_first  # monotone, never backwards
        assert sub.poll() == [] and sub.cursor == bus.published

    def test_max_events_cap_keeps_remainder(self):
        bus = TelemetryBus()
        sub = bus.subscribe("capped")
        for i in range(5):
            bus.publish("instant", f"e{i}", t=float(i))
        assert [e.name for e in sub.poll(max_events=2)] == ["e0", "e1"]
        assert sub.pending == 3
        assert [e.name for e in sub.poll()] == ["e2", "e3", "e4"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TelemetryBus(capacity=0)

    def test_event_json_is_stable(self):
        event = BusEvent(seq=1, t=2.5, kind="probe", name="q", lane="probe",
                         tenant="a", job_id="a/j#1", data={"value": 3.0})
        line = event_to_json(event)
        assert json.loads(line) == event.to_dict()
        assert line == event_to_json(event)  # same bytes every time


class TestBurnRateMonitor:
    def _objective(self, **kw):
        base = dict(name="slo", metric="m", target=1.0, budget=0.25,
                    fast_window=10.0, slow_window=40.0, fast_burn=2.0,
                    slow_burn=1.0)
        base.update(kw)
        return SloObjective(**base)

    def test_single_bad_observation_fires(self):
        mon = BurnRateMonitor((self._objective(),))
        fired = mon.observe("t", "m", t=0.0, value=2.0, job_id="t/j#1")
        assert len(fired) == 1
        alert = fired[0]
        assert alert.tenant == "t" and alert.objective == "slo"
        assert alert.burn_fast == pytest.approx(4.0)  # 1/1 bad over 0.25
        assert alert.job_id == "t/j#1"
        assert mon.active("t") == [alert]

    def test_good_observations_do_not_fire(self):
        mon = BurnRateMonitor((self._objective(),))
        for t in range(5):
            assert mon.observe("t", "m", t=float(t), value=0.5) == []
        assert mon.active() == []

    def test_sustained_violation_is_one_alert_until_recovery(self):
        mon = BurnRateMonitor((self._objective(),))
        for t in range(4):
            mon.observe("t", "m", t=float(t), value=2.0)
        assert len(mon.alerts) == 1
        # Recovery: enough good samples dilute both windows below their
        # burn thresholds, re-arming the objective...
        for t in range(4, 30):
            mon.observe("t", "m", t=float(t), value=0.5)
        assert mon.active() == []
        # ...so the next violation pages again.
        for t in range(50, 60):
            mon.observe("t", "m", t=float(t), value=2.0)
        assert len(mon.alerts) == 2

    def test_fast_window_forgets_old_badness(self):
        mon = BurnRateMonitor((self._objective(),))
        mon.observe("t", "m", t=0.0, value=2.0)  # fires
        assert len(mon.alerts) == 1
        # 30s later the bad sample left the fast window but not the slow
        # one; a healthy stream must not re-fire.
        for t in range(30, 38):
            mon.observe("t", "m", t=float(t), value=0.5)
        assert len(mon.alerts) == 1

    def test_tenants_are_isolated(self):
        mon = BurnRateMonitor((self._objective(),))
        mon.observe("bad", "m", t=0.0, value=9.0)
        mon.observe("good", "m", t=0.0, value=0.1)
        assert [a.tenant for a in mon.alerts] == ["bad"]
        assert mon.active("good") == []
        assert mon.alerts_for("bad") and not mon.alerts_for("good")

    def test_unknown_metric_is_ignored(self):
        mon = BurnRateMonitor((self._objective(),))
        assert mon.observe("t", "other", t=0.0, value=99.0) == []

    def test_alerts_publish_on_bus_with_attribution(self):
        bus = TelemetryBus()
        sub = bus.subscribe("s")
        mon = BurnRateMonitor((self._objective(),), bus=bus)
        mon.observe("t", "m", t=1.0, value=5.0, job_id="t/j#1")
        events = sub.poll()
        assert len(events) == 1
        e = events[0]
        assert e.kind == "alert" and e.tenant == "t" and e.job_id == "t/j#1"
        assert e.data["value"] == 5.0 and e.lane == "slo"

    def test_default_objectives(self):
        objs = default_objectives(queue_wait_target=10.0,
                                  slowdown_target=2.0)
        assert {o.metric for o in objs} == {"queue_wait_s",
                                            "makespan_slowdown"}
        mon = BurnRateMonitor(objs)
        mon.observe("t", "queue_wait_s", t=0.0, value=11.0)
        mon.observe("t", "makespan_slowdown", t=0.0, value=1.5)
        assert [a.metric for a in mon.alerts] == ["queue_wait_s"]

    def test_objective_validation(self):
        with pytest.raises(ValueError):
            self._objective(budget=0.0)
        with pytest.raises(ValueError):
            self._objective(budget=1.5)
        with pytest.raises(ValueError):
            self._objective(fast_window=20.0, slow_window=10.0)
        with pytest.raises(ValueError):
            self._objective(fast_burn=0.0)

    def test_alert_round_trips_to_dict(self):
        alert = Alert(tenant="t", objective="o", metric="m", severity="page",
                      t=1.0, value=2.0, target=1.0, burn_fast=4.0,
                      burn_slow=4.0, job_id="t/j#1", message="msg")
        d = alert.to_dict()
        assert d["tenant"] == "t" and d["burn_fast"] == 4.0
        assert json.dumps(d)  # JSON-safe


class TestTracerContextAndBus:
    def test_context_tags_merge_into_spans_and_instants(self):
        tracer = Tracer()
        with tracer.context(tenant="a", job="a/j#1"):
            with tracer.span("work", lane="x"):
                pass
            tracer.instant("ping", lane="x")
            rec = tracer.add_span("modeled", lane="y", t_start=0.0, t_end=1.0)
        span = tracer.trace.closed_spans()[0]
        assert span.tags["tenant"] == "a" and span.tags["job"] == "a/j#1"
        assert tracer.trace.instants[0].tags["tenant"] == "a"
        assert rec.tags["tenant"] == "a"
        # Context is restored on exit.
        tracer.instant("after", lane="x")
        assert "tenant" not in tracer.trace.instants[-1].tags
        assert tracer.context_tags() == {}

    def test_context_nesting_shadows_and_skips_none(self):
        tracer = Tracer()
        with tracer.context(tenant="outer", job=None):
            assert tracer.context_tags() == {"tenant": "outer"}
            with tracer.context(tenant="inner"):
                tracer.instant("i", lane="x")
            assert tracer.context_tags() == {"tenant": "outer"}
        assert tracer.trace.instants[0].tags["tenant"] == "inner"

    def test_explicit_tags_win_over_context(self):
        tracer = Tracer()
        with tracer.context(tenant="ctx"):
            tracer.instant("i", lane="x", tenant="explicit")
        assert tracer.trace.instants[0].tags["tenant"] == "explicit"

    def test_spans_and_instants_publish_on_bus(self):
        tracer = Tracer()
        bus = tracer.attach_bus(TelemetryBus())
        sub = bus.subscribe("s")
        with tracer.context(tenant="a", job="a/j#1"):
            with tracer.span("work", lane="x", stage="insitu"):
                pass
            tracer.instant("sched.assign", lane="sched", bucket=2)
        events = sub.poll()
        assert [(e.kind, e.name) for e in events] == [
            ("span", "work"), ("instant", "sched.assign")]
        span_event = events[0]
        assert span_event.tenant == "a" and span_event.job_id == "a/j#1"
        assert span_event.data["stage"] == "insitu"
        assert events[1].data == {"bucket": 2}

    def test_add_span_publishes_with_des_times(self):
        tracer = Tracer()
        bus = tracer.attach_bus(TelemetryBus())
        sub = bus.subscribe("s")
        tracer.add_span("sim", lane="sim", t_start=1.0, t_end=3.0,
                        stage="simulation")
        e = sub.poll()[0]
        assert e.t == 3.0
        assert e.data["t_start"] == 1.0 and e.data["duration"] == 2.0

    def test_detach_bus_stops_publishing(self):
        tracer = Tracer()
        bus = tracer.attach_bus(TelemetryBus())
        tracer.instant("a", lane="x")
        tracer.attach_bus(None)
        tracer.instant("b", lane="x")
        assert bus.published == 1

    def test_null_tracer_compiles_out(self):
        assert NULL_TRACER.bus is None
        assert NULL_TRACER.attach_bus(TelemetryBus()) is None
        assert NULL_TRACER.bus is None
        with NULL_TRACER.context(tenant="a"):
            pass
        assert NULL_TRACER.context_tags() == {}


class TestGaugeMirrorWithLiveSubscribers:
    def _sampler(self, tracer, depth):
        return ProbeSampler(
            interval=1.0, probes={"q": lambda: float(depth[0])},
            slos=(SloRule(name="backlog", probe="q", op="<=", threshold=5.0),),
            tracer=tracer)

    def test_mirror_parity_when_subscriber_reads_mid_finalize(self):
        """A bus subscriber polling between samples and mid-finalize must
        not perturb the gauge envelope/series parity with the probe
        series — the bus is an observer, not a participant."""
        tracer = Tracer(clock=lambda: 0.0)
        bus = tracer.attach_bus(TelemetryBus())
        sub = bus.subscribe("live")
        depth = [0.0]
        sampler = self._sampler(tracer, depth)
        for t in range(6):
            depth[0] = float(t % 4)
            sampler.on_advance(float(t))
            sub.poll()  # interleaved live reads
        # Read once more "mid-finalize": after samples exist but before
        # the mirror runs.
        seen_before_mirror = len(sub.poll())
        sampler.finalize(tracer.trace)
        gauge = tracer.metrics.gauge("probe.q")
        series = sampler.series["q"]
        assert gauge.n_samples == len(series) == 6
        assert gauge.value == series[-1][1]
        assert gauge.vmin == min(v for _t, v in series)
        assert gauge.vmax == max(v for _t, v in series)
        assert gauge.series == series  # timestamped parity, not just envelope
        # Every sample was also streamed; finalize's mirror must not
        # republish samples the subscriber already saw.
        probe_events = [e for e in sub.poll() if e.kind == "probe"]
        assert seen_before_mirror == 0
        assert probe_events == []
        assert bus.published == 6

    def test_mirror_parity_against_per_sample_set(self):
        tracer = Tracer(clock=lambda: 0.0)
        depth = [0.0]
        sampler = self._sampler(tracer, depth)
        reference = Gauge("ref", clock=lambda: 0.0, record_series=True)
        for t in range(8):
            depth[0] = float((t * 3) % 5)
            sampler.on_advance(float(t))
            reference.set(depth[0])
        sampler.finalize(tracer.trace)
        gauge = tracer.metrics.gauge("probe.q")
        assert gauge.value == reference.value
        assert gauge.vmin == reference.vmin
        assert gauge.vmax == reference.vmax
        assert gauge.n_samples == reference.n_samples


class TestProbeAlertDedupe:
    def test_same_rule_and_window_alerts_once(self):
        """A sampled rule and a summary rule sharing an id must not
        double-fire one window (the duplicate `slo.breach` bug)."""
        tracer = Tracer(clock=lambda: 0.0)
        value = [10.0]
        sampler = ProbeSampler(
            interval=1.0, probes={"q": lambda: value[0]},
            slos=(
                SloRule(name="shared", probe="q", op="<=", threshold=5.0),
                SummarySlo(name="shared",
                           value_of=lambda totals: 10.0,
                           op="<=", threshold=5.0),
            ),
            tracer=tracer)
        # One sample at t=0 breaches the sampled rule; the trace's last
        # closed span also ends at t=0, so the summary rule judges the
        # same window instant.
        sampler.on_advance(0.0)
        tracer.add_span("s", lane="x", t_start=0.0, t_end=0.0)
        sampler.finalize(tracer.trace)
        assert len(sampler.alerts) == 1
        breaches = [i for i in tracer.trace.instants
                    if i.name == "slo.breach"]
        assert len(breaches) == 1

    def test_distinct_windows_still_alert_separately(self):
        tracer = Tracer(clock=lambda: 0.0)
        value = [10.0]
        sampler = ProbeSampler(
            interval=1.0, probes={"q": lambda: value[0]},
            slos=(
                SloRule(name="shared", probe="q", op="<=", threshold=5.0),
                SummarySlo(name="shared",
                           value_of=lambda totals: 10.0,
                           op="<=", threshold=5.0),
            ),
            tracer=tracer)
        sampler.on_advance(0.0)
        # The summary judgement lands at t=3 (last span end), a
        # different window than the sampled breach at t=0.
        tracer.add_span("s", lane="x", t_start=0.0, t_end=3.0)
        sampler.finalize(tracer.trace)
        assert len(sampler.alerts) == 2


def _specs():
    """3 tenants, one fault-injected: beta's stalls push its replay past
    the 3.5x slowdown target; alpha and gamma stay under it."""
    return [
        JobSpec(tenant="alpha", name="a1", n_steps=4, n_buckets=4),
        JobSpec(tenant="beta", name="b1", n_steps=4, n_buckets=4,
                lease_timeout=5.0, fault_seed=3, pull_stall_rate=0.5,
                pull_stall_seconds=40.0),
        JobSpec(tenant="gamma", name="g1", n_steps=5, n_buckets=4),
    ]


class TestServiceLivePlane:
    def test_faulted_tenant_alerts_clean_tenants_do_not(self):
        bus = TelemetryBus()
        sub = bus.subscribe("test")
        with tracing():
            service = CampaignService(workers=3, bus=bus,
                                      probe_interval=5.0)
            report = service.run_batch(_specs())
        assert report.all_done
        assert report.tenants["beta"].alerts >= 1
        assert report.tenants["alpha"].alerts == 0
        assert report.tenants["gamma"].alerts == 0
        assert [a.tenant for a in report.alerts] == ["beta"]
        assert report.alerts[0].metric == "makespan_slowdown"
        # Every published event is tenant/job-attributed.
        events = sub.poll()
        assert events
        assert all(e.tenant is not None and e.job_id is not None
                   for e in events)
        kinds = {e.kind for e in events}
        assert {"job", "span", "probe", "alert"} <= kinds
        # The replays' probe samples carry the owning job's identity.
        probe = next(e for e in events if e.kind == "probe")
        assert probe.tenant in ("alpha", "beta", "gamma")
        assert probe.job_id.startswith(probe.tenant + "/")

    def test_job_lifecycle_events_in_order_per_job(self):
        bus = TelemetryBus()
        sub = bus.subscribe("test")
        with tracing():
            service = CampaignService(workers=3, bus=bus)
            report = service.run_batch(_specs())
        assert report.all_done
        jobs = {}
        for e in sub.poll():
            if e.kind == "job":
                jobs.setdefault(e.job_id, []).append(e.name)
        assert len(jobs) == 3
        for names in jobs.values():
            assert names == ["job.queued", "job.start", "job.done"]

    def test_single_job_tenant_reports_percentiles(self):
        with tracing():
            service = CampaignService(workers=3)
            report = service.run_batch(_specs())
        for tenant in ("alpha", "beta", "gamma"):
            waits = report.tenants[tenant].to_dict()["service.queue_wait_s"]
            # One done job still yields the full percentile set.
            assert set(waits) == {"p50", "p95", "p99"}
            assert waits["p50"] == waits["p99"]
            assert waits["p99"] == report.tenants[tenant].max_queue_wait

    def test_quota_hold_publishes_held_event(self):
        bus = TelemetryBus()
        sub = bus.subscribe("test")
        specs = [JobSpec(tenant="t", name=f"j{i}", n_steps=2 + i,
                         n_buckets=3) for i in range(2)]
        with tracing():
            service = CampaignService(
                workers=2, bus=bus,
                quotas=[TenantQuota("t", max_concurrent=1)])
            report = service.run_batch(specs)
        assert report.all_done and report.held_events >= 1
        held = [e for e in sub.poll()
                if e.kind == "job" and e.name == "job.held"]
        assert held and held[0].tenant == "t"
        assert "reason" in held[0].data

    def test_event_stream_is_deterministic_across_runs(self):
        def stream():
            bus = TelemetryBus()
            sub = bus.subscribe("test")
            with tracing():
                service = CampaignService(workers=3, bus=bus,
                                          probe_interval=5.0)
                service.run_batch(_specs())
            return [event_to_json(e) for e in sub.poll()]

        first, second = stream(), stream()
        assert first == second

    def test_monitor_exists_without_bus_and_service_clock_restored(self):
        with tracing() as tracer:
            service = CampaignService(workers=2)
            report = service.run_batch(_specs()[:1])
            # After the last job the tracer clock must read the service
            # engine again, not the drained inner replay engine.
            assert tracer.now() == service.engine.now
        assert report.all_done
        assert service.monitor.alerts == []
        assert service.bus is None

    def test_render_top_frame(self):
        bus = TelemetryBus()
        with tracing():
            service = CampaignService(workers=3, bus=bus)
            report = service.run_batch(_specs())
        frame = render_top(service, bus, service.monitor)
        assert "alpha" in frame and "beta" in frame and "gamma" in frame
        assert "active alerts:" in frame
        assert "beta: makespan-slowdown" in frame
        assert f"{bus.published} events published" in frame
        assert report.all_done


class TestJobSpecFaultKnobs:
    def test_clean_spec_has_no_fault_config(self):
        spec = JobSpec(tenant="t", name="j", n_steps=2, n_buckets=3)
        assert not spec.has_faults()
        assert spec.fault_config() is None

    def test_fault_config_round_trip(self):
        spec = JobSpec(tenant="t", name="j", n_steps=2, n_buckets=3,
                       lease_timeout=5.0, fault_seed=7,
                       crash_times=(10.0, 20.0), pull_failure_rate=0.1,
                       pull_stall_rate=0.2, pull_stall_seconds=3.0)
        cfg = spec.fault_config()
        assert cfg.seed == 7 and cfg.crash_times == (10.0, 20.0)
        assert cfg.pull_stall_seconds == 3.0
        again = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec
        assert again.fault_config() == cfg

    def test_fault_knobs_change_the_cache_key_placement(self):
        clean = JobSpec(tenant="t", name="j", n_steps=2, n_buckets=3)
        faulted = JobSpec(tenant="t", name="j", n_steps=2, n_buckets=3,
                          pull_stall_rate=0.5, pull_stall_seconds=1.0)
        assert clean.placement_dict() != faulted.placement_dict()

    def test_validation(self):
        with pytest.raises(ValueError):
            JobSpec(tenant="t", name="j", n_steps=2, n_buckets=3,
                    pull_failure_rate=1.5)
        with pytest.raises(ValueError):
            JobSpec(tenant="t", name="j", n_steps=2, n_buckets=3,
                    pull_stall_seconds=-1.0)
        with pytest.raises(ValueError):
            # crashes without a lease: recovery path would never fire
            JobSpec(tenant="t", name="j", n_steps=2, n_buckets=3,
                    crash_times=(1.0,))
        with pytest.raises(ValueError):
            # faults require the single-shard replay path
            JobSpec(tenant="t", name="j", n_steps=2, n_buckets=4,
                    n_shards=2, pull_stall_rate=0.1)
