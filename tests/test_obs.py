"""Tests for repro.obs: tracer, metrics, exporters, critical path."""

import json
import math

import pytest

from repro.core import ExperimentConfig, ScaledExperiment
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    critical_path,
    disable_tracing,
    enable_tracing,
    get_tracer,
    lane_summary,
    reconcile_totals,
    to_chrome_trace,
    tracing,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.util.gantt import Span, spans_from_trace


class TestTracerSpans:
    def test_begin_end_records_both_clocks(self):
        times = [5.0]
        tracer = Tracer(clock=lambda: times[0])
        span = tracer.begin("work", lane="rank0", category="sim", step=3)
        times[0] = 7.5
        tracer.end(span, outcome="ok")
        assert span.closed
        assert span.t_start == 5.0 and span.t_end == 7.5
        assert span.duration == pytest.approx(2.5)
        assert span.wall_duration >= 0.0
        assert span.tags == {"step": 3, "outcome": "ok"}
        assert span.category == "sim"

    def test_nesting_same_lane_sets_parent(self):
        tracer = Tracer()
        outer = tracer.begin("outer", lane="l")
        inner = tracer.begin("inner", lane="l")
        other = tracer.begin("elsewhere", lane="other")
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert other.parent_id is None
        tracer.end(inner)
        third = tracer.begin("third", lane="l")
        assert third.parent_id == outer.span_id
        tracer.end(third)
        tracer.end(outer)
        tracer.end(other)
        assert len(tracer.trace.closed_spans()) == 4

    def test_span_context_manager_nests_and_closes_on_error(self):
        tracer = Tracer()
        with tracer.span("outer", lane="l") as outer:
            with tracer.span("inner", lane="l") as inner:
                assert inner.parent_id == outer.span_id
            with pytest.raises(RuntimeError):
                with tracer.span("boom", lane="l"):
                    raise RuntimeError("task failed")
        boom = next(s for s in tracer.trace.spans if s.name == "boom")
        assert boom.closed  # the finally closed it despite the raise

    def test_double_end_raises(self):
        tracer = Tracer()
        span = tracer.begin("x")
        tracer.end(span)
        with pytest.raises(RuntimeError):
            tracer.end(span)

    def test_add_span_explicit_times(self):
        tracer = Tracer()
        rec = tracer.add_span("modelled", lane="sim", t_start=2.0, t_end=9.0,
                              stage="simulation")
        assert rec.closed and rec.duration == pytest.approx(7.0)
        with pytest.raises(ValueError):
            tracer.add_span("bad", lane="sim", t_start=5.0, t_end=1.0)

    def test_attach_engine_switches_trace_clock(self):
        class FakeEngine:
            now = 0.0

        tracer = Tracer()
        engine = FakeEngine()
        tracer.attach_engine(engine)
        span = tracer.begin("des-work")
        engine.now = 42.0
        tracer.end(span)
        assert span.t_start == 0.0 and span.t_end == 42.0

    def test_instants_and_stage_totals(self):
        tracer = Tracer()
        tracer.add_span("a", lane="l", t_start=0.0, t_end=3.0, stage="sim")
        tracer.add_span("b", lane="l", t_start=3.0, t_end=4.0, stage="move")
        tracer.add_span("c", lane="l", t_start=4.0, t_end=6.0, stage="sim")
        tracer.add_span("untagged", lane="l", t_start=0.0, t_end=99.0)
        tracer.instant("notify", lane="l", step=1)
        totals = tracer.trace.stage_totals()
        assert totals == {"sim": pytest.approx(5.0), "move": pytest.approx(1.0)}
        assert tracer.trace.spans_with(stage="sim")[0].name == "a"
        assert tracer.trace.instants[0].name == "notify"
        with pytest.raises(ValueError):
            tracer.trace.stage_totals(clock="cpu")


class TestNullTracerAndInstall:
    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        span = NULL_TRACER.begin("x", lane="l", step=1)
        NULL_TRACER.end(span)
        with NULL_TRACER.span("y") as inert:
            assert inert.tags == {}
        NULL_TRACER.instant("i")
        NULL_TRACER.counter("c", 5)
        NULL_TRACER.metrics.counter("c").inc()
        assert NULL_TRACER.trace.spans == []

    def test_tracing_context_installs_and_restores(self):
        assert get_tracer() is NULL_TRACER
        with tracing() as tracer:
            assert get_tracer() is tracer
            assert tracer.enabled
            with tracing() as nested:
                assert get_tracer() is nested
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_enable_disable_tracing(self):
        tracer = enable_tracing()
        try:
            assert get_tracer() is tracer
        finally:
            disable_tracing()
        assert get_tracer() is NULL_TRACER


class TestMetricsRegistry:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("bytes")
        c.inc(10)
        c.inc(2.5)
        assert c.value == pytest.approx(12.5)
        assert reg.counter("bytes") is c  # created once, reused
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_tracks_min_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        for v in (3, 1, 7, 4):
            g.set(v)
        assert g.value == 4 and g.vmin == 1 and g.vmax == 7
        assert g.n_samples == 4

    def test_histogram_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.count == 100
        assert h.mean == pytest.approx(50.5)
        assert h.percentile(0) == 1.0
        assert h.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert h.percentile(100) == 100.0
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_series_recorded_with_clock(self):
        times = [0.0]
        reg = MetricsRegistry(clock=lambda: times[0], record_series=True)
        c = reg.counter("events")
        c.inc()
        times[0] = 2.0
        c.inc(3)
        assert c.series == [(0.0, 1), (2.0, 4)]

    def test_snapshot_and_summary(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(7)
        reg.gauge("q").set(3)
        reg.histogram("t").observe(1.5)
        snap = reg.snapshot()
        assert snap["counters"]["n"] == 7
        assert snap["gauges"]["q"]["max"] == 3
        assert snap["histograms"]["t"]["count"] == 1
        json.dumps(snap)  # JSON-safe
        text = reg.summary()
        assert "n" in text and "q" in text and "t" in text
        assert MetricsRegistry().summary() == "(no metrics)"

    def test_empty_and_unset_instruments(self):
        reg = MetricsRegistry()
        h = reg.histogram("never")
        assert h.count == 0 and h.mean == 0.0
        assert h.percentile(50) == 0.0  # no observations yet
        assert h.vmin == 0.0 and h.vmax == 0.0
        g = reg.gauge("untouched")
        assert g.value == 0.0 and g.n_samples == 0
        snap = reg.snapshot()
        # never-touched instruments stay out of the snapshot entirely
        assert "never" not in snap["histograms"]
        assert "untouched" not in snap["gauges"]
        json.dumps(snap)

    def test_histogram_percentile_bounds(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(5.0)
        for bad in (-0.1, 100.1):
            with pytest.raises(ValueError):
                h.percentile(bad)
        assert h.percentile(0) == h.percentile(100) == 5.0

    def test_histogram_sorted_view_invalidated_on_observe(self):
        h = MetricsRegistry().histogram("lat")
        for v in (3.0, 1.0):
            h.observe(v)
        assert h.percentile(100) == 3.0  # caches the sorted view
        h.observe(9.0)                   # must invalidate it
        assert h.percentile(100) == 9.0
        assert h.percentile(0) == 1.0

    def test_histogram_reservoir_cap_bounds_memory(self):
        reg = MetricsRegistry(histogram_max_samples=64)
        h = reg.histogram("big")
        for v in range(1000):
            h.observe(float(v))
        assert len(h.values) == 64          # storage bounded
        assert h.count == 1000              # exact trackers unaffected
        assert h.mean == pytest.approx(499.5)
        assert h.vmin == 0.0 and h.vmax == 999.0
        assert 0.0 <= h.percentile(50) <= 999.0

    def test_histogram_reservoir_is_deterministic_per_name(self):
        def fill(name):
            h = MetricsRegistry(histogram_max_samples=16).histogram(name)
            for v in range(200):
                h.observe(float(v))
            return list(h.values)

        assert fill("a") == fill("a")   # seeded by name: reproducible
        assert fill("a") != fill("b")   # distinct streams per instrument

    def test_histogram_per_instrument_cap_override(self):
        reg = MetricsRegistry(histogram_max_samples=1000)
        h = reg.histogram("small", max_samples=8)
        for v in range(100):
            h.observe(float(v))
        assert len(h.values) == 8
        # the override binds on first creation only
        assert reg.histogram("small", max_samples=99) is h
        assert h.max_samples == 8

    def test_histogram_uncapped_keeps_everything(self):
        h = MetricsRegistry().histogram("all")
        for v in range(500):
            h.observe(float(v))
        assert len(h.values) == 500
        assert h.percentile(50) == pytest.approx(249.5, abs=1.0)


class TestChromeExport:
    def test_valid_doc_with_instants_and_counters(self):
        with tracing() as tracer:
            with tracer.span("step", lane="sim", stage="simulation", step=0):
                pass
            tracer.instant("ready", lane="sched", task="t0")
            tracer.counter("pulls", 2)
        doc = to_chrome_trace(tracer.trace, tracer.metrics)
        assert validate_chrome_trace(doc) == []
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "B", "E", "i", "C"} <= phases

    def test_overlapping_spans_get_distinct_tids(self):
        tracer = Tracer()
        tracer.add_span("a", lane="bucket", t_start=0.0, t_end=10.0)
        tracer.add_span("b", lane="bucket", t_start=5.0, t_end=15.0)
        doc = to_chrome_trace(tracer.trace)
        assert validate_chrome_trace(doc) == []
        begins = [e for e in doc["traceEvents"] if e["ph"] == "B"]
        assert len(begins) == 2
        assert len({e["tid"] for e in begins}) == 2  # split onto sub-rows

    def test_nested_spans_share_a_row(self):
        tracer = Tracer()
        tracer.add_span("outer", lane="l", t_start=0.0, t_end=10.0)
        tracer.add_span("inner", lane="l", t_start=2.0, t_end=8.0)
        doc = to_chrome_trace(tracer.trace)
        assert validate_chrome_trace(doc) == []
        begins = [e for e in doc["traceEvents"] if e["ph"] == "B"]
        assert len({e["tid"] for e in begins}) == 1

    def test_wall_clock_export(self):
        with tracing() as tracer:
            with tracer.span("w", lane="l"):
                pass
        doc = to_chrome_trace(tracer.trace, clock="wall")
        assert validate_chrome_trace(doc) == []
        with pytest.raises(ValueError):
            to_chrome_trace(tracer.trace, clock="cpu")

    def test_validator_catches_broken_traces(self):
        assert validate_chrome_trace({}) != []
        orphan_end = {"traceEvents": [
            {"name": "x", "ph": "E", "ts": 0, "pid": 1, "tid": 0}]}
        assert any("no open B" in p for p in validate_chrome_trace(orphan_end))
        unclosed = {"traceEvents": [
            {"name": "x", "ph": "B", "ts": 0, "pid": 1, "tid": 0}]}
        assert any("unclosed" in p for p in validate_chrome_trace(unclosed))
        missing = {"traceEvents": [{"ph": "i", "ts": 0}]}
        assert any("missing keys" in p for p in validate_chrome_trace(missing))

    def test_write_chrome_trace_and_jsonl(self, tmp_path):
        with tracing() as tracer:
            with tracer.span("s", lane="l", step=1):
                pass
            tracer.instant("i", lane="l")
            tracer.counter("c")
        out = tmp_path / "t.json"
        doc = write_chrome_trace(str(out), tracer.trace, tracer.metrics)
        assert json.loads(out.read_text()) == doc
        jl = tmp_path / "t.jsonl"
        n = write_jsonl(str(jl), tracer.trace, tracer.metrics)
        lines = [json.loads(x) for x in jl.read_text().splitlines()]
        assert len(lines) == n == 3  # span + instant + metrics
        assert {ln["type"] for ln in lines} == {"span", "instant", "metrics"}

    def test_lane_summary_lists_every_lane(self):
        tracer = Tracer()
        tracer.add_span("a", lane="sim", t_start=0.0, t_end=2.0)
        tracer.instant("n", lane="sched")
        text = lane_summary(tracer.trace)
        assert "sim" in text and "sched" in text


class TestCriticalPath:
    def _pipeline_trace(self):
        """Hand-built two-step DAG: sim -> movement -> shared bucket."""
        tracer = Tracer()
        tracer.add_span("sim.step", lane="sim", t_start=0.0, t_end=10.0,
                        stage="simulation", step=0)
        tracer.add_span("sim.step", lane="sim", t_start=10.0, t_end=20.0,
                        stage="simulation", step=1)
        tracer.add_span("move", lane="net", t_start=10.0, t_end=12.0,
                        stage="movement", step=0)
        tracer.add_span("move", lane="net", t_start=20.0, t_end=22.0,
                        stage="movement", step=1)
        tracer.add_span("glue", lane="bucket", t_start=12.0, t_end=30.0,
                        stage="intransit", step=0)
        # step 1's glue waits for the bucket, not its own movement:
        tracer.add_span("glue", lane="bucket", t_start=30.0, t_end=45.0,
                        stage="intransit", step=1)
        return tracer.trace

    def test_blocking_chain_and_stage_shares(self):
        cp = critical_path(self._pipeline_trace())
        names = [(s.lane, s.tags["step"]) for s in cp.spans]
        assert names == [("sim", 0), ("net", 0), ("bucket", 0), ("bucket", 1)]
        assert cp.makespan == pytest.approx(45.0)
        assert cp.busy_time == pytest.approx(45.0)
        assert cp.wait_time == pytest.approx(0.0)
        assert cp.stage_totals["intransit"] == pytest.approx(33.0)
        assert cp.bounding_stage == "intransit"
        table = cp.table()
        assert "bounded by: intransit" in table

    def test_wait_gap_counted(self):
        tracer = Tracer()
        a = tracer.add_span("produce", lane="a", t_start=0.0, t_end=5.0,
                            stage="simulation")
        tracer.add_span("consume", lane="b", t_start=7.0, t_end=9.0,
                        stage="intransit", follows=a.span_id)
        cp = critical_path(tracer.trace)
        assert [s.name for s in cp.spans] == ["produce", "consume"]
        assert cp.makespan == pytest.approx(9.0)
        assert cp.wait_time == pytest.approx(2.0)

    def test_explicit_sink_and_empty_trace(self):
        trace = self._pipeline_trace()
        sink = next(s for s in trace.spans if s.tags.get("step") == 0
                    and s.lane == "bucket")
        cp = critical_path(trace, sink=sink)
        assert cp.spans[-1] is sink
        assert len(cp.spans) == 3
        empty = critical_path(Tracer().trace)
        assert empty.spans == [] and empty.makespan == 0.0

    def test_reconcile_rows(self):
        rows = reconcile_totals(
            observed={"simulation": 100.4, "insitu": 0.0},
            expected={"simulation": 100.0, "insitu": 2.0})
        by_stage = {r.stage: r for r in rows}
        assert by_stage["simulation"].ok(0.01)
        assert by_stage["simulation"].rel_err == pytest.approx(0.004)
        assert not by_stage["insitu"].ok(0.01)


class TestTracedSchedule:
    def test_reconciles_with_breakdown_within_1pct(self):
        exp = ScaledExperiment(ExperimentConfig.paper_4896())
        tracer, result, expected = exp.traced_schedule(n_steps=3)
        assert get_tracer() is NULL_TRACER  # context restored
        totals = tracer.trace.stage_totals()
        observed = {
            "simulation": totals.get("simulation", 0.0),
            "insitu": totals.get("insitu", 0.0),
            "movement+intransit": (totals.get("movement", 0.0)
                                   + totals.get("intransit", 0.0)),
        }
        rows = reconcile_totals(observed, expected)
        assert rows and all(row.ok(0.01) for row in rows)
        assert result.assignments  # queue trace rode along
        doc = to_chrome_trace(tracer.trace, tracer.metrics)
        assert validate_chrome_trace(doc) == []
        cp = critical_path(tracer.trace)
        assert cp.spans and cp.bounding_stage is not None


class TestGanttAdapter:
    def test_span_rejects_non_finite_times(self):
        with pytest.raises(ValueError):
            Span(actor="a", start=math.nan, end=1.0)
        with pytest.raises(ValueError):
            Span(actor="a", start=0.0, end=math.inf)
        with pytest.raises(ValueError):
            Span(actor="a", start=2.0, end=1.0)

    def test_spans_from_trace_skips_open_spans(self):
        tracer = Tracer()
        tracer.add_span("done", lane="bucket-0", t_start=1.0, t_end=4.0)
        tracer.begin("still-open", lane="bucket-0")
        spans = spans_from_trace(tracer.trace)
        assert len(spans) == 1
        assert spans[0].actor == "bucket-0"
        assert (spans[0].start, spans[0].end) == (1.0, 4.0)
        assert spans[0].label == "done"
        with pytest.raises(ValueError):
            spans_from_trace(tracer.trace, clock="cpu")

    def test_spans_from_trace_wall_clock_and_iterable(self):
        with tracing() as tracer:
            with tracer.span("w", lane="l"):
                pass
        records = tracer.trace.closed_spans()
        spans = spans_from_trace(records, clock="wall")
        assert len(spans) == 1 and spans[0].end >= spans[0].start
