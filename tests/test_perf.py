"""Tests for repro.obs.perf: run store, regression gate, dashboard, CLI."""

import json

import pytest

from repro.cli import main
from repro.core import ExperimentConfig, ScaledExperiment
from repro.obs.perf import (
    DEFAULT_POLICIES,
    Baseline,
    MetricPolicy,
    RegressionReport,
    RunRecord,
    RunStore,
    collect_run_record,
    compare_record,
    machine_fingerprint,
)
from repro.obs.report import render_dashboard, write_dashboard


def _record(metrics, source="test", **kwargs):
    return RunRecord.new(source=source, metrics=metrics, **kwargs)


class TestRunStore:
    def test_append_and_roundtrip(self, tmp_path):
        store = RunStore(tmp_path / "store")
        rec = _record({"a.time_s": 1.5, "count.items": 3.0},
                      meta={"note": "x"})
        store.append(rec)
        (got,) = store.records()
        assert got.run_id == rec.run_id
        assert got.metrics == {"a.time_s": 1.5, "count.items": 3.0}
        assert got.meta == {"note": "x"}
        assert got.source == "test"

    def test_appends_accumulate_in_order(self, tmp_path):
        store = RunStore(tmp_path / "store")
        for i in range(4):
            store.append(_record({"v": float(i)}))
        assert [r.metrics["v"] for r in store.records()] == [0, 1, 2, 3]
        assert len(store) == 4
        assert [r.metrics["v"] for r in store.last(2)] == [2, 3]

    def test_torn_lines_are_skipped(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.append(_record({"v": 1.0}))
        with open(store.path, "a") as fh:
            fh.write("{not json\n\n")
        store.append(_record({"v": 2.0}))
        assert [r.metrics["v"] for r in store.records()] == [1.0, 2.0]

    def test_empty_store(self, tmp_path):
        store = RunStore(tmp_path / "nothing")
        assert store.records() == []
        assert len(store) == 0


class TestBaseline:
    def test_median_and_mad(self, tmp_path):
        records = [_record({"m": v}) for v in (10.0, 12.0, 11.0)]
        base = Baseline.from_records(records)
        med, mad, n = base.stats["m"]
        assert med == 11.0
        assert mad == 1.0  # |10-11|, |12-11|, |11-11| -> median 1
        assert n == 3

    def test_window_keeps_last_n(self):
        records = [_record({"m": float(v)}) for v in range(10)]
        base = Baseline.from_records(records, window=3)
        med, _mad, n = base.stats["m"]
        assert med == 8.0 and n == 3
        assert base.n_records == 3

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            Baseline.from_records([], window=0)


class TestCompareRecord:
    def _base(self, value=100.0, spread=0.0, n=5):
        vals = [value + spread * (i - n // 2) for i in range(n)]
        return Baseline.from_records([_record({"m": v}) for v in vals])

    def test_identical_value_is_ok(self):
        report = compare_record(_record({"m": 100.0}), self._base())
        (v,) = report.by_status("ok")
        assert v.metric == "m" and report.ok

    def test_regression_beyond_tolerance_fails(self):
        report = compare_record(_record({"m": 103.0}), self._base())
        (v,) = report.by_status("regressed")
        assert v.metric == "m"
        assert not report.ok
        assert v.failed

    def test_improvement_is_not_a_failure(self):
        report = compare_record(_record({"m": 90.0}), self._base())
        (v,) = report.by_status("improved")
        assert v.metric == "m" and report.ok

    def test_mad_band_absorbs_baseline_noise(self):
        # spread=4 -> MAD 4; band = 3 * 1.4826 * 4 ≈ 17.8 > 2% tolerance
        noisy = self._base(spread=4.0)
        report = compare_record(_record({"m": 110.0}), noisy)
        (v,) = report.by_status("ok")
        assert v.metric == "m"

    def test_tolerance_override_first_match_wins(self):
        policies = (MetricPolicy("m", tolerance=0.10),) + DEFAULT_POLICIES
        report = compare_record(_record({"m": 108.0}), self._base(),
                                policies)
        assert report.ok
        report = compare_record(_record({"m": 112.0}), self._base(),
                                policies)
        assert not report.ok

    def test_direction_higher_flags_drops(self):
        policies = (MetricPolicy("m", direction="higher"),
                    ) + DEFAULT_POLICIES
        report = compare_record(_record({"m": 80.0}), self._base(),
                                policies)
        (v,) = report.by_status("regressed")
        assert v.metric == "m"
        report = compare_record(_record({"m": 120.0}), self._base(),
                                policies)
        (v,) = report.by_status("improved")
        assert v.metric == "m"

    def test_direction_both_flags_any_drift(self):
        policies = (MetricPolicy("m", tolerance=0.0, direction="both"),
                    ) + DEFAULT_POLICIES
        for value in (99.0, 101.0):
            report = compare_record(_record({"m": value}), self._base(),
                                    policies)
            assert not report.ok

    def test_new_metric_is_informational(self):
        report = compare_record(_record({"m": 100.0, "fresh": 1.0}),
                                self._base())
        (v,) = report.by_status("new")
        assert v.metric == "fresh" and not v.failed and report.ok

    def test_missing_gated_metric_fails(self):
        base = Baseline.from_records(
            [_record({"m": 100.0, "gone.s": 5.0})])
        report = compare_record(_record({"m": 100.0}), base)
        (v,) = report.by_status("missing")
        assert v.metric == "gone.s" and not report.ok

    def test_wall_metrics_never_gate(self):
        base = Baseline.from_records([_record({"wall.t": 1.0})])
        report = compare_record(_record({"wall.t": 50.0}), base)
        (v,) = report.by_status("info")
        assert v.metric == "wall.t" and report.ok

    def test_report_table_renders(self):
        report = compare_record(_record({"m": 103.0}), self._base())
        text = report.table()
        assert "REGRESSED" in text and "m" in text

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            MetricPolicy("m", direction="sideways")
        with pytest.raises(ValueError):
            MetricPolicy("m", tolerance=-0.1)


class TestCollectRunRecord:
    def test_deterministic_gated_metrics(self):
        a = collect_run_record(n_steps=4, n_buckets=4)
        b = collect_run_record(n_steps=4, n_buckets=4)
        gated = {k: v for k, v in a.metrics.items()
                 if not k.startswith("wall.")}
        assert gated == {k: v for k, v in b.metrics.items()
                        if not k.startswith("wall.")}
        assert a.metrics["probe.samples"] > 0
        assert a.meta["stage_breakdown"]
        assert a.machine == machine_fingerprint(
            ScaledExperiment(ExperimentConfig.paper_4896()).machine)

    def test_perturbation_trips_the_gate(self):
        base = Baseline.from_records(
            [collect_run_record(n_steps=4, n_buckets=4)])
        slowed = collect_run_record(n_steps=4, n_buckets=4,
                                    perturb={"topo.subtree": 1.5})
        report = compare_record(slowed, base)
        assert not report.ok
        regressed = {v.metric for v in report.by_status("regressed")}
        assert "trace.insitu_s" in regressed


class TestDashboard:
    def _records(self, n=3):
        return [_record({"a.time_s": 10.0 + i, "faults.mttr_s": 0.005,
                         "wall.x": 0.1},
                        meta={"stage_breakdown":
                              {"simulation": {"in-situ": 1.0,
                                              "data movement": 0.0,
                                              "in-transit": 0.0}},
                              "slo_rules": [{"name": "r1",
                                             "description": "demo"}],
                              "alerts": [],
                              "probe_series":
                              {"q": [[0.0, 1.0], [1.0, 2.0]]}})
                for i in range(n)]

    def test_contains_required_panels(self):
        html = render_dashboard(self._records())
        assert html.count("class=\"spark\"") >= 3
        assert "stage breakdown" in html
        assert "SLO rules" in html
        assert "faults.mttr_s" in html
        assert "prefers-color-scheme: dark" in html
        assert "<details>" in html
        assert "http" not in html.split("</style>")[1]  # self-contained

    def test_gate_panel_when_report_given(self):
        records = self._records()
        base = Baseline.from_records(records[:-1])
        report = compare_record(records[-1], base)
        html = render_dashboard(records, report)
        assert "Regression gate" in html and "PASS" in html

    def test_empty_store_renders_hint(self):
        html = render_dashboard([])
        assert "perf record" in html

    def test_write_dashboard_creates_parents(self, tmp_path):
        out = write_dashboard(tmp_path / "deep" / "dash.html",
                              self._records())
        assert out.exists() and out.read_text().startswith("<!DOCTYPE")

    def test_escapes_hostile_names(self):
        rec = _record({"<script>alert(1)</script>": 1.0})
        html = render_dashboard([rec])
        assert "<script>alert" not in html


class TestPerfCli:
    def test_record_compare_report_roundtrip(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = ["--store", store, "--baseline", store,
                "--out-dir", str(tmp_path / "out"),
                "--steps", "4", "--buckets", "4"]
        assert main(["perf", "record", *args]) == 0
        assert main(["perf", "record", *args]) == 0
        assert main(["perf", "compare", *args]) == 0
        assert main(["perf", "report", *args]) == 0
        capsys.readouterr()
        dash = tmp_path / "out" / "perf_dashboard.html"
        assert dash.exists()
        assert "Regression gate" in dash.read_text()

    def test_compare_perturbed_exits_nonzero(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = ["--store", store, "--baseline", store,
                "--steps", "4", "--buckets", "4"]
        assert main(["perf", "record", *args]) == 0
        code = main(["perf", "compare", *args,
                     "--perturb", "topo.subtree=1.5"])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out

    def test_compare_tolerance_override_absorbs(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = ["--store", store, "--baseline", store,
                "--steps", "4", "--buckets", "4"]
        assert main(["perf", "record", *args]) == 0
        code = main(["perf", "compare", *args,
                     "--perturb", "topo.subtree=1.5",
                     "--tolerance", "*=0.60",
                     "--tolerance", "count.*=0.60",
                     "--tolerance", "probe.samples=0.60",
                     "--tolerance", "slo.alerts=0.60"])
        assert code == 0
        capsys.readouterr()

    def test_compare_without_baseline_is_an_error(self, tmp_path, capsys):
        code = main(["perf", "compare",
                     "--baseline", str(tmp_path / "missing"),
                     "--steps", "4", "--buckets", "4"])
        assert code == 2
        assert "no baseline records" in capsys.readouterr().out

    def test_bad_kv_arguments_exit_with_message(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["perf", "record", "--store", str(tmp_path),
                  "--perturb", "nonsense"])
        with pytest.raises(SystemExit):
            main(["perf", "record", "--store", str(tmp_path),
                  "--tolerance", "m=abc"])

    def test_report_falls_back_to_baseline_store(self, tmp_path, capsys):
        base = str(tmp_path / "base")
        assert main(["perf", "record", "--store", base,
                     "--baseline", base, "--steps", "4",
                     "--buckets", "4"]) == 0
        assert main(["perf", "report", "--baseline", base,
                     "--out-dir", str(tmp_path / "out")]) == 0
        capsys.readouterr()
        assert (tmp_path / "out" / "perf_dashboard.html").exists()


class TestCommittedBaseline:
    def test_repo_baseline_gates_clean(self):
        """The committed baseline must accept an unchanged tree: every
        deterministic metric of a fresh record matches it exactly."""
        store = RunStore("benchmarks/results/baseline")
        records = store.records()
        assert records, "committed baseline store is missing"
        base = Baseline.from_records(records)
        fresh = collect_run_record()
        report = compare_record(fresh, base)
        assert report.ok, report.table()

    def test_baseline_records_are_schema_1(self):
        with open(RunStore("benchmarks/results/baseline").path) as fh:
            for line in fh:
                assert json.loads(line)["schema"] == 1


def test_regression_report_counts_and_ok():
    verdicts = compare_record(
        _record({"m": 100.0}),
        Baseline.from_records([_record({"m": 100.0})])).verdicts
    report = RegressionReport(verdicts=verdicts, n_baseline_records=1)
    assert report.ok and report.counts() == {"ok": 1}
