"""Tests for scan/exscan/reduce_scatter collectives and extra properties."""

import operator

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.gemini import GeminiNetwork
from repro.vmpi import VirtualComm
from repro.vmpi.collectives import reduce_scatter_time, scan_time


class TestScan:
    def test_inclusive_prefix_sums(self):
        comm = VirtualComm(5)
        out = comm.scan([1, 2, 3, 4, 5], operator.add)
        assert out == [1, 3, 6, 10, 15]

    def test_exscan(self):
        comm = VirtualComm(4)
        out = comm.exscan([1, 2, 3, 4], operator.add)
        assert out == [None, 1, 3, 6]

    def test_scan_arrays(self):
        comm = VirtualComm(3)
        parts = [np.full(2, float(r + 1)) for r in range(3)]
        out = comm.scan(parts, np.add)
        np.testing.assert_array_equal(out[2], np.full(2, 6.0))

    def test_scan_offsets_use_case(self):
        """The classic use: per-rank element counts -> global offsets."""
        comm = VirtualComm(4)
        counts = [10, 3, 7, 5]
        offsets = [0 if v is None else v
                   for v in comm.exscan(counts, operator.add)]
        assert offsets == [0, 10, 13, 20]

    def test_tracker_records_scan(self):
        comm = VirtualComm(8)
        comm.scan([1] * 8, operator.add)
        assert comm.tracker.count("scan") == 1

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_property_last_element_is_reduction(self, values):
        comm = VirtualComm(len(values))
        out = comm.scan(values, operator.add)
        assert out[-1] == sum(values)


class TestReduceScatter:
    def test_chunks_reduced_per_destination(self):
        comm = VirtualComm(3)
        matrix = [[(src + 1) * 10 + dst for dst in range(3)]
                  for src in range(3)]
        out = comm.reduce_scatter(matrix, operator.add)
        # dst 0 gets 10+20+30 = 60; dst 1 gets 11+21+31 = 63; ...
        assert out == [60, 63, 66]

    def test_matches_allreduce_slice(self):
        comm = VirtualComm(4)
        rng = np.random.default_rng(0)
        matrix = [[rng.random(3) for _ in range(4)] for _ in range(4)]
        rs = comm.reduce_scatter(matrix, np.add)
        for dst in range(4):
            expected = sum(matrix[src][dst] for src in range(4))
            np.testing.assert_allclose(rs[dst], expected)

    def test_ragged_rejected(self):
        comm = VirtualComm(2)
        with pytest.raises(ValueError):
            comm.reduce_scatter([[1, 2], [1]], operator.add)

    def test_tracker_records(self):
        comm = VirtualComm(4)
        comm.reduce_scatter([[1] * 4] * 4, operator.add)
        rec = comm.tracker.records[-1]
        assert rec.op == "reduce_scatter"
        assert rec.time > 0


class TestCollectiveCostShapes:
    def setup_method(self):
        self.net = GeminiNetwork()

    def test_scan_log_rounds(self):
        assert scan_time(self.net, 1024, 64) == pytest.approx(
            10 * self.net.transfer_time(64))

    def test_reduce_scatter_cheaper_than_allreduce(self):
        from repro.vmpi.collectives import allreduce_time
        n = 10**7
        assert reduce_scatter_time(self.net, 256, n) < \
            allreduce_time(self.net, 256, n)

    def test_single_rank_free(self):
        assert scan_time(self.net, 1, 100) == 0.0
        assert reduce_scatter_time(self.net, 1, 100) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            scan_time(self.net, 0, 1)
        with pytest.raises(ValueError):
            reduce_scatter_time(self.net, 2, -1)
