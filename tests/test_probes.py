"""Tests for repro.obs.probes: DES-clock sampling and SLO rules."""

import pytest

from repro.core import ExperimentConfig, ScaledExperiment
from repro.des import Engine
from repro.obs.probes import (
    ProbeSampler,
    SloRule,
    SummarySlo,
    default_slos,
    insitu_share_slo,
    standard_probes,
)
from repro.obs.tracer import NULL_TRACER, Tracer


class TestProbeSampler:
    def _drive(self, sampler, events):
        """Run a bare engine whose clock hits the given instants."""
        engine = Engine()
        engine.attach_probe(sampler)
        for t in events:
            engine.call_at(t, lambda: None)
        engine.run()
        return engine

    def test_samples_every_interval_boundary(self):
        depth = [0.0]
        sampler = ProbeSampler(1.0, {"q": lambda: depth[0]},
                               tracer=NULL_TRACER)
        self._drive(sampler, [0.5, 2.5, 5.0])
        # boundaries 0,1,2 backfilled at t=2.5; 3,4,5 at t=5.0
        assert [t for t, _ in sampler.series["q"]] == [0, 1, 2, 3, 4, 5]
        assert sampler.n_samples == 6

    def test_sample_sees_live_state(self):
        state = {"v": 0.0}
        sampler = ProbeSampler(1.0, {"v": lambda: state["v"]},
                               tracer=NULL_TRACER)
        engine = Engine()
        engine.attach_probe(sampler)

        def bump():
            state["v"] = 7.0

        engine.call_at(0.5, bump)
        engine.call_at(2.0, lambda: None)
        engine.run()
        assert sampler.series["v"] == [(0.0, 0.0), (1.0, 7.0), (2.0, 7.0)]

    def test_max_samples_caps_backfill(self):
        sampler = ProbeSampler(0.001, {"x": lambda: 1.0},
                               tracer=NULL_TRACER, max_samples=10)
        self._drive(sampler, [100.0])
        assert sampler.n_samples == 10

    def test_sampled_rule_alerts_once_per_breach_episode(self):
        depth = [0.0]
        rule = SloRule(name="backlog", probe="q", op="<=", threshold=2.0)
        sampler = ProbeSampler(1.0, {"q": lambda: depth[0]},
                               slos=(rule,), tracer=NULL_TRACER)
        engine = Engine()
        engine.attach_probe(sampler)

        def set_depth(v):
            def fn():
                depth[0] = v
            return fn

        engine.call_at(0.5, set_depth(5.0))   # breach at t=1,2 samples
        engine.call_at(2.5, set_depth(1.0))   # recover at t=3
        engine.call_at(4.5, set_depth(9.0))   # second breach at t=5
        engine.call_at(6.0, lambda: None)
        engine.run()
        assert [a.t for a in sampler.alerts] == [1.0, 5.0]
        assert all(a.rule == "backlog" for a in sampler.alerts)

    def test_breach_emits_trace_instant(self):
        depth = [10.0]
        rule = SloRule(name="backlog", probe="q", op="<=", threshold=2.0)
        tracer = Tracer(clock=lambda: 0.0)
        sampler = ProbeSampler(1.0, {"q": lambda: depth[0]},
                               slos=(rule,), tracer=tracer)
        self._drive(sampler, [1.0])
        breaches = [i for i in tracer.trace.instants
                    if i.name == "slo.breach"]
        assert len(breaches) == 1
        assert breaches[0].tags["rule"] == "backlog"

    def test_finalize_mirrors_gauge_envelope(self):
        values = iter([3.0, 9.0, 1.0])
        tracer = Tracer(clock=lambda: 0.0)
        sampler = ProbeSampler(1.0, {"v": lambda: next(values)},
                               tracer=tracer)
        self._drive(sampler, [0.0, 1.0, 2.0])
        sampler.finalize(tracer.trace)
        gauge = tracer.metrics.gauges["probe.v"]
        assert gauge.value == 1.0
        assert gauge.vmin == 1.0 and gauge.vmax == 9.0
        # Full envelope parity with per-sample set() calls: the sample
        # count is the series length (not the 3 envelope writes the old
        # mirror left behind) and the timestamped series is reproduced.
        assert gauge.n_samples == len(sampler.series["v"]) == 3
        assert gauge.series == sampler.series["v"]

    def test_gauge_bulk_mirror_matches_per_sample_sets(self):
        from repro.obs.metrics import MetricsRegistry
        clock = [0.0]
        reg_a = MetricsRegistry(clock=lambda: clock[0], record_series=True)
        reg_b = MetricsRegistry(clock=lambda: clock[0], record_series=True)
        samples = [(0.0, 4.0), (1.0, 2.0), (2.0, 7.0), (3.0, 7.0)]
        for t, v in samples:
            clock[0] = t
            reg_a.gauge("g").set(v)
        reg_b.gauge("g").mirror(samples)
        a, b = reg_a.gauge("g"), reg_b.gauge("g")
        assert (a.value, a.vmin, a.vmax, a.n_samples, a.series) == \
               (b.value, b.vmin, b.vmax, b.n_samples, b.series)
        # Empty mirror is a no-op (gauge stays unreported).
        reg_b.gauge("empty").mirror([])
        assert reg_b.gauge("empty").n_samples == 0

    def test_summary_slo_evaluated_at_finalize(self):
        tracer = Tracer(clock=lambda: 0.0)
        span = tracer.begin("sim", lane="x", stage="simulation")
        tracer.end(span)
        slo = SummarySlo(name="nonzero-sim",
                         value_of=lambda totals: totals.get("simulation",
                                                            0.0),
                         op=">", threshold=10.0)
        sampler = ProbeSampler(1.0, {}, slos=(slo,), tracer=tracer)
        alerts = sampler.finalize(tracer.trace)
        assert [a.rule for a in alerts] == ["nonzero-sim"]

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbeSampler(0.0, {})
        with pytest.raises(ValueError):
            ProbeSampler(1.0, {}, max_samples=0)
        with pytest.raises(ValueError):
            SloRule(name="r", probe="p", op="!=", threshold=1.0)


class TestScheduleIntegration:
    def test_traced_schedule_attaches_probes(self):
        exp = ScaledExperiment(ExperimentConfig.paper_4896())
        interval = exp.simulation_step_time() * 0.25
        tracer, sched, _ = exp.traced_schedule(
            n_steps=4, n_buckets=4, probe_interval=interval)
        sampler = sched.probes
        assert sampler is not None
        assert sampler.n_samples > 0
        assert set(sampler.series) == {
            "sched.queue_depth", "sched.idle_buckets", "bucket.busy",
            "nic.busy_channels", "rdma.live_bytes"}
        # sampling must never disturb the deterministic schedule
        _t2, sched2, _ = exp.traced_schedule(n_steps=4, n_buckets=4)
        assert sched2.makespan == sched.makespan

    def test_untraced_schedule_skips_probes(self):
        exp = ScaledExperiment(ExperimentConfig.paper_4896())
        sched = exp.run_schedule(n_steps=2, n_buckets=4,
                                 probe_interval=1.0)
        assert sched.probes is None  # tracer disabled -> no sampler

    def test_insitu_share_slo_breaches_on_topology_workload(self):
        exp = ScaledExperiment(ExperimentConfig.paper_4896())
        tracer, sched, _ = exp.traced_schedule(
            n_steps=4, n_buckets=4,
            probe_interval=exp.simulation_step_time() * 0.25)
        names = [a.rule for a in sched.probes.alerts]
        # the full hybrid mix runs topology in-situ glue > 5% of the step
        assert "insitu-share" in names

    def test_default_slos_shapes(self):
        rules = default_slos(8)
        assert {r.name for r in rules} == {"queue-backlog", "insitu-share"}
        share = insitu_share_slo(0.10)
        assert share.healthy(0.05) and not share.healthy(0.20)
        assert share.value_of({"insitu": 1.0, "simulation": 3.0}) == 0.25
        assert share.value_of({}) == 0.0

    def test_standard_probes_read_live_objects(self):
        from repro.staging.dataspaces import DataSpaces
        from repro.transport.dart import DartTransport

        engine = Engine()
        transport = DartTransport(engine)
        ds = DataSpaces(engine, transport)
        ds.spawn_buckets(["b0", "b1"])
        probes = standard_probes(ds, transport)
        engine.run()
        assert probes["sched.queue_depth"]() == 0.0
        assert probes["sched.idle_buckets"]() == 2.0
        assert probes["bucket.busy"]() == 0.0
        assert probes["nic.busy_channels"]() == 0.0
        assert probes["rdma.live_bytes"]() == 0.0
