"""Tests for the visualization analysis: camera, transfer function, serial
renderer, in-situ block compositing, and the hybrid LUT renderer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.visualization import (
    BlockLUT,
    Camera,
    TransferFunction,
    downsample_block,
    downsample_decomposed,
    render_blocks_insitu,
    render_intransit,
    render_volume,
)
from repro.analysis.visualization.compositing import visibility_order
from repro.analysis.visualization.volume_render import trilinear_sampler
from repro.util import image_rmse
from repro.vmpi import BlockDecomposition3D


def _blob_field(shape=(16, 14, 12), seed=50):
    rng = np.random.default_rng(seed)
    coords = np.stack(np.mgrid[[slice(0, s) for s in shape]]).astype(float)
    f = np.zeros(shape)
    for _ in range(4):
        c = [rng.uniform(2, s - 2) for s in shape]
        d2 = sum((coords[a] - c[a]) ** 2 for a in range(3))
        f += rng.uniform(0.5, 1.5) * np.exp(-d2 / rng.uniform(4, 12))
    return f


class TestCamera:
    def test_basis_orthonormal(self):
        cam = Camera(azimuth_deg=42.0, elevation_deg=17.0)
        view, right, up = cam.basis()
        for v in (view, right, up):
            assert np.linalg.norm(v) == pytest.approx(1.0)
        assert np.dot(view, right) == pytest.approx(0.0, abs=1e-12)
        assert np.dot(view, up) == pytest.approx(0.0, abs=1e-12)
        assert np.dot(right, up) == pytest.approx(0.0, abs=1e-12)

    def test_straight_down_view_handled(self):
        cam = Camera(azimuth_deg=0.0, elevation_deg=90.0)
        view, right, up = cam.basis()
        assert np.linalg.norm(right) == pytest.approx(1.0)

    def test_rays_cover_volume(self):
        cam = Camera(image_shape=(8, 10))
        origins, direction, t_len = cam.rays((10, 10, 10))
        assert origins.shape == (8, 10, 3)
        assert np.linalg.norm(direction) == pytest.approx(1.0)
        assert t_len > np.linalg.norm([10, 10, 10]) * 0.99

    def test_zoom_shrinks_footprint(self):
        wide = Camera(zoom=1.0, image_shape=(4, 4)).rays((10, 10, 10))[0]
        tight = Camera(zoom=4.0, image_shape=(4, 4)).rays((10, 10, 10))[0]
        assert (np.ptp(tight[..., 0])) < np.ptp(wide[..., 0])

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            Camera(image_shape=(0, 4))
        with pytest.raises(ValueError):
            Camera(zoom=0.0)


class TestTransferFunction:
    def test_interpolation_and_clamping(self):
        tf = TransferFunction(((0.0, 0, 0, 0, 0.0), (1.0, 1, 1, 1, 0.5)))
        rgba = tf(np.array([-1.0, 0.0, 0.5, 1.0, 2.0]))
        np.testing.assert_allclose(rgba[0], [0, 0, 0, 0])
        np.testing.assert_allclose(rgba[2], [0.5, 0.5, 0.5, 0.25])
        np.testing.assert_allclose(rgba[4], [1, 1, 1, 0.5])

    def test_validation(self):
        with pytest.raises(ValueError):
            TransferFunction(((0.0, 0, 0, 0, 0),))  # one point
        with pytest.raises(ValueError):
            TransferFunction(((1.0, 0, 0, 0, 0), (0.0, 0, 0, 0, 0)))  # unsorted
        with pytest.raises(ValueError):
            TransferFunction(((0.0, 2.0, 0, 0, 0), (1.0, 0, 0, 0, 0)))  # bad color

    def test_hot_palette_shape(self):
        tf = TransferFunction.hot(0.0, 1.0)
        rgba = tf(np.array([0.0, 1.0]))
        assert rgba[0, 3] == 0.0          # transparent at vmin
        assert rgba[1, 3] > 0.0           # opaque-ish at vmax
        assert rgba[1, 0] == 1.0          # hot end is bright

    def test_hot_validation(self):
        with pytest.raises(ValueError):
            TransferFunction.hot(1.0, 0.0)


class TestTrilinearSampler:
    def test_exact_at_grid_points(self):
        f = np.random.default_rng(51).random((4, 5, 6))
        sample = trilinear_sampler(f)
        pts = np.array([[0, 0, 0], [3, 4, 5], [1, 2, 3]], dtype=float)
        np.testing.assert_allclose(sample(pts), [f[0, 0, 0], f[3, 4, 5], f[1, 2, 3]])

    def test_linear_between_points(self):
        f = np.zeros((2, 2, 2))
        f[1, :, :] = 1.0
        sample = trilinear_sampler(f)
        np.testing.assert_allclose(sample(np.array([[0.25, 0.5, 0.5]])), [0.25])

    def test_outside_returns_fill(self):
        f = np.ones((3, 3, 3))
        f[0, 0, 0] = -5.0  # the min
        sample = trilinear_sampler(f)
        np.testing.assert_allclose(sample(np.array([[-10.0, 0, 0]])), [-5.0])


class TestSerialRenderer:
    def test_empty_volume_is_background(self):
        f = np.zeros((8, 8, 8))
        tf = TransferFunction.hot(0.0, 1.0)
        img = render_volume(f, Camera(image_shape=(8, 8)), tf, background=0.25)
        np.testing.assert_allclose(img, 0.25)

    def test_blob_renders_nonuniform(self):
        f = _blob_field()
        tf = TransferFunction.hot(0.0, float(f.max()))
        img = render_volume(f, Camera(image_shape=(16, 16)), tf)
        assert img.shape == (16, 16, 3)
        assert img.max() > 0.05
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_bad_field_dim_raises(self):
        with pytest.raises(ValueError):
            render_volume(np.zeros((4, 4)), Camera(), TransferFunction.hot(0, 1))

    def test_step_validation(self):
        with pytest.raises(ValueError):
            render_volume(np.zeros((4, 4, 4)), Camera(),
                          TransferFunction.hot(0, 1), step=0.0)

    def test_deterministic(self):
        f = _blob_field()
        tf = TransferFunction.hot(0.0, 1.5)
        cam = Camera(image_shape=(10, 10))
        np.testing.assert_array_equal(render_volume(f, cam, tf),
                                      render_volume(f, cam, tf))


class TestInSituCompositing:
    """The key invariant: block-parallel rendering == serial reference."""

    @pytest.mark.parametrize("proc_grid", [(2, 1, 1), (2, 2, 1), (2, 2, 2)])
    def test_matches_serial(self, proc_grid):
        f = _blob_field()
        decomp = BlockDecomposition3D(f.shape, proc_grid)
        tf = TransferFunction.hot(float(f.min()), float(f.max()))
        cam = Camera(image_shape=(12, 12), azimuth_deg=25, elevation_deg=15)
        serial = render_volume(f, cam, tf)
        composited = render_blocks_insitu(f, decomp, cam, tf)
        assert image_rmse(serial, composited) < 1e-9

    @given(st.integers(0, 1000),
           st.floats(-80.0, 80.0), st.floats(-60.0, 60.0))
    @settings(max_examples=10, deadline=None)
    def test_property_matches_serial_any_view(self, seed, az, el):
        f = _blob_field(shape=(10, 9, 8), seed=seed)
        decomp = BlockDecomposition3D(f.shape, (2, 2, 1))
        tf = TransferFunction.hot(float(f.min()), float(f.max()) + 1e-9)
        cam = Camera(image_shape=(8, 8), azimuth_deg=az, elevation_deg=el)
        assert image_rmse(render_volume(f, cam, tf),
                          render_blocks_insitu(f, decomp, cam, tf)) < 1e-9

    def test_visibility_order_is_permutation(self):
        decomp = BlockDecomposition3D((8, 8, 8), (2, 2, 2))
        order = visibility_order(decomp, np.array([0.3, -0.5, 0.8]))
        assert sorted(order) == list(range(8))

    def test_visibility_order_respects_axis_direction(self):
        decomp = BlockDecomposition3D((8, 8, 8), (2, 1, 1))
        front_first = visibility_order(decomp, np.array([1.0, 0.0, 0.0]))
        assert front_first == [0, 1]
        assert visibility_order(decomp, np.array([-1.0, 0.0, 0.0])) == [1, 0]

    def test_shape_mismatch_raises(self):
        decomp = BlockDecomposition3D((8, 8, 8), (2, 1, 1))
        with pytest.raises(ValueError):
            render_blocks_insitu(np.zeros((4, 4, 4)), decomp, Camera(),
                                 TransferFunction.hot(0, 1))


class TestDownsample:
    def test_block_shape_ceil_division(self):
        data = np.arange(7 * 5 * 4, dtype=float).reshape(7, 5, 4)
        ds = downsample_block(data, (0, 0, 0), (7, 5, 4), stride=2)
        assert ds.data.shape == (4, 3, 2)
        np.testing.assert_array_equal(ds.data, data[::2, ::2, ::2])

    def test_stride_one_is_identity(self):
        data = np.random.default_rng(52).random((4, 4, 4))
        ds = downsample_block(data, (0, 0, 0), (4, 4, 4), stride=1)
        np.testing.assert_array_equal(ds.data, data)

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            downsample_block(np.zeros((4, 4, 4)), (0, 0, 0), (4, 4, 4), 0)

    def test_data_reduction_factor(self):
        """Stride 8 reduces the payload by ~8^3 = 512x (Fig. 2 / Table II)."""
        f = np.zeros((32, 32, 32))
        decomp = BlockDecomposition3D(f.shape, (2, 2, 2))
        blocks = downsample_decomposed(f, decomp, stride=8)
        moved = sum(b.nbytes for b in blocks)
        assert moved == f.nbytes / 512

    def test_decomposed_covers_all_blocks(self):
        f = np.random.default_rng(53).random((8, 6, 4))
        decomp = BlockDecomposition3D(f.shape, (2, 3, 1))
        blocks = downsample_decomposed(f, decomp, stride=2)
        assert len(blocks) == 6
        for b, blk in zip(decomp.blocks(), blocks):
            assert blk.lo == b.lo and blk.hi == b.hi


class TestBlockLUT:
    def _blocks(self, shape=(8, 8, 8), grid=(2, 2, 1), stride=2, seed=54):
        f = np.random.default_rng(seed).random(shape)
        decomp = BlockDecomposition3D(shape, grid)
        return f, downsample_decomposed(f, decomp, stride)

    def test_routes_cells_to_owner(self):
        f, blocks = self._blocks()
        lut = BlockLUT(blocks, f.shape)
        cell = np.array([[0, 0, 0], [7, 7, 7], [3, 4, 0]])
        which = lut.block_of_cell(cell)
        assert which[0] == 0
        assert blocks[which[1]].hi == (8, 8, 8)

    def test_sampler_returns_retained_voxels(self):
        f, blocks = self._blocks(stride=2)
        lut = BlockLUT(blocks, f.shape)
        sample = lut.sampler()
        # at even coordinates the retained voxel is the exact value
        pts = np.array([[0, 0, 0], [2, 4, 6], [6, 6, 2]], dtype=float)
        np.testing.assert_allclose(
            sample(pts), [f[0, 0, 0], f[2, 4, 6], f[6, 6, 2]])

    def test_lut_is_small(self):
        """"This small look-up table" — metadata, not data."""
        f, blocks = self._blocks()
        lut = BlockLUT(blocks, f.shape)
        assert lut.nbytes < sum(b.nbytes for b in blocks)

    def test_stride_disagreement_raises(self):
        f, blocks = self._blocks()
        bad = downsample_block(np.zeros((4, 4, 8)), blocks[0].lo,
                               blocks[0].hi, stride=4)
        with pytest.raises(ValueError):
            BlockLUT([bad] + blocks[1:], f.shape)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            BlockLUT([], (4, 4, 4))


class TestHybridRenderer:
    def test_stride_one_matches_nearest_of_serial(self):
        """At stride 1 the LUT renderer sees full data; its image should be
        close to the serial (trilinear) reference."""
        f = _blob_field(shape=(12, 12, 10))
        decomp = BlockDecomposition3D(f.shape, (2, 2, 1))
        tf = TransferFunction.hot(float(f.min()), float(f.max()))
        cam = Camera(image_shape=(12, 12))
        serial = render_volume(f, cam, tf, step=0.5)
        hybrid = render_intransit(downsample_decomposed(f, decomp, 1),
                                  f.shape, cam, tf, step=0.5)
        assert image_rmse(serial, hybrid) < 0.05

    def test_error_grows_with_stride(self):
        """Fig. 2's message: the down-sampled render approximates the
        full-resolution one; fidelity degrades gracefully with stride."""
        f = _blob_field(shape=(16, 16, 16))
        decomp = BlockDecomposition3D(f.shape, (2, 2, 2))
        tf = TransferFunction.hot(float(f.min()), float(f.max()))
        cam = Camera(image_shape=(16, 16))
        serial = render_volume(f, cam, tf)
        errs = []
        for stride in (1, 2, 4):
            img = render_intransit(downsample_decomposed(f, decomp, stride),
                                   f.shape, cam, tf)
            errs.append(image_rmse(serial, img))
        assert errs[0] <= errs[1] <= errs[2] + 1e-6
        assert errs[2] < 0.5  # still recognisably the same scene

    def test_zoom_view(self):
        """The Fig. 2 zoom-in: same pipeline, tighter camera."""
        f = _blob_field(shape=(12, 12, 10))
        decomp = BlockDecomposition3D(f.shape, (2, 1, 1))
        tf = TransferFunction.hot(float(f.min()), float(f.max()))
        cam = Camera(image_shape=(10, 10), zoom=3.0, center=(6.0, 6.0, 5.0))
        img = render_intransit(downsample_decomposed(f, decomp, 2),
                               f.shape, cam, tf)
        assert img.shape == (10, 10, 3)
        assert img.max() > 0.0
