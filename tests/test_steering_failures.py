"""Tests for computational steering and staging fault handling."""

import numpy as np
import pytest

from repro.core import HybridFramework
from repro.core.steering import (
    SteeringRule,
    checkpoint_on_hot_spot,
    coarsen_cadence_when_quiet,
    refine_cadence_on_topology,
)
from repro.des import Engine
from repro.sim import LiftedFlameCase, StructuredGrid3D
from repro.staging import DataSpaces
from repro.transport import DartTransport
from repro.vmpi import BlockDecomposition3D


def _framework(steering=(), analyses=("topology",), **case_kw):
    grid = StructuredGrid3D((12, 10, 8))
    case = LiftedFlameCase(grid, seed=44, kernel_rate=case_kw.pop("kernel_rate", 2.0),
                           **case_kw)
    decomp = BlockDecomposition3D((12, 10, 8), (2, 1, 1))
    return HybridFramework(case, decomp, analyses=analyses, n_buckets=2,
                           steering=steering)


class TestSteeringRules:
    def test_refine_cadence_fires_and_tightens_interval(self):
        rule = refine_cadence_on_topology(n_maxima=1, new_interval=1)
        fw = _framework(steering=(rule,))
        result = fw.run(6, analysis_interval=3)
        assert rule.firings >= 1
        assert fw.analysis_interval == 1
        # after the firing, analyses happen every step
        analysed = result.analysed_steps
        assert len(analysed) > 2  # more than ceil(6/3) without steering

    def test_coarsen_cadence_when_quiet(self):
        rule = coarsen_cadence_when_quiet(max_maxima=10**6, new_interval=3)
        fw = _framework(steering=(rule,))
        fw.run(6, analysis_interval=1)
        assert fw.analysis_interval == 3
        assert rule.firings >= 1

    def test_max_firings_cap(self):
        # A rule whose action always has an effect is capped by
        # max_firings even though its predicate holds on every result.
        effects = []
        rule = SteeringRule(
            name="always-effective",
            predicate=lambda result: result.analysis == "topology",
            action=lambda fw, result: effects.append(result.timestep),
            max_firings=2)
        fw = _framework(steering=(rule,))
        fw.run(6, analysis_interval=1)
        assert rule.firings == 2
        assert len(effects) == 2

    def test_no_flap_when_interval_already_tight(self):
        # The refine rule's predicate holds on every topology result, but
        # refining to the interval already in force is a no-op: it never
        # fires and never pollutes the shared-space decision history.
        rule = refine_cadence_on_topology(n_maxima=1, new_interval=1)
        fw = _framework(steering=(rule,))
        result = fw.run(6, analysis_interval=1)
        assert rule.firings == 0
        assert result.steering_events == []
        assert fw.dataspaces.versions("steering") == []

    def test_refine_coarsen_pair_cooldown_damps_pingpong(self):
        # An opposed rule pair whose predicates both always hold would
        # genuinely ping-pong the interval; the cooldown knob bounds each
        # side to one firing per refractory period.
        refine = refine_cadence_on_topology(n_maxima=1, new_interval=1,
                                            cooldown_steps=100)
        coarsen = coarsen_cadence_when_quiet(max_maxima=10**6,
                                             new_interval=3,
                                             cooldown_steps=100)
        fw = _framework(steering=(refine, coarsen))
        result = fw.run(8, analysis_interval=3)
        assert refine.firings <= 1 and coarsen.firings <= 1
        assert len(result.steering_events) == refine.firings + coarsen.firings
        # Every recorded event carries the actual transition.
        for ev in result.steering_events:
            assert ev.detail["previous_interval"] != ev.detail["analysis_interval"]

    def test_cooldown_suppresses_refires(self):
        fired = []
        rule = SteeringRule(
            name="cooled",
            predicate=lambda result: result.analysis == "topology",
            action=lambda fw, result: fired.append(result.timestep),
            cooldown_steps=4)
        fw = _framework(steering=(rule,))
        fw.run(6, analysis_interval=1)
        # Firings at least 4 timesteps apart: steps 0..5 allow at most 2.
        assert rule.firings == len(fired) <= 2
        assert all(b - a >= 4 for a, b in zip(fired, fired[1:]))

    def test_checkpoint_on_hot_spot(self, tmp_path):
        path = str(tmp_path / "event.bp")
        rule = checkpoint_on_hot_spot(threshold=0.5, path=path)
        fw = _framework(steering=(rule,), analyses=("statistics",))
        fw.run(3)
        assert rule.firings == 1  # max_firings=1 built in
        from repro.io.bp import BPFile
        bp = BPFile.open(path)
        assert bp.attrs["trigger"] == "hot-spot"
        assert "T" in bp.variables

    def test_events_recorded_and_published(self):
        rule = refine_cadence_on_topology(n_maxima=1, new_interval=1)
        fw = _framework(steering=(rule,))
        result = fw.run(4, analysis_interval=2)
        assert result.steering_events
        ev = result.steering_events[0]
        assert ev.rule.startswith("refine-cadence")
        # decision history visible through the shared space
        assert fw.dataspaces.versions("steering")

    def test_no_steering_no_events(self):
        fw = _framework(steering=())
        result = fw.run(3)
        assert result.steering_events == []

    def test_rule_factory_validation(self):
        with pytest.raises(ValueError):
            refine_cadence_on_topology(0, 1)
        with pytest.raises(ValueError):
            coarsen_cadence_when_quiet(-1, 1)


class TestFaultHandling:
    def _space(self):
        eng = Engine()
        tr = DartTransport(eng)
        ds = DataSpaces(eng, tr, n_servers=1)
        ds.spawn_buckets(["b0", "b1"])
        return eng, tr, ds

    def test_flaky_compute_retries_and_succeeds(self):
        eng, tr, ds = self._space()
        attempts = []

        def flaky(payloads):
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("transient analysis failure")
            return sum(float(p[0]) for p in payloads)

        descs = [tr.register(f"sim-{i}", np.full(2, float(i)))
                 for i in range(3)]
        task = ds.submit_grouped_result("stats", 0, descs, compute=flaky)
        task.max_retries = 5
        ds.shutdown_buckets()
        eng.run()
        results = ds.all_results()
        assert len(results) == 1
        assert results[0].value == 3.0
        assert len(attempts) == 3
        failures = [f for b in ds.buckets for f in b.failures]
        assert len(failures) == 2

    def test_retry_moves_to_other_bucket(self):
        eng, tr, ds = self._space()
        calls = []

        def fail_once(payloads):
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("boom")
            return "ok"

        descs = [tr.register("sim-0", b"x")]
        task = ds.submit_grouped_result("a", 0, descs, compute=fail_once)
        task.max_retries = 1
        ds.shutdown_buckets()
        eng.run()
        r = ds.all_results()
        assert len(r) == 1 and r[0].value == "ok"

    def test_regions_survive_retries(self):
        """Producers' buffers stay registered until the task succeeds."""
        eng, tr, ds = self._space()
        calls = []

        def fail_once(payloads):
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("boom")
            return float(np.sum(payloads[0]))

        descs = [tr.register("sim-0", np.arange(4.0))]
        task = ds.submit_grouped_result("a", 0, descs, compute=fail_once)
        task.max_retries = 2
        ds.shutdown_buckets()
        eng.run()
        assert ds.all_results()[0].value == 6.0
        # after success the region was released
        with pytest.raises(KeyError):
            tr.registry.lookup(descs[0].region_id)

    def test_exhausted_retries_fail_terminally_without_killing_bucket(self):
        eng, tr, ds = self._space()

        def always_fails(payloads):
            raise RuntimeError("permanent failure")

        descs = [tr.register("sim-0", b"x")]
        task = ds.submit_grouped_result("a", 0, descs, compute=always_fails)
        task.max_retries = 2
        ds.shutdown_buckets()
        eng.run()
        failures = [f for b in ds.buckets for f in b.failures]
        assert len(failures) == 3  # initial + 2 retries
        # the task is accounted as terminally failed, not lost
        assert task.task_id in ds.failed_task_ids()
        acct = ds.task_accounting()
        assert acct["failed"] == 1 and acct["outstanding"] == 0
        # every bucket survived and was shut down cleanly, not killed
        assert all(not b.dead for b in ds.buckets)
        # the failed task's retained regions were released
        assert len(tr.registry) == 0

    def test_fail_fast_by_default_records_terminal_failure(self):
        eng, tr, ds = self._space()

        def always_fails(payloads):
            raise RuntimeError("fatal")

        descs = [tr.register("sim-0", b"x")]
        task = ds.submit_grouped_result("a", 0, descs, compute=always_fails)
        ds.shutdown_buckets()
        eng.run()
        failures = [f for b in ds.buckets for f in b.failures]
        assert len(failures) == 1  # max_retries=0: one attempt, no retry
        assert task.task_id in ds.failed_task_ids()
        assert ds.task_accounting()["outstanding"] == 0
        assert all(not b.dead for b in ds.buckets)

    def test_max_retries_validation(self):
        from repro.staging.descriptors import TaskDescriptor
        with pytest.raises(ValueError):
            TaskDescriptor(task_id="t", analysis="a", timestep=0, data=[],
                           max_retries=-1)
