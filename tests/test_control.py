"""Tests for repro.control: the adaptive in-situ/in-transit controller.

Covers the hysteresis primitive, the elastic staging pool
(``DataSpaces.scale_to`` and the scale-to-target supervisor), the
no-op guard (a healthy run with a controller is bit-identical to one
without), and the fault-injected adaptive-vs-static scenario: pool
growth, placement flips, byte-identical decision logs, and blame-sum
reconciliation with the controller active.
"""

import json

import numpy as np
import pytest

from repro.control import (
    DEFAULT_MOVABLE,
    PLACE_INSITU,
    PLACE_INTRANSIT,
    ControlPolicy,
    Cooldown,
    PlacementController,
    run_control_scenario,
)
from repro.core import ExperimentConfig, ScaledExperiment
from repro.core.workload import AnalyticsVariant
from repro.des import Engine
from repro.faults import FaultConfig
from repro.obs.blame import blame
from repro.obs.tracer import tracing
from repro.staging import DataSpaces
from repro.transport import DartTransport


def _result_key(r):
    return (r.task_id, r.analysis, r.timestep, r.bucket, r.enqueue_time,
            r.assign_time, r.pull_done_time, r.finish_time, r.bytes_pulled)


class TestCooldown:
    def test_zero_period_always_ready(self):
        cd = Cooldown(0.0)
        for pos in (0, 0, 1, 1):
            assert cd.ready(pos)
            cd.fire(pos)

    def test_refractory_period(self):
        cd = Cooldown(2)
        assert cd.ready(0)
        cd.fire(0)
        assert not cd.ready(1)
        assert cd.ready(2)
        cd.reset()
        assert cd.ready(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Cooldown(-1)


class TestPolicyValidation:
    def test_bad_knobs_raise(self):
        with pytest.raises(ValueError):
            ControlPolicy(window=0)
        with pytest.raises(ValueError):
            ControlPolicy(grow_step=0)
        with pytest.raises(ValueError):
            ControlPolicy(pull_threshold=1.5)
        with pytest.raises(ValueError):
            ControlPolicy(cooldown_windows=-1)

    def test_defaults_are_valid(self):
        pol = ControlPolicy()
        assert pol.window == 2
        assert pol.movable == DEFAULT_MOVABLE


class TestScaleTo:
    def _space(self):
        eng = Engine()
        tr = DartTransport(eng)
        ds = DataSpaces(eng, tr, n_servers=1)
        return eng, tr, ds

    def test_grow_spawns_fresh_workers(self):
        eng, _, ds = self._space()
        ds.spawn_buckets(["b0", "b1"])
        out = ds.scale_to(4)
        assert out["spawned"] == ["staging+1", "staging+2"]
        assert out["retiring"] == []
        assert ds.pool_target == 4
        assert ds.committed_buckets() == 4
        eng.run()
        assert ds.live_buckets() == 4

    def test_shrink_retires_idle_workers_newest_first(self):
        eng, _, ds = self._space()
        ds.spawn_buckets(["b0", "b1", "b2", "b3"])
        out = ds.scale_to(2)
        assert out["retiring"] == ["b3", "b2"]
        eng.run()
        assert ds.live_buckets() == 2
        retired = [b for b in ds.buckets if b.retired]
        assert {b.name for b in retired} == {"b2", "b3"}
        # retirement is orderly shutdown, not death
        assert all(not b.dead for b in retired)

    def test_busy_worker_finishes_task_then_retires(self):
        eng, tr, ds = self._space()
        ds.spawn_buckets(["b0", "b1"])
        for i in range(2):
            descs = [tr.register(f"sim-{i}", np.arange(64.0))]
            ds.submit_grouped_result("stats", i, descs,
                                     compute=lambda p: float(np.sum(p[0])))
        # retire while both workers are mid-task
        eng.call_at(0.5, lambda: ds.scale_to(1))
        eng.call_at(10_000.0, ds.shutdown_buckets)
        eng.run()
        # every submitted task still completed; one worker then left
        assert len(ds.all_results()) == 2
        assert ds.live_buckets() == 1
        assert sum(1 for b in ds.buckets if b.retired) == 1

    def test_supervisor_respawns_toward_target_after_crash(self):
        eng, _, ds = self._space()
        ds.spawn_buckets(["b0", "b1"])
        ds.scale_to(3)
        eng.call_at(1.0, lambda: ds.crash_bucket("b0"))
        eng.run()
        assert ds.pool_respawns == 1
        assert ds.live_buckets() == 3
        assert ds.committed_buckets() == 3
        # the replacement came from the elastic namespace, budget untouched
        assert any(b.name.startswith("staging+") and not b.dead
                   for b in ds.buckets)
        assert ds.restarts_used == 0

    def test_validation(self):
        _, _, ds = self._space()
        ds.spawn_buckets(["b0"])
        with pytest.raises(ValueError):
            ds.scale_to(0)


class TestControllerNoOp:
    def test_healthy_run_takes_no_decisions_and_is_bit_identical(self):
        exp = ScaledExperiment(ExperimentConfig.paper_4896())
        base = exp.run_schedule(n_steps=4, n_buckets=8)
        ctrl = PlacementController()
        adaptive = exp.run_schedule(n_steps=4, n_buckets=8, controller=ctrl)
        # healthy pool, no backlog: the controller observes but never acts
        assert ctrl.decisions == []
        assert len(ctrl.signal_history) > 0
        # and the replay is bit-identical to the uncontrolled one
        assert adaptive.makespan == base.makespan
        assert ([_result_key(r) for r in adaptive.results]
                == [_result_key(r) for r in base.results])

    def test_begin_run_derives_memory_bounded_cap(self):
        exp = ScaledExperiment(ExperimentConfig.paper_4896())
        ctrl = PlacementController()
        exp.run_schedule(n_steps=2, n_buckets=4, controller=ctrl)
        assert ctrl.min_buckets == 4
        assert ctrl.max_buckets == 16  # 4x initial, memory-feasible
        assert (exp.staging_memory_needed(1, ctrl.max_buckets)
                <= ctrl.memory_budget_bytes)
        # explicit memory budget tightens the cap below the hard ceiling
        tight = PlacementController(ControlPolicy(
            memory_budget_bytes=exp.staging_memory_needed(1, 6)))
        exp.run_schedule(n_steps=2, n_buckets=4, controller=tight)
        assert tight.max_buckets == 6

    def test_controller_requires_single_shard(self):
        exp = ScaledExperiment(ExperimentConfig.paper_4896())
        with pytest.raises(ValueError):
            exp.run_schedule(n_steps=2, n_shards=2,
                             controller=PlacementController())


class TestControlScenario:
    @pytest.fixture(scope="class")
    def report(self):
        return run_control_scenario()

    def test_adaptive_beats_static_under_faults(self, report):
        assert report.improved
        assert report.adaptive_makespan < report.static_makespan
        assert report.speedup > 1.0
        pool = [d for d in report.controller.decisions if d.kind == "pool"]
        assert pool, "expected at least one pool decision under faults"
        assert all(int(d.after) > int(d.before) for d in pool)
        assert all(int(d.after) <= report.controller.max_buckets
                   for d in pool)

    def test_decisions_recorded_to_shared_space(self, report):
        ctrl = report.controller
        versions = ctrl._ds.versions("controller")
        assert len(versions) == len(ctrl.decisions) > 0

    def test_pool_trajectory_tracks_growth(self, report):
        traj = report.controller.pool_trajectory
        assert traj[0] == (0.0, 4)
        assert max(n for _, n in traj) > 4
        assert all(t2 >= t1 for (t1, _), (t2, _) in zip(traj, traj[1:]))

    def test_windowed_probe_series_sampled(self, report):
        series = report.controller.probe_series
        assert "sched.queue_depth" in series
        assert len(series["sched.queue_depth"]) == len(
            report.controller.signal_history)

    def test_report_summary_and_metrics(self, report):
        summary = report.summary()
        json.dumps(summary)  # artifact must be JSON-serializable
        assert summary["improved"] is True
        assert summary["decisions"] == report.controller.decision_log()
        metrics = report.to_metrics()
        assert metrics["controller.speedup"] == pytest.approx(report.speedup)
        assert metrics["controller.decisions"] == float(
            len(report.controller.decisions))

    def test_decision_log_byte_identical_across_same_seed_runs(self, report):
        again = run_control_scenario()
        log_a = report.controller.decision_log_json()
        log_b = again.controller.decision_log_json()
        assert log_a == log_b
        assert json.loads(log_a), "fault scenario must produce decisions"
        assert again.adaptive_makespan == report.adaptive_makespan
        assert again.static_makespan == report.static_makespan


class TestControllerUnderTracing:
    def test_blame_sums_to_makespan_with_controller_active(self):
        exp = ScaledExperiment(ExperimentConfig.paper_4896())
        fault = FaultConfig(seed=0, crash_times=(30.0, 55.0),
                            pull_stall_rate=0.05, pull_stall_seconds=2.0)
        ctrl = PlacementController()
        with tracing() as tracer:
            result = exp.run_schedule(n_steps=12, n_buckets=4,
                                      lease_timeout=5.0, controller=ctrl,
                                      fault_config=fault)
        assert len(ctrl.decisions) >= 1
        report = blame(tracer.trace)
        assert report.overall.check(tol=1e-6)
        assert report.overall.window == pytest.approx(result.makespan,
                                                      abs=1e-6)
        # decision instrumentation flows into the metrics registry
        counters = tracer.metrics.counters
        assert counters["controller.decisions"].value == len(ctrl.decisions)
        assert "controller.pool_size" in tracer.metrics.gauges

    def test_tracing_does_not_perturb_decisions(self):
        kw = dict(n_steps=12, n_buckets=4, lease_timeout=5.0)
        fault = FaultConfig(seed=0, crash_times=(30.0, 55.0),
                            pull_stall_rate=0.05, pull_stall_seconds=2.0)
        exp = ScaledExperiment(ExperimentConfig.paper_4896())
        plain = PlacementController()
        exp.run_schedule(controller=plain, fault_config=fault, **kw)
        traced = PlacementController()
        with tracing():
            exp.run_schedule(controller=traced, fault_config=fault, **kw)
        assert plain.decision_log_json() == traced.decision_log_json()


class TestPlacementFlip:
    def test_pull_insitu_when_pool_capped_and_pressure_high(self):
        exp = ScaledExperiment(ExperimentConfig.paper_4896())
        pol = ControlPolicy(max_buckets=4, insitu_budget=0.9,
                            cooldown_windows=1,
                            movable=(AnalyticsVariant.STATS_HYBRID.value,))
        fault = FaultConfig(seed=1, crash_times=(30.0, 55.0),
                            pull_stall_rate=0.2, pull_stall_seconds=5.0)
        ctrl = PlacementController(pol)
        result = exp.run_schedule(n_steps=10, n_buckets=4,
                                  lease_timeout=5.0, controller=ctrl,
                                  fault_config=fault)
        flips = [d for d in ctrl.decisions if d.kind == "placement"]
        assert flips
        assert flips[0].before == PLACE_INTRANSIT
        assert flips[0].after == PLACE_INSITU
        assert flips[0].subject == AnalyticsVariant.STATS_HYBRID.value
        assert ctrl.placements[AnalyticsVariant.STATS_HYBRID] == PLACE_INSITU
        # after the flip the completion stage runs on the sim cores
        moved = [r for r in result.results if r.bucket == "sim-insitu"]
        assert moved
        assert {r.analysis for r in moved} == {
            AnalyticsVariant.STATS_HYBRID.value}
        # the pool never outgrew its explicit cap
        assert all(n <= 4 for _, n in ctrl.pool_trajectory)

    def test_push_back_intransit_when_insitu_budget_breached(self):
        exp = ScaledExperiment(ExperimentConfig.paper_4896())
        pol = ControlPolicy(max_buckets=4, insitu_budget=0.05,
                            cooldown_windows=1,
                            movable=(AnalyticsVariant.STATS_HYBRID.value,))
        fault = FaultConfig(seed=1, crash_times=(30.0, 55.0),
                            pull_stall_rate=0.2, pull_stall_seconds=5.0)
        ctrl = PlacementController(pol)
        exp.run_schedule(n_steps=10, n_buckets=4, lease_timeout=5.0,
                         controller=ctrl, fault_config=fault)
        kinds = [(d.before, d.after) for d in ctrl.decisions
                 if d.kind == "placement"]
        if (PLACE_INTRANSIT, PLACE_INSITU) in kinds:
            # with a 5% budget any pull must eventually be pushed back
            assert (PLACE_INSITU, PLACE_INTRANSIT) in kinds
            assert (ctrl.placements[AnalyticsVariant.STATS_HYBRID]
                    == PLACE_INTRANSIT)
