"""Tests for the run-report renderer."""

import pytest

from repro.core import HybridFramework
from repro.core.report import run_report
from repro.core.steering import refine_cadence_on_topology
from repro.sim import LiftedFlameCase, StructuredGrid3D
from repro.vmpi import BlockDecomposition3D


@pytest.fixture(scope="module")
def run():
    grid = StructuredGrid3D((12, 10, 8))
    case = LiftedFlameCase(grid, seed=61, kernel_rate=1.5)
    decomp = BlockDecomposition3D((12, 10, 8), (2, 1, 1))
    fw = HybridFramework(
        case, decomp,
        analyses=("statistics", "topology", "autocorrelation"),
        stats_variables=("T",), n_buckets=2,
        steering=(refine_cadence_on_topology(1, 1),))
    result = fw.run(4, analysis_interval=2)
    return fw, result


class TestRunReport:
    def test_contains_core_sections(self, run):
        fw, result = run
        text = run_report(fw, result)
        assert "hybrid run" in text
        assert "in-transit activity" in text
        assert "bucket occupancy" in text
        assert "statistics @ step" in text
        assert "topology @ step" in text
        assert "total intermediate data" in text

    def test_reports_analyses_present(self, run):
        fw, result = run
        text = run_report(fw, result)
        assert "statistics" in text and "topology" in text
        assert "autocorrelation" in text
        assert "rho(1)=" in text

    def test_reports_steering(self, run):
        fw, result = run
        text = run_report(fw, result)
        assert "steering" in text
        assert "refine-cadence" in text

    def test_utilisation_percentages_present(self, run):
        fw, result = run
        text = run_report(fw, result)
        assert "utilisation:" in text
        assert "%" in text

    def test_minimal_run(self):
        """A run with a single analysis still renders without errors."""
        grid = StructuredGrid3D((8, 8, 6))
        case = LiftedFlameCase(grid, seed=62)
        decomp = BlockDecomposition3D((8, 8, 6), (1, 1, 1))
        fw = HybridFramework(case, decomp, analyses=("statistics",),
                             stats_variables=("T",), n_buckets=1)
        result = fw.run(1)
        text = run_report(fw, result)
        assert "1 analysed" in text
        assert "steering" not in text
