"""Tests for the DataSpaces-like staging layer: hashing, scheduler, space, buckets."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.costmodel import CostModel
from repro.des import Engine
from repro.staging import DataSpaces, ServiceRing, StagingBucket, TaskDescriptor
from repro.transport import DartTransport


class TestServiceRing:
    def test_stable_assignment(self):
        ring = ServiceRing(8)
        assert ring.server_for("task-42") == ring.server_for("task-42")

    def test_all_servers_in_range(self):
        ring = ServiceRing(5)
        for i in range(200):
            assert 0 <= ring.server_for(f"key-{i}") < 5

    def test_load_roughly_balanced(self):
        """The paper credits hashing with balancing RPCs over servers."""
        ring = ServiceRing(8, virtual_nodes=128)
        keys = [f"task-{i}" for i in range(8000)]
        hist = ring.load_histogram(keys)
        assert min(hist) > 0
        assert max(hist) / (len(keys) / 8) < 2.0  # no server sees 2x mean

    def test_single_server(self):
        ring = ServiceRing(1)
        assert ring.server_for("anything") == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            ServiceRing(0)
        with pytest.raises(ValueError):
            ServiceRing(2, virtual_nodes=0)

    @given(st.integers(2, 16))
    @settings(max_examples=10, deadline=None)
    def test_property_consistent_across_instances(self, n):
        a, b = ServiceRing(n), ServiceRing(n)
        for i in range(50):
            assert a.server_for(f"k{i}") == b.server_for(f"k{i}")

    def test_load_histogram_counts_every_key(self):
        ring = ServiceRing(6, virtual_nodes=64)
        keys = [f"task-{i}" for i in range(1234)]
        hist = ring.load_histogram(keys)
        assert len(hist) == 6
        assert sum(hist) == len(keys)

    def test_rebalance_add_server_moves_about_one_over_n(self):
        """Growing an N-ring to N+1 relocates ~1/(N+1) of the keys, and
        every relocated key lands on the *new* server — existing servers'
        virtual-node points survive resizing unchanged."""
        keys = [f"region-{i}" for i in range(4000)]
        old = ServiceRing(4, virtual_nodes=128)
        new = ServiceRing(5, virtual_nodes=128)
        frac = old.moved_fraction(keys, new)
        assert 0.5 / 5 < frac < 2.0 / 5
        for k in keys:
            if old.server_for(k) != new.server_for(k):
                assert new.server_for(k) == 4

    def test_rebalance_remove_server_moves_exactly_its_keys(self):
        """Shrinking N -> N-1 moves exactly the removed server's keys
        (≈ 1/N of them); everyone else's assignment is untouched."""
        keys = [f"region-{i}" for i in range(4000)]
        old = ServiceRing(4, virtual_nodes=128)
        new = ServiceRing(3, virtual_nodes=128)
        hist = old.load_histogram(keys)
        assert old.moved_fraction(keys, new) == hist[3] / len(keys)
        for k in keys:
            if old.server_for(k) != 3:
                assert new.server_for(k) == old.server_for(k)

    def test_imbalance_bounded(self):
        keys = [f"region-{i}" for i in range(4000)]
        assert ServiceRing(8, virtual_nodes=256).imbalance(keys) < 1.35
        assert ServiceRing(4, virtual_nodes=128).imbalance(keys) < 1.35
        assert ServiceRing(1).imbalance(keys) == 1.0
        assert ServiceRing(4).imbalance([]) == 1.0

    def test_moved_fraction_identical_rings(self):
        keys = [f"k{i}" for i in range(100)]
        ring = ServiceRing(4)
        assert ring.moved_fraction(keys, ServiceRing(4)) == 0.0
        assert ring.moved_fraction([], ServiceRing(5)) == 0.0


def _make_task(task_id="t0", **kw):
    return TaskDescriptor(task_id=task_id, analysis="test", timestep=0,
                          data=[], **kw)


class TestScheduler:
    def test_bucket_first_then_data(self):
        eng = Engine()
        from repro.staging.scheduler import TaskScheduler
        sched = TaskScheduler(eng)
        got = []

        def bucket():
            task = yield sched.bucket_ready("b0")
            got.append((eng.now, task.task_id))

        eng.process(bucket())
        eng.run()
        assert sched.idle_buckets == 1
        sched.data_ready(_make_task("t-late"))
        eng.run()
        assert got == [(0.0, "t-late")]

    def test_data_first_then_bucket(self):
        eng = Engine()
        from repro.staging.scheduler import TaskScheduler
        sched = TaskScheduler(eng)
        sched.data_ready(_make_task("t0"))
        assert sched.pending_tasks == 1
        got = []

        def bucket():
            task = yield sched.bucket_ready("b0")
            got.append(task.task_id)

        eng.process(bucket())
        eng.run()
        assert got == ["t0"]
        assert sched.pending_tasks == 0

    def test_fcfs_order(self):
        """Tasks are handed out in data-ready order; buckets in ready order."""
        eng = Engine()
        from repro.staging.scheduler import TaskScheduler
        sched = TaskScheduler(eng)
        for i in range(3):
            sched.data_ready(_make_task(f"t{i}"))
        got = []

        def bucket(name):
            task = yield sched.bucket_ready(name)
            got.append((name, task.task_id))

        for name in ("b0", "b1", "b2"):
            eng.process(bucket(name))
        eng.run()
        assert got == [("b0", "t0"), ("b1", "t1"), ("b2", "t2")]

    def test_assignment_records(self):
        eng = Engine()
        from repro.staging.scheduler import TaskScheduler
        sched = TaskScheduler(eng)
        sched.data_ready(_make_task("t0"))

        def bucket():
            yield sched.bucket_ready("b0")

        eng.process(bucket())
        eng.run()
        assert len(sched.assignments) == 1
        rec = sched.assignments[0]
        assert rec.task_id == "t0" and rec.bucket == "b0"
        assert rec.assign_time >= rec.data_ready_time

    def test_queue_trace_records_depth(self):
        eng = Engine()
        from repro.staging.scheduler import TaskScheduler
        sched = TaskScheduler(eng)
        for i in range(4):
            sched.data_ready(_make_task(f"t{i}"))
        assert sched.max_queue_depth() == 4

    def test_queue_accounting_out_of_order_arrivals(self):
        """pending_tasks / idle_buckets / max_queue_depth stay consistent
        when data-ready and bucket-ready events arrive in bursts and out
        of phase with each other."""
        eng = Engine()
        from repro.staging.scheduler import TaskScheduler
        sched = TaskScheduler(eng)

        # Burst of tasks before any bucket exists: the queue absorbs all.
        for i in range(5):
            sched.data_ready(_make_task(f"t{i}"))
        assert sched.pending_tasks == 5
        assert sched.idle_buckets == 0
        assert sched.max_queue_depth() == 5

        # Three late buckets each drain exactly one task.
        for b in range(3):
            sched.bucket_ready(f"b{b}")
        assert sched.pending_tasks == 2
        assert sched.idle_buckets == 0

        # More buckets than remaining tasks: the excess parks as idle.
        for b in range(3, 7):
            sched.bucket_ready(f"b{b}")
        assert sched.pending_tasks == 0
        assert sched.idle_buckets == 2

        # Late tasks match idle buckets directly, never touching the queue.
        sched.data_ready(_make_task("t5"))
        sched.data_ready(_make_task("t6"))
        assert sched.pending_tasks == 0
        assert sched.idle_buckets == 0
        assert sched.max_queue_depth() == 5  # the early burst stays the peak
        assert len(sched.assignments) == 7

    def test_queue_accounting_alternating_interleave(self):
        """Alternating singles never build a queue deeper than one."""
        eng = Engine()
        from repro.staging.scheduler import TaskScheduler
        sched = TaskScheduler(eng)
        for i in range(6):
            if i % 2 == 0:
                sched.data_ready(_make_task(f"t{i}"))
            else:
                sched.bucket_ready(f"b{i}")
        assert sched.max_queue_depth() == 1
        assert sched.pending_tasks + len(sched.assignments) == 3
        for rec in sched.assignments:
            assert rec.assign_time >= rec.data_ready_time
            assert rec.assign_time >= rec.bucket_ready_time


class TestDataSpacesTupleSpace:
    def setup_method(self):
        self.eng = Engine()
        self.ds = DataSpaces(self.eng, DartTransport(self.eng), n_servers=4)

    def test_plain_put_get(self):
        self.ds.put("model", 3, {"mean": 1.0})
        assert self.ds.get("model", 3) == {"mean": 1.0}

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            self.ds.get("nope", 0)

    def test_geometric_put_get_roundtrip(self):
        data = np.arange(24, dtype=np.float64).reshape(4, 6)
        self.ds.put("field", 0, data, bounds=((10, 14), (0, 6)))
        out = self.ds.get("field", 0, bounds=((10, 14), (0, 6)))
        np.testing.assert_array_equal(out, data)

    def test_geometric_subbox(self):
        data = np.arange(24, dtype=np.float64).reshape(4, 6)
        self.ds.put("field", 0, data, bounds=((0, 4), (0, 6)))
        out = self.ds.get("field", 0, bounds=((1, 3), (2, 5)))
        np.testing.assert_array_equal(out, data[1:3, 2:5])

    def test_assemble_from_multiple_puts(self):
        """A get spanning two ranks' puts assembles both pieces."""
        left = np.ones((4, 3))
        right = 2 * np.ones((4, 3))
        self.ds.put("f", 0, left, bounds=((0, 4), (0, 3)))
        self.ds.put("f", 0, right, bounds=((0, 4), (3, 6)))
        out = self.ds.get("f", 0, bounds=((0, 4), (0, 6)))
        np.testing.assert_array_equal(out[:, :3], left)
        np.testing.assert_array_equal(out[:, 3:], right)

    def test_uncovered_get_raises(self):
        self.ds.put("f", 0, np.ones((2, 2)), bounds=((0, 2), (0, 2)))
        with pytest.raises(KeyError, match="not fully covered"):
            self.ds.get("f", 0, bounds=((0, 4), (0, 4)))

    def test_bounds_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            self.ds.put("f", 0, np.ones((2, 2)), bounds=((0, 3), (0, 2)))

    def test_versions_listing(self):
        for v in (3, 1, 2):
            self.ds.put("x", v, v)
        assert self.ds.versions("x") == [1, 2, 3]

    def test_rpcs_spread_over_servers(self):
        for i in range(400):
            self.ds.put(f"var-{i}", 0, i)
        assert sum(self.ds.server_rpc_counts) >= 400
        assert min(self.ds.server_rpc_counts) > 0


class TestEndToEndStaging:
    """In-situ submit -> data-ready -> bucket pull -> in-transit compute."""

    def _setup(self, n_buckets=2, cost_model=None):
        eng = Engine()
        transport = DartTransport(eng)
        ds = DataSpaces(eng, transport, n_servers=2, cost_model=cost_model)
        ds.spawn_buckets([f"staging-{i}" for i in range(n_buckets)])
        return eng, transport, ds

    def test_single_task_executes_compute(self):
        eng, _tr, ds = self._setup()
        payload = np.arange(10, dtype=np.float64)
        ds.submit_insitu_result("stats", 0, "sim-0", payload,
                                compute=lambda ps: float(np.sum(ps[0])))
        ds.shutdown_buckets()
        eng.run()
        results = ds.all_results()
        assert len(results) == 1
        assert results[0].value == 45.0
        assert results[0].analysis == "stats"
        assert results[0].total_latency > 0

    def test_tasks_spread_across_buckets(self):
        eng, _tr, ds = self._setup(n_buckets=4)
        for ts in range(8):
            ds.submit_insitu_result("viz", ts, f"sim-{ts % 2}",
                                    np.zeros(1000), compute=lambda ps: len(ps))
        ds.shutdown_buckets()
        eng.run()
        results = ds.all_results()
        assert len(results) == 8
        assert len({r.bucket for r in results}) > 1

    def test_cost_model_charges_compute_time(self):
        model = CostModel("test", {"slow.op": 1.0})  # 1 s per element
        eng, _tr, ds = self._setup(n_buckets=1, cost_model=model)
        ds.submit_insitu_result("topo", 0, "sim-0", b"x",
                                cost_op="slow.op", cost_elements=5)
        ds.shutdown_buckets()
        eng.run()
        r = ds.all_results()[0]
        assert r.compute_duration == pytest.approx(5.0, rel=0.01)

    def test_cost_op_without_model_raises(self):
        eng, _tr, ds = self._setup(n_buckets=1, cost_model=None)
        ds.submit_insitu_result("topo", 0, "sim-0", b"x",
                                cost_op="slow.op", cost_elements=5)
        with pytest.raises(RuntimeError, match="no cost model"):
            eng.run()

    def test_grouped_task_pulls_all_regions(self):
        eng, tr, ds = self._setup(n_buckets=1)
        descs = [tr.register(f"sim-{i}", np.full(4, float(i))) for i in range(3)]
        ds.submit_grouped_result("topo", 0, descs,
                                 compute=lambda ps: sum(float(p[0]) for p in ps))
        ds.shutdown_buckets()
        eng.run()
        r = ds.all_results()[0]
        assert r.value == 0.0 + 1.0 + 2.0
        assert r.bytes_pulled == 3 * 32

    def test_pipelining_across_timesteps(self):
        """With 2 buckets, two timesteps' tasks overlap: the second task does
        not wait for the first to finish (temporal multiplexing, §V)."""
        model = CostModel("test", {"glue": 10.0})
        eng, _tr, ds = self._setup(n_buckets=2, cost_model=model)
        for ts in range(2):
            ds.submit_insitu_result("topo", ts, "sim-0", b"x",
                                    cost_op="glue", cost_elements=1)
        ds.shutdown_buckets()
        eng.run()
        results = ds.all_results()
        assert len(results) == 2
        starts = sorted(r.assign_time for r in results)
        # both assigned near t=0, far less than the 10 s compute time apart
        assert starts[1] - starts[0] < 1.0

    def test_serial_bucket_queues_tasks(self):
        """With 1 bucket, the second task waits for the first (no overlap)."""
        model = CostModel("test", {"glue": 10.0})
        eng, _tr, ds = self._setup(n_buckets=1, cost_model=model)
        for ts in range(2):
            ds.submit_insitu_result("topo", ts, "sim-0", b"x",
                                    cost_op="glue", cost_elements=1)
        ds.shutdown_buckets()
        eng.run()
        r0, r1 = ds.all_results()
        assert r1.assign_time >= r0.finish_time

    def test_shutdown_sentinel_is_not_a_result(self):
        eng, _tr, ds = self._setup(n_buckets=3)
        ds.shutdown_buckets()
        eng.run()
        assert ds.all_results() == []

    def test_bucket_shutdown_constant_is_frozen_identity(self):
        assert StagingBucket.SHUTDOWN.task_id == "__shutdown__"
