"""Tests for the DART-like transport layer."""

import numpy as np
import pytest

from repro.des import Engine
from repro.machine.gemini import GeminiNetwork, Protocol
from repro.transport import DartTransport, DataDescriptor
from repro.util.units import MB


@pytest.fixture
def dart():
    eng = Engine()
    return eng, DartTransport(eng)


class TestRegistration:
    def test_register_reports_numpy_bytes(self, dart):
        _eng, t = dart
        payload = np.zeros(1000, dtype=np.float64)
        desc = t.register("node-0", payload)
        assert desc.nbytes == 8000
        assert desc.source_node == "node-0"

    def test_nbytes_override_for_scaled_payloads(self, dart):
        """A small stand-in payload can be charged at full-scale size."""
        _eng, t = dart
        desc = t.register("node-0", np.zeros(8), nbytes=87_020_000)
        assert desc.nbytes == 87_020_000

    def test_release_frees_region(self, dart):
        _eng, t = dart
        desc = t.register("node-0", b"x")
        t.release(desc)
        with pytest.raises(KeyError):
            t.registry.lookup(desc.region_id)

    def test_live_bytes_tracks_scratch_footprint(self, dart):
        _eng, t = dart
        t.register("node-0", np.zeros(100))
        t.register("node-0", np.zeros(100))
        t.register("node-1", np.zeros(100))
        assert t.registry.live_bytes("node-0") == 1600
        assert t.registry.live_bytes() == 2400

    def test_descriptor_validation(self):
        with pytest.raises(ValueError):
            DataDescriptor(region_id="", source_node="n", nbytes=1)
        with pytest.raises(ValueError):
            DataDescriptor(region_id="r", source_node="n", nbytes=-1)


class TestNotify:
    def test_notify_delivers_after_smsg_latency(self, dart):
        eng, t = dart
        seen = []
        t.notify("scheduler", {"msg": 1}, on_delivery=lambda p: seen.append((eng.now, p)))
        eng.run()
        assert len(seen) == 1
        when, payload = seen[0]
        assert payload == {"msg": 1}
        assert when == pytest.approx(t.network.transfer_time(256))


class TestPull:
    def test_pull_returns_payload_and_times_transfer(self, dart):
        eng, t = dart
        payload = np.arange(MB // 8, dtype=np.float64)
        desc = t.register("sim-0", payload)
        got = []

        def proc():
            data = yield from t.pull(desc, "staging-0")
            got.append((eng.now, data))

        eng.process(proc())
        eng.run()
        when, data = got[0]
        assert data is payload
        assert when == pytest.approx(t.network.transfer_time(MB, Protocol.BTE))
        assert len(t.transfers) == 1
        assert t.transfers[0].protocol is Protocol.BTE

    def test_small_pull_uses_smsg(self, dart):
        eng, t = dart
        desc = t.register("sim-0", b"tiny")

        def proc():
            yield from t.pull(desc, "staging-0")

        eng.process(proc())
        eng.run()
        assert t.transfers[0].protocol is Protocol.SMSG

    def test_pull_releases_by_default(self, dart):
        eng, t = dart
        desc = t.register("sim-0", b"x")

        def proc():
            yield from t.pull(desc, "staging-0")

        eng.process(proc())
        eng.run()
        with pytest.raises(KeyError):
            t.registry.lookup(desc.region_id)

    def test_pull_keep_region(self, dart):
        eng, t = dart
        desc = t.register("sim-0", b"x")

        def proc():
            yield from t.pull(desc, "staging-0", release=False)

        eng.process(proc())
        eng.run()
        assert t.registry.lookup(desc.region_id).pull_count == 1

    def test_pull_unregistered_raises_in_process(self, dart):
        eng, t = dart
        bogus = DataDescriptor(region_id="nope", source_node="sim-0", nbytes=10)

        def proc():
            yield from t.pull(bogus, "staging-0")

        p = eng.process(proc())
        with pytest.raises(KeyError):
            eng.run_until_done(p)

    def test_concurrent_pulls_into_one_node_serialize(self, dart):
        """Destination NIC is a capacity-1 resource: two 1-MB pulls into the
        same staging node take twice the wire time of one."""
        eng, t = dart
        d1 = t.register("sim-0", np.zeros(MB // 8))
        d2 = t.register("sim-1", np.zeros(MB // 8))
        finish = []

        def proc(desc):
            yield from t.pull(desc, "staging-0")
            finish.append(eng.now)

        eng.process(proc(d1))
        eng.process(proc(d2))
        eng.run()
        wire = t.network.transfer_time(MB)
        assert finish[0] == pytest.approx(wire, rel=1e-6)
        assert finish[1] == pytest.approx(2 * wire, rel=1e-6)

    def test_pulls_into_distinct_nodes_overlap(self, dart):
        eng, t = dart
        d1 = t.register("sim-0", np.zeros(MB // 8))
        d2 = t.register("sim-1", np.zeros(MB // 8))
        finish = []

        def proc(desc, dest):
            yield from t.pull(desc, dest)
            finish.append(eng.now)

        eng.process(proc(d1, "staging-0"))
        eng.process(proc(d2, "staging-1"))
        eng.run()
        wire = t.network.transfer_time(MB)
        assert finish == pytest.approx([wire, wire], rel=1e-6)

    def test_bytes_moved_accounting(self, dart):
        eng, t = dart
        for i in range(3):
            desc = t.register(f"sim-{i}", np.zeros(100, dtype=np.float64))

            def proc(d=desc):
                yield from t.pull(d, "staging-0")

            eng.process(proc())
        eng.run()
        assert t.bytes_moved() == 3 * 800
        assert t.busy_time("staging-0") > 0
