"""Unit tests for the in-situ / in-transit / post-processing trade-off model."""

import pytest

from repro.core import ExperimentConfig, ScaledExperiment, TradeoffModel


@pytest.fixture(scope="module")
def model():
    return TradeoffModel(ScaledExperiment(ExperimentConfig.paper_4896()))


class TestPostProcessing:
    def test_critical_path_is_amortised_write(self, model):
        o1 = model.postprocessing(1, 100)
        o10 = model.postprocessing(10, 100)
        assert o1.critical_path_per_step == pytest.approx(
            model.breakdown.io_write_time, rel=1e-9)
        assert o10.critical_path_per_step == pytest.approx(
            o1.critical_path_per_step / 10, rel=1e-9)

    def test_insight_grows_with_run_length(self, model):
        short = model.postprocessing(400, 100)
        long = model.postprocessing(400, 10_000)
        assert long.time_to_insight > short.time_to_insight

    def test_storage_is_full_state(self, model):
        o = model.postprocessing(400, 100)
        assert o.storage_bytes == model.breakdown.data_bytes

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.postprocessing(0, 100)
        with pytest.raises(ValueError):
            model.postprocessing(10, 0)


class TestConcurrent:
    def test_critical_path_amortises_with_interval(self, model):
        o1 = model.concurrent_hybrid(1)
        o10 = model.concurrent_hybrid(10)
        assert o10.critical_path_per_step == pytest.approx(
            o1.critical_path_per_step / 10, rel=1e-9)
        assert o10.time_to_insight == o1.time_to_insight

    def test_insight_dominated_by_topology(self, model):
        from repro.core import AnalyticsVariant
        o = model.concurrent_hybrid(1)
        topo = model.breakdown.analytics[AnalyticsVariant.TOPO_HYBRID.value]
        assert o.time_to_insight == pytest.approx(
            topo.movement_time + topo.intransit_time, rel=1e-9)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.concurrent_hybrid(0)
        with pytest.raises(ValueError):
            model.fully_insitu(0)


class TestSustainability:
    def test_paper_allocation_sustains_stride_one(self, model):
        assert model.sustainable(model.concurrent_hybrid(1))

    def test_two_buckets_cannot_sustain_stride_one(self):
        tight = TradeoffModel(ScaledExperiment(ExperimentConfig.paper_4896()),
                              n_buckets=2)
        assert not tight.sustainable(tight.concurrent_hybrid(1))

    def test_non_concurrent_strategies_always_sustainable(self, model):
        assert model.sustainable(model.postprocessing(400, 100))
        assert model.sustainable(model.fully_insitu(1))


class TestSlowdownPercent:
    def test_fully_insitu_topology_blows_up(self, model):
        assert model.fully_insitu(1).slowdown_percent > 300
        assert model.fully_insitu(100).slowdown_percent < 10

    def test_percentages_consistent(self, model):
        o = model.concurrent_hybrid(1)
        expected = 100 * o.critical_path_per_step / model.breakdown.simulation_time
        assert o.slowdown_percent == pytest.approx(expected)

    def test_denominator_derives_from_experiment_not_a_constant(self):
        # A non-paper configuration has a different step time; the
        # slowdown denominator must follow it (the old code froze the
        # paper's 16.85 s regardless of the experiment under study).
        exp = ScaledExperiment(ExperimentConfig.paper_9440())
        assert exp.simulation_step_time() != pytest.approx(16.85, abs=0.01)
        model = TradeoffModel(exp)
        o = model.concurrent_hybrid(1)
        assert o.sim_step_time == pytest.approx(exp.simulation_step_time())
        assert o.slowdown_percent == pytest.approx(
            100 * o.critical_path_per_step / exp.simulation_step_time())

    def test_nonpositive_sim_step_time_rejected(self):
        from repro.core.tradeoff import StrategyOutcome
        bad = StrategyOutcome(strategy="s", temporal_stride=1,
                              critical_path_per_step=1.0,
                              time_to_insight=1.0, storage_bytes=0,
                              sim_step_time=0.0)
        with pytest.raises(ValueError):
            bad.slowdown_percent
