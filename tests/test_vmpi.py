"""Tests for the virtual MPI layer: decomposition, communicator, collectives."""

import operator

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.gemini import GeminiNetwork
from repro.vmpi import (
    BlockDecomposition3D,
    CommTracker,
    VirtualComm,
    allgather_time,
    allreduce_time,
    alltoall_time,
    bcast_time,
    gather_time,
    reduce_time,
)
from repro.vmpi.comm import _pairwise_reduce, payload_bytes


class TestDecomposition:
    def test_paper_4896_core_layout(self):
        """Table I: 16 x 28 x 10 ranks, blocks of 100 x 49 x 43."""
        d = BlockDecomposition3D((1600, 1372, 430), (16, 28, 10))
        assert d.n_ranks == 4480
        for rank in (0, 1234, 4479):
            assert d.block(rank).shape == (100, 49, 43)

    def test_paper_9440_core_layout(self):
        """Table I: 32 x 28 x 10 ranks, blocks of 50 x 49 x 43."""
        d = BlockDecomposition3D((1600, 1372, 430), (32, 28, 10))
        assert d.n_ranks == 8960
        assert d.block(0).shape == (50, 49, 43)

    def test_rank_coords_roundtrip(self):
        d = BlockDecomposition3D((40, 30, 20), (4, 3, 2))
        for rank in range(d.n_ranks):
            assert d.rank_of_coords(d.coords_of_rank(rank)) == rank

    def test_blocks_tile_domain_exactly(self):
        d = BlockDecomposition3D((17, 11, 7), (3, 2, 2))  # uneven split
        cover = np.zeros((17, 11, 7), dtype=int)
        for b in d.blocks():
            cover[b.slices] += 1
        assert np.all(cover == 1)

    def test_scatter_gather_roundtrip(self):
        d = BlockDecomposition3D((12, 10, 8), (3, 2, 2))
        field = np.arange(12 * 10 * 8, dtype=np.float64).reshape(12, 10, 8)
        parts = d.scatter(field)
        np.testing.assert_array_equal(d.gather(parts), field)

    def test_scatter_gather_with_trailing_axis(self):
        d = BlockDecomposition3D((6, 6, 6), (2, 1, 3))
        field = np.random.default_rng(0).random((6, 6, 6, 4))
        np.testing.assert_array_equal(d.gather(d.scatter(field)), field)

    def test_rank_containing(self):
        d = BlockDecomposition3D((10, 10, 10), (2, 2, 2))
        for b in d.blocks():
            lo = b.lo
            hi_inside = tuple(h - 1 for h in b.hi)
            assert d.rank_containing(lo) == b.rank
            assert d.rank_containing(hi_inside) == b.rank

    def test_rank_containing_out_of_range(self):
        d = BlockDecomposition3D((10, 10, 10), (2, 2, 2))
        with pytest.raises(IndexError):
            d.rank_containing((10, 0, 0))

    def test_neighbors_interior_has_26(self):
        d = BlockDecomposition3D((30, 30, 30), (3, 3, 3))
        center = d.rank_of_coords((1, 1, 1))
        assert len(d.neighbors(center)) == 26

    def test_neighbors_corner_has_7(self):
        d = BlockDecomposition3D((30, 30, 30), (3, 3, 3))
        assert len(d.neighbors(0)) == 7

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            BlockDecomposition3D((4, 4, 4), (5, 1, 1))
        with pytest.raises(ValueError):
            BlockDecomposition3D((4, 4), (1, 1))  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            BlockDecomposition3D((4, 4, 4), (0, 1, 1))

    @given(st.tuples(st.integers(2, 30), st.integers(2, 30), st.integers(2, 30)),
           st.tuples(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4)))
    @settings(max_examples=30, deadline=None)
    def test_property_tiling(self, shape, grid):
        if any(p > n for n, p in zip(shape, grid)):
            return
        d = BlockDecomposition3D(shape, grid)
        total = sum(b.n_cells for b in d.blocks())
        assert total == shape[0] * shape[1] * shape[2]


class TestPairwiseReduce:
    def test_matches_serial_sum(self):
        vals = list(range(17))
        assert _pairwise_reduce(vals, operator.add) == sum(vals)

    def test_single_element(self):
        assert _pairwise_reduce([5], operator.add) == 5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            _pairwise_reduce([], operator.add)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_property_sum_close(self, vals):
        assert _pairwise_reduce(vals, operator.add) == pytest.approx(
            sum(vals), rel=1e-9, abs=1e-6)


class TestPayloadBytes:
    def test_numpy_array(self):
        assert payload_bytes(np.zeros(10, dtype=np.float64)) == 80

    def test_bytes(self):
        assert payload_bytes(b"abcd") == 4

    def test_generic_object_positive(self):
        assert payload_bytes({"a": 1}) > 0


class TestVirtualComm:
    def test_run_spmd_passes_rank_slices(self):
        comm = VirtualComm(4)
        data = [10, 20, 30, 40]
        out = comm.run_spmd(lambda r, x: (r, x), data)
        assert out == [(0, 10), (1, 20), (2, 30), (3, 40)]

    def test_run_spmd_length_mismatch(self):
        comm = VirtualComm(4)
        with pytest.raises(ValueError):
            comm.run_spmd(lambda r, x: x, [1, 2])

    def test_allreduce_sum_arrays(self):
        comm = VirtualComm(8)
        parts = [np.full(3, float(r)) for r in range(8)]
        out = comm.allreduce(parts, np.add)
        assert len(out) == 8
        np.testing.assert_allclose(out[0], np.full(3, sum(range(8))))

    def test_reduce_root(self):
        comm = VirtualComm(5)
        assert comm.reduce([1, 2, 3, 4, 5], operator.add) == 15

    def test_gather_preserves_order(self):
        comm = VirtualComm(3)
        assert comm.gather(["a", "b", "c"]) == ["a", "b", "c"]

    def test_bcast_same_object_everywhere(self):
        comm = VirtualComm(4)
        obj = {"x": 1}
        out = comm.bcast(obj)
        assert all(o is obj for o in out)

    def test_alltoall_transposes(self):
        comm = VirtualComm(3)
        matrix = [[f"{s}->{d}" for d in range(3)] for s in range(3)]
        out = comm.alltoall(matrix)
        assert out[1][2] == "2->1"  # rank 1 receives what rank 2 sent to it

    def test_alltoall_ragged_raises(self):
        comm = VirtualComm(2)
        with pytest.raises(ValueError):
            comm.alltoall([[1, 2], [1]])

    def test_allgather(self):
        comm = VirtualComm(3)
        out = comm.allgather([1, 2, 3])
        assert out == [[1, 2, 3]] * 3

    def test_collective_wrong_length_raises(self):
        comm = VirtualComm(3)
        with pytest.raises(ValueError):
            comm.allreduce([1, 2], operator.add)

    def test_bad_root_raises(self):
        comm = VirtualComm(3)
        with pytest.raises(ValueError):
            comm.bcast(1, root=3)

    def test_tracker_records_costs(self):
        tracker = CommTracker()
        comm = VirtualComm(16, tracker=tracker)
        comm.allreduce([np.zeros(100)] * 16, np.add)
        comm.gather([np.zeros(10)] * 16)
        assert tracker.count("allreduce") == 1
        assert tracker.count("gather") == 1
        assert tracker.total_time > 0
        assert tracker.total_bytes > 0
        tracker.clear()
        assert tracker.total_time == 0


class TestCollectiveCosts:
    def setup_method(self):
        self.net = GeminiNetwork()

    def test_single_rank_costs_nothing(self):
        for fn in (bcast_time, reduce_time, allreduce_time, gather_time,
                   allgather_time, alltoall_time):
            assert fn(self.net, 1, 1024) == 0.0

    def test_costs_grow_with_ranks(self):
        for fn in (bcast_time, allreduce_time, gather_time, alltoall_time):
            assert fn(self.net, 64, 1024) > fn(self.net, 4, 1024)

    def test_costs_grow_with_bytes(self):
        for fn in (bcast_time, allreduce_time, gather_time, alltoall_time):
            assert fn(self.net, 16, 10**6) > fn(self.net, 16, 10**3)

    def test_bcast_log_scaling(self):
        t64 = bcast_time(self.net, 64, 8)
        t2 = bcast_time(self.net, 2, 8)
        assert t64 == pytest.approx(6 * t2, rel=0.01)

    def test_allreduce_cheaper_than_gather_plus_bcast_large(self):
        """Rabenseifner beats naive gather+bcast for large payloads."""
        n = 10**7
        p = 256
        assert allreduce_time(self.net, p, n) < (
            gather_time(self.net, p, n) + bcast_time(self.net, p, n))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            bcast_time(self.net, 0, 10)
        with pytest.raises(ValueError):
            allreduce_time(self.net, 4, -1)
