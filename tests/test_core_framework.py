"""End-to-end tests of the functional hybrid pipeline (HybridFramework)."""

import numpy as np
import pytest

from repro.analysis.statistics.stages import derive, learn
from repro.analysis.topology.merge_tree import compute_merge_tree
from repro.core import HybridFramework
from repro.sim import LiftedFlameCase, StructuredGrid3D
from repro.vmpi import BlockDecomposition3D

GRID_SHAPE = (12, 10, 8)


@pytest.fixture(scope="module")
def pipeline_result():
    """One shared 3-step run exercising all analyses (module-scoped: the
    functional pipeline is the slowest fixture in the suite)."""
    grid = StructuredGrid3D(GRID_SHAPE, (1.5, 1.2, 1.0))
    case = LiftedFlameCase(grid, seed=42, kernel_rate=1.0)
    decomp = BlockDecomposition3D(GRID_SHAPE, (2, 2, 1))
    fw = HybridFramework(
        case, decomp,
        analyses=("statistics", "topology", "visualization",
                  "visualization_insitu"),
        stats_variables=("T", "H2"),
        downsample_stride=2,
        n_buckets=3,
        keep_fields=True,
    )
    return fw, fw.run(n_steps=3)


class TestFrameworkRun:
    def test_all_steps_analysed(self, pipeline_result):
        _fw, res = pipeline_result
        assert res.analysed_steps == [0, 1, 2]
        assert set(res.statistics) == {0, 1, 2}
        assert set(res.merge_trees) == {0, 1, 2}
        assert set(res.hybrid_images) == {0, 1, 2}
        assert set(res.insitu_images) == {0, 1, 2}

    def test_statistics_match_serial_reference(self, pipeline_result):
        """The staged, RDMA-pulled, serially-derived statistics equal a
        direct learn+derive on the gathered field."""
        _fw, res = pipeline_result
        for step in (0, 1, 2):
            field = res.temperature_fields[step]
            ref = derive(learn(field))
            got = res.statistics[step]["T"]
            assert got.n == field.size
            assert got.mean == pytest.approx(ref.mean, rel=1e-12)
            assert got.variance == pytest.approx(ref.variance, rel=1e-9)

    def test_merge_tree_matches_global_reference(self, pipeline_result):
        """The glued in-transit tree equals the tree of the gathered field."""
        _fw, res = pipeline_result
        for step in (0, 1, 2):
            ref_tree, _ = compute_merge_tree(res.temperature_fields[step])
            glued = res.merge_trees[step]
            assert glued.reduced().signature() == ref_tree.reduced().signature()

    def test_images_have_content(self, pipeline_result):
        _fw, res = pipeline_result
        for step in (0, 1, 2):
            hybrid = res.hybrid_images[step]
            insitu = res.insitu_images[step]
            assert hybrid.shape == insitu.shape == (32, 32, 3)
            assert hybrid.max() > 0.0 and insitu.max() > 0.0

    def test_hybrid_image_approximates_insitu(self, pipeline_result):
        """Fig. 2: the down-sampled in-transit render resembles the
        full-resolution in-situ render."""
        from repro.util import image_rmse
        _fw, res = pipeline_result
        err = image_rmse(res.hybrid_images[0], res.insitu_images[0])
        assert err < 0.25

    def test_tasks_ran_on_staging_buckets(self, pipeline_result):
        _fw, res = pipeline_result
        # 3 steps x 3 staged analyses (in-situ viz does not stage)
        assert len(res.task_results) == 9
        assert all(r.bucket.startswith("staging-") for r in res.task_results)
        assert res.bytes_moved > 0

    def test_movement_far_below_raw_data(self, pipeline_result):
        """Intermediate results are much smaller than the raw state."""
        fw, res = pipeline_result
        raw_per_step = fw.solver.assemble().nbytes
        assert res.bytes_moved < 3 * raw_per_step

    def test_simulation_actually_advanced(self, pipeline_result):
        fw, res = pipeline_result
        assert fw.solver.step_count == 3
        assert not np.array_equal(res.temperature_fields[0],
                                  res.temperature_fields[2])


class TestFrameworkConfig:
    def _mk(self, **kw):
        grid = StructuredGrid3D((8, 8, 8))
        case = LiftedFlameCase(grid, seed=1)
        decomp = BlockDecomposition3D((8, 8, 8), (2, 1, 1))
        return HybridFramework(case, decomp, **kw)

    def test_unknown_analysis_rejected(self):
        with pytest.raises(ValueError, match="unknown analysis"):
            self._mk(analyses=("statistics", "nonsense"))

    def test_run_validation(self):
        fw = self._mk(analyses=("statistics",))
        with pytest.raises(ValueError):
            fw.run(0)
        with pytest.raises(ValueError):
            fw.run(1, analysis_interval=0)

    def test_analysis_interval_skips_steps(self):
        fw = self._mk(analyses=("statistics",), n_buckets=2)
        res = fw.run(n_steps=4, analysis_interval=2)
        assert sorted(res.statistics) == [0, 2]

    def test_statistics_only_pipeline(self):
        fw = self._mk(analyses=("statistics",), stats_variables=("T",))
        res = fw.run(n_steps=2)
        assert set(res.statistics) == {0, 1}
        assert res.merge_trees == {}
        assert res.hybrid_images == {}
