"""Tests for the ISABELA-style compression substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.compression import (
    compress,
    decompress,
    query_range,
    query_values,
    relative_error,
)


def _smooth_field(shape=(16, 16, 8), seed=90):
    rng = np.random.default_rng(seed)
    coords = np.stack(np.mgrid[[slice(0, s) for s in shape]]).astype(float)
    f = np.zeros(shape)
    for _ in range(5):
        c = [rng.uniform(0, s) for s in shape]
        f += rng.uniform(0.5, 2.0) * np.exp(
            -sum((coords[a] - c[a]) ** 2 for a in range(3)) / rng.uniform(6, 20))
    return f


class TestRoundtrip:
    def test_shape_preserved(self):
        f = _smooth_field()
        c = compress(f)
        r = decompress(c)
        assert r.shape == f.shape

    def test_low_error_on_smooth_fields(self):
        """Sorted windows of smooth fields fit splines very well: a few
        percent relative error at ~10x value compression (the ISABELA
        trade-off at this window/coefficient setting)."""
        f = _smooth_field()
        c = compress(f, window_size=256, n_coefficients=10)
        err = relative_error(f, decompress(c))
        assert err < 0.05
        assert c.value_compression_ratio() > 8

    def test_error_decreases_with_coefficients(self):
        f = _smooth_field(seed=91)
        errs = [relative_error(f, decompress(compress(f, 256, n)))
                for n in (6, 12, 24, 48)]
        assert errs[-1] < errs[0]

    def test_positions_exact_within_windows(self):
        """The permutation preserves positions: within every window, the
        location of the window maximum survives compression exactly
        (values are approximate, placement is not)."""
        f = _smooth_field(seed=92)
        c = compress(f, window_size=128)
        r = decompress(c).ravel()
        flat = f.ravel()
        for i in range(0, flat.size, 128):
            fw = flat[i:i + 128]
            rw = r[i:i + 128]
            assert np.argmax(fw) == np.argmax(rw)

    def test_extrema_clamped(self):
        f = _smooth_field(seed=93)
        r = decompress(compress(f))
        assert r.min() >= f.min() - 1e-12
        assert r.max() <= f.max() + 1e-12

    def test_random_noise_still_bounded(self):
        """Pure noise is ISABELA's hard case; error stays bounded because
        even noise sorts into a monotone curve."""
        f = np.random.default_rng(94).random((8, 8, 8))
        err = relative_error(f, decompress(compress(f, 128, 16)))
        assert err < 0.15

    def test_partial_last_window(self):
        f = np.random.default_rng(95).random(300)  # not a multiple of 256
        r = decompress(compress(f, window_size=256))
        assert r.shape == (300,)
        assert relative_error(f, r) < 0.2

    def test_constant_field(self):
        f = np.full((8, 8, 4), 3.25)
        r = decompress(compress(f))
        np.testing.assert_allclose(r, 3.25, atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            compress(np.zeros(100), window_size=4)
        with pytest.raises(ValueError):
            compress(np.zeros(100), n_coefficients=2)
        with pytest.raises(ValueError):
            compress(np.array([]))

    @given(st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_property_error_bounded_random_fields(self, seed):
        f = _smooth_field(shape=(8, 8, 8), seed=seed)
        err = relative_error(f, decompress(compress(f, 128, 12)))
        assert err < 0.1


class TestQueries:
    def test_window_pruning(self):
        f = _smooth_field(seed=96)
        c = compress(f, window_size=128)
        hot = query_range(c, 0.9 * float(f.max()), float(f.max()))
        assert hot.sum() < len(c.windows)  # most windows pruned
        everything = query_range(c, float(f.min()), float(f.max()))
        assert everything.all()

    def test_query_values_superset_of_truth(self):
        """Compressed query hits include every true hit's window; value
        hits agree with the reconstruction."""
        f = _smooth_field(seed=97)
        c = compress(f, window_size=128, n_coefficients=24)
        lo, hi = 0.8 * float(f.max()), float(f.max())
        hits = query_values(c, lo, hi)
        r = decompress(c).ravel()
        np.testing.assert_array_equal(
            np.sort(hits), np.flatnonzero((r >= lo) & (r <= hi)))

    def test_query_recall_on_reconstruction_tolerance(self):
        """With a tolerance equal to the compression error, the query
        recalls all true hits."""
        f = _smooth_field(seed=98)
        c = compress(f, window_size=128, n_coefficients=24)
        err = relative_error(f, decompress(c)) * (f.max() - f.min())
        lo = 0.85 * float(f.max())
        true_hits = set(np.flatnonzero(f.ravel() >= lo))
        approx_hits = set(query_values(c, lo - err, float(f.max()) + err))
        assert true_hits <= approx_hits

    def test_empty_query(self):
        f = _smooth_field(seed=99)
        c = compress(f)
        assert query_values(c, f.max() + 1.0, f.max() + 2.0).size == 0

    def test_invalid_range(self):
        c = compress(_smooth_field())
        with pytest.raises(ValueError):
            query_range(c, 1.0, 0.0)


class TestSizeAccounting:
    def test_value_bytes_below_raw(self):
        f = _smooth_field()
        c = compress(f, 256, 10)
        assert c.value_bytes < f.nbytes / 8
        assert c.nbytes == c.value_bytes + c.index_bytes
        assert c.compression_ratio() > 1.0
