"""Tests for machine specs, the Gemini network model, and the Lustre model."""

import pytest
from hypothesis import given, strategies as st

from repro.machine import (
    GeminiNetwork,
    LustreModel,
    MachineSpec,
    NodeSpec,
    Protocol,
    jaguar_xk6,
)
from repro.util.units import GB, KB, TB


class TestNodeSpec:
    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=0, memory_bytes=GB, core_gflops=1.0)

    def test_invalid_memory(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=1, memory_bytes=0, core_gflops=1.0)


class TestJaguar:
    def test_paper_reported_figures(self):
        """§V: 18,688 nodes, 16 cores each, ~600 TB total memory."""
        m = jaguar_xk6()
        assert m.n_nodes == 18688
        assert m.node.cores == 16
        assert m.total_cores == 18688 * 16
        assert 500 * TB < m.total_memory_bytes < 700 * TB

    def test_allocation_validation(self):
        m = jaguar_xk6()
        m.validate_allocation(4896)
        m.validate_allocation(9440)
        with pytest.raises(ValueError):
            m.validate_allocation(m.total_cores + 1)
        with pytest.raises(ValueError):
            m.validate_allocation(0)


class TestGeminiNetwork:
    def test_protocol_selection_by_size(self):
        net = GeminiNetwork()
        assert net.select_protocol(100) is Protocol.SMSG
        assert net.select_protocol(net.smsg_max_bytes) is Protocol.SMSG
        assert net.select_protocol(net.smsg_max_bytes + 1) is Protocol.BTE

    def test_negative_size_raises(self):
        net = GeminiNetwork()
        with pytest.raises(ValueError):
            net.select_protocol(-1)
        with pytest.raises(ValueError):
            net.transfer_time(-1)

    def test_small_message_latency_dominated(self):
        net = GeminiNetwork()
        t = net.transfer_time(8)
        assert t == pytest.approx(net.smsg_latency, rel=0.01)

    def test_large_transfer_bandwidth_dominated(self):
        net = GeminiNetwork()
        t = net.transfer_time(GB)
        assert t == pytest.approx(GB / net.bte_bandwidth, rel=0.01)

    def test_explicit_protocol_override(self):
        net = GeminiNetwork()
        smsg = net.transfer_time(64 * KB, Protocol.SMSG)
        bte = net.transfer_time(64 * KB, Protocol.BTE)
        assert smsg != bte

    def test_crossover_is_consistent(self):
        """At the crossover size the two protocols cost the same."""
        net = GeminiNetwork()
        n = net.crossover_bytes()
        assert n > 0
        smsg = net.smsg_latency + n / net.smsg_bandwidth
        bte = net.bte_setup + n / net.bte_bandwidth
        assert smsg == pytest.approx(bte, rel=1e-9)

    @given(st.integers(min_value=0, max_value=10**9))
    def test_time_monotone_in_size(self, n):
        net = GeminiNetwork()
        assert net.transfer_time(n + 1024) >= net.transfer_time(n) or (
            # protocol switch can only help, never hurt, beyond crossover
            net.select_protocol(n) != net.select_protocol(n + 1024)
        )

    def test_hops_add_latency(self):
        net = GeminiNetwork()
        assert net.transfer_time(100, hops=10) > net.transfer_time(100)


class TestLustre:
    def test_table1_calibration(self):
        """Table I: 98.5 GB reads in ~6.56 s, writes in ~3.28 s."""
        fs = LustreModel()
        data = int(98.5 * GB)
        assert fs.read_time(data, n_clients=4480) == pytest.approx(6.56, rel=0.02)
        assert fs.write_time(data, n_clients=4480) == pytest.approx(3.28, rel=0.02)

    def test_core_count_independence(self):
        """Table I note: times do not depend on core count once saturated."""
        fs = LustreModel()
        data = int(98.5 * GB)
        t1 = fs.read_time(data, n_clients=4480)
        t2 = fs.read_time(data, n_clients=8960)
        assert t1 == pytest.approx(t2, rel=1e-6)

    def test_few_clients_are_client_limited(self):
        fs = LustreModel()
        data = int(10 * GB)
        assert fs.read_time(data, n_clients=1) > fs.read_time(data, n_clients=4)

    def test_invalid_inputs(self):
        fs = LustreModel()
        with pytest.raises(ValueError):
            fs.read_time(-1, 1)
        with pytest.raises(ValueError):
            fs.write_time(100, 0)
        with pytest.raises(ValueError):
            LustreModel(n_osts=0)

    @given(st.integers(min_value=0, max_value=10**12),
           st.integers(min_value=1, max_value=10000))
    def test_write_never_slower_than_half_read_bw_model(self, nbytes, clients):
        """Write bandwidth is calibrated 2x read; times must reflect it."""
        fs = LustreModel()
        assert fs.write_time(nbytes, clients) <= fs.read_time(nbytes, clients) + 1e-12
