"""Tests for the Gantt renderer, merge-tree I/O, and compressed trade-off."""

import numpy as np
import pytest

from repro.analysis.topology import compute_merge_tree
from repro.analysis.topology.tree_io import load_tree, save_tree, tree_nbytes
from repro.core import ExperimentConfig, ScaledExperiment, TradeoffModel
from repro.util.gantt import Span, render_gantt, utilisation


class TestGantt:
    def test_span_validation(self):
        with pytest.raises(ValueError):
            Span("a", 2.0, 1.0)

    def test_render_contains_all_actors(self):
        spans = [Span("bucket-0", 0, 5, "t0"), Span("bucket-1", 2, 9, "t1")]
        out = render_gantt(spans, width=40)
        assert "bucket-0" in out and "bucket-1" in out
        assert "#" in out

    def test_render_empty(self):
        assert render_gantt([]) == "(no spans)"

    def test_render_width_validation(self):
        with pytest.raises(ValueError):
            render_gantt([Span("a", 0, 1)], width=5)

    def test_busy_extent_scales(self):
        spans = [Span("a", 0, 10), Span("b", 0, 5)]
        out = render_gantt(spans, width=40)
        row_a = [l for l in out.splitlines() if l.startswith("a")][0]
        row_b = [l for l in out.splitlines() if l.startswith("b")][0]
        assert row_a.count("#") > row_b.count("#")

    def test_utilisation_merges_overlaps(self):
        spans = [Span("a", 0, 6), Span("a", 4, 10)]  # overlapping
        u = utilisation(spans, 0, 10)
        assert u["a"] == pytest.approx(1.0)

    def test_utilisation_partial(self):
        u = utilisation([Span("a", 0, 5)], 0, 10)
        assert u["a"] == pytest.approx(0.5)

    def test_utilisation_window_validation(self):
        with pytest.raises(ValueError):
            utilisation([], 5, 5)

    def test_schedule_replay_gantt_integration(self):
        """Bucket occupancy of a real schedule renders sensibly."""
        from repro.core import AnalyticsVariant
        exp = ScaledExperiment(ExperimentConfig.paper_4896())
        sched = exp.run_schedule(n_steps=4, n_buckets=4,
                                 analyses=(AnalyticsVariant.TOPO_HYBRID,))
        spans = [Span(r.bucket, r.assign_time, r.finish_time, r.task_id)
                 for r in sched.results]
        out = render_gantt(spans, width=60)
        assert out.count("|") >= 2 * 4  # one row per bucket
        u = utilisation(spans, 0.0, sched.makespan)
        assert all(0.0 < v <= 1.0 for v in u.values())


class TestTreeIO:
    def test_roundtrip(self, tmp_path):
        f = np.random.default_rng(7).random((6, 6, 5))
        tree, _ = compute_merge_tree(f)
        path = tmp_path / "tree.bp"
        nbytes = save_tree(tree, path, attrs={"step": 9})
        assert nbytes > 0
        again = load_tree(path)
        assert again.signature() == tree.signature()
        assert sorted(again.value) == sorted(tree.value)

    def test_attrs_preserved(self, tmp_path):
        from repro.io.bp import BPFile
        f = np.random.default_rng(8).random((4, 4, 4))
        tree, _ = compute_merge_tree(f)
        save_tree(tree, tmp_path / "t.bp", attrs={"step": 3})
        assert BPFile.open(tmp_path / "t.bp").attrs["step"] == 3

    def test_wrong_kind_rejected(self, tmp_path):
        from repro.io.bp import BPFile
        with BPFile.create(tmp_path / "x.bp", attrs={"kind": "other"}) as bp:
            bp.write("a", np.zeros(3))
        with pytest.raises(ValueError, match="not a merge-tree"):
            load_tree(tmp_path / "x.bp")

    def test_nbytes_estimate(self):
        f = np.random.default_rng(9).random((5, 5, 4))
        tree, _ = compute_merge_tree(f)
        assert tree_nbytes(tree) == 24 * len(tree)


class TestCompressedPostprocessing:
    @pytest.fixture(scope="class")
    def model(self):
        return TradeoffModel(ScaledExperiment(ExperimentConfig.paper_4896()))

    def test_cuts_storage_and_write_time(self, model):
        plain = model.postprocessing(10, 1000)
        comp = model.postprocessing_compressed(10, 1000, compression_ratio=10)
        assert comp.storage_bytes == pytest.approx(plain.storage_bytes / 10)
        # amortised write shrinks even after paying the compression pass
        assert comp.critical_path_per_step < plain.critical_path_per_step

    def test_insight_still_run_bound(self, model):
        """Compression trims read-back, but insight still waits for the
        run — the qualitative gap to concurrent analysis is untouched."""
        comp = model.postprocessing_compressed(400, 2000)
        hybrid = model.concurrent_hybrid(1)
        assert comp.time_to_insight > 100 * hybrid.time_to_insight

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.postprocessing_compressed(10, 100, compression_ratio=1.0)
        with pytest.raises(ValueError):
            model.postprocessing_compressed(10, 100,
                                            compress_rate_per_cell=0.0)
