"""Tests for branch decomposition, persistence diagrams, and event detection."""

import numpy as np
import pytest

from repro.analysis.topology import (
    Branch,
    EventKind,
    branch_decomposition,
    compute_merge_tree,
    detect_events,
    diagram_distance,
    event_counts,
    persistence_diagram,
    segment_superlevel,
)


def _blob(shape, center, width=2.0, amp=1.0):
    coords = np.stack(np.mgrid[[slice(0, s) for s in shape]]).astype(float)
    d2 = sum((coords[a] - center[a]) ** 2 for a in range(3))
    return amp * np.exp(-d2 / (2 * width * width))


class TestBranchDecomposition:
    def test_two_peak_1d(self):
        f = np.array([5.0, 2.0, 1.0, 2.0, 4.0])
        tree, _ = compute_merge_tree(f)
        branches = branch_decomposition(tree)
        assert len(branches) == 2
        main, minor = branches
        assert main.maximum == 0 and main.death == float("-inf")
        assert minor.maximum == 4 and minor.saddle == 2
        assert minor.persistence == pytest.approx(3.0)

    def test_branches_partition_tree_nodes(self):
        f = np.random.default_rng(60).random((6, 6, 5))
        tree, _ = compute_merge_tree(f)
        branches = branch_decomposition(tree)
        all_nodes = [n for b in branches for n in b.nodes]
        assert len(all_nodes) == len(set(all_nodes))
        assert set(all_nodes) == set(tree.reduced().value)

    def test_sorted_by_persistence(self):
        f = np.random.default_rng(61).random((7, 6, 4))
        tree, _ = compute_merge_tree(f)
        pers = [b.persistence for b in branch_decomposition(tree)]
        assert pers == sorted(pers, reverse=True)

    def test_one_branch_per_maximum(self):
        f = np.random.default_rng(62).random((5, 5, 5))
        tree, _ = compute_merge_tree(f)
        branches = branch_decomposition(tree)
        assert sorted(b.maximum for b in branches) == tree.reduced().leaves()

    def test_branch_nodes_start_at_maximum(self):
        f = np.random.default_rng(63).random((5, 5, 4))
        tree, _ = compute_merge_tree(f)
        for b in branch_decomposition(tree):
            assert b.nodes[0] == b.maximum


class TestPersistenceDiagram:
    def test_shape_and_infinite_point(self):
        f = np.array([5.0, 2.0, 1.0, 2.0, 4.0])
        tree, _ = compute_merge_tree(f)
        d = persistence_diagram(tree)
        assert d.shape == (2, 2)
        assert np.isneginf(d[:, 0]).sum() == 1

    def test_finite_only_drops_everlasting(self):
        f = np.array([5.0, 2.0, 1.0, 2.0, 4.0])
        tree, _ = compute_merge_tree(f)
        d = persistence_diagram(tree, finite_only=True)
        assert d.shape == (1, 2)
        assert d[0, 0] == 1.0 and d[0, 1] == 4.0

    def test_birth_above_death(self):
        f = np.random.default_rng(64).random((6, 5, 5))
        tree, _ = compute_merge_tree(f)
        d = persistence_diagram(tree, finite_only=True)
        assert np.all(d[:, 1] >= d[:, 0])

    def test_distance_zero_for_identical(self):
        f = np.random.default_rng(65).random((5, 5, 5))
        tree, _ = compute_merge_tree(f)
        d = persistence_diagram(tree, finite_only=True)
        assert diagram_distance(d, d) == 0.0

    def test_distance_detects_topology_change(self):
        shape = (16, 12, 8)
        one = _blob(shape, (5, 6, 4))
        two = one + _blob(shape, (12, 6, 4), amp=0.8)
        t1, _ = compute_merge_tree(one)
        t2, _ = compute_merge_tree(two)
        d1 = persistence_diagram(t1, finite_only=True)
        d2 = persistence_diagram(t2, finite_only=True)
        assert diagram_distance(d1, d2) > 0.3

    def test_distance_requires_finite(self):
        f = np.array([2.0, 1.0, 1.5])
        tree, _ = compute_merge_tree(f)
        d = persistence_diagram(tree)  # includes -inf
        with pytest.raises(ValueError):
            diagram_distance(d, d)

    def test_distance_empty_diagrams(self):
        assert diagram_distance(np.empty((0, 2)), np.empty((0, 2))) == 0.0


class TestEventDetection:
    def _seg(self, *centers, shape=(24, 12, 8), tau=0.3):
        f = sum((_blob(shape, c) for c in centers), np.zeros(shape))
        return segment_superlevel(f, tau)

    def test_continuation(self):
        a = self._seg((6, 6, 4))
        b = self._seg((7, 6, 4))
        events = detect_events(a, b)
        kinds = event_counts(events)
        assert kinds[EventKind.CONTINUATION] == 1
        assert sum(kinds.values()) == 1

    def test_birth_and_death(self):
        a = self._seg((4, 6, 4))
        b = self._seg((18, 6, 4))  # far away: no overlap
        events = detect_events(a, b)
        kinds = event_counts(events)
        assert kinds[EventKind.DEATH] == 1
        assert kinds[EventKind.BIRTH] == 1

    def test_merge(self):
        # two features at t ...
        a = self._seg((6, 6, 4), (17, 6, 4))
        assert a.n_features == 2
        # ... one bridging feature at t+1 overlapping both
        shape = (24, 12, 8)
        f = (_blob(shape, (6, 6, 4)) + _blob(shape, (17, 6, 4))
             + _blob(shape, (11.5, 6, 4), width=3.0))
        b = segment_superlevel(f, 0.3)
        assert b.n_features == 1
        events = detect_events(a, b)
        merges = [e for e in events if e.kind is EventKind.MERGE]
        assert len(merges) == 1
        assert len(merges[0].parents) == 2
        assert len(merges[0].children) == 1

    def test_split(self):
        shape = (24, 12, 8)
        f = (_blob(shape, (6, 6, 4)) + _blob(shape, (17, 6, 4))
             + _blob(shape, (11.5, 6, 4), width=3.0))
        a = segment_superlevel(f, 0.3)          # one connected feature
        b = self._seg((6, 6, 4), (17, 6, 4))    # two features
        events = detect_events(a, b)
        splits = [e for e in events if e.kind is EventKind.SPLIT]
        assert len(splits) == 1
        assert len(splits[0].children) == 2

    def test_min_overlap_filters(self):
        a = self._seg((6, 6, 4))
        b = self._seg((6, 6, 4))
        huge = detect_events(a, b, min_overlap_cells=10**9)
        kinds = event_counts(huge)
        assert kinds[EventKind.CONTINUATION] == 0
        assert kinds[EventKind.BIRTH] == 1 and kinds[EventKind.DEATH] == 1

    def test_validation(self):
        a = self._seg((6, 6, 4))
        with pytest.raises(ValueError):
            detect_events(a, a, min_overlap_cells=0)

    def test_empty_segmentations(self):
        shape = (8, 8, 8)
        empty = segment_superlevel(np.zeros(shape), 0.5)
        assert detect_events(empty, empty) == []
