"""Tests for the cost-model layer and its Jaguar calibration."""

import pytest

from repro.costmodel import (
    CostModel,
    OpDescriptor,
    calibrate_rate,
    fit_linear_rate,
    jaguar_cost_model,
)

BLOCK_CELLS = 100 * 49 * 43  # per-rank block in the 4896-core run
BLOCK_CELLS_9440 = 50 * 49 * 43


class TestCostModel:
    def test_linear_time(self):
        m = CostModel("m", {"op": 2.0}, {"op": 1.0})
        assert m.time("op", 10) == 21.0

    def test_unknown_op_raises_with_known_list(self):
        m = CostModel("m", {"a": 1.0})
        with pytest.raises(KeyError, match="known"):
            m.time("b", 1)

    def test_negative_elements_raises(self):
        m = CostModel("m", {"a": 1.0})
        with pytest.raises(ValueError):
            m.time("a", -1)

    def test_with_rate_copies(self):
        m = CostModel("m", {"a": 1.0})
        m2 = m.with_rate("a", 5.0)
        assert m.rate("a") == 1.0
        assert m2.rate("a") == 5.0

    def test_descriptor(self):
        m = CostModel("m", {"a": 0.5})
        assert m.time_of(OpDescriptor("a", 4)) == 2.0
        with pytest.raises(ValueError):
            OpDescriptor("a", -1)


class TestJaguarCalibration:
    """Each rate must reproduce the Table I/II measurement it was fit from."""

    def setup_method(self):
        self.m = jaguar_cost_model()

    def test_s3d_step_4896(self):
        assert self.m.time("s3d.step", BLOCK_CELLS) == pytest.approx(16.85, rel=1e-6)

    def test_s3d_step_9440_cross_check(self):
        """The strong-scaling cross-check: 8.42 s at half the block size."""
        assert self.m.time("s3d.step", BLOCK_CELLS_9440) == pytest.approx(8.42, rel=0.01)

    def test_insitu_visualization(self):
        assert self.m.time("vis.render_insitu", BLOCK_CELLS) == pytest.approx(0.73, rel=1e-6)

    def test_insitu_statistics(self):
        assert self.m.time("stats.learn", 14 * BLOCK_CELLS) == pytest.approx(1.64, rel=1e-6)

    def test_hybrid_stats_learn_includes_packing(self):
        t = self.m.time("stats.learn", 14 * BLOCK_CELLS) + self.m.time("stats.pack_partial", 14)
        assert t == pytest.approx(1.69, rel=1e-3)

    def test_downsample(self):
        assert self.m.time("vis.downsample", 2 * BLOCK_CELLS) == pytest.approx(0.08, rel=1e-6)

    def test_intransit_render(self):
        n_cells = int(49.19e6 / 8)
        assert self.m.time("vis.render_intransit", n_cells) == pytest.approx(5.06 + 0.05, rel=0.01)

    def test_topology_subtree(self):
        assert self.m.time("topo.subtree", BLOCK_CELLS) == pytest.approx(2.72, rel=1e-6)

    def test_topology_glue(self):
        n_elem = int(87.02e6 / 24)
        assert self.m.time("topo.stream_glue", n_elem) == pytest.approx(119.81, rel=0.01)

    def test_paper_ratio_insitu_vis_fraction(self):
        """§V: in-situ visualization is ~4.33% of simulation time."""
        frac = self.m.time("vis.render_insitu", BLOCK_CELLS) / self.m.time("s3d.step", BLOCK_CELLS)
        assert frac == pytest.approx(0.0433, abs=0.001)

    def test_paper_ratio_insitu_stats_fraction(self):
        """§V: in-situ statistics is ~9.73% of simulation time."""
        frac = self.m.time("stats.learn", 14 * BLOCK_CELLS) / self.m.time("s3d.step", BLOCK_CELLS)
        assert frac == pytest.approx(0.0973, abs=0.001)


class TestCalibration:
    def test_calibrate_rate_positive(self):
        def kernel(n):
            sum(range(n))

        assert calibrate_rate(kernel, 10000) > 0

    def test_calibrate_rate_validates(self):
        with pytest.raises(ValueError):
            calibrate_rate(lambda n: None, 0)
        with pytest.raises(ValueError):
            calibrate_rate(lambda n: None, 10, repeats=0)

    def test_fit_linear_recovers_rate(self):
        sizes = [100, 200, 400, 800]
        times = [0.5 + 0.01 * n for n in sizes]
        rate, overhead = fit_linear_rate(sizes, times)
        assert rate == pytest.approx(0.01, rel=1e-6)
        assert overhead == pytest.approx(0.5, rel=1e-6)

    def test_fit_clamps_negative_overhead(self):
        rate, overhead = fit_linear_rate([10, 20, 30], [0.09, 0.21, 0.28])
        assert overhead >= 0.0

    def test_fit_rejects_decreasing(self):
        with pytest.raises(ValueError):
            fit_linear_rate([10, 20], [1.0, 0.5])

    def test_fit_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_linear_rate([10], [1.0])
