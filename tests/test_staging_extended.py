"""Tests for DataSpaces extensions (version queries, GC) and the torus."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.des import Engine
from repro.machine import TorusTopology
from repro.staging import DataSpaces
from repro.transport import DartTransport


@pytest.fixture
def space():
    eng = Engine()
    return DataSpaces(eng, DartTransport(eng), n_servers=2)


class TestVersionQueries:
    def test_range_query_ascending(self, space):
        for v in (5, 1, 3, 9):
            space.put("model", v, {"v": v})
        out = space.query("model", 2, 8)
        assert [v for v, _ in out] == [3, 5]
        assert out[0][1] == {"v": 3}

    def test_empty_range_raises(self, space):
        with pytest.raises(ValueError):
            space.query("model", 5, 2)

    def test_query_unknown_name_empty(self, space):
        assert space.query("nope", 0, 10) == []

    def test_query_skips_geometric_puts(self, space):
        space.put("field", 1, np.ones((2, 2)), bounds=((0, 2), (0, 2)))
        space.put("field", 2, "plain")
        out = space.query("field", 0, 10)
        assert out == [(2, "plain")]


class TestGarbageCollection:
    def test_gc_keeps_latest(self, space):
        for v in range(10):
            space.put("x", v, v)
        removed = space.gc_versions("x", keep_latest=3)
        assert removed == 7
        assert space.versions("x") == [7, 8, 9]

    def test_gc_all(self, space):
        for v in range(4):
            space.put("x", v, v)
        assert space.gc_versions("x", keep_latest=0) == 4
        assert space.versions("x") == []

    def test_gc_noop_when_few(self, space):
        space.put("x", 0, 0)
        assert space.gc_versions("x", keep_latest=5) == 0

    def test_gc_validation(self, space):
        with pytest.raises(ValueError):
            space.gc_versions("x", keep_latest=-1)

    def test_stored_bytes_shrink_after_gc(self, space):
        for v in range(8):
            space.put("big", v, np.zeros(1000))
        before = space.stored_bytes()
        space.gc_versions("big", keep_latest=1)
        after = space.stored_bytes()
        assert after < before / 4
        assert after >= 8000


class TestTorus:
    def test_jaguar_capacity(self):
        t = TorusTopology.jaguar()
        assert t.n_nodes >= 18688

    def test_coords_roundtrip(self):
        t = TorusTopology((4, 5, 3))
        for node in range(t.n_nodes):
            assert t.node_at(t.coords_of(node)) == node

    def test_hops_symmetric_and_zero_diagonal(self):
        t = TorusTopology((5, 4, 3))
        rng = np.random.default_rng(2)
        for _ in range(20):
            a, b = rng.integers(0, t.n_nodes, 2)
            assert t.hops(int(a), int(b)) == t.hops(int(b), int(a))
        assert t.hops(7, 7) == 0

    def test_wraparound_shortcut(self):
        t = TorusTopology((10, 1, 1))
        # node 0 to node 9: 1 hop through the wraparound, not 9
        assert t.hops(0, 9) == 1

    def test_diameter_bound(self):
        t = TorusTopology((6, 4, 8))
        assert t.diameter == 3 + 2 + 4
        rng = np.random.default_rng(3)
        for _ in range(50):
            a, b = rng.integers(0, t.n_nodes, 2)
            assert t.hops(int(a), int(b)) <= t.diameter

    @given(st.integers(1, 8), st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_property_triangle_inequality(self, x, y, z):
        t = TorusTopology((x, y, z))
        rng = np.random.default_rng(x * 100 + y * 10 + z)
        n = t.n_nodes
        a, b, c = (int(v) for v in rng.integers(0, n, 3))
        assert t.hops(a, c) <= t.hops(a, b) + t.hops(b, c)

    def test_place_ranks_contiguous(self):
        t = TorusTopology((4, 4, 4))
        placement = t.place_ranks(n_ranks=10, cores_per_node=4)
        assert placement == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]

    def test_place_ranks_capacity(self):
        t = TorusTopology((2, 2, 2))
        with pytest.raises(ValueError):
            t.place_ranks(n_ranks=1000, cores_per_node=1)

    def test_mean_hops_sample(self):
        t = TorusTopology((8, 8, 8))
        mean = t.mean_hops_sample(500, seed=1)
        assert 0 < mean <= t.diameter

    def test_validation(self):
        with pytest.raises(ValueError):
            TorusTopology((0, 1, 1))
        t = TorusTopology((2, 2, 2))
        with pytest.raises(IndexError):
            t.coords_of(99)
        with pytest.raises(ValueError):
            t.mean_hops_sample(0)

    def test_hops_feed_network_model(self):
        """Far nodes pay more wire latency via the hops parameter."""
        from repro.machine import GeminiNetwork
        t = TorusTopology.jaguar()
        net = GeminiNetwork()
        near = net.transfer_time(1024, hops=t.hops(0, 1))
        far = net.transfer_time(1024, hops=t.diameter)
        assert far > near
