"""Tests for linked multi-view rendering sessions."""

import numpy as np
import pytest

from repro.analysis.topology import segment_superlevel
from repro.analysis.visualization import Camera, ViewSession, ViewSpec
from repro.util import image_rmse
from repro.vmpi import BlockDecomposition3D

SHAPE = (14, 12, 10)


def _fields(seed=80):
    rng = np.random.default_rng(seed)
    coords = np.stack(np.mgrid[[slice(0, s) for s in SHAPE]]).astype(float)
    t = np.zeros(SHAPE)
    for _ in range(3):
        c = [rng.uniform(2, s - 2) for s in SHAPE]
        t += rng.uniform(0.6, 1.2) * np.exp(
            -sum((coords[a] - c[a]) ** 2 for a in range(3)) / 6.0)
    return {"T": t, "OH": 0.5 * t ** 2}


@pytest.fixture
def session():
    decomp = BlockDecomposition3D(SHAPE, (2, 2, 1))
    return ViewSession(decomp, views=[
        ViewSpec(name="temperature", variable="T",
                 camera=Camera(image_shape=(12, 12))),
        ViewSpec(name="radical", variable="OH", mode="hybrid",
                 downsample_stride=2, camera=Camera(image_shape=(12, 12))),
    ])


class TestViewSpec:
    def test_invalid_mode(self):
        with pytest.raises(ValueError, match="mode"):
            ViewSpec(name="x", variable="T", mode="magic")

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            ViewSpec(name="x", variable="T", downsample_stride=0)


class TestSessionManagement:
    def test_add_remove(self, session):
        session.add_view(ViewSpec(name="zoom", variable="T",
                                  camera=Camera(image_shape=(8, 8), zoom=2.0)))
        assert "zoom" in session.view_names
        session.remove_view("zoom")
        assert "zoom" not in session.view_names

    def test_duplicate_name_rejected(self, session):
        with pytest.raises(ValueError):
            session.add_view(ViewSpec(name="temperature", variable="T"))

    def test_remove_unknown_raises(self, session):
        with pytest.raises(KeyError, match="have"):
            session.remove_view("nope")

    def test_empty_session_cannot_render(self):
        s = ViewSession(BlockDecomposition3D(SHAPE, (1, 1, 1)))
        with pytest.raises(RuntimeError):
            s.render_all({"T": np.zeros(SHAPE)})


class TestRendering:
    def test_renders_all_views(self, session):
        images = session.render_all(_fields())
        assert set(images) == {"temperature", "radical"}
        for img in images.values():
            assert img.shape == (12, 12, 3)
            assert img.max() > 0.0

    def test_missing_variable_raises(self, session):
        with pytest.raises(KeyError, match="needs variable"):
            session.render_all({"T": np.zeros(SHAPE)})  # OH missing

    def test_views_show_different_data(self, session):
        images = session.render_all(_fields())
        assert image_rmse(images["temperature"], images["radical"]) > 0.01

    def test_highlight_changes_every_view(self, session):
        fields = _fields()
        seg = segment_superlevel(fields["T"], 0.4)
        label = max(seg.features, key=lambda l: seg.features[l].n_cells)
        plain = session.render_all(fields)
        linked = session.render_all(fields, highlight=(seg, label))
        for name in plain:
            assert image_rmse(plain[name], linked[name]) > 1e-4, \
                f"highlight invisible in view {name}"

    def test_highlight_is_localised(self, session):
        """Pixels far from the feature's footprint are unchanged."""
        fields = _fields()
        seg = segment_superlevel(fields["T"], 0.4)
        label = next(iter(seg.features))
        plain = session.render_all(fields)["temperature"]
        linked = session.render_all(fields, highlight=(seg, label))["temperature"]
        diff = np.abs(plain - linked).sum(axis=-1)
        assert (diff < 1e-12).any(), "highlight covered the whole image"

    def test_highlight_shape_mismatch(self, session):
        fields = _fields()
        small = segment_superlevel(np.zeros((4, 4, 4)), 0.5)
        # need at least one feature to reference; use a fake label check
        with pytest.raises((ValueError, KeyError)):
            session.render_all(fields, highlight=(small, 0))

    def test_custom_transfer_function_respected(self):
        from repro.analysis.visualization import TransferFunction
        decomp = BlockDecomposition3D(SHAPE, (1, 1, 1))
        tf = TransferFunction.grayscale(0.0, 2.0)
        s = ViewSession(decomp, views=[
            ViewSpec(name="gray", variable="T", transfer_function=tf,
                     camera=Camera(image_shape=(8, 8)))])
        img = s.render_all(_fields())["gray"]
        # grayscale: channels equal
        np.testing.assert_allclose(img[..., 0], img[..., 1], atol=1e-12)
