"""The byte-accurate capacity plane: ledgers, leaks, headroom, true-up."""

import json

import pytest

from repro.control.controller import ControlPolicy, PlacementController
from repro.core.runner import ExperimentConfig, ScaledExperiment
from repro.faults import FaultConfig
from repro.obs.capacity import (
    LEAK_INJECTOR_NODE,
    UNATTRIBUTED,
    CapacityLedger,
    CapacityReport,
    capacity_objectives,
    run_capacity_scenario,
)
from repro.obs.live import KIND_CAPACITY, TelemetryBus, render_top
from repro.obs.metrics import Gauge
from repro.obs.perf import DEFAULT_POLICIES
from repro.obs.tracer import tracing
from repro.service import CampaignService, JobSpec, QuotaManager
from repro.service.cache import schedule_from_dict, schedule_to_dict
from repro.service.shards import ShardBalanceReport, ShardLoad
from repro.transport.rdma import RdmaRegistry


def _experiment():
    return ScaledExperiment(ExperimentConfig.paper_4896())


class TestGaugeWatermark:
    def test_empty_gauge(self):
        wm = Gauge("g").watermark()
        assert wm == {"last": None, "max": None, "max_t": None,
                      "min": None, "min_t": None, "samples": 0}

    def test_marks_carry_des_timestamps(self):
        t = {"now": 0.0}
        g = Gauge("g", clock=lambda: t["now"])
        for when, value in [(1.0, 5.0), (2.0, 9.0), (3.0, 2.0)]:
            t["now"] = when
            g.set(value)
        wm = g.watermark()
        assert (wm["max"], wm["max_t"]) == (9.0, 2.0)
        assert (wm["min"], wm["min_t"]) == (2.0, 3.0)
        assert wm["last"] == 2.0
        assert wm["samples"] == 3

    def test_equal_sample_does_not_move_the_mark(self):
        t = {"now": 0.0}
        g = Gauge("g", clock=lambda: t["now"])
        t["now"] = 1.0
        g.set(7.0)
        t["now"] = 8.0
        g.set(7.0)   # same high mark, later — timestamp must not move
        wm = g.watermark()
        assert wm["max_t"] == 1.0
        assert wm["min_t"] == 1.0

    def test_clockless_gauge_reports_none_timestamps(self):
        g = Gauge("g")
        g.set(3.0)
        wm = g.watermark()
        assert wm["max"] == 3.0
        assert wm["max_t"] is None and wm["min_t"] is None

    def test_mirror_reproduces_watermarks(self):
        samples = [(0.5, 2.0), (1.5, 8.0), (2.5, 1.0), (3.5, 8.0)]
        t = {"now": 0.0}
        live = Gauge("g", clock=lambda: t["now"])
        for when, value in samples:
            t["now"] = when
            live.set(value)
        mirrored = Gauge("m", clock=lambda: 0.0)
        mirrored.mirror(samples)
        assert mirrored.watermark() == {**live.watermark()}


class TestLedgerAccounting:
    def test_register_release_books_balance(self):
        led = CapacityLedger()
        reg = RdmaRegistry()
        led.attach_registry(reg)
        region = reg.register("node-a", None, nbytes=100,
                              meta={"analysis": "vis", "timestep": 0})
        assert led.resident_bytes == 100
        reg.release(region.region_id)
        rep = led.finalize()
        assert rep.registered_bytes_total == rep.released_bytes_total == 100
        assert rep.final_resident_bytes == 0
        assert rep.peak_resident_bytes == 100
        assert rep.leaks == []
        assert rep.by_source["node-a"]["registered_bytes"] == 100

    def test_release_outside_context_credits_allocator(self):
        with tracing() as tracer:
            led = CapacityLedger()
            reg = RdmaRegistry()
            led.attach_registry(reg)
            with tracer.context(tenant="t1", job="j1"):
                region = reg.register("node-a", None, nbytes=64)
            # Released outside the allocating context (e.g. by gc).
            reg.release(region.region_id)
            rep = led.finalize()
        assert rep.by_tenant["t1"]["registered_bytes"] == 64
        assert rep.by_tenant["t1"]["released_bytes"] == 64
        release = [e for e in led.entries if e.op == "release"][0]
        assert (release.tenant, release.job) == ("t1", "j1")

    def test_cross_shard_region_id_collision(self):
        """Region ids are minted per registry, so two shards can reuse
        one id — the ledger must keep their books separate."""
        led = CapacityLedger()
        reg0, reg1 = RdmaRegistry(), RdmaRegistry()
        led.attach_registry(reg0, shard="shard0")
        led.attach_registry(reg1, shard="shard1")
        a = reg0.register("sim-agg-0", None, nbytes=100)
        b = reg1.register("sim-agg-0", None, nbytes=700)
        assert a.region_id == b.region_id   # the collision under test
        reg0.release(a.region_id)
        reg1.release(b.region_id)
        rep = led.finalize()
        assert rep.final_resident_bytes == 0
        assert rep.registered_bytes_total == rep.released_bytes_total == 800
        assert rep.by_shard["shard0"]["released_bytes"] == 100
        assert rep.by_shard["shard1"]["released_bytes"] == 700
        assert rep.leaks == []

    def test_release_before_attach_still_balances(self):
        reg = RdmaRegistry()
        region = reg.register("node-a", None, nbytes=32)
        led = CapacityLedger()
        led.attach_registry(reg)
        reg.release(region.region_id)
        rep = led.finalize()
        assert rep.registered_bytes_total == rep.released_bytes_total == 32
        assert rep.final_resident_bytes == 0
        assert rep.by_tenant[UNATTRIBUTED]["resident_bytes"] == 0

    def test_injected_leak_is_found_and_attributed(self):
        led = CapacityLedger()
        led.inject_leak(4096)
        reg = RdmaRegistry()
        led.attach_registry(reg)
        rep = led.finalize()
        assert len(rep.leaks) == 1
        leak = rep.leaks[0]
        assert leak["source"] == LEAK_INJECTOR_NODE
        assert leak["nbytes"] == 4096
        assert leak["analysis"] == "injected-leak"
        assert rep.final_resident_bytes == 4096
        assert not rep.clean
        assert [e.op for e in led.entries].count("leak") == 1

    def test_inject_leak_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CapacityLedger().inject_leak(0)


class TestReplayAccounting:
    def test_clean_replay_within_analytic_bound(self):
        sched = _experiment().run_schedule(n_steps=4, n_buckets=4,
                                           capacity=True)
        rep = sched.capacity
        assert rep is not None
        assert rep.analytic_bound_bytes is not None
        assert rep.peak_resident_bytes <= rep.analytic_bound_bytes
        assert rep.headroom_violations == 0
        assert rep.registered_bytes_total == rep.released_bytes_total
        assert rep.final_resident_bytes == 0
        assert rep.leaks == []
        assert rep.n_registers == rep.n_releases > 0
        assert rep.n_transfers > 0
        assert rep.nic_bytes_total == rep.registered_bytes_total
        assert rep.clean

    def test_sharded_scope_sums_are_exact(self):
        sched = _experiment().run_schedule(n_steps=6, n_buckets=4,
                                           n_shards=2, capacity=True)
        rep = sched.capacity
        assert rep.final_resident_bytes == 0
        assert rep.registered_bytes_total == rep.released_bytes_total
        for scopes in (rep.by_shard, rep.by_tenant, rep.by_source):
            assert (sum(s["registered_bytes"] for s in scopes.values())
                    == rep.registered_bytes_total)
            assert (sum(s["released_bytes"] for s in scopes.values())
                    == rep.released_bytes_total)
            assert (sum(s["nic_bytes"] for s in scopes.values())
                    == rep.nic_bytes_total)
        assert set(rep.by_shard) == {"shard0", "shard1"}

    def test_capacity_parameter_semantics(self):
        exp = _experiment()
        assert exp.run_schedule(n_steps=2, n_buckets=3).capacity is None
        assert exp.run_schedule(n_steps=2, n_buckets=3,
                                capacity=True).capacity is not None
        with tracing():
            exp2 = _experiment()
            assert exp2.run_schedule(n_steps=2,
                                     n_buckets=3).capacity is not None
            assert exp2.run_schedule(n_steps=2, n_buckets=3,
                                     capacity=False).capacity is None

    def test_controller_run_binds_ledger(self):
        ctrl = PlacementController()
        sched = _experiment().run_schedule(n_steps=2, n_buckets=3,
                                           controller=ctrl, capacity=True)
        assert ctrl.capacity is not None
        assert sched.capacity.final_resident_bytes == 0


class TestFaultedAccounting:
    def test_crashed_bucket_bytes_released_not_leaked(self):
        """A bucket crash requeues its task and the lease reclaims the
        region — the ledger must see every byte released, zero leaks."""
        fault = FaultConfig(seed=0, crash_times=(30.0, 55.0),
                            pull_stall_rate=0.05, pull_stall_seconds=2.0)
        sched = _experiment().run_schedule(
            n_steps=6, n_buckets=4, lease_timeout=5.0,
            fault_config=fault, capacity=True)
        rep = sched.capacity
        assert rep.leaks == []
        assert rep.registered_bytes_total == rep.released_bytes_total
        assert rep.final_resident_bytes == 0
        # Faulted runs may legitimately exceed the analytic bound
        # (lease-retained regions), so no bound assertion here.


class TestCapacityScenario:
    def test_same_seed_event_streams_are_byte_identical(self):
        a = run_capacity_scenario(n_steps=3, n_buckets=3)
        b = run_capacity_scenario(n_steps=3, n_buckets=3)
        assert a["events"], "scenario must emit capacity events"
        assert "\n".join(a["events"]) == "\n".join(b["events"])
        assert all(json.loads(line)["kind"] == KIND_CAPACITY
                   for line in a["events"])

    def test_clean_scenario_has_no_leaks_and_exact_tenant_sums(self):
        out = run_capacity_scenario(n_steps=3, n_buckets=3)
        merged = out["merged"]
        assert merged.leaks == []
        assert merged.headroom_violations == 0
        for tenant, rep in out["tenants"].items():
            assert rep.clean, tenant
            assert rep.peak_resident_bytes <= rep.analytic_bound_bytes
        assert (sum(r.registered_bytes_total for r in out["tenants"].values())
                == merged.registered_bytes_total)
        assert (sum(s["registered_bytes"] for s in merged.by_tenant.values())
                == merged.registered_bytes_total)
        assert set(merged.by_tenant) == {"alpha", "beta"}

    def test_injected_leak_scenario_reports_it(self):
        out = run_capacity_scenario(n_steps=2, n_buckets=3,
                                    inject_leak=True, leak_bytes=4096)
        leaks = out["merged"].leaks
        assert len(leaks) == 1
        assert leaks[0]["source"] == LEAK_INJECTOR_NODE
        assert leaks[0]["nbytes"] == 4096
        # Armed on the last tenant's run, attributed to it.
        assert leaks[0]["tenant"] == "beta"

    def test_report_merge_totals(self):
        out = run_capacity_scenario(n_steps=2, n_buckets=3)
        reports = list(out["tenants"].values())
        merged = CapacityReport.merge(reports)
        assert merged.peak_resident_bytes == max(
            r.peak_resident_bytes for r in reports)
        assert merged.n_transfers == sum(r.n_transfers for r in reports)
        assert merged.analytic_bound_bytes is None
        with pytest.raises(ValueError):
            CapacityReport.merge([])


class TestShardBalanceReport:
    def _report(self, *loads, virtual_nodes=8):
        return ShardBalanceReport(
            loads=[ShardLoad(shard=i, tasks=t, bytes=b, rpcs=r, buckets=k)
                   for i, (t, b, r, k) in enumerate(loads)],
            virtual_nodes=virtual_nodes)

    def test_merge_sums_by_shard_index(self):
        a = self._report((2, 100, 4, 2), (3, 200, 6, 2))
        b = self._report((1, 50, 2, 3), (4, 400, 8, 1))
        merged = ShardBalanceReport.merge([a, b])
        assert merged.n_shards == 2
        assert [(x.tasks, x.bytes, x.rpcs) for x in merged.loads] == \
            [(3, 150, 6), (7, 600, 14)]
        # Buckets are a pool size, not traffic: max, never summed.
        assert [x.buckets for x in merged.loads] == [3, 2]
        assert merged.virtual_nodes == 8

    def test_merge_folds_fewer_shards_into_low_indices(self):
        wide = self._report((1, 10, 1, 1), (1, 10, 1, 1), (1, 10, 1, 1))
        narrow = self._report((5, 50, 5, 2), virtual_nodes=16)
        merged = ShardBalanceReport.merge([wide, narrow])
        assert merged.n_shards == 3
        assert [x.tasks for x in merged.loads] == [6, 1, 1]
        assert merged.virtual_nodes == 16

    def test_round_trip_and_imbalance(self):
        rep = self._report((2, 100, 4, 2), (6, 300, 12, 2))
        again = ShardBalanceReport.from_dict(rep.to_dict())
        assert again.to_dict() == rep.to_dict()
        assert rep.imbalance("tasks") == pytest.approx(6 / 4)
        assert ShardBalanceReport(loads=[]).imbalance() == 1.0
        assert self._report((0, 0, 0, 1)).imbalance("bytes") == 1.0

    def test_sharded_run_emits_balance_report(self):
        sched = _experiment().run_schedule(n_steps=4, n_buckets=4,
                                           n_shards=2)
        rep = sched.shard_balance
        assert rep is not None and rep.n_shards == 2
        assert sum(x.tasks for x in rep.loads) == len(sched.results)


class TestBusDropCounters:
    def test_dropped_by_kind_sums_to_dropped_total(self):
        bus = TelemetryBus(capacity=2)
        for i in range(3):
            bus.publish("probe", f"p{i}", t=float(i))
        for i in range(2):
            bus.publish(KIND_CAPACITY, f"c{i}", t=float(i))
        assert bus.dropped_total == 3
        assert bus.dropped_by_kind == {"probe": 3}
        bus.publish("probe", "p3", t=9.0)
        assert bus.dropped_by_kind == {"probe": 3, KIND_CAPACITY: 1}
        assert sum(bus.dropped_by_kind.values()) == bus.dropped_total

    def test_render_top_shows_drops_by_kind(self):
        svc = CampaignService(workers=1)
        bus = TelemetryBus(capacity=1)
        bus.publish("probe", "a", t=0.0)
        bus.publish(KIND_CAPACITY, "b", t=1.0)
        frame = render_top(svc, bus, svc.monitor)
        assert "bus drops by kind" in frame
        assert "probe=1" in frame


class TestQuotaTrueUp:
    def test_true_up_records_and_summary(self):
        qm = QuotaManager([])
        rec = qm.true_up("a", "a/j1", estimated_bytes=100, measured_bytes=60)
        assert rec.delta_bytes == -40
        qm.true_up("a", "a/j2", estimated_bytes=100, measured_bytes=90)
        qm.true_up("b", "b/j1", estimated_bytes=10, measured_bytes=10)
        summary = qm.true_up_summary("a")
        assert summary == {"jobs": 2, "estimated_bytes": 200,
                           "measured_bytes": 150, "delta_bytes": -50}
        assert qm.true_up_summary("c")["jobs"] == 0

    def test_capacity_objectives_are_wired_by_default(self):
        names = {o.name for o in capacity_objectives()}
        assert names == {"staging-memory", "nic-bandwidth"}
        svc = CampaignService(workers=1)
        assert names <= {o.name for o in svc.monitor.objectives}

    def test_service_reconciles_measured_against_estimate(self):
        with tracing():
            svc = CampaignService(workers=1)
            svc.submit(JobSpec(tenant="a", name="one", n_steps=2,
                               n_buckets=3))
            svc.submit(JobSpec(tenant="a", name="two", n_steps=2,
                               n_buckets=3))
            report = svc.run_batch([])
        assert report.all_done
        # Both jobs true-up — the second through the schedule cache, so
        # its measured bytes round-trip identically.
        assert len(svc.quota.true_ups) == 2
        first, second = svc.quota.true_ups
        assert first.measured_bytes == second.measured_bytes > 0
        tenant = report.tenants["a"]
        assert tenant.staging_measured_bytes == 2 * first.measured_bytes
        assert tenant.staging_estimated_bytes >= tenant.staging_measured_bytes
        assert tenant.staging_delta_bytes == (tenant.staging_measured_bytes
                                              - tenant.staging_estimated_bytes)
        assert "staging_measured_bytes" in tenant.to_dict()


class TestControllerMeasuredBudget:
    class _FakeLedger:
        def __init__(self, peak):
            self.peak_resident_bytes = peak

    def _controller(self, peak, budget):
        ctrl = PlacementController()
        ctrl.capacity = self._FakeLedger(peak) if peak is not None else None
        ctrl.memory_budget_bytes = budget
        return ctrl

    def test_measured_cap_is_ceil_divided(self):
        ctrl = self._controller(peak=300, budget=1000)
        # per-bucket footprint ceil(300/3)=100 -> 1000//100 = 10 buckets
        assert ctrl._measured_bucket_cap(3) == 10
        # ceil(301/3)=101 -> 1000//101 = 9
        ctrl.capacity.peak_resident_bytes = 301
        assert ctrl._measured_bucket_cap(3) == 9

    def test_measured_cap_requires_a_ledger_with_bytes(self):
        assert self._controller(None, 1000)._measured_bucket_cap(3) is None
        assert self._controller(0, 1000)._measured_bucket_cap(3) is None
        assert self._controller(10, 1000)._measured_bucket_cap(0) is None

    def test_measured_budget_defaults_off(self):
        assert ControlPolicy().measured_budget is False


class TestCacheCapacityRoundTrip:
    def test_schedule_cache_preserves_capacity_report_exactly(self):
        sched = _experiment().run_schedule(n_steps=2, n_buckets=3,
                                           capacity=True)
        again = schedule_from_dict(schedule_to_dict(sched))
        assert again.capacity is not None
        assert (json.dumps(again.capacity.to_dict(series_cap=None),
                           sort_keys=True)
                == json.dumps(sched.capacity.to_dict(series_cap=None),
                              sort_keys=True))

    def test_capacityless_schedule_round_trips(self):
        sched = _experiment().run_schedule(n_steps=2, n_buckets=3)
        assert schedule_from_dict(schedule_to_dict(sched)).capacity is None


class TestPerfGatePolicies:
    def test_capacity_policies_registered(self):
        names = {p.pattern for p in DEFAULT_POLICIES}
        assert {"capacity.leaked_regions", "capacity.headroom_violations",
                "capacity.headroom_bytes", "capacity.*"} <= names
