"""The multi-tenant campaign service: queue, quota, shards, cache, API."""

import pytest

from repro.core.runner import ExperimentConfig, ScaledExperiment
from repro.core.workload import AnalyticsVariant
from repro.des import Engine
from repro.machine.specs import jaguar_xk6
from repro.obs.perf import RunStore
from repro.service import (
    CampaignService,
    Job,
    JobQueue,
    JobSpec,
    JobState,
    QuotaManager,
    ScheduleCache,
    ShardedDataSpaces,
    TenantQuota,
    schedule_cache_key,
)
from repro.service.cache import schedule_from_dict, schedule_to_dict
from repro.service.quota import JobDemand


def _spec(**kw):
    base = dict(tenant="t", name="j", n_steps=2, n_buckets=3)
    base.update(kw)
    return JobSpec(**base)


def _serial(spec):
    return ScaledExperiment(spec.experiment_config()).run_schedule(
        n_steps=spec.n_steps, analyses=spec.variants(),
        n_buckets=spec.n_buckets, analysis_interval=spec.analysis_interval,
        n_shards=spec.n_shards)


class TestJobSpec:
    def test_round_trip(self):
        spec = _spec(n_shards=2, n_buckets=4, analyses=("VIS_HYBRID",))
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown job fields"):
            JobSpec.from_dict({**_spec().to_dict(), "bogus": 1})

    @pytest.mark.parametrize("kw", [
        dict(tenant=""),
        dict(config="paper_1"),
        dict(n_steps=0),
        dict(n_buckets=0),
        dict(analysis_interval=0),
        dict(n_shards=0),
        dict(n_shards=4, n_buckets=3),   # fewer buckets than shards
        dict(analyses=("NOPE",)),
        dict(analyses=()),
        dict(submit_at=-1.0),
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            _spec(**kw)

    def test_variants_resolve(self):
        spec = _spec(analyses=("TOPO_HYBRID", "STATS_HYBRID"))
        assert spec.variants() == (AnalyticsVariant.TOPO_HYBRID,
                                   AnalyticsVariant.STATS_HYBRID)


class TestJobQueue:
    def _job(self, tenant, name):
        return Job(spec=_spec(tenant=tenant, name=name),
                   job_id=f"{tenant}/{name}")

    def test_fair_share_round_robin(self):
        """A flooding tenant only queues behind itself."""
        q = JobQueue()
        for i in range(3):
            q.push(self._job("hog", f"h{i}"))
        q.push(self._job("small", "s0"))
        order = [q.pop_runnable(lambda job: None).job_id for _ in range(4)]
        # The hog gets the first slot (FIFO arrival), then service
        # alternates, so `small` is not starved behind the hog's backlog.
        assert order.index("small/s0") <= 1
        assert q.pop_runnable(lambda job: None) is None

    def test_transient_denial_holds_job(self):
        from repro.service.quota import Denial

        q = JobQueue()
        q.push(self._job("a", "j0"))
        assert q.pop_runnable(lambda job: Denial("over quota")) is None
        job = q.pending()[0]
        assert job.held == 1
        assert job.held_reasons == ["over quota"]
        assert q.pop_runnable(lambda job: None) is job

    def test_permanent_denial_fails_job_and_advances(self):
        from repro.service.quota import Denial

        q = JobQueue()
        doomed = self._job("a", "big")
        ok = self._job("a", "ok")
        q.push(doomed)
        q.push(ok)

        def admit(job):
            if job is doomed:
                return Denial("too big", permanent=True)
            return None

        assert q.pop_runnable(admit) is ok
        assert doomed.state is JobState.FAILED
        assert doomed.error == "too big"


class TestQuota:
    def test_concurrency_budget(self):
        qm = QuotaManager([TenantQuota("a", max_concurrent=1)])
        demand = JobDemand()
        assert qm.check("a", demand) is None
        qm.acquire("a", demand)
        denial = qm.check("a", demand)
        assert denial is not None and not denial.permanent
        qm.release("a", demand)
        assert qm.check("a", demand) is None

    def test_staging_bytes_budget(self):
        qm = QuotaManager([TenantQuota("a", staging_bytes=100,
                                       max_concurrent=8)])
        qm.acquire("a", JobDemand(staging_bytes=70))
        denial = qm.check("a", JobDemand(staging_bytes=40))
        assert denial is not None and not denial.permanent

    def test_unsatisfiable_demand_is_permanent(self):
        qm = QuotaManager([TenantQuota("a", staging_bytes=100)])
        denial = qm.check("a", JobDemand(staging_bytes=101))
        assert denial is not None and denial.permanent
        denial = qm.check("a", JobDemand(cores=10**9))
        assert denial is None  # no core budget set
        qm2 = QuotaManager([TenantQuota("a", max_cores=8)])
        assert qm2.check("a", JobDemand(cores=9)).permanent

    def test_default_quota_applies_to_unknown_tenants(self):
        qm = QuotaManager(default=TenantQuota("*", max_concurrent=1))
        qm.acquire("anyone", JobDemand())
        assert qm.check("anyone", JobDemand()) is not None

    def test_release_without_acquire_raises(self):
        with pytest.raises(RuntimeError):
            QuotaManager().release("a", JobDemand())

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantQuota("a", max_concurrent=0)
        with pytest.raises(ValueError):
            TenantQuota("a", staging_bytes=0)


class TestShardedDataSpaces:
    def _make(self, n_shards=2, **kw):
        engine = Engine()
        sds = ShardedDataSpaces(engine, jaguar_xk6().network,
                                n_shards=n_shards, **kw)
        return engine, sds

    def test_tuple_space_routing_round_trip(self):
        engine, sds = self._make(3)
        for v in range(9):
            sds.put("field", v, {"v": v})
        assert sds.versions("field") == list(range(9))
        for v in range(9):
            assert sds.get("field", v) == {"v": v}
        assert [v for v, _ in sds.query("field", 2, 5)] == [2, 3, 4, 5]
        # versions really spread over more than one shard
        owners = {sds.shard_for(f"field@{v}") for v in range(9)}
        assert len(owners) > 1

    def test_global_gc_drops_oldest_versions(self):
        engine, sds = self._make(3)
        for v in range(10):
            sds.put("field", v, v)
        assert sds.gc_versions("field", keep_latest=3) == 7
        assert sds.versions("field") == [7, 8, 9]

    def test_spawn_requires_bucket_per_shard(self):
        engine, sds = self._make(3)
        with pytest.raises(ValueError, match="one bucket per shard"):
            sds.spawn_buckets(["b0", "b1"])

    def test_sharded_replay_matches_accounting(self):
        exp = ScaledExperiment(ExperimentConfig.paper_4896())
        sched = exp.run_schedule(n_steps=4, n_buckets=4, n_shards=2)
        assert len(sched.results) == 4 * 3  # three hybrid variants per step
        acc_results = sorted(r.task_id for r in sched.results)
        assert len(set(acc_results)) == len(acc_results)
        assert sched.shard_balance is not None
        bal = sched.shard_balance
        assert bal.n_shards == 2
        assert sum(load.tasks for load in bal.loads) == 12
        assert sum(load.buckets for load in bal.loads) == 4
        assert bal.imbalance("tasks") >= 1.0

    def test_sharded_replay_is_deterministic(self):
        exp = ScaledExperiment(ExperimentConfig.paper_4896())
        a = exp.run_schedule(n_steps=3, n_buckets=4, n_shards=2)
        b = exp.run_schedule(n_steps=3, n_buckets=4, n_shards=2)
        assert a.results == b.results
        assert a.makespan == b.makespan

    def test_single_shard_path_unchanged(self):
        """n_shards=1 must go down the classic DataSpaces path."""
        exp = ScaledExperiment(ExperimentConfig.paper_4896())
        classic = exp.run_schedule(n_steps=3, n_buckets=4)
        explicit = exp.run_schedule(n_steps=3, n_buckets=4, n_shards=1)
        assert classic.results == explicit.results
        assert explicit.shard_balance is None


class TestScheduleCache:
    def test_key_sensitivity(self):
        spec = _spec()
        machine = {"name": "m"}
        base = schedule_cache_key(machine, spec.workload_dict(),
                                  spec.placement_dict())
        other = schedule_cache_key(machine,
                                   _spec(n_steps=3).workload_dict(),
                                   spec.placement_dict())
        moved = schedule_cache_key(machine, spec.workload_dict(),
                                   _spec(n_buckets=4).placement_dict())
        assert base != other
        assert base != moved
        assert base == schedule_cache_key(machine, spec.workload_dict(),
                                          spec.placement_dict())

    def test_round_trip_is_exact(self):
        exp = ScaledExperiment(ExperimentConfig.paper_4896())
        sched = exp.run_schedule(n_steps=3, n_buckets=4, n_shards=2)
        again = schedule_from_dict(schedule_to_dict(sched))
        assert again.results == sched.results
        assert again.makespan == sched.makespan
        assert again.shard_balance.to_dict() == sched.shard_balance.to_dict()

    def test_persistence_through_run_store(self, tmp_path):
        exp = ScaledExperiment(ExperimentConfig.paper_4896())
        sched = exp.run_schedule(n_steps=2, n_buckets=3)
        cache = ScheduleCache(tmp_path / "cache")
        cache.insert("k1", sched)
        assert cache.lookup("missing") is None
        hit = cache.lookup("k1")
        assert hit.results == sched.results
        assert cache.hits == 1 and cache.misses == 1

        # A fresh cache over the same store warms up from disk, and the
        # JSON round trip preserves every float exactly.
        warm = ScheduleCache(tmp_path / "cache")
        assert "k1" in warm
        assert warm.lookup("k1").results == sched.results
        assert warm.hit_rate == 1.0
        # Cache records ride the RunStore contract.
        recs = RunStore(tmp_path / "cache").records()
        assert [r.source for r in recs] == ["schedule-cache"]


class TestCampaignService:
    BATCH = [
        dict(tenant="alpha", name="a1", n_steps=3, n_buckets=4),
        dict(tenant="alpha", name="a2", n_steps=2, n_buckets=3),
        dict(tenant="beta", name="b1", n_steps=3, n_buckets=4, n_shards=2),
        dict(tenant="beta", name="b2", n_steps=2, n_buckets=4, n_shards=2),
        dict(tenant="gamma", name="g1", n_steps=3, n_buckets=5),
        dict(tenant="gamma", name="g2", n_steps=2, n_buckets=5),
    ]

    def _batch(self):
        return [JobSpec(**kw) for kw in self.BATCH]

    def test_batch_quota_cache_and_bit_identity(self, tmp_path):
        """The ISSUE acceptance scenario: 6 jobs, 3 tenants, quota held,
        results bit-identical to serial replays, 100% cache hit rate on
        resubmission."""
        svc = CampaignService(
            workers=3,
            quotas=[TenantQuota("gamma", max_concurrent=1)],
            cache=ScheduleCache(tmp_path / "cache"),
            jobs_store=RunStore(tmp_path / "jobs"))
        report = svc.run_batch(self._batch())

        assert report.all_done
        assert set(report.tenants) == {"alpha", "beta", "gamma"}
        # Quota enforcement: gamma's second job was held (queued, not
        # run) until its first finished.
        g1, g2 = [j for j in svc.jobs if j.tenant == "gamma"]
        assert g2.held > 0
        assert g2.start_t >= g1.finish_t
        assert report.held_events > 0
        assert report.tenants["gamma"].held_events == g2.held

        # Bit-identical to the same jobs run serially through
        # ScaledExperiment (fresh engine per replay).
        for job in svc.jobs:
            serial = _serial(job.spec)
            assert job.result.results == serial.results, job.job_id
            assert job.result.makespan == serial.makespan

        # Resubmitting the identical batch hits the cache for every job
        # — and cached results stay bit-identical to serial ones.
        svc2 = CampaignService(workers=3,
                               cache=ScheduleCache(tmp_path / "cache"))
        report2 = svc2.run_batch(self._batch())
        assert report2.all_done
        assert report2.cache_hit_rate == 1.0
        assert all(j.cache_hit for j in svc2.jobs)
        for job in svc2.jobs:
            serial = _serial(job.spec)
            assert job.result.results == serial.results, job.job_id
        # Cache hits are free on the service clock.
        assert report2.duration == 0.0

        # Job records landed in the store.
        recs = RunStore(tmp_path / "jobs").records()
        assert len(recs) == 6
        assert {r.meta["tenant"] for r in recs} == {"alpha", "beta", "gamma"}

    def test_queue_wait_accounting(self):
        """With one worker, job 2's queue wait equals job 1's makespan."""
        svc = CampaignService(workers=1)
        j1 = svc.submit(_spec(tenant="a", name="one", n_steps=2))
        j2 = svc.submit(_spec(tenant="a", name="two", n_steps=3))
        svc.run()
        assert j1.queue_wait == 0.0
        assert j2.queue_wait == pytest.approx(j1.result.makespan)
        assert j2.start_t == j1.finish_t

    def test_unsatisfiable_job_fails_without_deadlock(self):
        svc = CampaignService(
            workers=1, quotas=[TenantQuota("a", staging_bytes=1,
                                           max_concurrent=4)])
        doomed = svc.submit(_spec(tenant="a", name="big", n_steps=2))
        ok = svc.submit(_spec(tenant="b", name="fine", n_steps=2))
        report = svc.run()
        assert doomed.state is JobState.FAILED
        assert "staging bytes" in doomed.error
        assert ok.state is JobState.DONE
        assert report.tenants["a"].failed == 1

    def test_failing_job_is_contained(self):
        """A job that blows up mid-execute fails alone; the worker and
        the rest of the batch keep going."""
        svc = CampaignService(workers=1)
        bad = svc.submit(_spec(tenant="a", name="bad", n_steps=2))
        good = svc.submit(_spec(tenant="a", name="good", n_steps=2,
                                n_buckets=4))

        original = svc.executor.execute

        def explode(spec):
            if spec.name == "bad":
                raise RuntimeError("boom")
            return original(spec)

        svc.executor.execute = explode
        report = svc.run()
        assert bad.state is JobState.FAILED
        assert "boom" in bad.error
        assert good.state is JobState.DONE
        assert not report.all_done

    def test_submit_at_staggers_arrivals(self):
        svc = CampaignService(workers=2)
        early = svc.submit(_spec(tenant="a", name="early", n_steps=2))
        late = svc.submit(_spec(tenant="a", name="late", n_steps=2,
                                n_buckets=4, submit_at=50.0))
        svc.run()
        assert early.submit_t == 0.0
        assert late.submit_t == 50.0
        assert late.start_t >= 50.0

    def test_report_serializes(self, tmp_path):
        import json

        svc = CampaignService(workers=2)
        report = svc.run_batch([_spec(tenant="a", name="j", n_steps=2,
                                      n_shards=2, n_buckets=4)])
        blob = json.dumps(report.to_dict())
        parsed = json.loads(blob)
        assert parsed["all_done"] is True
        assert parsed["jobs"][0]["spec"]["tenant"] == "a"
        assert parsed["shard_balance"]["n_shards"] == 2
        assert "a" not in parsed["quotas"]  # only explicit + default
        assert parsed["quotas"]["*"]["max_concurrent"] == 2
        assert "tenant" in report.table()


class TestServiceMetrics:
    def test_service_metrics_flow_through_registry(self):
        from repro.obs.tracer import tracing

        with tracing() as tracer:
            svc = CampaignService(
                workers=2, quotas=[TenantQuota("a", max_concurrent=1)])
            svc.run_batch([
                _spec(tenant="a", name="one", n_steps=2),
                _spec(tenant="a", name="two", n_steps=3),
                _spec(tenant="b", name="sharded", n_steps=2, n_buckets=4,
                      n_shards=2),
            ])
        snap = tracer.metrics.snapshot()
        waits = snap["histograms"]["service.queue_wait_s"]
        assert waits["count"] == 3
        assert waits["max"] > 0.0
        assert snap["gauges"]["service.cache_hit_rate"]["last"] == 0.0
        assert snap["gauges"]["service.shard.0.tasks"]["last"] > 0
        assert snap["gauges"]["service.shard.1.tasks"]["last"] > 0
        assert snap["counters"]["service.cache_misses"] == 3.0

    def test_perf_record_captures_service_metrics(self):
        from repro.obs.perf import collect_run_record

        rec = collect_run_record(n_steps=2, n_buckets=3)
        assert rec.metrics["service.jobs_done"] == 4.0
        assert rec.metrics["service.cache_hit_rate"] == 0.5
        assert rec.metrics["service.held_events"] >= 1.0
        assert rec.metrics["service.queue_wait_max_s"] > 0.0
        assert any(k.startswith("service.shard.") for k in rec.metrics)
