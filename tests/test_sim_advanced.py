"""Tests for the RK2 integrator and checkpoint/restart."""

import numpy as np
import pytest

from repro.sim import (
    DecomposedS3D,
    LiftedFlameCase,
    S3DProxy,
    SolverParams,
    StructuredGrid3D,
    VARIABLE_NAMES,
    restore_checkpoint,
    save_checkpoint,
)
from repro.vmpi import BlockDecomposition3D


def _case(shape=(12, 10, 8), seed=91, **kw):
    grid = StructuredGrid3D(shape, (1.5, 1.2, 1.0))
    return LiftedFlameCase(grid, seed=seed, **kw)


class TestRK2:
    def test_invalid_integrator_rejected(self):
        with pytest.raises(ValueError):
            SolverParams(integrator="rk7")

    def test_rk2_advances_state(self):
        s = S3DProxy(_case(), params=SolverParams(integrator="rk2"))
        t0 = s.fields["T"].copy()
        s.step(3)
        assert not np.array_equal(s.fields["T"], t0)
        assert s.step_count == 3

    def test_rk2_species_physical(self):
        s = S3DProxy(_case(kernel_rate=2.0),
                     params=SolverParams(integrator="rk2"))
        s.step(8)
        for name in ("H2", "O2", "H2O"):
            arr = s.fields[name]
            assert arr.min() >= 0.0 and arr.max() <= 1.0

    def test_rk2_differs_from_euler(self):
        a = S3DProxy(_case(), params=SolverParams(integrator="euler"))
        b = S3DProxy(_case(), params=SolverParams(integrator="rk2"))
        a.step(3)
        b.step(3)
        assert not np.array_equal(a.fields["T"], b.fields["T"])

    def test_rk2_more_accurate_on_smooth_problem(self):
        """Richardson-style check: against a fine-dt reference, rk2 at a
        coarse dt beats euler at the same coarse dt."""
        def run(integrator, dt, n):
            case = _case(kernel_rate=0.0)
            s = S3DProxy(case, params=SolverParams(integrator=integrator, dt=dt),
                         seed_kernels=False)
            s.step(n)
            return s.fields["T"]

        t_final = 8e-3
        ref = run("rk2", t_final / 64, 64)
        err_euler = np.abs(run("euler", t_final / 8, 8) - ref).max()
        err_rk2 = np.abs(run("rk2", t_final / 8, 8) - ref).max()
        assert err_rk2 < err_euler

    def test_decomposed_rk2_matches_global_bitwise(self):
        """The two-exchange decomposed RK2 equals the global RK2 exactly."""
        shape = (12, 8, 8)
        params = SolverParams(integrator="rk2")
        global_solver = S3DProxy(_case(shape, seed=92), params=params)
        block_solver = DecomposedS3D(_case(shape, seed=92),
                                     BlockDecomposition3D(shape, (2, 2, 1)),
                                     params=params)
        global_solver.step(3)
        block_solver.step(3)
        assembled = block_solver.assemble()
        for name in VARIABLE_NAMES:
            np.testing.assert_array_equal(assembled[name],
                                          global_solver.fields[name],
                                          err_msg=f"variable {name}")


class TestCheckpointRestart:
    def test_roundtrip_bitwise_identical_run(self, tmp_path):
        """checkpoint at step 5, run to 8; restore and run to 8 — equal."""
        path = tmp_path / "ckpt.bp"
        a = S3DProxy(_case(kernel_rate=2.0))
        a.step(5)
        save_checkpoint(a, path)
        a.step(3)

        b = S3DProxy(_case(seed=123, kernel_rate=2.0))  # different history
        b.step(2)
        restore_checkpoint(b, path)
        assert b.step_count == 5
        b.step(3)
        for name in VARIABLE_NAMES:
            np.testing.assert_array_equal(a.fields[name], b.fields[name],
                                          err_msg=f"variable {name}")
        assert a.kernel_history == b.kernel_history

    def test_restores_counters_and_dt(self, tmp_path):
        path = tmp_path / "c.bp"
        a = S3DProxy(_case())
        a.step(4)
        save_checkpoint(a, path)
        b = S3DProxy(_case())
        restore_checkpoint(b, path)
        assert b.step_count == 4
        assert b.dt == a.dt

    def test_grid_mismatch_rejected(self, tmp_path):
        path = tmp_path / "c.bp"
        save_checkpoint(S3DProxy(_case((12, 10, 8))), path)
        other = S3DProxy(_case((10, 10, 8)))
        with pytest.raises(ValueError, match="grid"):
            restore_checkpoint(other, path)

    def test_checkpoint_size_matches_state(self, tmp_path):
        path = tmp_path / "c.bp"
        s = S3DProxy(_case())
        nbytes = save_checkpoint(s, path)
        assert nbytes >= s.fields.nbytes  # payload + header

    def test_rng_state_restored(self, tmp_path):
        """Kernel seeding after restore matches the original run."""
        path = tmp_path / "c.bp"
        a = S3DProxy(_case(kernel_rate=5.0))
        a.step(3)
        save_checkpoint(a, path)
        a.step(2)
        b = S3DProxy(_case(kernel_rate=5.0))
        restore_checkpoint(b, path)
        b.step(2)
        assert a.kernel_history == b.kernel_history
