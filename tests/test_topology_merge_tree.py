"""Tests for the batch merge-tree algorithm and the MergeTree structure."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.topology import MergeTree, compute_merge_tree, sweep_order
from repro.analysis.topology.merge_tree import DisjointSet
from repro.analysis.topology.stream_merge import compute_merge_tree_graph


class TestDisjointSet:
    def test_initially_singletons(self):
        ds = DisjointSet(4)
        assert [ds.find(i) for i in range(4)] == [0, 1, 2, 3]

    def test_union_and_find(self):
        ds = DisjointSet(4)
        ds.union_into(0, 1)
        ds.union_into(1, 2)
        assert ds.find(0) == ds.find(1) == ds.find(2) == 2
        assert ds.find(3) == 3

    def test_negative_size_raises(self):
        with pytest.raises(ValueError):
            DisjointSet(-1)


class TestSweepOrder:
    def test_descending_values(self):
        v = np.array([3.0, 1.0, 2.0])
        assert sweep_order(v).tolist() == [0, 2, 1]

    def test_ties_broken_by_index_descending(self):
        v = np.array([1.0, 1.0, 1.0])
        assert sweep_order(v).tolist() == [2, 1, 0]


class TestMergeTreeStructure:
    def _tree(self):
        t = MergeTree()
        t.add_node(10, 5.0)   # max
        t.add_node(20, 4.0)   # max
        t.add_node(5, 2.0)    # saddle
        t.set_parent(10, 5)
        t.set_parent(20, 5)
        return t

    def test_basic_queries(self):
        t = self._tree()
        assert t.leaves() == [10, 20]
        assert t.saddles() == [5]
        assert t.roots() == [5]
        assert t.arcs() == [(10, 5), (20, 5)]
        assert len(t) == 3

    def test_duplicate_node_raises(self):
        t = self._tree()
        with pytest.raises(ValueError):
            t.add_node(10, 1.0)

    def test_parent_must_be_lower(self):
        t = MergeTree()
        t.add_node(1, 1.0)
        t.add_node(2, 2.0)
        with pytest.raises(ValueError):
            t.set_parent(1, 2)  # 1 is lower than 2

    def test_self_parent_raises(self):
        t = MergeTree()
        t.add_node(1, 1.0)
        with pytest.raises(ValueError):
            t.set_parent(1, 1)

    def test_reparent_moves_child(self):
        t = self._tree()
        t.add_node(3, 1.0)
        t.set_parent(5, 3)
        t.set_parent(20, 3)  # move 20 from 5 to 3
        assert t.children(5) == [10]
        assert sorted(t.children(3)) == [5, 20]

    def test_validate_passes_on_good_tree(self):
        self._tree().validate()

    def test_equal_values_ordered_by_id(self):
        t = MergeTree()
        t.add_node(1, 2.0)
        t.add_node(2, 2.0)
        t.set_parent(2, 1)  # id 2 > id 1 at equal value, so 2 is "higher"
        with pytest.raises(ValueError):
            t.set_parent(1, 2)

    def test_reduced_contracts_chains(self):
        t = MergeTree()
        # max(4) -> regular(3) -> saddle? no: chain max->r->r->root
        t.add_node(40, 4.0)
        t.add_node(30, 3.0)
        t.add_node(20, 2.0)
        t.set_parent(40, 30)
        t.set_parent(30, 20)
        red = t.reduced()
        # Whole chain below the single max is dangling: only the max remains.
        assert sorted(red.value) == [40]

    def test_reduced_keeps_saddles(self):
        t = self._tree()
        t.add_node(2, 1.0)   # regular below the saddle
        t.set_parent(5, 2)
        red = t.reduced()
        assert sorted(red.value) == [5, 10, 20]
        assert red.roots() == [5]

    def test_deepest_at_or_above(self):
        t = self._tree()
        t.add_node(2, 1.0)
        t.set_parent(5, 2)
        assert t.deepest_at_or_above(10, 4.5) == 10
        assert t.deepest_at_or_above(10, 2.0) == 5
        assert t.deepest_at_or_above(10, 0.5) == 2
        with pytest.raises(ValueError):
            t.deepest_at_or_above(5, 3.0)


class TestComputeMergeTree1D:
    """Hand-checkable 1-D cases (a 1-D array is a valid grid)."""

    def test_single_peak(self):
        f = np.array([1.0, 2.0, 3.0, 2.0, 1.0])
        tree, arc = compute_merge_tree(f)
        assert tree.leaves() == [2]
        assert tree.saddles() == []
        assert len(tree) == 1
        np.testing.assert_array_equal(arc, [2, 2, 2, 2, 2])

    def test_two_peaks_one_saddle(self):
        #      5   1   4          peaks at 0 (5.0) and 4 (4.0), saddle at 2
        f = np.array([5.0, 2.0, 1.0, 2.0, 4.0])
        tree, arc = compute_merge_tree(f)
        assert sorted(tree.leaves()) == [0, 4]
        assert tree.saddles() == [2]
        assert tree.parent[0] == 2 and tree.parent[4] == 2
        assert tree.value[2] == 1.0
        # vertices 1 and 3 lie on the arcs of their nearest peaks
        assert arc[1] == 0 and arc[3] == 4

    def test_three_peaks_merge_order(self):
        # peaks 6, 5, 4 with saddles 2 and 1: higher saddle merges first
        f = np.array([6.0, 2.0, 5.0, 1.0, 4.0])
        tree, _ = compute_merge_tree(f)
        assert sorted(tree.leaves()) == [0, 2, 4]
        assert sorted(tree.saddles()) == [1, 3]
        assert tree.parent[0] == 1 and tree.parent[2] == 1
        assert tree.parent[1] == 3 and tree.parent[4] == 3
        assert tree.roots() == [3]

    def test_monotone_field_single_node(self):
        f = np.arange(10.0)
        tree, arc = compute_merge_tree(f)
        assert tree.leaves() == [9]
        assert np.all(arc == 9)

    def test_plateau_deterministic(self):
        f = np.array([1.0, 1.0, 1.0, 1.0])
        tree, _ = compute_merge_tree(f)
        # Highest id wins ties: single max at vertex 3.
        assert tree.leaves() == [3]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            compute_merge_tree(np.array([]))


class TestComputeMergeTree3D:
    def test_two_gaussian_blobs(self):
        grid = np.mgrid[0:16, 0:16, 0:8].astype(float)
        x, y, z = grid
        f = (np.exp(-((x - 4) ** 2 + (y - 4) ** 2 + (z - 4) ** 2) / 8.0)
             + 0.8 * np.exp(-((x - 12) ** 2 + (y - 12) ** 2 + (z - 4) ** 2) / 8.0))
        tree, _ = compute_merge_tree(f)
        red = tree.reduced()
        assert len(red.leaves()) == 2
        assert len(red.saddles()) == 1
        tree.validate()

    def test_leaf_count_equals_discrete_maxima(self):
        """Every leaf is a 6-connected local maximum and vice versa."""
        rng = np.random.default_rng(10)
        f = rng.random((7, 6, 5))
        tree, _ = compute_merge_tree(f)
        # count strict 6-neighborhood maxima by brute force
        n_max = 0
        for idx in np.ndindex(f.shape):
            val = f[idx]
            is_max = True
            for axis in range(3):
                for d in (-1, 1):
                    j = list(idx)
                    j[axis] += d
                    if 0 <= j[axis] < f.shape[axis] and f[tuple(j)] > val:
                        is_max = False
            if is_max:
                n_max += 1
        assert len(tree.leaves()) == n_max

    def test_saddle_count_invariant(self):
        """A merge tree over one component has exactly leaves-1 merges
        (counting child multiplicity at saddles)."""
        rng = np.random.default_rng(11)
        f = rng.random((6, 6, 6))
        tree, _ = compute_merge_tree(f)
        merges = sum(len(tree.children(s)) - 1 for s in tree.saddles())
        assert merges == len(tree.leaves()) - 1

    def test_vertex_arc_values_dominate(self):
        """Each vertex's arc node has value >= the vertex (sweep order)."""
        rng = np.random.default_rng(12)
        f = rng.random((5, 5, 5))
        tree, arc = compute_merge_tree(f)
        flat = f.ravel()
        for v in range(flat.size):
            node = int(arc.ravel()[v])
            assert (tree.value[node], node) >= (flat[v], v)

    def test_id_map_relabels(self):
        f = np.random.default_rng(13).random((4, 4, 4))
        ids = (np.arange(64) + 1000).reshape(4, 4, 4)
        tree, arc = compute_merge_tree(f, id_map=ids)
        assert all(n >= 1000 for n in tree.value)
        assert arc.min() >= 1000

    def test_id_map_must_be_unique(self):
        f = np.zeros((2, 2, 2))
        with pytest.raises(ValueError):
            compute_merge_tree(f, id_map=np.zeros((2, 2, 2), dtype=int))

    def test_invariance_to_value_shift(self):
        """Merge tree structure is invariant under monotone shifts."""
        rng = np.random.default_rng(14)
        f = rng.random((5, 5, 4))
        t1, _ = compute_merge_tree(f)
        t2, _ = compute_merge_tree(f + 100.0)
        assert [sorted(t1.leaves()), sorted(t1.saddles())] == \
               [sorted(t2.leaves()), sorted(t2.saddles())]
        assert t1.arcs() == t2.arcs()

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_structure_valid_random_fields(self, seed):
        f = np.random.default_rng(seed).random((4, 5, 3))
        tree, arc = compute_merge_tree(f)
        tree.validate()
        assert len(tree.roots()) == 1  # grid is connected
        assert arc.shape == f.shape


class TestGraphReference:
    def test_path_graph_matches_1d_grid(self):
        f = np.array([5.0, 2.0, 1.0, 2.0, 4.0])
        grid_tree, _ = compute_merge_tree(f)
        values = {i: float(v) for i, v in enumerate(f)}
        edges = [(i, i + 1) for i in range(4)]
        graph_tree = compute_merge_tree_graph(values, edges)
        assert graph_tree.reduced().signature() == grid_tree.reduced().signature()

    def test_augmented_has_every_vertex(self):
        values = {0: 3.0, 1: 1.0, 2: 2.0}
        tree = compute_merge_tree_graph(values, [(0, 1), (1, 2)])
        assert sorted(tree.value) == [0, 1, 2]
        tree.validate()

    def test_disconnected_graph_two_roots(self):
        values = {0: 1.0, 1: 2.0, 2: 3.0, 3: 4.0}
        tree = compute_merge_tree_graph(values, [(0, 1), (2, 3)])
        assert len(tree.roots()) == 2

    def test_unknown_vertex_in_edge_raises(self):
        with pytest.raises(KeyError):
            compute_merge_tree_graph({0: 1.0}, [(0, 99)])

    def test_empty_graph_raises(self):
        with pytest.raises(ValueError):
            compute_merge_tree_graph({}, [])
