"""Tests for the parallel statistics analysis (moments, stages, engine)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.statistics import (
    MomentAccumulator,
    StatisticsEngine,
    assess,
    derive,
    learn,
    merge_accumulators,
    test_mean_zscore as mean_zscore_test,
)
from repro.vmpi import VirtualComm

finite_arrays = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2,
    max_size=200).map(lambda xs: np.array(xs))


def _reference_stats(x: np.ndarray) -> dict:
    n = x.size
    mean = x.mean()
    d = x - mean
    m2 = (d ** 2).mean()
    return {
        "mean": mean,
        "variance": (d ** 2).sum() / (n - 1),
        "skewness": (d ** 3).mean() / m2 ** 1.5 if m2 > 0 else 0.0,
        "kurtosis": (d ** 4).mean() / m2 ** 2 - 3.0 if m2 > 0 else 0.0,
    }


class TestMomentAccumulator:
    def test_from_data_matches_numpy(self):
        x = np.random.default_rng(0).normal(3.0, 2.0, size=1000)
        acc = MomentAccumulator.from_data(x)
        assert acc.n == 1000
        assert acc.mean == pytest.approx(x.mean())
        assert acc.minimum == x.min() and acc.maximum == x.max()
        assert acc.M2 == pytest.approx(((x - x.mean()) ** 2).sum(), rel=1e-10)

    def test_empty_chunk(self):
        acc = MomentAccumulator.from_data(np.array([]))
        assert acc.n == 0

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            MomentAccumulator.from_data(np.array([1.0, np.nan]))

    def test_streaming_update_matches_batch(self):
        x = np.random.default_rng(1).normal(size=200)
        acc = MomentAccumulator()
        for v in x:
            acc.update(float(v))
        batch = MomentAccumulator.from_data(x)
        assert acc.n == batch.n
        assert acc.mean == pytest.approx(batch.mean, rel=1e-12)
        assert acc.M2 == pytest.approx(batch.M2, rel=1e-9)
        assert acc.M3 == pytest.approx(batch.M3, rel=1e-6, abs=1e-8)
        assert acc.M4 == pytest.approx(batch.M4, rel=1e-8)

    def test_merge_matches_concatenation(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, 300)
        b = rng.normal(5, 3, 500)  # very different distribution
        merged = MomentAccumulator.from_data(a).merge(MomentAccumulator.from_data(b))
        direct = MomentAccumulator.from_data(np.concatenate([a, b]))
        assert merged.n == direct.n
        assert merged.mean == pytest.approx(direct.mean, rel=1e-12)
        assert merged.M2 == pytest.approx(direct.M2, rel=1e-10)
        assert merged.M3 == pytest.approx(direct.M3, rel=1e-8, abs=1e-6)
        assert merged.M4 == pytest.approx(direct.M4, rel=1e-10)
        assert merged.minimum == direct.minimum
        assert merged.maximum == direct.maximum

    def test_merge_with_empty_is_identity(self):
        a = MomentAccumulator.from_data(np.arange(10.0))
        empty = MomentAccumulator()
        for merged in (a.merge(empty), empty.merge(a)):
            assert merged.n == a.n
            assert merged.mean == a.mean
            assert merged.M4 == a.M4

    @given(finite_arrays, finite_arrays)
    @settings(max_examples=50, deadline=None)
    def test_property_merge_commutes(self, xs, ys):
        a = MomentAccumulator.from_data(xs)
        b = MomentAccumulator.from_data(ys)
        ab, ba = a.merge(b), b.merge(a)
        assert ab.n == ba.n
        assert ab.mean == pytest.approx(ba.mean, rel=1e-9, abs=1e-9)
        assert ab.M2 == pytest.approx(ba.M2, rel=1e-7, abs=1e-6)

    @given(st.lists(finite_arrays, min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_property_tree_merge_matches_concat(self, chunks):
        accs = [MomentAccumulator.from_data(c) for c in chunks]
        merged = merge_accumulators(accs)
        direct = MomentAccumulator.from_data(np.concatenate(chunks))
        assert merged.n == direct.n
        assert merged.mean == pytest.approx(direct.mean, rel=1e-9, abs=1e-9)
        scale = max(abs(direct.M2), 1.0)
        assert abs(merged.M2 - direct.M2) / scale < 1e-6

    def test_numerical_stability_large_offset(self):
        """The stable formulas survive data with a huge common offset."""
        rng = np.random.default_rng(3)
        x = rng.normal(0.0, 1.0, 10000) + 1e9
        halves = np.split(x, 2)
        merged = merge_accumulators([MomentAccumulator.from_data(h) for h in halves])
        stats = derive(merged)
        assert stats.variance == pytest.approx(1.0, rel=0.05)

    def test_pack_unpack_roundtrip(self):
        acc = MomentAccumulator.from_data(np.random.default_rng(4).random(50))
        again = MomentAccumulator.unpack(acc.pack())
        assert vars(again) == pytest.approx(vars(acc))

    def test_unpack_bad_shape(self):
        with pytest.raises(ValueError):
            MomentAccumulator.unpack(np.zeros(5))

    def test_wire_size_is_seven_doubles(self):
        """The hybrid deployment ships 56 bytes per (rank, variable)."""
        acc = MomentAccumulator.from_data(np.arange(4.0))
        assert acc.pack().nbytes == 56

    def test_merge_empty_list_raises(self):
        with pytest.raises(ValueError):
            merge_accumulators([])


class TestStages:
    def test_derive_matches_reference(self):
        x = np.random.default_rng(5).gamma(2.0, 3.0, 5000)
        stats = derive(learn(x))
        ref = _reference_stats(x)
        assert stats.mean == pytest.approx(ref["mean"])
        assert stats.variance == pytest.approx(ref["variance"], rel=1e-9)
        assert stats.skewness == pytest.approx(ref["skewness"], rel=1e-9)
        assert stats.kurtosis == pytest.approx(ref["kurtosis"], rel=1e-9)
        assert stats.std == pytest.approx(math.sqrt(ref["variance"]))

    def test_derive_constant_data(self):
        stats = derive(learn(np.full(100, 7.0)))
        assert stats.variance == pytest.approx(0.0, abs=1e-20)
        assert stats.skewness == 0.0 and stats.kurtosis == 0.0

    def test_derive_empty_raises(self):
        with pytest.raises(ValueError):
            derive(MomentAccumulator())

    def test_derive_single_observation(self):
        stats = derive(learn(np.array([2.5])))
        assert stats.n == 1 and stats.variance == 0.0

    def test_gaussian_shape_parameters(self):
        x = np.random.default_rng(6).normal(size=200_000)
        stats = derive(learn(x))
        assert stats.skewness == pytest.approx(0.0, abs=0.05)
        assert stats.kurtosis == pytest.approx(0.0, abs=0.1)

    def test_assess_zscores(self):
        x = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        stats = derive(learn(x))
        z = assess(x, stats)
        assert z[2] == pytest.approx(0.0)  # the mean scores zero
        assert z[-1] > 0 and z[0] < 0
        np.testing.assert_allclose(z * stats.std + stats.mean, x)

    def test_assess_constant_model(self):
        stats = derive(learn(np.full(10, 3.0)))
        z = assess(np.array([1.0, 5.0]), stats)
        np.testing.assert_array_equal(z, 0.0)

    def test_test_statistic_detects_shift(self):
        x = np.random.default_rng(7).normal(1.0, 1.0, 10000)
        stats = derive(learn(x))
        z_true = mean_zscore_test(stats, 1.0)
        z_wrong = mean_zscore_test(stats, 0.0)
        assert abs(z_true) < 4.0
        assert abs(z_wrong) > 50.0

    def test_test_requires_variance(self):
        with pytest.raises(ValueError):
            mean_zscore_test(derive(learn(np.full(10, 1.0))), 0.0)


class TestStatisticsEngine:
    def _blocks(self, n_ranks=8, n=500, seed=8):
        rng = np.random.default_rng(seed)
        return [{"T": rng.normal(2.0, 0.7, n), "H2": rng.random(n)}
                for _ in range(n_ranks)]

    def test_insitu_and_hybrid_agree(self):
        """The paper's two deployments must produce the same statistics."""
        blocks = self._blocks()
        engine = StatisticsEngine(VirtualComm(8))
        insitu = engine.run_insitu(blocks)
        hybrid = engine.run_hybrid(blocks)
        for var in ("T", "H2"):
            a, b = insitu.statistics[var], hybrid.statistics[var]
            assert a.n == b.n
            assert a.mean == pytest.approx(b.mean, rel=1e-12)
            assert a.variance == pytest.approx(b.variance, rel=1e-10)
            assert a.skewness == pytest.approx(b.skewness, rel=1e-8)
            assert a.kurtosis == pytest.approx(b.kurtosis, rel=1e-8)

    def test_both_match_serial_reference(self):
        blocks = self._blocks(n_ranks=4)
        engine = StatisticsEngine(VirtualComm(4))
        hybrid = engine.run_hybrid(blocks)
        all_t = np.concatenate([b["T"] for b in blocks])
        ref = _reference_stats(all_t)
        assert hybrid.statistics["T"].mean == pytest.approx(ref["mean"])
        assert hybrid.statistics["T"].variance == pytest.approx(ref["variance"], rel=1e-9)

    def test_insitu_model_consistent_across_ranks(self):
        """The all-to-all guarantees every rank holds the same model."""
        engine = StatisticsEngine(VirtualComm(6))
        result = engine.run_insitu(self._blocks(n_ranks=6))
        base = result.per_rank_models[0]["T"]
        for rank_model in result.per_rank_models[1:]:
            assert rank_model["T"].mean == base.mean
            assert rank_model["T"].variance == base.variance

    def test_insitu_uses_collective_communication(self):
        comm = VirtualComm(4)
        engine = StatisticsEngine(comm)
        engine.run_insitu(self._blocks(n_ranks=4))
        assert comm.tracker.count("allreduce") == 2  # one per variable
        assert engine.run_insitu(self._blocks(n_ranks=4)).comm_time > 0

    def test_hybrid_wire_size(self):
        """Hybrid moves 56 B x n_vars per rank — orders of magnitude less
        than the raw blocks (Table II's 13.3 MB vs 98.5 GB at scale)."""
        blocks = self._blocks(n_ranks=8, n=10_000)
        engine = StatisticsEngine(VirtualComm(8))
        hybrid = engine.run_hybrid(blocks)
        raw = sum(b["T"].nbytes + b["H2"].nbytes for b in blocks)
        assert hybrid.partials_nbytes == 8 * 2 * 56
        assert hybrid.partials_nbytes < raw / 100
        assert hybrid.n_partials == 8

    def test_wrong_rank_count_raises(self):
        engine = StatisticsEngine(VirtualComm(4))
        with pytest.raises(ValueError):
            engine.run_hybrid(self._blocks(n_ranks=3))

    def test_intransit_derive_validates_packet(self):
        engine = StatisticsEngine(VirtualComm(2))
        with pytest.raises(ValueError):
            engine.intransit_derive([np.zeros(3)], ["T"])

    def test_learn_only_stage_communicates(self):
        """Fig. 4's claim: learn (merge) is the only communicating stage.
        The hybrid path performs no collective at all — partials move
        point-to-point through staging."""
        comm = VirtualComm(4)
        engine = StatisticsEngine(comm)
        engine.run_hybrid(self._blocks(n_ranks=4))
        assert comm.tracker.records == []
