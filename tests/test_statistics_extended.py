"""Tests for multivariate (covariance) and contingency statistics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats as scipy_stats

from repro.analysis.statistics.contingency import (
    ContingencyTable,
    global_edges,
)
from repro.analysis.statistics.multivariate import (
    CovarianceAccumulator,
    merge_covariances,
)
from repro.vmpi import BlockDecomposition3D


class TestCovarianceAccumulator:
    def _data(self, n=500, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=n)
        return {"x": x, "y": 0.7 * x + 0.3 * rng.normal(size=n),
                "z": rng.normal(size=n)}

    def test_matches_numpy_cov(self):
        cols = self._data()
        acc, names = CovarianceAccumulator.from_data(cols)
        X = np.stack([cols[k] for k in names], axis=1)
        np.testing.assert_allclose(acc.covariance(), np.cov(X.T), rtol=1e-10)

    def test_correlation_matches_numpy(self):
        cols = self._data()
        acc, names = CovarianceAccumulator.from_data(cols)
        X = np.stack([cols[k] for k in names], axis=1)
        np.testing.assert_allclose(acc.correlation(), np.corrcoef(X.T),
                                   rtol=1e-9, atol=1e-12)

    def test_merge_matches_concatenation(self):
        a = self._data(300, seed=1)
        b = {k: v + 2.0 for k, v in self._data(200, seed=2).items()}
        acc_a, names = CovarianceAccumulator.from_data(a)
        acc_b, _ = CovarianceAccumulator.from_data(b)
        merged = acc_a.merge(acc_b)
        whole, _ = CovarianceAccumulator.from_data(
            {k: np.concatenate([a[k], b[k]]) for k in names})
        np.testing.assert_allclose(merged.covariance(), whole.covariance(),
                                   rtol=1e-9)
        np.testing.assert_allclose(merged.mean, whole.mean, rtol=1e-12)

    def test_merge_with_empty(self):
        acc, _ = CovarianceAccumulator.from_data(self._data(50))
        empty = CovarianceAccumulator(d=3)
        for m in (acc.merge(empty), empty.merge(acc)):
            assert m.n == acc.n
            np.testing.assert_array_equal(m.mean, acc.mean)

    def test_block_decomposed_merge(self):
        """Per-rank accumulators over a 3-D decomposition merge exactly."""
        rng = np.random.default_rng(3)
        t = rng.random((8, 6, 4))
        oh = 0.5 * t + 0.1 * rng.random((8, 6, 4))
        decomp = BlockDecomposition3D((8, 6, 4), (2, 2, 1))
        accs = []
        for b in decomp.blocks():
            acc, _ = CovarianceAccumulator.from_data(
                {"T": t[b.slices].ravel(), "OH": oh[b.slices].ravel()})
            accs.append(acc)
        merged = merge_covariances(accs)
        whole, _ = CovarianceAccumulator.from_data(
            {"T": t.ravel(), "OH": oh.ravel()})
        np.testing.assert_allclose(merged.covariance(), whole.covariance(),
                                   rtol=1e-9)

    def test_pack_unpack_roundtrip(self):
        acc, _ = CovarianceAccumulator.from_data(self._data(100))
        again = CovarianceAccumulator.unpack(acc.pack(), d=3)
        assert again.n == acc.n
        np.testing.assert_allclose(again.comoment, acc.comoment)
        np.testing.assert_allclose(again.covariance(), acc.covariance())

    def test_wire_size(self):
        """d=3: 1 + 3 + 6 = 10 doubles = 80 bytes per rank."""
        acc, _ = CovarianceAccumulator.from_data(self._data(10))
        assert acc.pack().nbytes == 80

    def test_matrix_input(self):
        X = np.random.default_rng(4).random((50, 4))
        acc, names = CovarianceAccumulator.from_data(X)
        assert names == ["v0", "v1", "v2", "v3"]
        np.testing.assert_allclose(acc.covariance(), np.cov(X.T), rtol=1e-10)

    def test_validation(self):
        with pytest.raises(ValueError):
            CovarianceAccumulator(d=0)
        with pytest.raises(ValueError):
            CovarianceAccumulator.from_data({"a": np.zeros(3), "b": np.zeros(4)})
        with pytest.raises(ValueError):
            CovarianceAccumulator.from_data(np.zeros((2, 2, 2)))
        with pytest.raises(ValueError):
            CovarianceAccumulator.from_data({"a": np.array([1.0, np.nan])})
        acc, _ = CovarianceAccumulator.from_data({"a": np.array([1.0])})
        with pytest.raises(ValueError):
            acc.covariance()
        with pytest.raises(ValueError):
            CovarianceAccumulator.unpack(np.zeros(5), d=3)
        with pytest.raises(ValueError):
            merge_covariances([])

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_property_merge_order_invariant(self, seed):
        rng = np.random.default_rng(seed)
        chunks = [rng.normal(size=(rng.integers(2, 30), 2)) for _ in range(4)]
        accs = [CovarianceAccumulator.from_data(c)[0] for c in chunks]
        forward = merge_covariances(accs)
        backward = merge_covariances(accs[::-1])
        np.testing.assert_allclose(forward.covariance(), backward.covariance(),
                                   rtol=1e-8, atol=1e-10)


class TestContingency:
    def _correlated_fields(self, n=4000, seed=5):
        rng = np.random.default_rng(seed)
        x = rng.random(n)
        y = np.where(rng.random(n) < 0.8, x, rng.random(n))  # dependent
        return x, y

    def test_counts_match_histogram2d(self):
        x, y = self._correlated_fields()
        xe = global_edges(x, 8)
        ye = global_edges(y, 8)
        table = ContingencyTable.from_data(x, y, xe, ye)
        ref, _, _ = np.histogram2d(x, y, bins=[xe, ye])
        # histogram2d treats the last edge as closed; our clamping agrees
        np.testing.assert_array_equal(table.counts, ref.astype(np.int64))
        assert table.n == x.size

    def test_merge_is_addition(self):
        x, y = self._correlated_fields()
        xe, ye = global_edges(x, 6), global_edges(y, 6)
        half = x.size // 2
        a = ContingencyTable.from_data(x[:half], y[:half], xe, ye)
        b = ContingencyTable.from_data(x[half:], y[half:], xe, ye)
        whole = ContingencyTable.from_data(x, y, xe, ye)
        np.testing.assert_array_equal(a.merge(b).counts, whole.counts)

    def test_chi2_matches_scipy(self):
        x, y = self._correlated_fields()
        xe, ye = global_edges(x, 5), global_edges(y, 5)
        table = ContingencyTable.from_data(x, y, xe, ye)
        stats = table.derive()
        chi2, p, dof, _ = scipy_stats.chi2_contingency(table.counts)
        assert stats.chi2 == pytest.approx(chi2)
        assert stats.p_value == pytest.approx(p)
        assert stats.dof == dof

    def test_dependence_detected(self):
        x, y = self._correlated_fields()
        xe, ye = global_edges(x, 6), global_edges(y, 6)
        stats = ContingencyTable.from_data(x, y, xe, ye).derive()
        assert not stats.independent_at_5pct
        assert stats.cramers_v > 0.3
        assert stats.mutual_information > 0.1

    def test_independence_accepted(self):
        rng = np.random.default_rng(6)
        x, y = rng.random(5000), rng.random(5000)
        xe, ye = global_edges(x, 5), global_edges(y, 5)
        stats = ContingencyTable.from_data(x, y, xe, ye).derive()
        assert stats.p_value > 0.001
        assert stats.mutual_information < 0.05

    def test_assess_pmi_sign_structure(self):
        x, y = self._correlated_fields()
        xe, ye = global_edges(x, 6), global_edges(y, 6)
        table = ContingencyTable.from_data(x, y, xe, ye)
        # on-diagonal pairs (x ~ y) over-represented: positive PMI
        pmi_diag = table.assess_pmi(np.array([0.1, 0.9]), np.array([0.1, 0.9]))
        pmi_off = table.assess_pmi(np.array([0.1, 0.9]), np.array([0.9, 0.1]))
        assert pmi_diag.mean() > pmi_off.mean()

    def test_decomposed_learn_matches_global(self):
        rng = np.random.default_rng(7)
        t = rng.random((8, 6, 4))
        oh = t + 0.1 * rng.random((8, 6, 4))
        xe, ye = global_edges(t, 5), global_edges(oh, 5)
        decomp = BlockDecomposition3D((8, 6, 4), (2, 1, 2))
        tables = [ContingencyTable.from_data(t[b.slices], oh[b.slices], xe, ye)
                  for b in decomp.blocks()]
        merged = tables[0]
        for tb in tables[1:]:
            merged = merged.merge(tb)
        whole = ContingencyTable.from_data(t, oh, xe, ye)
        np.testing.assert_array_equal(merged.counts, whole.counts)

    def test_degenerate_table(self):
        """Single occupied row: no evidence, independence by convention."""
        x = np.zeros(100)
        y = np.random.default_rng(8).random(100)
        table = ContingencyTable.from_data(x, y, np.linspace(0, 1, 4),
                                           np.linspace(0, 1, 4))
        stats = table.derive()
        assert stats.chi2 == 0.0 and stats.p_value == 1.0
        assert stats.cramers_v == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ContingencyTable.empty(np.array([1.0]), np.array([0.0, 1.0]))
        with pytest.raises(ValueError):
            ContingencyTable.empty(np.array([1.0, 0.0]), np.array([0.0, 1.0]))
        with pytest.raises(ValueError):
            ContingencyTable.from_data(np.zeros(3), np.zeros(4),
                                       np.array([0, 1.0]), np.array([0, 1.0]))
        t = ContingencyTable.empty(np.array([0, 1.0]), np.array([0, 1.0]))
        with pytest.raises(ValueError):
            t.derive()
        with pytest.raises(ValueError):
            t.assess_pmi(np.zeros(2), np.zeros(2))
        other = ContingencyTable.empty(np.array([0, 0.5, 1.0]),
                                       np.array([0, 1.0]))
        with pytest.raises(ValueError):
            t.merge(other)
        with pytest.raises(ValueError):
            global_edges(np.zeros(3), 0)

    def test_constant_variable_edges(self):
        edges = global_edges(np.full(10, 2.0), 4)
        assert edges[0] == 2.0 and edges[-1] == 3.0
