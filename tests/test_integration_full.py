"""Whole-system integration tests: everything on at once + determinism."""

import numpy as np
import pytest

from repro.core import HybridFramework
from repro.core.report import run_report
from repro.core.steering import refine_cadence_on_topology
from repro.sim import LiftedFlameCase, StructuredGrid3D
from repro.vmpi import BlockDecomposition3D

SHAPE = (12, 10, 8)


def build(seed=77, streaming=False, steering=()):
    grid = StructuredGrid3D(SHAPE, (1.5, 1.2, 1.0))
    case = LiftedFlameCase(grid, seed=seed, kernel_rate=1.5)
    decomp = BlockDecomposition3D(SHAPE, (2, 2, 1))
    return HybridFramework(
        case, decomp,
        analyses=("statistics", "topology", "visualization",
                  "visualization_insitu", "autocorrelation", "correlation"),
        stats_variables=("T", "H2"),
        n_buckets=3, keep_fields=True,
        streaming_topology=streaming,
        autocorrelation_max_lag=2,
        steering=steering,
    )


@pytest.fixture(scope="module")
def everything_run():
    fw = build()
    return fw, fw.run(4)


class TestEverythingOn:
    def test_all_products_present(self, everything_run):
        _fw, res = everything_run
        assert set(res.statistics) == {0, 1, 2, 3}
        assert set(res.merge_trees) == {0, 1, 2, 3}
        assert set(res.hybrid_images) == {0, 1, 2, 3}
        assert set(res.insitu_images) == {0, 1, 2, 3}
        assert set(res.correlations) == {0, 1, 2, 3}
        assert set(res.autocorrelation) == {1, 2}

    def test_task_accounting_consistent(self, everything_run):
        _fw, res = everything_run
        # 4 steps x (stats + topo + viz + corr) + 1 autocorrelation
        assert len(res.task_results) == 4 * 4 + 1
        assert res.bytes_moved == sum(t.bytes_pulled for t in res.task_results)

    def test_cross_analysis_consistency(self, everything_run):
        """Independently computed products agree with each other."""
        _fw, res = everything_run
        for step in range(4):
            field = res.temperature_fields[step]
            stats = res.statistics[step]["T"]
            tree = res.merge_trees[step]
            # statistics' max is the merge tree's highest leaf value
            top_leaf = max(tree.reduced().leaves(),
                           key=lambda n: tree.value[n])
            assert tree.value[top_leaf] == pytest.approx(float(field.max()))
            assert stats.maximum == pytest.approx(float(field.max()))

    def test_report_renders(self, everything_run):
        fw, res = everything_run
        text = run_report(fw, res)
        for token in ("statistics", "topology", "visualization",
                      "correlation", "autocorrelation"):
            assert token in text


class TestDeterminism:
    def test_identical_runs_bitwise_equal(self):
        a = build(seed=88).run(3)
        b = build(seed=88).run(3)
        for step in range(3):
            np.testing.assert_array_equal(a.temperature_fields[step],
                                          b.temperature_fields[step])
            np.testing.assert_array_equal(a.hybrid_images[step],
                                          b.hybrid_images[step])
            assert a.merge_trees[step].signature() == \
                b.merge_trees[step].signature()
            assert a.statistics[step]["T"].mean == b.statistics[step]["T"].mean
        assert a.autocorrelation == b.autocorrelation
        assert a.bytes_moved == b.bytes_moved

    def test_different_seeds_differ(self):
        a = build(seed=88).run(3)
        b = build(seed=89).run(3)
        assert not np.array_equal(a.temperature_fields[2],
                                  b.temperature_fields[2])

    def test_streaming_mode_same_science(self):
        """Streaming changes scheduling, never results."""
        a = build(seed=90, streaming=False).run(3)
        b = build(seed=90, streaming=True).run(3)
        for step in range(3):
            assert a.merge_trees[step].reduced().signature() == \
                b.merge_trees[step].reduced().signature()
            np.testing.assert_array_equal(a.temperature_fields[step],
                                          b.temperature_fields[step])

    def test_steering_only_changes_cadence(self):
        """With rules attached but never firing, results are identical to
        the unsteered run."""
        never = refine_cadence_on_topology(n_maxima=10**6, new_interval=1)
        a = build(seed=91).run(3)
        b = build(seed=91, steering=(never,)).run(3)
        assert never.firings == 0
        for step in range(3):
            np.testing.assert_array_equal(a.temperature_fields[step],
                                          b.temperature_fields[step])
