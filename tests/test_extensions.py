"""Tests for the §VI future-work extensions, implemented:

* hybrid auto-correlative statistics,
* feature-based statistics (merge tree x moments),
* streaming in-transit processing.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.feature_stats import (
    derive_feature_statistics,
    feature_statistics_hybrid,
    learn_feature_partials,
    merge_feature_partials,
)
from repro.analysis.statistics.autocorrelation import (
    AutocorrelationLearner,
    LagAccumulator,
    derive_autocorrelation,
    reference_autocorrelation,
)
from repro.analysis.topology import segment_superlevel
from repro.core import HybridFramework
from repro.sim import LiftedFlameCase, StructuredGrid3D
from repro.vmpi import BlockDecomposition3D


class TestLagAccumulator:
    def test_correlation_of_identical_series_is_one(self):
        x = np.random.default_rng(0).random(100)
        acc = LagAccumulator()
        acc.accumulate(x, x)
        assert acc.correlation() == pytest.approx(1.0)

    def test_correlation_of_anticorrelated(self):
        x = np.random.default_rng(1).normal(size=1000)
        acc = LagAccumulator()
        acc.accumulate(x, -x)
        assert acc.correlation() == pytest.approx(-1.0)

    def test_correlation_matches_numpy(self):
        rng = np.random.default_rng(2)
        x, y = rng.normal(size=500), rng.normal(size=500)
        y = 0.6 * x + 0.8 * y
        acc = LagAccumulator()
        acc.accumulate(x, y)
        ref = np.corrcoef(x, y)[0, 1]
        assert acc.correlation() == pytest.approx(ref, rel=1e-9)

    def test_merge_matches_concatenation(self):
        rng = np.random.default_rng(3)
        xa, ya = rng.normal(size=300), rng.normal(size=300)
        xb, yb = rng.normal(size=200) + 2, rng.normal(size=200)
        a, b, whole = LagAccumulator(), LagAccumulator(), LagAccumulator()
        a.accumulate(xa, ya)
        b.accumulate(xb, yb)
        whole.accumulate(np.concatenate([xa, xb]), np.concatenate([ya, yb]))
        merged = a.merge(b)
        assert merged.correlation() == pytest.approx(whole.correlation(), rel=1e-9)

    def test_constant_series_zero(self):
        acc = LagAccumulator()
        acc.accumulate(np.ones(10), np.ones(10))
        assert acc.correlation() == 0.0

    def test_too_few_samples_raises(self):
        acc = LagAccumulator()
        acc.accumulate(np.array([1.0]), np.array([2.0]))
        with pytest.raises(ValueError):
            acc.correlation()

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            LagAccumulator().accumulate(np.zeros(3), np.zeros(4))

    def test_pack_unpack(self):
        acc = LagAccumulator()
        acc.accumulate(np.arange(5.0), np.arange(5.0)[::-1])
        again = LagAccumulator.unpack(acc.pack())
        assert vars(again) == pytest.approx(vars(acc))
        with pytest.raises(ValueError):
            LagAccumulator.unpack(np.zeros(4))


class TestAutocorrelationLearner:
    def _series(self, n_steps=12, shape=(6, 5, 4), rho=0.8, seed=4):
        """AR(1)-in-time field series with known autocorrelation."""
        rng = np.random.default_rng(seed)
        out = [rng.normal(size=shape)]
        for _ in range(n_steps - 1):
            out.append(rho * out[-1] + np.sqrt(1 - rho**2) * rng.normal(size=shape))
        return np.stack(out)

    def test_streaming_matches_batch_reference(self):
        series = self._series()
        learner = AutocorrelationLearner(max_lag=3)
        for step in series:
            learner.observe(step)
        derived = derive_autocorrelation([learner.pack()], max_lag=3)
        ref = reference_autocorrelation(series, max_lag=3)
        for k in (1, 2, 3):
            assert derived[k] == pytest.approx(ref[k], rel=1e-9)

    def test_ar1_decay_shape(self):
        """rho(k) ~ rho^k for an AR(1) process."""
        series = self._series(n_steps=60, rho=0.8, seed=5)
        learner = AutocorrelationLearner(max_lag=3)
        for step in series:
            learner.observe(step)
        rho = derive_autocorrelation([learner.pack()], max_lag=3)
        assert rho[1] == pytest.approx(0.8, abs=0.1)
        assert rho[1] > rho[2] > rho[3] > 0

    def test_distributed_merge_matches_single_learner(self):
        """Per-rank learners over blocks == one learner over the domain."""
        series = self._series(shape=(8, 6, 4))
        decomp = BlockDecomposition3D((8, 6, 4), (2, 1, 2))
        rank_learners = [AutocorrelationLearner(2) for _ in range(decomp.n_ranks)]
        whole = AutocorrelationLearner(2)
        for step in series:
            whole.observe(step)
            for learner, b in zip(rank_learners, decomp.blocks()):
                learner.observe(step[b.slices])
        merged = derive_autocorrelation([l.pack() for l in rank_learners], 2)
        single = derive_autocorrelation([whole.pack()], 2)
        for k in (1, 2):
            assert merged[k] == pytest.approx(single[k], rel=1e-9)

    def test_ring_buffer_bounded(self):
        """In-situ scratch stays at max_lag blocks (§III memory constraint)."""
        learner = AutocorrelationLearner(max_lag=3)
        block = np.zeros((10, 10, 10))
        for _ in range(20):
            learner.observe(block)
        assert learner.buffer_bytes == 3 * block.nbytes

    def test_insufficient_steps_yield_no_lags(self):
        learner = AutocorrelationLearner(max_lag=2)
        learner.observe(np.random.default_rng(1).random((3, 3, 3)))
        derived = derive_autocorrelation([learner.pack()], 2)
        assert derived == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            AutocorrelationLearner(0)
        with pytest.raises(ValueError):
            derive_autocorrelation([], 2)
        with pytest.raises(ValueError):
            derive_autocorrelation([np.zeros(5)], 2)


class TestFeatureStatistics:
    def _setup(self):
        x, y, z = np.mgrid[0:16, 0:12, 0:8].astype(float)
        f = (np.exp(-((x - 4) ** 2 + (y - 4) ** 2 + (z - 4) ** 2) / 6.0)
             + 0.9 * np.exp(-((x - 12) ** 2 + (y - 8) ** 2 + (z - 4) ** 2) / 6.0))
        other = 2.0 * f + 1.0
        seg = segment_superlevel(f, 0.3)
        return f, other, seg

    def test_per_feature_stats_match_masked_numpy(self):
        f, other, seg = self._setup()
        decomp = BlockDecomposition3D(f.shape, (2, 2, 1))
        stats = feature_statistics_hybrid(seg, {"f": f, "g": other}, decomp)
        assert set(stats) == set(seg.features)
        for fid, fs in stats.items():
            mask = seg.labels == fid
            assert fs.n_cells == int(mask.sum())
            assert fs.statistics["f"].mean == pytest.approx(f[mask].mean())
            assert fs.statistics["f"].maximum == pytest.approx(f[mask].max())
            assert fs.statistics["g"].mean == pytest.approx(other[mask].mean())

    def test_feature_spanning_blocks_reassembles(self):
        """A feature cut by the decomposition yields partials on several
        ranks that merge to the exact global statistics."""
        f, other, seg = self._setup()
        # cut right through the first blob
        decomp = BlockDecomposition3D(f.shape, (4, 1, 1))
        partials = []
        spanning = 0
        for b in decomp.blocks():
            p = learn_feature_partials(seg.labels[b.slices], {"f": f[b.slices]})
            partials.append(p)
        counts = {}
        for p in partials:
            for fid in p:
                counts[fid] = counts.get(fid, 0) + 1
        assert max(counts.values()) >= 2, "expected a block-spanning feature"
        merged = merge_feature_partials(partials)
        derived = derive_feature_statistics(merged)
        for fid in seg.features:
            mask = seg.labels == fid
            assert derived[fid].statistics["f"].variance == pytest.approx(
                f[mask].var(ddof=1) if mask.sum() > 1 else 0.0, rel=1e-9)

    def test_background_excluded(self):
        f, _other, seg = self._setup()
        p = learn_feature_partials(seg.labels, {"f": f})
        total = sum(acc["f"].n for acc in p.values())
        assert total == int((seg.labels >= 0).sum())

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            learn_feature_partials(np.zeros((2, 2, 2), dtype=int),
                                   {"f": np.zeros((3, 3, 3))})

    def test_empty_labels_give_empty_partials(self):
        p = learn_feature_partials(np.full((2, 2, 2), -1),
                                   {"f": np.zeros((2, 2, 2))})
        assert p == {}


class TestStreamingInTransit:
    def _framework(self, streaming):
        grid = StructuredGrid3D((10, 8, 6))
        case = LiftedFlameCase(grid, seed=33, kernel_rate=1.0)
        decomp = BlockDecomposition3D((10, 8, 6), (2, 2, 1))
        return HybridFramework(case, decomp, analyses=("topology",),
                               n_buckets=2, streaming_topology=streaming)

    def test_streaming_tree_equals_buffered_tree(self):
        """§VI streaming glue produces the identical global merge tree."""
        buffered = self._framework(False).run(3)
        streaming = self._framework(True).run(3)
        for step in (0, 1, 2):
            assert streaming.merge_trees[step].reduced().signature() == \
                buffered.merge_trees[step].reduced().signature()

    def test_stream_and_compute_mutually_exclusive(self):
        from repro.staging.descriptors import TaskDescriptor
        with pytest.raises(ValueError):
            TaskDescriptor(task_id="t", analysis="a", timestep=0, data=[],
                           compute=lambda p: p,
                           stream_compute=lambda s, p: p)

    def test_streaming_overlaps_compute_with_pulls(self):
        """On the DES, a streaming task with per-payload compute finishes
        earlier than the equivalent buffered task because compute overlaps
        the remaining transfers."""
        import numpy as np
        from repro.costmodel import CostModel
        from repro.des import Engine
        from repro.staging import DataSpaces
        from repro.transport import DartTransport

        def run(mode):
            eng = Engine()
            tr = DartTransport(eng)
            # compute charged per payload: 10 ms; pulls: ~10.7 ms each
            # (64 MB at 6 GB/s) — comparable, so overlap nearly halves
            # the task time
            model = CostModel("m", {"buffered.op": 0.010})
            ds = DataSpaces(eng, tr, cost_model=model)
            ds.spawn_buckets(["b0"])
            descs = [tr.register(f"sim-{i}", None, nbytes=64 * 2**20)
                     for i in range(10)]
            if mode == "stream":
                ds.submit_grouped_result(
                    "x", 0, descs,
                    stream_compute=lambda s, p: s,
                    stream_cost_per_payload=0.010)
            else:
                ds.submit_grouped_result("x", 0, descs,
                                         cost_op="buffered.op",
                                         cost_elements=10)
            ds.shutdown_buckets()
            eng.run()
            return ds.all_results()[0].finish_time

        # the streaming variant prefetches the next pull while computing,
        # finishing in ~max(total pull, total compute) instead of the sum
        t_stream = run("stream")
        t_buffered = run("buffered")
        assert t_stream < t_buffered * 0.75

    def test_framework_autocorrelation_integration(self):
        grid = StructuredGrid3D((10, 8, 6))
        # kernel_rate=0: smooth deterministic evolution, so consecutive
        # fields are strongly correlated (stochastic ignition kernels on a
        # tiny domain would dominate the step-to-step variance instead)
        case = LiftedFlameCase(grid, seed=34, kernel_rate=0.0)
        decomp = BlockDecomposition3D((10, 8, 6), (2, 1, 1))
        fw = HybridFramework(case, decomp, analyses=("autocorrelation",),
                             autocorrelation_max_lag=2, n_buckets=2)
        result = fw.run(6)
        assert set(result.autocorrelation) == {1, 2}
        # temperature evolves smoothly: strong positive lag-1 correlation
        assert result.autocorrelation[1] > 0.9
        assert result.autocorrelation[1] >= result.autocorrelation[2]

    def test_framework_autocorrelation_matches_reference(self):
        grid = StructuredGrid3D((8, 6, 6))
        case_a = LiftedFlameCase(grid, seed=35, kernel_rate=1.0)
        case_b = LiftedFlameCase(grid, seed=35, kernel_rate=1.0)
        decomp = BlockDecomposition3D((8, 6, 6), (2, 1, 1))
        fw = HybridFramework(case_a, decomp, analyses=("autocorrelation",),
                             autocorrelation_max_lag=2, n_buckets=1)
        result = fw.run(5)

        from repro.sim import S3DProxy
        solver = S3DProxy(case_b)
        series = []
        for _ in range(5):
            solver.step()
            series.append(solver.fields["T"].copy())
        ref = reference_autocorrelation(np.stack(series), 2)
        for k in (1, 2):
            assert result.autocorrelation[k] == pytest.approx(ref[k], rel=1e-9)


class TestCorrelationAnalysis:
    """The multivariate-statistics analysis wired into the framework."""

    def _run(self):
        grid = StructuredGrid3D((10, 8, 6))
        case = LiftedFlameCase(grid, seed=55, kernel_rate=1.0)
        decomp = BlockDecomposition3D((10, 8, 6), (2, 1, 1))
        fw = HybridFramework(case, decomp, analyses=("correlation",),
                             stats_variables=("T", "H2", "H2O"),
                             n_buckets=2, keep_fields=True)
        return fw, fw.run(3)

    def test_correlation_matrix_per_step(self):
        _fw, res = self._run()
        assert set(res.correlations) == {0, 1, 2}
        for m in res.correlations.values():
            assert m.shape == (3, 3)
            np.testing.assert_allclose(np.diag(m), 1.0)
            np.testing.assert_allclose(m, m.T, atol=1e-12)
            assert np.all(np.abs(m) <= 1.0 + 1e-12)

    def test_matches_direct_numpy_corrcoef(self):
        fw, res = self._run()
        for step, field in res.temperature_fields.items():
            h2 = fw._gather("H2")
            # recompute reference at the final state only (fields mutate);
            # use the framework gather for the last analysed step
            if step == max(res.temperature_fields):
                ref = np.corrcoef(np.stack([
                    field.ravel(), h2.ravel(), fw._gather("H2O").ravel()]))
                np.testing.assert_allclose(res.correlations[step], ref,
                                           rtol=1e-9, atol=1e-12)

    def test_physics_signature(self):
        """Product tracks fuel availability: H2O forms where H2 burns, so
        the two correlate strongly in the jet (deterministic seeds)."""
        _fw, res = self._run()
        last = res.correlations[max(res.correlations)]
        h2_h2o = last[1, 2]
        assert h2_h2o > 0.5
