"""Tests for the full-scale experiment replay: configs, breakdowns, schedule."""

import pytest

from repro.core import (
    AnalyticsVariant,
    ExperimentConfig,
    ScaledExperiment,
    ScaledWorkload,
)
from repro.core.workload import HYBRID_VARIANTS
from repro.util.units import GB, MB


class TestExperimentConfig:
    def test_paper_4896_allocation(self):
        """Table I column 1: 16x28x10 sim + 160 service + 256 in-transit."""
        cfg = ExperimentConfig.paper_4896()
        assert cfg.n_sim_cores == 4480
        assert cfg.n_cores == 4896

    def test_paper_9440_allocation(self):
        cfg = ExperimentConfig.paper_9440()
        assert cfg.n_sim_cores == 8960
        assert cfg.n_cores == 9440

    def test_block_shapes_match_table1(self):
        assert ExperimentConfig.paper_4896().workload().block_shape == (100, 49, 43)
        assert ExperimentConfig.paper_9440().workload().block_shape == (50, 49, 43)


class TestScaledWorkload:
    def setup_method(self):
        self.w = ExperimentConfig.paper_4896().workload()

    def test_checkpoint_size_matches_table1(self):
        assert self.w.checkpoint_bytes / GB == pytest.approx(98.5, rel=0.01)

    def test_downsample_cells(self):
        # ceil(100/8) x ceil(49/8) x ceil(43/8) = 13 x 7 x 6
        assert self.w.downsampled_block_cells == 13 * 7 * 6

    def test_hybrid_viz_movement_order_of_magnitude(self):
        """Paper: 49.19 MB; our per-block strided model gives ~39 MB — same
        order, ~2000x below the 98.5 GB raw data."""
        moved = self.w.movement_bytes_total(AnalyticsVariant.VIS_HYBRID)
        assert 20 * MB < moved < 80 * MB
        assert moved < self.w.checkpoint_bytes / 1000

    def test_topology_movement_near_paper(self):
        """Paper: 87.02 MB of subtree data."""
        moved = self.w.movement_bytes_total(AnalyticsVariant.TOPO_HYBRID)
        assert moved / MB == pytest.approx(87.02, rel=0.05)

    def test_stats_movement_near_paper(self):
        """Paper: 13.30 MB of partial models."""
        moved = self.w.movement_bytes_total(AnalyticsVariant.STATS_HYBRID)
        assert moved / MB == pytest.approx(13.30, rel=0.05)

    def test_insitu_variants_move_nothing(self):
        assert self.w.movement_bytes_total(AnalyticsVariant.VIS_INSITU) == 0
        assert self.w.movement_bytes_total(AnalyticsVariant.STATS_INSITU) == 0
        assert self.w.intransit_op(AnalyticsVariant.VIS_INSITU) is None

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ScaledWorkload((10, 10, 10), (20, 1, 1))
        with pytest.raises(ValueError):
            ScaledWorkload((10, 10, 10), (2, 1, 1), downsample_stride=0)
        with pytest.raises(ValueError):
            ScaledWorkload((10, 10, 10), (2, 1, 1), n_render_vars=0)


class TestBreakdownTable1:
    def test_4896_column(self):
        b = ScaledExperiment(ExperimentConfig.paper_4896()).breakdown()
        assert b.simulation_time == pytest.approx(16.85, rel=0.01)
        assert b.io_read_time == pytest.approx(6.56, rel=0.02)
        assert b.io_write_time == pytest.approx(3.28, rel=0.02)
        assert b.data_gb == pytest.approx(98.5, rel=0.01)

    def test_9440_column(self):
        b = ScaledExperiment(ExperimentConfig.paper_9440()).breakdown()
        assert b.simulation_time == pytest.approx(8.42, rel=0.01)
        # I/O is core-count independent (same data, same OST ceiling)
        assert b.io_read_time == pytest.approx(6.56, rel=0.02)
        assert b.io_write_time == pytest.approx(3.28, rel=0.02)

    def test_strong_scaling_shape(self):
        """Doubling sim cores halves the simulation step; I/O is flat."""
        b1 = ScaledExperiment(ExperimentConfig.paper_4896()).breakdown()
        b2 = ScaledExperiment(ExperimentConfig.paper_9440()).breakdown()
        assert b1.simulation_time / b2.simulation_time == pytest.approx(2.0, rel=0.01)
        assert b1.io_read_time == pytest.approx(b2.io_read_time, rel=1e-6)


class TestBreakdownTable2:
    def setup_method(self):
        self.b = ScaledExperiment(ExperimentConfig.paper_4896()).breakdown()

    def _row(self, variant):
        return self.b.analytics[variant.value]

    def test_insitu_visualization_row(self):
        assert self._row(AnalyticsVariant.VIS_INSITU).insitu_time == \
            pytest.approx(0.73, rel=0.01)

    def test_insitu_statistics_row(self):
        assert self._row(AnalyticsVariant.STATS_INSITU).insitu_time == \
            pytest.approx(1.64, rel=0.01)

    def test_hybrid_viz_row(self):
        row = self._row(AnalyticsVariant.VIS_HYBRID)
        assert row.insitu_time == pytest.approx(0.08, rel=0.01)      # down-sample
        assert row.intransit_time == pytest.approx(5.06, rel=0.25)   # render
        assert 0.02 < row.movement_time < 0.3                        # ~0.092 s

    def test_hybrid_topology_row(self):
        row = self._row(AnalyticsVariant.TOPO_HYBRID)
        assert row.insitu_time == pytest.approx(2.72, rel=0.01)
        assert row.movement_mb == pytest.approx(87.02, rel=0.05)
        assert row.movement_time == pytest.approx(2.06, rel=0.15)
        assert row.intransit_time == pytest.approx(119.81, rel=0.05)

    def test_hybrid_stats_row(self):
        row = self._row(AnalyticsVariant.STATS_HYBRID)
        assert row.insitu_time == pytest.approx(1.69, rel=0.01)
        assert row.movement_mb == pytest.approx(13.30, rel=0.05)
        assert row.intransit_time == pytest.approx(0.01, rel=0.05)
        assert row.movement_time < 0.2                               # ~0.06 s

    def test_paper_fractions(self):
        """§V: in-situ viz ~4.33% and in-situ stats ~9.73% of sim time."""
        assert self.b.impact_fraction(AnalyticsVariant.VIS_INSITU.value) == \
            pytest.approx(0.0433, abs=0.002)
        assert self.b.impact_fraction(AnalyticsVariant.STATS_INSITU.value) == \
            pytest.approx(0.0973, abs=0.002)

    def test_hybrid_viz_impact_about_one_percent(self):
        """§V: down-sampling + movement ~1% of simulation time."""
        row = self._row(AnalyticsVariant.VIS_HYBRID)
        frac = (row.insitu_time + row.movement_time) / self.b.simulation_time
        assert 0.005 < frac < 0.02

    def test_hybrid_offloads_critical_path(self):
        """The whole point: hybrid variants burden the simulation less than
        their fully in-situ counterparts, despite larger total work."""
        viz_in = self._row(AnalyticsVariant.VIS_INSITU)
        viz_hy = self._row(AnalyticsVariant.VIS_HYBRID)
        assert viz_hy.simulation_impact < viz_in.simulation_impact / 5
        stats_in = self._row(AnalyticsVariant.STATS_INSITU)
        stats_hy = self._row(AnalyticsVariant.STATS_HYBRID)
        # stats learn must run in situ either way; impact is comparable,
        # but the hybrid variant avoids the all-to-all on the sim cores.
        assert stats_hy.simulation_impact < stats_in.simulation_impact * 1.1

    def test_fig6_series_structure(self):
        series = self.b.fig6_series()
        assert "simulation" in series
        assert len(series) == 6  # simulation + 5 analytics
        for bars in series.values():
            assert set(bars) == {"in-situ", "data movement", "in-transit"}

    def test_table_rows_render(self):
        for a in self.b.analytics.values():
            row = a.table_row()
            assert len(row) == 5


class TestScheduleReplay:
    def setup_method(self):
        self.exp = ScaledExperiment(ExperimentConfig.paper_4896())

    def test_tasks_all_complete(self):
        sched = self.exp.run_schedule(n_steps=5, n_buckets=16)
        assert len(sched.results) == 5 * len(HYBRID_VARIANTS)

    def test_topology_needs_multiplexing(self):
        """Topology's 119.8 s in-transit stage >> the 16.85 s step: with one
        bucket the queue grows; with ~8+ buckets staging keeps pace (§V's
        temporally multiplexed decoupling)."""
        slow = self.exp.run_schedule(n_steps=6, n_buckets=1,
                                     analyses=(AnalyticsVariant.TOPO_HYBRID,))
        fast = self.exp.run_schedule(n_steps=6, n_buckets=8,
                                     analyses=(AnalyticsVariant.TOPO_HYBRID,))
        assert not slow.keeps_pace()
        assert fast.keeps_pace()
        assert fast.max_queue_wait() < slow.max_queue_wait()

    def test_cheap_analyses_keep_pace_with_one_bucket(self):
        sched = self.exp.run_schedule(n_steps=5, n_buckets=1,
                                      analyses=(AnalyticsVariant.STATS_HYBRID,))
        assert sched.keeps_pace()

    def test_distinct_steps_use_distinct_buckets(self):
        sched = self.exp.run_schedule(n_steps=4, n_buckets=8,
                                      analyses=(AnalyticsVariant.TOPO_HYBRID,))
        topo = sched.by_analysis(AnalyticsVariant.TOPO_HYBRID.value)
        assert len({r.bucket for r in topo}) >= 3

    def test_analysis_interval_reduces_load(self):
        every = self.exp.run_schedule(n_steps=6, n_buckets=4)
        sparse = self.exp.run_schedule(n_steps=6, n_buckets=4,
                                       analysis_interval=3)
        assert len(sparse.results) < len(every.results)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.exp.run_schedule(n_steps=0)
        with pytest.raises(ValueError):
            self.exp.run_schedule(n_steps=1, n_buckets=0)
        with pytest.raises(ValueError):
            self.exp.run_schedule(n_steps=1, analysis_interval=0)

    def test_allocation_validated_against_machine(self):
        from repro.machine.specs import MachineSpec, NodeSpec
        tiny = MachineSpec("tiny", 2, NodeSpec(cores=4, memory_bytes=2**30,
                                               core_gflops=1.0))
        with pytest.raises(ValueError):
            ScaledExperiment(ExperimentConfig.paper_4896(), machine=tiny)
