"""Tests for the hybrid topology pipeline: boundary trees, streaming glue,
and the headline invariant — glued distributed tree == global tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.topology import (
    StreamingGlue,
    compute_boundary_tree,
    compute_merge_tree,
    cross_block_edges,
    distributed_merge_tree,
)
from repro.analysis.topology.distributed import (
    block_boundary_mask,
    compute_block_boundary_trees,
    global_id_array,
)
from repro.analysis.topology.stream_merge import compute_merge_tree_graph
from repro.vmpi import BlockDecomposition3D


def _random_field(shape, seed):
    return np.random.default_rng(seed).random(shape)


def _blobby_field(shape, n_blobs, seed):
    """Smooth field with several Gaussian features (combustion-like)."""
    rng = np.random.default_rng(seed)
    coords = np.stack(np.mgrid[[slice(0, s) for s in shape]]).astype(float)
    f = np.zeros(shape)
    for _ in range(n_blobs):
        center = [rng.uniform(0, s - 1) for s in shape]
        width = rng.uniform(1.0, 3.0)
        d2 = sum((coords[a] - center[a]) ** 2 for a in range(3))
        f += rng.uniform(0.5, 2.0) * np.exp(-d2 / (2 * width * width))
    return f


class TestBoundaryMask:
    def test_interior_block_all_faces(self):
        d = BlockDecomposition3D((9, 9, 9), (3, 3, 3))
        center = d.rank_of_coords((1, 1, 1))
        mask = block_boundary_mask(d.block(center), d.global_shape)
        # all 6 faces marked; the 3x3x3 block has only 1 interior cell
        assert mask.sum() == 26
        assert not mask[1, 1, 1]

    def test_corner_block_three_faces(self):
        d = BlockDecomposition3D((9, 9, 9), (3, 3, 3))
        mask = block_boundary_mask(d.block(0), d.global_shape)
        # faces at +x, +y, +z only
        assert mask[2, :, :].all() and mask[:, 2, :].all() and mask[:, :, 2].all()
        assert not mask[0, 0, 0]

    def test_single_block_no_boundary(self):
        d = BlockDecomposition3D((4, 4, 4), (1, 1, 1))
        assert not block_boundary_mask(d.block(0), d.global_shape).any()


class TestCrossEdges:
    def test_count_for_axis_split(self):
        d = BlockDecomposition3D((4, 3, 3), (2, 1, 1))
        edges = cross_block_edges(d)
        assert len(edges) == 3 * 3  # one interface plane of 3x3 vertex pairs

    def test_edges_connect_adjacent_global_vertices(self):
        d = BlockDecomposition3D((4, 4, 4), (2, 2, 1))
        ids = global_id_array(d.global_shape)
        owner = np.empty(d.global_shape, dtype=int)
        for b in d.blocks():
            owner[b.slices] = b.rank
        for u, v in cross_block_edges(d):
            cu = np.unravel_index(u, d.global_shape)
            cv = np.unravel_index(v, d.global_shape)
            assert sum(abs(a - b) for a, b in zip(cu, cv)) == 1
            assert owner[cu] != owner[cv]

    def test_no_edges_single_block(self):
        d = BlockDecomposition3D((4, 4, 4), (1, 1, 1))
        assert cross_block_edges(d) == []


class TestBoundaryTree:
    def test_nodes_include_criticals_and_boundary(self):
        d = BlockDecomposition3D((8, 8, 8), (2, 1, 1))
        f = _random_field((8, 8, 8), 20)
        ids = global_id_array(d.global_shape)
        b = d.block(0)
        mask = block_boundary_mask(b, d.global_shape)
        bt = compute_boundary_tree(f[b.slices], ids[b.slices], mask)
        bt.validate()
        local_tree, _ = compute_merge_tree(f[b.slices], id_map=ids[b.slices])
        assert set(local_tree.value) <= set(bt.nodes)
        assert set(ids[b.slices][mask].tolist()) <= set(bt.nodes)

    def test_edges_descend(self):
        d = BlockDecomposition3D((6, 6, 6), (2, 1, 1))
        f = _blobby_field((6, 6, 6), 3, 21)
        ids = global_id_array(d.global_shape)
        b = d.block(1)
        bt = compute_boundary_tree(
            f[b.slices], ids[b.slices], block_boundary_mask(b, d.global_shape))
        bt.validate()  # includes the descending-edge check

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            compute_boundary_tree(np.zeros((2, 2, 2)),
                                  np.arange(8).reshape(2, 2, 2),
                                  np.zeros((3, 3, 3), dtype=bool))

    def test_reduction_shrinks_interior(self):
        """For a smooth blob field the boundary tree is far smaller than
        the block — the whole point of the in-situ reduction."""
        d = BlockDecomposition3D((16, 16, 16), (2, 1, 1))
        f = _blobby_field((16, 16, 16), 4, 22)
        ids = global_id_array(d.global_shape)
        b = d.block(0)
        bt = compute_boundary_tree(
            f[b.slices], ids[b.slices], block_boundary_mask(b, d.global_shape))
        assert len(bt.nodes) < b.n_cells / 2
        assert bt.nbytes < b.n_cells * 8


class TestStreamingGlue:
    def test_vertex_before_edge_enforced(self):
        g = StreamingGlue()
        g.add_vertex(0, 1.0)
        with pytest.raises(KeyError):
            g.add_edge(0, 1)

    def test_duplicate_vertex_raises(self):
        g = StreamingGlue()
        g.add_vertex(0, 1.0)
        with pytest.raises(ValueError):
            g.add_vertex(0, 2.0)

    def test_self_edge_raises(self):
        g = StreamingGlue()
        g.add_vertex(0, 1.0)
        with pytest.raises(ValueError):
            g.add_edge(0, 0)

    def test_edge_budget_overflow_raises(self):
        g = StreamingGlue()
        g.add_vertex(0, 1.0, n_incident_edges=1)
        g.add_vertex(1, 2.0, n_incident_edges=1)
        g.add_vertex(2, 3.0, n_incident_edges=2)
        g.add_edge(0, 1)
        with pytest.raises(RuntimeError):
            g.add_edge(0, 2)

    def test_finalization_tracking(self):
        g = StreamingGlue()
        g.add_vertex(0, 1.0, n_incident_edges=1)
        g.add_vertex(1, 2.0, n_incident_edges=2)
        g.add_vertex(2, 3.0, n_incident_edges=1)
        assert not g.all_finalized()
        g.add_edge(0, 1)
        assert 0 in g.finalized and 1 not in g.finalized
        g.add_edge(1, 2)
        assert g.all_finalized()
        assert g.peak_live_vertices == 3

    def test_isolated_vertex_immediately_final(self):
        g = StreamingGlue()
        g.add_vertex(5, 1.0, n_incident_edges=0)
        assert 5 in g.finalized

    def test_simple_chain(self):
        g = StreamingGlue()
        for i, v in enumerate([5.0, 2.0, 1.0, 2.5, 4.0]):
            g.add_vertex(i, v)
        for i in range(4):
            g.add_edge(i, i + 1)
        tree = g.finalize()
        tree.validate()
        red = tree.reduced()
        assert sorted(red.leaves()) == [0, 4]
        assert red.saddles() == [2]

    @given(st.integers(0, 10_000), st.integers(2, 14), st.data())
    @settings(max_examples=60, deadline=None)
    def test_property_streaming_matches_batch_any_order(self, seed, n, data):
        """Streaming insertion in random edge order == batch union-find."""
        rng = np.random.default_rng(seed)
        values = {i: float(v) for i, v in enumerate(rng.random(n))}
        # random connected-ish graph: spanning chain + extra random edges
        edges = [(i, i + 1) for i in range(n - 1)]
        n_extra = int(rng.integers(0, n))
        for _ in range(n_extra):
            u, v = rng.integers(0, n, size=2)
            if u != v and (min(u, v), max(u, v)) not in {tuple(sorted(e)) for e in edges}:
                edges.append((int(u), int(v)))
        order = data.draw(st.permutations(range(len(edges))))

        g = StreamingGlue()
        for vid, val in values.items():
            g.add_vertex(vid, val)
        for k in order:
            g.add_edge(*edges[k])
        streamed = g.finalize()
        batch = compute_merge_tree_graph(values, edges)
        streamed.validate()
        assert streamed.reduced().signature() == batch.reduced().signature()


class TestDistributedEqualsGlobal:
    """THE invariant: the hybrid pipeline reproduces the global tree."""

    @pytest.mark.parametrize("proc_grid", [(2, 1, 1), (2, 2, 1), (2, 2, 2), (3, 2, 1)])
    def test_blobby_fields(self, proc_grid):
        shape = (12, 10, 8)
        f = _blobby_field(shape, 6, seed=hash(proc_grid) % 1000)
        decomp = BlockDecomposition3D(shape, proc_grid)
        glued, _bts = distributed_merge_tree(f, decomp)
        global_tree, _ = compute_merge_tree(f)
        assert glued.reduced().signature() == global_tree.reduced().signature()

    @given(st.integers(0, 10_000),
           st.sampled_from([(2, 1, 1), (1, 3, 1), (2, 2, 1), (2, 2, 2)]))
    @settings(max_examples=25, deadline=None)
    def test_property_random_fields(self, seed, proc_grid):
        shape = (6, 6, 5)
        f = _random_field(shape, seed)
        decomp = BlockDecomposition3D(shape, proc_grid)
        glued, _ = distributed_merge_tree(f, decomp)
        global_tree, _ = compute_merge_tree(f)
        assert glued.reduced().signature() == global_tree.reduced().signature()

    def test_plateau_field(self):
        """Ties everywhere: the global-id tie-break must keep blocks
        consistent with the global sweep."""
        shape = (6, 6, 6)
        f = np.ones(shape)
        decomp = BlockDecomposition3D(shape, (2, 2, 1))
        glued, _ = distributed_merge_tree(f, decomp)
        global_tree, _ = compute_merge_tree(f)
        assert glued.reduced().signature() == global_tree.reduced().signature()

    def test_uneven_decomposition(self):
        shape = (11, 7, 9)
        f = _blobby_field(shape, 5, seed=77)
        decomp = BlockDecomposition3D(shape, (3, 2, 2))
        glued, _ = distributed_merge_tree(f, decomp)
        global_tree, _ = compute_merge_tree(f)
        assert glued.reduced().signature() == global_tree.reduced().signature()

    def test_movement_size_much_smaller_than_raw(self):
        """Table II's point: intermediate topology data (~87 MB) is orders
        of magnitude below the raw field (~98.5 GB)."""
        shape = (24, 24, 24)
        f = _blobby_field(shape, 8, seed=5)
        decomp = BlockDecomposition3D(shape, (2, 1, 1))
        _glued, bts = distributed_merge_tree(f, decomp)
        moved = sum(bt.nbytes for bt in bts)
        assert moved < f.nbytes / 2

    def test_field_shape_mismatch_raises(self):
        decomp = BlockDecomposition3D((4, 4, 4), (2, 1, 1))
        with pytest.raises(ValueError):
            compute_block_boundary_trees(np.zeros((5, 5, 5)), decomp)

    def test_glue_finalizes_everything(self):
        shape = (8, 8, 8)
        f = _blobby_field(shape, 4, seed=9)
        decomp = BlockDecomposition3D(shape, (2, 2, 1))
        from repro.analysis.topology.distributed import glue_boundary_trees
        bts = compute_block_boundary_trees(f, decomp)
        glue = StreamingGlue()
        glue_boundary_trees(bts, cross_block_edges(decomp), glue)
        assert glue.all_finalized()
