"""Tests for repro.util: units, tables, images, rng, timer."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util import (
    GB,
    KB,
    MB,
    TextTable,
    WallTimer,
    bytes_to_gb,
    bytes_to_mb,
    fmt_bytes,
    fmt_seconds,
    image_rmse,
    seeded_rng,
    write_pgm,
    write_ppm,
)


class TestUnits:
    def test_constants(self):
        assert KB == 1024
        assert MB == 1024**2
        assert GB == 1024**3

    def test_bytes_to_mb(self):
        assert bytes_to_mb(5 * MB) == 5.0

    def test_bytes_to_gb(self):
        assert bytes_to_gb(98.5 * GB) == pytest.approx(98.5)

    def test_fmt_bytes_ranges(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(2 * KB) == "2.00 KB"
        assert fmt_bytes(49.19 * MB) == "49.19 MB"
        assert fmt_bytes(98.5 * GB) == "98.50 GB"

    def test_fmt_bytes_negative_raises(self):
        with pytest.raises(ValueError):
            fmt_bytes(-1)

    def test_fmt_seconds_ranges(self):
        assert fmt_seconds(5e-7).endswith("us")
        assert fmt_seconds(0.005).endswith("ms")
        assert fmt_seconds(16.85) == "16.85 s"
        assert fmt_seconds(600).endswith("min")
        assert fmt_seconds(10000).endswith("h")

    def test_fmt_seconds_negative_raises(self):
        with pytest.raises(ValueError):
            fmt_seconds(-0.1)


class TestRng:
    def test_deterministic(self):
        a = seeded_rng(42).random(5)
        b = seeded_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_streams_independent(self):
        a = seeded_rng(42, 0).random(5)
        b = seeded_rng(42, 1).random(5)
        assert not np.allclose(a, b)

    def test_none_seed_gives_generator(self):
        assert seeded_rng(None).random() <= 1.0


class TestTextTable:
    def test_render_aligns_columns(self):
        t = TextTable(["metric", "4896", "9440"], title="Table I")
        t.add_row(["Simulation time (sec.)", 16.85, 8.42])
        t.add_row(["I/O read time (sec.)", 6.56, 6.56])
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "Table I"
        assert "16.85" in out and "6.56" in out
        # all data rows have the same width
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1

    def test_row_length_mismatch_raises(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_small_floats_keep_precision(self):
        t = TextTable(["x"])
        t.add_row([0.00071])
        assert "0.00071" in t.render()


class TestImages:
    def test_ppm_roundtrip_header(self, tmp_path):
        img = np.zeros((4, 6, 3), dtype=np.float64)
        img[..., 0] = 1.0
        p = tmp_path / "x.ppm"
        write_ppm(p, img)
        raw = p.read_bytes()
        assert raw.startswith(b"P6\n6 4\n255\n")
        assert len(raw) == len(b"P6\n6 4\n255\n") + 4 * 6 * 3

    def test_ppm_bad_shape_raises(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(tmp_path / "x.ppm", np.zeros((4, 6)))

    def test_pgm(self, tmp_path):
        p = tmp_path / "x.pgm"
        write_pgm(p, np.ones((3, 5)))
        assert p.read_bytes().startswith(b"P5\n5 3\n255\n")

    def test_rmse_zero_for_identical(self):
        img = np.random.default_rng(0).random((8, 8, 3))
        assert image_rmse(img, img) == 0.0

    def test_rmse_shape_mismatch(self):
        with pytest.raises(ValueError):
            image_rmse(np.zeros((2, 2)), np.zeros((3, 3)))

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_rmse_constant_offset(self, c):
        a = np.zeros((4, 4))
        b = np.full((4, 4), c)
        assert image_rmse(a, b) == pytest.approx(c, abs=1e-12)


def test_walltimer_measures_nonnegative():
    with WallTimer() as t:
        sum(range(100))
    assert t.elapsed >= 0.0
