"""Tests for the ADIOS-like I/O layer."""

import numpy as np
import pytest

from repro.io import BPFile, IOTimeModel, read_file_per_process, write_file_per_process
from repro.machine.lustre import LustreModel
from repro.util.units import GB
from repro.vmpi import BlockDecomposition3D


class TestBPFile:
    def test_roundtrip_multiple_variables(self, tmp_path):
        path = tmp_path / "out.bp"
        a = np.random.default_rng(0).random((4, 5))
        b = np.arange(7, dtype=np.int32)
        with BPFile.create(path, attrs={"step": 3}) as bp:
            bp.write("a", a)
            bp.write("b", b)
        r = BPFile.open(path)
        assert r.attrs == {"step": 3}
        assert r.variables == ["a", "b"]
        assert r.shape("a") == (4, 5)
        np.testing.assert_array_equal(r.read("a"), a)
        np.testing.assert_array_equal(r.read("b"), b)

    def test_dtype_preserved(self, tmp_path):
        path = tmp_path / "out.bp"
        with BPFile.create(path) as bp:
            bp.write("x", np.array([1.5, 2.5], dtype=np.float32))
        assert BPFile.open(path).read("x").dtype == np.float32

    def test_duplicate_variable_raises(self, tmp_path):
        bp = BPFile.create(tmp_path / "x.bp")
        bp.write("a", np.zeros(3))
        with pytest.raises(ValueError):
            bp.write("a", np.zeros(3))

    def test_missing_variable_raises(self, tmp_path):
        path = tmp_path / "x.bp"
        with BPFile.create(path) as bp:
            bp.write("a", np.zeros(3))
        with pytest.raises(KeyError, match="has"):
            BPFile.open(path).read("zz")

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "bad.bp"
        path.write_bytes(b"NOPE" + b"\0" * 100)
        with pytest.raises(ValueError, match="magic"):
            BPFile.open(path)

    def test_write_after_flush_raises(self, tmp_path):
        path = tmp_path / "x.bp"
        bp = BPFile.create(path)
        bp.write("a", np.zeros(3))
        bp.flush()
        with pytest.raises(RuntimeError):
            bp.write("b", np.zeros(3))

    def test_exception_skips_flush(self, tmp_path):
        path = tmp_path / "x.bp"
        with pytest.raises(RuntimeError):
            with BPFile.create(path) as bp:
                bp.write("a", np.zeros(3))
                raise RuntimeError("boom")
        assert not path.exists()

    def test_noncontiguous_input_ok(self, tmp_path):
        path = tmp_path / "x.bp"
        base = np.arange(20).reshape(4, 5)
        with BPFile.create(path) as bp:
            bp.write("t", base.T)  # non-contiguous view
        np.testing.assert_array_equal(BPFile.open(path).read("t"), base.T)


class TestFilePerProcess:
    def test_write_read_roundtrip(self, tmp_path):
        decomp = BlockDecomposition3D((8, 6, 4), (2, 3, 1))
        field = np.random.default_rng(1).random((8, 6, 4))
        parts = [{"T": piece} for piece in decomp.scatter(field)]
        nbytes = write_file_per_process(tmp_path / "ckpt", decomp, parts, step=7)
        assert nbytes > field.nbytes  # payload + headers
        out = read_file_per_process(tmp_path / "ckpt", "T")
        np.testing.assert_array_equal(out, field)

    def test_multiple_variables(self, tmp_path):
        decomp = BlockDecomposition3D((4, 4, 4), (2, 1, 1))
        t = np.ones((4, 4, 4))
        h2 = 2 * np.ones((4, 4, 4))
        parts = [{"T": pt, "H2": ph}
                 for pt, ph in zip(decomp.scatter(t), decomp.scatter(h2))]
        write_file_per_process(tmp_path / "d", decomp, parts)
        np.testing.assert_array_equal(read_file_per_process(tmp_path / "d", "H2"), h2)

    def test_missing_variable_raises(self, tmp_path):
        decomp = BlockDecomposition3D((4, 4, 4), (1, 1, 1))
        parts = [{"T": np.zeros((4, 4, 4))}]
        write_file_per_process(tmp_path / "d", decomp, parts)
        with pytest.raises(KeyError):
            read_file_per_process(tmp_path / "d", "nope")

    def test_missing_index_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_file_per_process(tmp_path, "T")

    def test_wrong_part_count_raises(self, tmp_path):
        decomp = BlockDecomposition3D((4, 4, 4), (2, 1, 1))
        with pytest.raises(ValueError):
            write_file_per_process(tmp_path / "d", decomp, [{"T": np.zeros((2, 4, 4))}])

    def test_wrong_block_shape_raises(self, tmp_path):
        decomp = BlockDecomposition3D((4, 4, 4), (2, 1, 1))
        parts = [{"T": np.zeros((3, 4, 4))}, {"T": np.zeros((2, 4, 4))}]
        with pytest.raises(ValueError):
            write_file_per_process(tmp_path / "d", decomp, parts)


class TestIOTimeModel:
    def test_table1_checkpoint_size(self):
        """Table I: 1600x1372x430 x 14 vars x 8 B = 98.5 GB."""
        m = IOTimeModel(LustreModel())
        nbytes = m.checkpoint_bytes((1600, 1372, 430), 14)
        assert nbytes / GB == pytest.approx(98.5, rel=0.01)

    def test_table1_io_times(self):
        m = IOTimeModel(LustreModel())
        shape = (1600, 1372, 430)
        assert m.read_time(shape, 14, 4480) == pytest.approx(6.56, rel=0.02)
        assert m.write_time(shape, 14, 4480) == pytest.approx(3.28, rel=0.02)
        # core-count independence
        assert m.read_time(shape, 14, 8960) == pytest.approx(
            m.read_time(shape, 14, 4480), rel=1e-6)
