"""I/O aggregation strategies: file-per-process vs N-to-M subfiling.

Table I's note — file-per-process "achieves near peak I/O bandwidths over
a wide range of core counts" — hides a trade-off this module models: at
very large core counts, per-file metadata operations swamp the metadata
server, while heavy aggregation serialises data through too few writers.
ADIOS's answer is N-to-M aggregation (N ranks funnel through M
aggregators, one subfile each). The model charges

* metadata: one create/open per file against a metadata-op-rate budget;
* aggregation forwarding: N-to-M shuffle over the interconnect;
* write: min(OST aggregate bandwidth, M x per-client bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.gemini import GeminiNetwork
from repro.machine.lustre import LustreModel


@dataclass(frozen=True)
class AggregationModel:
    """Cost model for an N-to-M aggregated checkpoint write."""

    filesystem: LustreModel
    network: GeminiNetwork
    #: Metadata server throughput (file creates per second).
    metadata_ops_per_s: float = 40_000.0

    def __post_init__(self) -> None:
        if self.metadata_ops_per_s <= 0:
            raise ValueError("metadata_ops_per_s must be positive")

    def write_time(self, total_bytes: int, n_ranks: int,
                   n_aggregators: int) -> float:
        """Seconds to write ``total_bytes`` via ``n_aggregators`` subfiles.

        ``n_aggregators == n_ranks`` degenerates to file-per-process (no
        forwarding); ``n_aggregators == 1`` is the single-shared-funnel
        extreme.
        """
        if total_bytes < 0:
            raise ValueError("total_bytes must be >= 0")
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if not 1 <= n_aggregators <= n_ranks:
            raise ValueError(
                f"n_aggregators must be in [1, n_ranks], got {n_aggregators}")

        metadata = n_aggregators / self.metadata_ops_per_s
        # Forwarding: each non-aggregator ships its share to its
        # aggregator; aggregators ingest (N/M - 1) messages concurrently.
        per_rank = total_bytes / n_ranks
        ranks_per_agg = n_ranks / n_aggregators
        if n_aggregators == n_ranks:
            forward = 0.0
        else:
            forward = (ranks_per_agg - 1) * self.network.transfer_time(
                int(per_rank))
        bw = min(self.filesystem.aggregate_write_bw,
                 n_aggregators * self.filesystem.client_bw)
        write = total_bytes / bw
        return metadata + forward + write

    def best_aggregator_count(self, total_bytes: int, n_ranks: int,
                              candidates: list[int] | None = None) -> int:
        """Aggregator count minimising modeled write time."""
        if candidates is None:
            candidates = sorted({1, 2, 4, 8} | {
                max(1, n_ranks // k) for k in (1, 2, 4, 8, 16, 32, 64, 128)})
        candidates = [c for c in candidates if 1 <= c <= n_ranks]
        return min(candidates,
                   key=lambda m: self.write_time(total_bytes, n_ranks, m))
