"""ADIOS-like I/O: a self-describing container format + file-per-process.

The paper writes checkpoints with ADIOS on a Lustre filesystem,
single-file-per-process (Table I's I/O rows). This package provides:

* :class:`~repro.io.bp.BPFile` — a minimal self-describing binary
  container (header + named typed variables with shape metadata), the
  moral equivalent of ADIOS's BP format;
* :func:`~repro.io.fpp.write_file_per_process` /
  :func:`~repro.io.fpp.read_file_per_process` — file-per-process dataset
  output over a block decomposition, with a global metadata index;
* :class:`~repro.io.fpp.IOTimeModel` — charges the Lustre model for the
  bytes written/read, reproducing Table I's core-count-independent I/O
  times.
"""

from repro.io.bp import BPFile
from repro.io.fpp import IOTimeModel, read_file_per_process, write_file_per_process

__all__ = [
    "BPFile",
    "IOTimeModel",
    "read_file_per_process",
    "write_file_per_process",
]
