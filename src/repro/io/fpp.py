"""File-per-process dataset I/O + the Lustre timing model.

"For the present experiments data read/write is done on a
single-file-per-process basis, which achieves near peak I/O bandwidths
over a wide range of core counts" (§V). Each rank writes one BP file with
its block of every variable; a JSON index records the decomposition so
readers can reassemble or read any sub-box.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.io.bp import BPFile
from repro.machine.lustre import LustreModel
from repro.vmpi.decomp import BlockDecomposition3D

_INDEX_NAME = "index.json"


def write_file_per_process(root: str | os.PathLike,
                           decomp: BlockDecomposition3D,
                           parts: list[dict[str, np.ndarray]],
                           step: int = 0) -> int:
    """Write one BP file per rank under ``root``; returns bytes written."""
    if len(parts) != decomp.n_ranks:
        raise ValueError(f"expected {decomp.n_ranks} parts, got {len(parts)}")
    rootp = Path(root)
    rootp.mkdir(parents=True, exist_ok=True)
    var_names = list(parts[0]) if parts else []
    total = 0
    for b, part in zip(decomp.blocks(), parts):
        if list(part) != var_names:
            raise ValueError(f"rank {b.rank} variable set differs from rank 0")
        path = rootp / f"rank{b.rank:06d}.bp"
        with BPFile.create(path, attrs={"rank": b.rank, "step": step,
                                        "lo": list(b.lo), "hi": list(b.hi)}) as bp:
            for name, arr in part.items():
                if arr.shape[:3] != b.shape:
                    raise ValueError(
                        f"rank {b.rank} var {name!r} shape {arr.shape} != "
                        f"block {b.shape}")
                bp.write(name, arr)
        total += path.stat().st_size
    index = {
        "global_shape": list(decomp.global_shape),
        "proc_grid": list(decomp.proc_grid),
        "variables": var_names,
        "step": step,
        "n_ranks": decomp.n_ranks,
    }
    (rootp / _INDEX_NAME).write_text(json.dumps(index))
    return total


def read_file_per_process(root: str | os.PathLike, variable: str) -> np.ndarray:
    """Reassemble one variable's global field from a file-per-process set."""
    rootp = Path(root)
    index_path = rootp / _INDEX_NAME
    if not index_path.exists():
        raise FileNotFoundError(f"no {_INDEX_NAME} under {root}")
    index = json.loads(index_path.read_text())
    decomp = BlockDecomposition3D(tuple(index["global_shape"]),
                                  tuple(index["proc_grid"]))
    if variable not in index["variables"]:
        raise KeyError(
            f"variable {variable!r} not in dataset; has {index['variables']}")
    parts = []
    for b in decomp.blocks():
        bp = BPFile.open(rootp / f"rank{b.rank:06d}.bp")
        parts.append(bp.read(variable))
    return decomp.gather(parts)


@dataclass(frozen=True)
class IOTimeModel:
    """Charges the Lustre model for a checkpoint's bytes (Table I rows)."""

    filesystem: LustreModel

    def checkpoint_bytes(self, global_shape: tuple[int, int, int],
                         n_vars: int, itemsize: int = 8) -> int:
        nx, ny, nz = global_shape
        return nx * ny * nz * n_vars * itemsize

    def write_time(self, global_shape: tuple[int, int, int], n_vars: int,
                   n_ranks: int, itemsize: int = 8) -> float:
        return self.filesystem.write_time(
            self.checkpoint_bytes(global_shape, n_vars, itemsize), n_ranks)

    def read_time(self, global_shape: tuple[int, int, int], n_vars: int,
                  n_ranks: int, itemsize: int = 8) -> float:
        return self.filesystem.read_time(
            self.checkpoint_bytes(global_shape, n_vars, itemsize), n_ranks)
