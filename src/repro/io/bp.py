"""A minimal self-describing binary container (BP-format stand-in).

Layout::

    magic  b"RBP1"
    uint64 header_length
    header JSON (utf-8): {"vars": {name: {"dtype", "shape", "offset", "nbytes"},
                          "attrs": {...}}}
    raw variable payloads, 8-byte aligned, in header order

Variables are written/read as C-contiguous arrays. The format supports
attributes (small JSON-serialisable metadata), mirroring ADIOS's
variable/attribute split.
"""

from __future__ import annotations

import json
import os
from typing import Any

import numpy as np

_MAGIC = b"RBP1"
_ALIGN = 8


class BPFile:
    """Writer/reader for the container format.

    Writing::

        with BPFile.create(path, attrs={"step": 3}) as bp:
            bp.write("T", temperature_array)

    Reading::

        bp = BPFile.open(path)
        T = bp.read("T")
    """

    def __init__(self) -> None:
        self._path: str | os.PathLike | None = None
        self._vars: dict[str, dict[str, Any]] = {}
        self._attrs: dict[str, Any] = {}
        self._pending: list[tuple[str, np.ndarray]] = []
        self._mode: str | None = None

    # -- writing --------------------------------------------------------------

    @classmethod
    def create(cls, path: str | os.PathLike, attrs: dict[str, Any] | None = None
               ) -> "BPFile":
        bp = cls()
        bp._path = path
        bp._attrs = dict(attrs or {})
        bp._mode = "w"
        return bp

    def write(self, name: str, data: np.ndarray) -> None:
        if self._mode != "w":
            raise RuntimeError("BPFile not opened for writing")
        if name in {n for n, _ in self._pending}:
            raise ValueError(f"variable {name!r} already written")
        self._pending.append((name, np.ascontiguousarray(data)))

    def __enter__(self) -> "BPFile":
        return self

    def __exit__(self, exc_type: object, *exc: object) -> None:
        if self._mode == "w" and exc_type is None:
            self.flush()

    def flush(self) -> None:
        """Serialise header + payloads to disk."""
        if self._mode != "w":
            raise RuntimeError("BPFile not opened for writing")
        offset = 0
        header_vars: dict[str, Any] = {}
        blobs: list[bytes] = []
        for name, arr in self._pending:
            pad = (-offset) % _ALIGN
            offset += pad
            blobs.append(b"\0" * pad)
            raw = arr.tobytes()
            header_vars[name] = {
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
                "nbytes": len(raw),
            }
            blobs.append(raw)
            offset += len(raw)
        header = json.dumps({"vars": header_vars, "attrs": self._attrs}).encode()
        assert self._path is not None
        with open(self._path, "wb") as f:
            f.write(_MAGIC)
            f.write(len(header).to_bytes(8, "little"))
            f.write(header)
            for blob in blobs:
                f.write(blob)
        self._mode = None

    # -- reading ----------------------------------------------------------------

    @classmethod
    def open(cls, path: str | os.PathLike) -> "BPFile":
        bp = cls()
        bp._path = path
        with open(path, "rb") as f:
            magic = f.read(4)
            if magic != _MAGIC:
                raise ValueError(f"{path}: not a BP file (magic {magic!r})")
            hlen = int.from_bytes(f.read(8), "little")
            header = json.loads(f.read(hlen).decode())
        bp._vars = header["vars"]
        bp._attrs = header["attrs"]
        bp._mode = "r"
        bp._payload_start = 4 + 8 + hlen  # type: ignore[attr-defined]
        return bp

    @property
    def attrs(self) -> dict[str, Any]:
        return self._attrs

    @property
    def variables(self) -> list[str]:
        return list(self._vars)

    def shape(self, name: str) -> tuple[int, ...]:
        return tuple(self._var_meta(name)["shape"])

    def _var_meta(self, name: str) -> dict[str, Any]:
        if self._mode != "r":
            raise RuntimeError("BPFile not opened for reading")
        try:
            return self._vars[name]
        except KeyError:
            raise KeyError(
                f"no variable {name!r} in {self._path}; has {self.variables}"
            ) from None

    def read(self, name: str) -> np.ndarray:
        meta = self._var_meta(name)
        assert self._path is not None
        with open(self._path, "rb") as f:
            f.seek(self._payload_start + meta["offset"])  # type: ignore[attr-defined]
            raw = f.read(meta["nbytes"])
        if len(raw) != meta["nbytes"]:
            raise IOError(f"{self._path}: truncated variable {name!r}")
        return np.frombuffer(raw, dtype=np.dtype(meta["dtype"])).reshape(meta["shape"]).copy()
