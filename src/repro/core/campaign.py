"""Configuration sweeps over the full-scale experiment model.

The paper evaluates two core counts; the model generalises. A
:class:`Campaign` sweeps simulation scale (keeping the paper's grid and
per-axis decomposition style), sizes the staging area to the temporal-
multiplexing knee at each scale, and reports where the hybrid design's
assumptions hold — the scaling analysis §V sketches qualitatively
("Although in-transit computations for a given analysis and timestep are
serial, we note that this can easily be made parallel as well").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.runner import ExperimentConfig, PAPER_GLOBAL_SHAPE, ScaledExperiment
from repro.core.workload import AnalyticsVariant


@dataclass(frozen=True)
class ScalePoint:
    """One swept configuration's summary."""

    n_sim_cores: int
    simulation_time: float
    insitu_fraction: float         # all hybrid in-situ stages / sim step
    topo_intransit_time: float
    buckets_needed: int            # multiplexing knee for topology
    movement_mb_per_step: float
    io_fraction: float             # checkpoint write / sim step (if writing)


def _proc_grid_for(x_factor: int) -> tuple[int, int, int]:
    """The paper scales along x: 16 -> 32 at fixed (28, 10)."""
    return (x_factor, 28, 10)


class Campaign:
    """Sweep simulation scale on the modeled machine."""

    def __init__(self, x_factors: tuple[int, ...] = (8, 16, 32, 64),
                 n_service_cores: int = 256) -> None:
        for x in x_factors:
            if x < 1 or PAPER_GLOBAL_SHAPE[0] % x:
                raise ValueError(
                    f"x factor {x} must divide the grid extent "
                    f"{PAPER_GLOBAL_SHAPE[0]}")
        self.x_factors = tuple(x_factors)
        self.n_service_cores = n_service_cores

    def point(self, x_factor: int) -> ScalePoint:
        cfg = ExperimentConfig(
            name=f"x{x_factor}",
            proc_grid=_proc_grid_for(x_factor),
            n_service_cores=self.n_service_cores,
            n_intransit_cores=256,
        )
        exp = ScaledExperiment(cfg)
        b = exp.breakdown()
        hybrid = (AnalyticsVariant.VIS_HYBRID, AnalyticsVariant.TOPO_HYBRID,
                  AnalyticsVariant.STATS_HYBRID)
        insitu = sum(b.analytics[v.value].insitu_time for v in hybrid)
        topo = b.analytics[AnalyticsVariant.TOPO_HYBRID.value]
        task = topo.movement_time + topo.intransit_time
        moved = sum(b.analytics[v.value].movement_bytes for v in hybrid)
        return ScalePoint(
            n_sim_cores=cfg.n_sim_cores,
            simulation_time=b.simulation_time,
            insitu_fraction=insitu / b.simulation_time,
            topo_intransit_time=topo.intransit_time,
            buckets_needed=math.ceil(task / b.simulation_time),
            movement_mb_per_step=moved / 1024**2,
            io_fraction=b.io_write_time / b.simulation_time,
        )

    def sweep(self) -> list[ScalePoint]:
        return [self.point(x) for x in self.x_factors]

    # -- scaling diagnoses ----------------------------------------------------

    @staticmethod
    def strong_scaling_efficiency(points: list[ScalePoint]) -> list[float]:
        """Speedup / core-ratio relative to the first point (1.0 = ideal).

        The compute model is perfectly parallel, so deviations come only
        from rounding; the interesting outputs are the *analysis-side*
        trends below.
        """
        if not points:
            raise ValueError("no points")
        t0, c0 = points[0].simulation_time, points[0].n_sim_cores
        return [(t0 / p.simulation_time) / (p.n_sim_cores / c0)
                for p in points]

    @staticmethod
    def serial_stage_pressure(points: list[ScalePoint]) -> list[float]:
        """Buckets needed per point: the serial in-transit stage's cost is
        scale-independent while the simulation step shrinks — so the
        multiplexing demand grows ~linearly with core count, the pressure
        that motivates §V's 'can easily be made parallel as well'."""
        return [p.buckets_needed for p in points]
