"""Per-timestep timing breakdowns: the rows of Table II and bars of Fig. 6."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.units import bytes_to_mb


@dataclass
class AnalyticsTiming:
    """One analytics variant's per-timestep costs (a Table II row)."""

    name: str
    insitu_time: float = 0.0
    movement_time: float = 0.0
    movement_bytes: int = 0
    intransit_time: float = 0.0

    @property
    def movement_mb(self) -> float:
        return bytes_to_mb(self.movement_bytes)

    @property
    def simulation_impact(self) -> float:
        """Time the analysis adds to the simulation's critical path.

        In-situ compute blocks the simulation; asynchronous movement and
        in-transit compute do not (§V: "an asynchronous calculation
        performed outside of the simulation nodes").
        """
        return self.insitu_time

    def table_row(self) -> list[object]:
        return [
            self.name,
            round(self.insitu_time, 3) if self.insitu_time else "—",
            round(self.movement_time, 3) if self.movement_bytes else "—",
            round(self.movement_mb, 2) if self.movement_bytes else "—",
            round(self.intransit_time, 3) if self.intransit_time else "—",
        ]


@dataclass
class TimingBreakdown:
    """A full experiment's per-timestep timings (Table I + II + Fig. 6)."""

    n_cores: int
    n_sim_cores: int
    n_service_cores: int
    n_intransit_cores: int
    global_shape: tuple[int, int, int]
    n_vars: int
    data_bytes: int
    simulation_time: float
    io_read_time: float
    io_write_time: float
    analytics: dict[str, AnalyticsTiming] = field(default_factory=dict)

    @property
    def data_gb(self) -> float:
        return self.data_bytes / 1024**3

    def impact_fraction(self, analysis: str) -> float:
        """Fraction of a simulation step the analysis adds on-node."""
        return self.analytics[analysis].simulation_impact / self.simulation_time

    def fig6_series(self) -> dict[str, dict[str, float]]:
        """The Fig. 6 bar groups: {task: {in-situ, movement, in-transit}}."""
        out = {"simulation": {"in-situ": self.simulation_time,
                              "data movement": 0.0, "in-transit": 0.0}}
        for name, a in self.analytics.items():
            out[name] = {"in-situ": a.insitu_time,
                         "data movement": a.movement_time,
                         "in-transit": a.intransit_time}
        return out
