"""The hybrid in-situ/in-transit framework (the paper's contribution).

Two complementary entry points:

* :class:`~repro.core.framework.HybridFramework` — the *functional*
  pipeline: drives a real :class:`~repro.sim.s3d.DecomposedS3D` simulation,
  runs the real in-situ stages on every rank's block, moves intermediate
  results through DART/DataSpaces on the DES engine, and executes the real
  in-transit stages in staging buckets. Everything computes true values at
  laptop scale.
* :class:`~repro.core.runner.ScaledExperiment` — the *performance* replay:
  the same workflow at the paper's full scale (4896/9440 cores,
  1600x1372x430 grid), with computation and movement charged from the
  calibrated Jaguar cost model and played out on the DES. Regenerates
  Table I, Table II, and Fig. 6.
"""

from repro.core.breakdown import AnalyticsTiming, TimingBreakdown
from repro.core.workload import AnalyticsVariant, ScaledWorkload
from repro.core.runner import ExperimentConfig, ScaledExperiment
from repro.core.framework import FrameworkResult, HybridFramework
from repro.core.tradeoff import StrategyOutcome, TradeoffModel
from repro.core.campaign import Campaign, ScalePoint
from repro.core.report import run_report
from repro.core.steering import SteeringRule

__all__ = [
    "AnalyticsTiming",
    "TimingBreakdown",
    "AnalyticsVariant",
    "ScaledWorkload",
    "ExperimentConfig",
    "ScaledExperiment",
    "FrameworkResult",
    "HybridFramework",
    "StrategyOutcome",
    "TradeoffModel",
    "Campaign",
    "ScalePoint",
    "run_report",
    "SteeringRule",
]
