"""Full-scale workload model: element counts and wire bytes per analysis.

Converts an experiment configuration (grid, decomposition, variables) into
the per-rank and aggregate quantities the cost model charges. Constants
that cannot be derived from first principles (topological feature density,
VTK partial-model wire overhead) are calibrated once against Table II and
documented inline.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.vmpi.decomp import BlockDecomposition3D


class AnalyticsVariant(enum.Enum):
    """The five analytics deployments of Table II / Fig. 6."""

    VIS_INSITU = "in-situ visualization"
    STATS_INSITU = "in-situ descriptive statistics"
    VIS_HYBRID = "hybrid in-situ/in-transit visualization"
    TOPO_HYBRID = "hybrid in-situ/in-transit topology"
    STATS_HYBRID = "hybrid in-situ/in-transit descriptive statistics"


HYBRID_VARIANTS = (AnalyticsVariant.VIS_HYBRID, AnalyticsVariant.TOPO_HYBRID,
                   AnalyticsVariant.STATS_HYBRID)

#: Wire bytes per (rank, variable) of a serialized partial statistics
#: model. The minimal payload is 7 doubles (56 B); the VTK model tables
#: the paper ships carry names, cardinalities and layout metadata.
#: Calibrated from Table II: 13.30 MiB / (4480 ranks x 14 vars) ~ 223 B.
STATS_WIRE_BYTES_PER_VAR = 223

#: Fraction of boundary-face vertices that are boundary-restricted maxima
#: (the "topological ghost cells" each subtree retains), plus the volume
#: density of interior critical points, for combustion-like fields.
#: Calibrated so 4480 subtrees total ~87 MiB (Table II).
TOPO_BOUNDARY_MAX_DENSITY = 0.0222
TOPO_CRITICAL_DENSITY = 6.0e-4

#: Bytes per subtree node on the wire: (id, value) = 16 B for the node and
#: 16 B for its outgoing edge record.
TOPO_BYTES_PER_NODE = 32

#: Bytes per streamed element assumed by the in-transit glue-rate
#: calibration (Table II: 119.81 s over 87.02 MB).
TOPO_STREAM_ELEMENT_BYTES = 24


@dataclass(frozen=True)
class ScaledWorkload:
    """Per-analysis workload quantities for one experiment configuration."""

    global_shape: tuple[int, int, int]
    proc_grid: tuple[int, int, int]
    n_vars: int = 14
    itemsize: int = 8
    downsample_stride: int = 8
    #: Variables shipped by the hybrid renderer (temperature + one species).
    n_render_vars: int = 2

    def __post_init__(self) -> None:
        # Validates divisibility/bounds as a side effect.
        BlockDecomposition3D(self.global_shape, self.proc_grid)
        if self.downsample_stride < 1:
            raise ValueError("downsample_stride must be >= 1")
        if not 1 <= self.n_render_vars <= self.n_vars:
            raise ValueError("n_render_vars must be in [1, n_vars]")

    # -- geometry ------------------------------------------------------------

    @property
    def n_ranks(self) -> int:
        px, py, pz = self.proc_grid
        return px * py * pz

    @property
    def block_shape(self) -> tuple[int, int, int]:
        return tuple(n // p for n, p in zip(self.global_shape, self.proc_grid))  # type: ignore[return-value]

    @property
    def block_cells(self) -> int:
        sx, sy, sz = self.block_shape
        return sx * sy * sz

    @property
    def total_cells(self) -> int:
        nx, ny, nz = self.global_shape
        return nx * ny * nz

    @property
    def checkpoint_bytes(self) -> int:
        """Table I's "Data size": all variables, double precision."""
        return self.total_cells * self.n_vars * self.itemsize

    @property
    def block_surface_vertices(self) -> int:
        sx, sy, sz = self.block_shape
        return 2 * (sx * sy + sy * sz + sx * sz)

    @property
    def downsampled_block_cells(self) -> int:
        return math.prod(math.ceil(s / self.downsample_stride)
                         for s in self.block_shape)

    @property
    def topo_nodes_per_rank(self) -> int:
        """Subtree size: interior criticals + boundary-restricted maxima +
        the 8 sub-domain corners (§III's ghost-cell-equivalent set)."""
        return int(self.block_surface_vertices * TOPO_BOUNDARY_MAX_DENSITY
                   + self.block_cells * TOPO_CRITICAL_DENSITY) + 8

    # -- per-variant quantities ------------------------------------------------

    def insitu_op(self, variant: AnalyticsVariant) -> tuple[str, int]:
        """(cost-model op, per-rank elements) of the in-situ stage."""
        if variant is AnalyticsVariant.VIS_INSITU:
            return ("vis.render_insitu", self.block_cells)
        if variant is AnalyticsVariant.STATS_INSITU:
            return ("stats.learn", self.n_vars * self.block_cells)
        if variant is AnalyticsVariant.VIS_HYBRID:
            return ("vis.downsample", self.n_render_vars * self.block_cells)
        if variant is AnalyticsVariant.TOPO_HYBRID:
            return ("topo.subtree", self.block_cells)
        if variant is AnalyticsVariant.STATS_HYBRID:
            return ("stats.learn", self.n_vars * self.block_cells)
        raise ValueError(f"unknown variant {variant}")

    def movement_bytes_per_rank(self, variant: AnalyticsVariant) -> int:
        """Wire size of one rank's intermediate result (hybrid variants)."""
        if variant is AnalyticsVariant.VIS_HYBRID:
            return (self.downsampled_block_cells * self.n_render_vars
                    * self.itemsize)
        if variant is AnalyticsVariant.TOPO_HYBRID:
            return self.topo_nodes_per_rank * TOPO_BYTES_PER_NODE
        if variant is AnalyticsVariant.STATS_HYBRID:
            return self.n_vars * STATS_WIRE_BYTES_PER_VAR
        return 0

    def movement_bytes_total(self, variant: AnalyticsVariant) -> int:
        return self.n_ranks * self.movement_bytes_per_rank(variant)

    def intransit_op(self, variant: AnalyticsVariant) -> tuple[str, int] | None:
        """(cost-model op, total elements) of the serial in-transit stage."""
        if variant is AnalyticsVariant.VIS_HYBRID:
            n = self.movement_bytes_total(variant) // self.itemsize
            return ("vis.render_intransit", n)
        if variant is AnalyticsVariant.TOPO_HYBRID:
            n = self.movement_bytes_total(variant) // TOPO_STREAM_ELEMENT_BYTES
            return ("topo.stream_glue", n)
        if variant is AnalyticsVariant.STATS_HYBRID:
            return ("stats.derive", self.n_vars)
        return None

    def movement_pack_op(self, variant: AnalyticsVariant) -> tuple[str, int] | None:
        """Serialization charged to data movement (topology subtrees are
        structure-heavy to pack/unpack; dense buffers are free)."""
        if variant is AnalyticsVariant.TOPO_HYBRID:
            n = self.movement_bytes_total(variant) // TOPO_STREAM_ELEMENT_BYTES
            return ("topo.pack_stream", n)
        return None
