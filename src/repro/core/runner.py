"""Full-scale experiment replay (Tables I & II, Figs. 5 & 6).

:class:`ExperimentConfig` captures the paper's two core allocations;
:class:`ScaledExperiment` produces

* :meth:`~ScaledExperiment.breakdown` — the per-timestep cost breakdown
  from the calibrated cost model (Table I rows, Table II rows, Fig. 6
  bars), and
* :meth:`~ScaledExperiment.run_schedule` — a DES replay of the staging
  workflow at full scale: per-timestep in-transit tasks with true wire
  sizes flow through DataSpaces' queue into staging buckets, exposing
  queue waits, bucket utilisation, and the temporal-multiplexing behaviour
  that decouples analysis latency from simulation cadence (§V).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.breakdown import AnalyticsTiming, TimingBreakdown
from repro.core.workload import HYBRID_VARIANTS, AnalyticsVariant, ScaledWorkload
from repro.costmodel.jaguar import jaguar_cost_model
from repro.costmodel.models import CostModel
from repro.des import Engine
from repro.io.fpp import IOTimeModel
from repro.machine.specs import MachineSpec, jaguar_xk6
from repro.obs.probes import ProbeSampler, default_slos, standard_probes
from repro.obs.tracer import Tracer, get_tracer, tracing
from repro.staging.dataspaces import DataSpaces
from repro.staging.descriptors import TaskResult
from repro.staging.scheduler import AssignmentRecord
from repro.transport.dart import DartTransport

PAPER_GLOBAL_SHAPE = (1600, 1372, 430)


@dataclass(frozen=True)
class ExperimentConfig:
    """One column of Table I."""

    name: str
    proc_grid: tuple[int, int, int]
    n_service_cores: int
    n_intransit_cores: int
    global_shape: tuple[int, int, int] = PAPER_GLOBAL_SHAPE
    n_vars: int = 14

    @property
    def n_sim_cores(self) -> int:
        px, py, pz = self.proc_grid
        return px * py * pz

    @property
    def n_cores(self) -> int:
        return self.n_sim_cores + self.n_service_cores + self.n_intransit_cores

    def workload(self) -> ScaledWorkload:
        return ScaledWorkload(self.global_shape, self.proc_grid,
                              n_vars=self.n_vars)

    @classmethod
    def paper_4896(cls) -> "ExperimentConfig":
        """Table I, first column: 4480 sim + 160 DataSpaces + 256 in-transit."""
        return cls(name="4896 cores", proc_grid=(16, 28, 10),
                   n_service_cores=160, n_intransit_cores=256)

    @classmethod
    def paper_9440(cls) -> "ExperimentConfig":
        """Table I, second column: 8960 sim + 256 DataSpaces + 224 in-transit."""
        return cls(name="9440 cores", proc_grid=(32, 28, 10),
                   n_service_cores=256, n_intransit_cores=224)


@dataclass
class ScheduleResult:
    """Outcome of a DES replay of the staging workflow."""

    results: list[TaskResult]
    makespan: float
    n_steps: int
    sim_step_time: float
    n_buckets: int
    #: Scheduler assignment records (Fig. 5 event-trace validation).
    assignments: list[AssignmentRecord] = field(default_factory=list)
    #: Live-probe sampler attached to the replay (``probe_interval``
    #: given under tracing), carrying gauge time series and SLO alerts.
    probes: "ProbeSampler | None" = None
    #: Per-shard load report (a :class:`repro.service.shards.ShardBalanceReport`)
    #: when the replay ran on sharded staging (``n_shards > 1``); None on
    #: the classic single-space path.
    shard_balance: Any | None = None
    #: The :class:`repro.control.PlacementController` that rode the replay
    #: (``controller=`` given), carrying its decision log, windowed
    #: signals, and pool-size trajectory.
    controller: Any | None = None
    #: The attached :class:`repro.faults.FaultInjector` when the replay
    #: ran under an injected fault plan (``fault_config=`` given).
    faults: Any | None = None
    #: The finalized :class:`repro.obs.capacity.CapacityReport` when a
    #: capacity ledger rode the replay (``capacity=`` given, or tracing
    #: enabled) — measured resident-bytes watermarks, NIC occupancy,
    #: leak scan and headroom vs the analytic bound.
    capacity: Any | None = None

    def by_analysis(self, name: str) -> list[TaskResult]:
        return [r for r in self.results if r.analysis == name]

    def max_queue_wait(self, name: str | None = None) -> float:
        rs = self.results if name is None else self.by_analysis(name)
        return max((r.queue_wait for r in rs), default=0.0)

    def keeps_pace(self, slack: float = 1.0) -> bool:
        """True if no task waited longer than ~one simulation step in the
        queue — i.e. staging absorbs the arrival rate and analysis latency
        stays decoupled from simulation cadence (the §V claim). With too
        few buckets, queue waits grow with every analysed step instead."""
        return self.max_queue_wait() <= slack * self.sim_step_time


class ScaledExperiment:
    """The paper's experiment at full scale on the modeled machine."""

    def __init__(self, config: ExperimentConfig,
                 machine: MachineSpec | None = None,
                 cost_model: CostModel | None = None) -> None:
        self.config = config
        self.machine = machine or jaguar_xk6()
        self.machine.validate_allocation(config.n_cores)
        self.cost = cost_model or jaguar_cost_model()
        self.workload = config.workload()

    # -- closed-form per-timestep costs (Tables I & II, Fig. 6) -----------------

    def simulation_step_time(self) -> float:
        return self.cost.time("s3d.step", self.workload.block_cells)

    def movement_time(self, variant: AnalyticsVariant) -> float:
        """End-to-end intermediate-data drain time for one timestep.

        All ranks' messages funnel into one serial staging consumer: per
        message, the wire time plus DataSpaces task handling; plus any
        serialization charge (topology's pointer-rich subtrees).
        """
        per_rank = self.workload.movement_bytes_per_rank(variant)
        if per_rank == 0:
            return 0.0
        net = self.machine.network
        per_msg = (net.transfer_time(per_rank)
                   + self.cost.time("staging.task_overhead", 1))
        total = self.workload.n_ranks * per_msg
        pack = self.workload.movement_pack_op(variant)
        if pack is not None:
            total += self.cost.time(*pack)
        return total

    def analytics_timing(self, variant: AnalyticsVariant) -> AnalyticsTiming:
        insitu_op, insitu_n = self.workload.insitu_op(variant)
        insitu = self.cost.time(insitu_op, insitu_n)
        if variant is AnalyticsVariant.STATS_HYBRID:
            insitu += self.cost.time("stats.pack_partial", self.workload.n_vars)
        intransit = 0.0
        op = self.workload.intransit_op(variant)
        if op is not None:
            intransit = self.cost.time(*op)
        return AnalyticsTiming(
            name=variant.value,
            insitu_time=insitu,
            movement_time=self.movement_time(variant),
            movement_bytes=self.workload.movement_bytes_total(variant),
            intransit_time=intransit,
        )

    def breakdown(self) -> TimingBreakdown:
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span("breakdown.compute", lane="driver",
                             category="model", config=self.config.name):
                return self._breakdown()
        return self._breakdown()

    def _breakdown(self) -> TimingBreakdown:
        """Uninstrumented breakdown body (the tracer-overhead baseline)."""
        io = IOTimeModel(self.machine.filesystem)
        cfg = self.config
        return TimingBreakdown(
            n_cores=cfg.n_cores,
            n_sim_cores=cfg.n_sim_cores,
            n_service_cores=cfg.n_service_cores,
            n_intransit_cores=cfg.n_intransit_cores,
            global_shape=cfg.global_shape,
            n_vars=cfg.n_vars,
            data_bytes=self.workload.checkpoint_bytes,
            simulation_time=self.simulation_step_time(),
            io_read_time=io.read_time(cfg.global_shape, cfg.n_vars,
                                      cfg.n_sim_cores),
            io_write_time=io.write_time(cfg.global_shape, cfg.n_vars,
                                        cfg.n_sim_cores),
            analytics={v.value: self.analytics_timing(v)
                       for v in AnalyticsVariant},
        )

    def min_sustainable_interval(self, n_buckets: int,
                                 variant: AnalyticsVariant =
                                 AnalyticsVariant.TOPO_HYBRID) -> int:
        """Smallest analysis interval the staging area absorbs (§III:
        "the fastest sustainable analysis frequency is limited by memory
        and processing constraints on the secondary system").

        Steady state requires one task's service time to fit within
        ``interval x sim_step x n_buckets``.
        """
        if n_buckets < 1:
            raise ValueError("n_buckets must be >= 1")
        row = self.analytics_timing(variant)
        task = row.movement_time + row.intransit_time
        return max(1, math.ceil(task / (self.simulation_step_time()
                                        * n_buckets)))

    def staging_memory_needed(self, analysis_interval: int,
                              n_buckets: int) -> int:
        """Peak intermediate bytes resident in the staging area.

        Each in-flight analysed step holds one copy of every hybrid
        variant's intermediate data; the number in flight is bounded by
        the slowest task's duration over the analysis cadence (and by the
        bucket count).
        """
        if analysis_interval < 1 or n_buckets < 1:
            raise ValueError("analysis_interval and n_buckets must be >= 1")
        per_step = sum(self.workload.movement_bytes_total(v)
                       for v in HYBRID_VARIANTS)
        slowest = max(self.analytics_timing(v).movement_time
                      + self.analytics_timing(v).intransit_time
                      for v in HYBRID_VARIANTS)
        cadence = analysis_interval * self.simulation_step_time()
        in_flight = min(math.ceil(slowest / cadence), n_buckets)
        return per_step * max(1, in_flight)

    # -- DES schedule replay (Fig. 5, temporal multiplexing) ---------------------

    def _service_cost_model(self) -> CostModel:
        """Base model + one 'service' op per hybrid variant: the time a
        bucket holds the task beyond the bulk pull (per-message handling
        overhead plus the in-transit computation)."""
        model = self.cost
        net = self.machine.network
        for variant in HYBRID_VARIANTS:
            per_rank = self.workload.movement_bytes_per_rank(variant)
            total_bytes = self.workload.movement_bytes_total(variant)
            overhead = (self.movement_time(variant)
                        - net.transfer_time(total_bytes))
            op = self.workload.intransit_op(variant)
            intransit = self.cost.time(*op) if op else 0.0
            model = model.with_rate(f"service.{variant.name}",
                                    max(overhead, 0.0) + intransit)
        return model

    def run_schedule(self, n_steps: int = 10,
                     analyses: tuple[AnalyticsVariant, ...] = HYBRID_VARIANTS,
                     n_buckets: int | None = None,
                     analysis_interval: int = 1,
                     probe_interval: float | None = None,
                     slos: tuple | None = None,
                     n_shards: int = 1,
                     lease_timeout: float | None = None,
                     bucket_restart_delay: float | None = None,
                     max_bucket_restarts: int = 0,
                     controller: Any | None = None,
                     fault_config: Any | None = None,
                     capacity: Any | None = None) -> ScheduleResult:
        """Replay ``n_steps`` of the hybrid workflow on the DES.

        One grouped in-transit task per (hybrid analysis, analysed step)
        arrives when the simulation finishes that step; staging buckets
        pull the full-scale intermediate data and hold it for the modeled
        service time. Distinct timesteps land on distinct buckets — the
        paper's temporal multiplexing.

        With tracing enabled and ``probe_interval`` given, a
        :class:`~repro.obs.probes.ProbeSampler` rides the replay: the
        standard gauges (queue depth, NIC occupancy, bucket utilisation,
        RDMA live bytes) are sampled every ``probe_interval`` simulated
        seconds and the SLO rules (``slos``, default
        :func:`~repro.obs.probes.default_slos`) are checked live; the
        sampler is returned on :attr:`ScheduleResult.probes`.

        With ``n_shards > 1`` the staging area is a
        :class:`~repro.service.shards.ShardedDataSpaces`: N independent
        tuple-space shards (each with its own transport fabric and
        scheduler) with region keys DHT-routed across them; buckets are
        split over the shards and :attr:`ScheduleResult.shard_balance`
        carries the per-shard load report. The fault knobs
        (``lease_timeout``, ``bucket_restart_delay``,
        ``max_bucket_restarts``) mirror the :class:`DataSpaces`
        constructor and apply per shard.

        With ``controller`` (a :class:`repro.control.PlacementController`)
        the replay is driven by a DES process that consults the controller
        every policy window: analyses the controller has pulled in-situ
        are charged on the simulation timeline instead of being submitted
        in-transit, and the staging pool is elastically resized through
        :meth:`DataSpaces.scale_to`. A controller that takes no decisions
        reproduces the static replay bit-for-bit. ``fault_config`` (a
        :class:`repro.faults.FaultConfig`) attaches a deterministic fault
        plan — injected bucket crashes and RDMA pull faults — to either
        kind of replay. Both require ``n_shards == 1``.

        ``capacity`` controls the byte-accurate capacity ledger
        (:class:`repro.obs.capacity.CapacityLedger`): ``True`` (or a
        prebuilt ledger) attaches one to every transport of the run,
        ``False`` disables it, and the default ``None`` attaches one iff
        tracing is enabled — an untraced replay pays only the ``is
        None`` checks in the transport hot paths. The finalized report
        is returned on :attr:`ScheduleResult.capacity`.
        """
        if n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {n_steps}")
        if analysis_interval < 1:
            raise ValueError("analysis_interval must be >= 1")
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if n_shards != 1 and (controller is not None
                              or fault_config is not None):
            raise ValueError(
                "controller= and fault_config= require n_shards == 1")
        n_buckets = n_buckets if n_buckets is not None else self.config.n_intransit_cores
        if n_buckets < 1:
            raise ValueError("need at least one staging bucket")

        engine = Engine()
        if n_shards == 1:
            transport = DartTransport(engine, self.machine.network)
            ds: Any = DataSpaces(
                engine, transport,
                n_servers=max(1, self.config.n_service_cores),
                cost_model=self._service_cost_model(),
                lease_timeout=lease_timeout,
                bucket_restart_delay=bucket_restart_delay,
                max_bucket_restarts=max_bucket_restarts)
            probe_map = standard_probes(ds, transport)
        else:
            # Lazy import: repro.service depends on this module.
            from repro.service.shards import ShardedDataSpaces
            ds = ShardedDataSpaces(
                engine, self.machine.network, n_shards=n_shards,
                n_servers=max(1, self.config.n_service_cores),
                cost_model=self._service_cost_model(),
                lease_timeout=lease_timeout,
                bucket_restart_delay=bucket_restart_delay,
                max_bucket_restarts=max_bucket_restarts)
            probe_map = ds.probe_map()
        ds.spawn_buckets([f"staging-{i}" for i in range(n_buckets)])

        ledger = None
        if capacity is None:
            capacity = get_tracer().enabled
        if capacity:
            # Lazy import: repro.obs.capacity imports nothing from core.
            from repro.obs.capacity import CapacityLedger
            ledger = (capacity if isinstance(capacity, CapacityLedger)
                      else CapacityLedger())
            ledger.bind_clock(lambda: engine.now)
            ledger.analytic_bound_bytes = self.staging_memory_needed(
                analysis_interval, n_buckets)
            if n_shards == 1:
                ledger.attach_transport(transport, shard="shard0")
            else:
                for i, shard_transport in enumerate(ds.transports):
                    ledger.attach_transport(shard_transport,
                                            shard=f"shard{i}")

        injector = None
        if fault_config is not None:
            # Lazy import: repro.faults depends on the staging layer.
            from repro.faults.injector import FaultInjector
            injector = FaultInjector(engine, fault_config).attach(ds)

        sampler: ProbeSampler | None = None
        if probe_interval is not None and get_tracer().enabled:
            sampler = ProbeSampler(
                probe_interval, probe_map,
                slos=default_slos(n_buckets) if slos is None else slos)
            engine.attach_probe(sampler)

        sim_dt = self.simulation_step_time()
        # Each analysed step charges the in-situ stages on the sim cores;
        # submissions happen at the end of the stretched step.
        insitu_total = sum(
            self.cost.time(*self.workload.insitu_op(v)) for v in analyses)
        tracer = get_tracer()
        insitu_results: list[TaskResult] = []
        if controller is None:
            t = 0.0
            for step in range(n_steps):
                sim_span = None
                if tracer.enabled:
                    # Model-time simulation timeline (the sim cores' lane).
                    sim_span = tracer.add_span("sim.step", lane="sim-timeline",
                                               t_start=t, t_end=t + sim_dt,
                                               category="sim",
                                               stage="simulation", step=step)
                t += sim_dt
                if step % analysis_interval == 0:
                    src_span = sim_span
                    if tracer.enabled and insitu_total > 0.0:
                        src_span = tracer.add_span("insitu",
                                                   lane="sim-timeline",
                                                   t_start=t,
                                                   t_end=t + insitu_total,
                                                   category="insitu",
                                                   stage="insitu", step=step)
                    t += insitu_total

                    def submit(when_step: int = step, src=src_span) -> None:
                        # Anchor each submitted task's causal flow at the
                        # producing in-situ span (sim span if no in-situ
                        # work).
                        ds.flow_src = src
                        try:
                            for variant in analyses:
                                ds.submit_insitu_result(
                                    analysis=variant.value,
                                    timestep=when_step,
                                    source_node=f"sim-agg-{when_step}",
                                    payload=None,
                                    nbytes=self.workload.movement_bytes_total(variant),
                                    cost_op=f"service.{variant.name}",
                                    cost_elements=1,
                                )
                        finally:
                            ds.flow_src = None

                    engine.call_at(t, submit)
            # Shutdown only after the last submission has been issued (the
            # drain logic then waits for outstanding tasks to finish).
            engine.call_at(t, ds.shutdown_buckets)
        else:
            # Adaptive replay: a DES driver process walks the same
            # timeline step by step so the controller can re-place
            # analyses and resize the pool *during* the run. With zero
            # decisions the float accumulation order matches the static
            # path exactly, so the results are bit-identical.
            controller.begin_run(experiment=self, ds=ds, analyses=analyses,
                                 n_buckets=n_buckets,
                                 analysis_interval=analysis_interval,
                                 probe_map=probe_map, capacity=ledger)
            insitu_base = {v: self.cost.time(*self.workload.insitu_op(v))
                           for v in analyses}
            intransit_extra = {v: self.analytics_timing(v).intransit_time
                               for v in analyses}
            window = controller.policy.window

            def drive():
                analysed = 0
                for step in range(n_steps):
                    t0 = engine.now
                    yield engine.timeout(sim_dt)
                    sim_span = None
                    if tracer.enabled:
                        sim_span = tracer.add_span(
                            "sim.step", lane="sim-timeline",
                            t_start=t0, t_end=engine.now,
                            category="sim", stage="simulation", step=step)
                    if step % analysis_interval != 0:
                        continue
                    t_in0 = engine.now
                    base = sum(insitu_base[v] for v in analyses)
                    if base > 0.0:
                        yield engine.timeout(base)
                    # Analyses pulled in-situ run their completion stage
                    # on the simulation timeline: no movement, no queue —
                    # but the full in-transit compute charge stretches
                    # the step.
                    for variant in controller.insitu_placed():
                        seg0 = engine.now
                        if intransit_extra[variant] > 0.0:
                            yield engine.timeout(intransit_extra[variant])
                        insitu_results.append(TaskResult(
                            task_id=f"{variant.value}/t{step}/insitu",
                            analysis=variant.value, timestep=step,
                            bucket="sim-insitu", value=None,
                            enqueue_time=seg0, assign_time=seg0,
                            pull_done_time=seg0, finish_time=engine.now,
                            bytes_pulled=0))
                    src_span = sim_span
                    if tracer.enabled and engine.now > t_in0:
                        src_span = tracer.add_span(
                            "insitu", lane="sim-timeline",
                            t_start=t_in0, t_end=engine.now,
                            category="insitu", stage="insitu", step=step)
                    controller.note_step(sim_seconds=sim_dt,
                                         insitu_seconds=engine.now - t_in0)
                    insitu_set = set(controller.insitu_placed())
                    ds.flow_src = src_span
                    try:
                        for variant in analyses:
                            if variant in insitu_set:
                                continue
                            ds.submit_insitu_result(
                                analysis=variant.value,
                                timestep=step,
                                source_node=f"sim-agg-{step}",
                                payload=None,
                                nbytes=self.workload.movement_bytes_total(variant),
                                cost_op=f"service.{variant.name}",
                                cost_elements=1,
                            )
                    finally:
                        ds.flow_src = None
                    analysed += 1
                    if analysed % window == 0:
                        controller.on_window(engine.now)
                ds.shutdown_buckets()

            engine.process(drive(), name="controller-driver")
        engine.run()
        if sampler is not None:
            sampler.finalize(get_tracer().trace)
        results = ds.all_results()
        if insitu_results:
            results = sorted(results + insitu_results,
                             key=lambda r: r.finish_time)
        makespan = max((r.finish_time for r in results), default=0.0)
        if n_shards == 1:
            assignments = list(ds.scheduler.assignments)
            shard_balance = None
        else:
            assignments = ds.assignment_records()
            shard_balance = ds.balance_report()
        return ScheduleResult(results=results, makespan=makespan,
                              n_steps=n_steps, sim_step_time=sim_dt,
                              n_buckets=n_buckets,
                              assignments=assignments,
                              probes=sampler,
                              shard_balance=shard_balance,
                              controller=controller,
                              faults=injector,
                              capacity=(ledger.finalize()
                                        if ledger is not None else None))

    # -- observability ------------------------------------------------------------

    def expected_stage_totals(self, n_steps: int,
                              analyses: tuple[AnalyticsVariant, ...] =
                              HYBRID_VARIANTS,
                              analysis_interval: int = 1) -> dict[str, float]:
        """Model-side per-stage totals for a :meth:`run_schedule` replay.

        This is the reconciliation reference: the traced stage totals of a
        replay must add up to these figures (the ``movement`` wire spans
        and the ``intransit`` service spans split the combined
        movement+intransit charge between them, so they are compared as
        one bucket).
        """
        n_analysed = len(range(0, n_steps, analysis_interval))
        insitu_total = sum(
            self.cost.time(*self.workload.insitu_op(v)) for v in analyses)
        move_plus_intransit = sum(
            self.analytics_timing(v).movement_time
            + self.analytics_timing(v).intransit_time
            for v in analyses)
        return {
            "simulation": n_steps * self.simulation_step_time(),
            "insitu": n_analysed * insitu_total,
            "movement+intransit": n_analysed * move_plus_intransit,
        }

    def traced_schedule(self, n_steps: int = 10,
                        analyses: tuple[AnalyticsVariant, ...] = HYBRID_VARIANTS,
                        n_buckets: int | None = None,
                        analysis_interval: int = 1,
                        probe_interval: float | None = None
                        ) -> tuple[Tracer, ScheduleResult, dict[str, float]]:
        """Replay the schedule under a fresh tracer.

        Returns ``(tracer, result, expected)`` where ``expected`` is
        :meth:`expected_stage_totals` for the same parameters — everything
        needed to export a Chrome trace and reconcile it.
        """
        with tracing() as tracer:
            result = self.run_schedule(n_steps, analyses, n_buckets,
                                       analysis_interval,
                                       probe_interval=probe_interval)
        expected = self.expected_stage_totals(n_steps, analyses,
                                              analysis_interval)
        return tracer, result, expected
