"""Run reports: human-readable summaries of a framework run.

Summarises a :class:`~repro.core.framework.FrameworkResult` the way a
monitoring console would: per-analysis task counts and latencies, bytes
moved, bucket utilisation, steering decisions, and headline science
outputs (feature counts, statistics ranges).
"""

from __future__ import annotations

import numpy as np

from repro.core.framework import FrameworkResult, HybridFramework
from repro.util import TextTable, fmt_bytes
from repro.util.gantt import Span, render_gantt, utilisation


def run_report(framework: HybridFramework, result: FrameworkResult,
               gantt_width: int = 60) -> str:
    """Render the full text report for one run."""
    lines: list[str] = []
    steps = result.analysed_steps
    lines.append(f"hybrid run: {framework.solver.step_count} steps simulated, "
                 f"{len(steps)} analysed, {framework.decomp.n_ranks} ranks, "
                 f"{framework.n_buckets} staging buckets")

    # -- per-analysis task summary ------------------------------------------
    by_analysis: dict[str, list] = {}
    for task in result.task_results:
        by_analysis.setdefault(task.analysis, []).append(task)
    if by_analysis:
        t = TextTable(["analysis", "tasks", "bytes pulled", "mean latency",
                       "max queue wait"], title="\nin-transit activity")
        for name in sorted(by_analysis):
            tasks = by_analysis[name]
            t.add_row([
                name, len(tasks),
                fmt_bytes(sum(x.bytes_pulled for x in tasks)),
                f"{np.mean([x.total_latency for x in tasks]):.4g} s",
                f"{max(x.queue_wait for x in tasks):.4g} s",
            ])
        lines.append(t.render())

    # -- bucket occupancy ----------------------------------------------------
    spans = [Span(x.bucket, x.assign_time, x.finish_time, x.task_id)
             for x in result.task_results]
    if spans:
        makespan = max(s.end for s in spans)
        if makespan > 0:
            util = utilisation(spans, 0.0, makespan)
            lines.append("\nbucket occupancy (simulated time):")
            lines.append(render_gantt(spans, gantt_width))
            lines.append("utilisation: " + ", ".join(
                f"{k}={v:.0%}" for k, v in sorted(util.items())))

    # -- science summary -----------------------------------------------------
    if result.statistics:
        last = max(result.statistics)
        stats = result.statistics[last]
        pieces = [f"{name}: mean {s.mean:.4g}, max {s.maximum:.4g}"
                  for name, s in stats.items()]
        lines.append(f"\nstatistics @ step {last}: " + "; ".join(pieces))
    if result.merge_trees:
        last = max(result.merge_trees)
        tree = result.merge_trees[last].reduced()
        lines.append(f"topology @ step {last}: {len(tree.leaves())} maxima, "
                     f"{len(tree.saddles())} saddles")
    if result.autocorrelation:
        lines.append("autocorrelation: " + ", ".join(
            f"rho({k})={v:.3f}" for k, v in sorted(result.autocorrelation.items())))
    if result.steering_events:
        lines.append(f"\nsteering: {len(result.steering_events)} rule firings")
        for ev in result.steering_events[:8]:
            lines.append(f"  step {ev.timestep}: {ev.rule}")
        if len(result.steering_events) > 8:
            lines.append(f"  ... and {len(result.steering_events) - 8} more")

    lines.append(f"\ntotal intermediate data through staging: "
                 f"{fmt_bytes(result.bytes_moved)}")
    return "\n".join(lines)
