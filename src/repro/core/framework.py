"""The functional hybrid pipeline: real simulation, real analytics, real
data movement through the staging machinery — at laptop scale.

``HybridFramework`` is the public high-level API a downstream user drives
(and what the examples use): configure a lifted-flame case and a
decomposition, choose analyses, call :meth:`run`. Per analysed timestep:

* every rank runs its in-situ stage on its own block (statistics learn,
  merge-tree boundary tree, down-sampling);
* intermediate results are registered with DART and a grouped in-transit
  task is pushed through the DataSpaces scheduler;
* a staging bucket pulls the payloads and executes the in-transit stage
  (serial derive / streaming glue / LUT render) — the *real* computation,
  returning real models, trees and images.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.analysis.statistics.autocorrelation import (
    AutocorrelationLearner,
    derive_autocorrelation,
)
from repro.analysis.statistics.engine import StatisticsEngine
from repro.analysis.statistics.moments import MomentAccumulator
from repro.analysis.statistics.stages import DerivedStatistics
from repro.analysis.topology.distributed import (
    block_boundary_mask,
    compute_block_boundary_trees,
    cross_block_edges,
    glue_boundary_trees,
    global_id_array,
)
from repro.analysis.topology.local_tree import compute_boundary_tree
from repro.analysis.topology.merge_tree import MergeTree
from repro.analysis.topology.stream_merge import StreamingGlue
from repro.analysis.visualization.camera import Camera
from repro.analysis.visualization.compositing import render_blocks_insitu
from repro.analysis.visualization.downsample import (
    downsample_block,
    render_intransit,
)
from repro.analysis.visualization.transfer_function import TransferFunction
from repro.des import Engine
from repro.obs.tracer import get_tracer
from repro.sim.lifted_flame import LiftedFlameCase
from repro.sim.s3d import DecomposedS3D
from repro.staging.dataspaces import DataSpaces
from repro.staging.descriptors import TaskResult
from repro.transport.dart import DartTransport
from repro.vmpi.comm import VirtualComm
from repro.vmpi.decomp import BlockDecomposition3D


@dataclass
class FrameworkResult:
    """Everything the pipeline produced, keyed by timestep."""

    statistics: dict[int, dict[str, DerivedStatistics]] = field(default_factory=dict)
    merge_trees: dict[int, MergeTree] = field(default_factory=dict)
    hybrid_images: dict[int, np.ndarray] = field(default_factory=dict)
    insitu_images: dict[int, np.ndarray] = field(default_factory=dict)
    temperature_fields: dict[int, np.ndarray] = field(default_factory=dict)
    #: lag -> temporal autocorrelation over the whole run (§VI extension).
    autocorrelation: dict[int, float] = field(default_factory=dict)
    #: step -> correlation matrix over the stats variables ([21] extension).
    correlations: dict[int, np.ndarray] = field(default_factory=dict)
    task_results: list[TaskResult] = field(default_factory=list)
    #: Recorded steering-rule firings, in firing order.
    steering_events: list = field(default_factory=list)
    bytes_moved: int = 0

    @property
    def analysed_steps(self) -> list[int]:
        steps = (set(self.statistics) | set(self.merge_trees)
                 | set(self.hybrid_images) | set(self.insitu_images))
        return sorted(steps)


class HybridFramework:
    """High-level driver of the hybrid in-situ/in-transit workflow."""

    KNOWN_ANALYSES = ("statistics", "topology", "visualization",
                      "visualization_insitu", "autocorrelation",
                      "correlation")

    def __init__(self, case: LiftedFlameCase, decomp: BlockDecomposition3D,
                 analyses: tuple[str, ...] = ("statistics", "topology",
                                              "visualization"),
                 stats_variables: tuple[str, ...] = ("T", "H2", "OH"),
                 topology_variable: str = "T",
                 render_variable: str = "T",
                 downsample_stride: int = 2,
                 camera: Camera | None = None,
                 transfer_function: TransferFunction | None = None,
                 n_buckets: int = 4,
                 keep_fields: bool = False,
                 streaming_topology: bool = False,
                 autocorrelation_variable: str = "T",
                 autocorrelation_max_lag: int = 3,
                 steering: tuple = ()) -> None:
        for a in analyses:
            if a not in self.KNOWN_ANALYSES:
                raise ValueError(
                    f"unknown analysis {a!r}; known: {self.KNOWN_ANALYSES}")
        self.case = case
        self.decomp = decomp
        self.analyses = tuple(analyses)
        self.stats_variables = tuple(stats_variables)
        self.topology_variable = topology_variable
        self.render_variable = render_variable
        self.downsample_stride = downsample_stride
        self.camera = camera or Camera(image_shape=(32, 32))
        self.tf = transfer_function
        self.n_buckets = n_buckets
        self.keep_fields = keep_fields
        self.streaming_topology = streaming_topology
        self.autocorrelation_variable = autocorrelation_variable
        if autocorrelation_max_lag < 1:
            raise ValueError("autocorrelation_max_lag must be >= 1")
        self.autocorrelation_max_lag = autocorrelation_max_lag
        self.steering = tuple(steering)
        #: Live analysis cadence; steering rules may change it mid-run.
        self.analysis_interval = 1

        # Enable tracing BEFORE constructing the framework to trace a run.
        self._tracer = get_tracer()
        self.solver = DecomposedS3D(case, decomp)
        self.engine = Engine()
        self.transport = DartTransport(self.engine)
        self.dataspaces = DataSpaces(self.engine, self.transport, n_servers=2)
        self.dataspaces.spawn_buckets(
            [f"staging-{i}" for i in range(n_buckets)])
        self._cross_edges = cross_block_edges(decomp)
        self._ids = global_id_array(decomp.global_shape)
        self._stats_engine = StatisticsEngine(VirtualComm(decomp.n_ranks))
        self._autocorr_learners = [
            AutocorrelationLearner(self.autocorrelation_max_lag)
            for _ in range(decomp.n_ranks)
        ] if "autocorrelation" in self.analyses else []

    # -- per-analysis in-situ stages + task submission ---------------------------

    def _gather(self, variable: str) -> np.ndarray:
        return self.decomp.gather([p[variable] for p in self.solver.parts])

    def _transfer_function(self, field_min: float, field_max: float
                           ) -> TransferFunction:
        if self.tf is not None:
            return self.tf
        return TransferFunction.hot(field_min, max(field_max, field_min + 1e-9))

    def _submit_statistics(self, step: int) -> None:
        partials = [
            {name: MomentAccumulator.from_data(part[name])
             for name in self.stats_variables}
            for part in self.solver.parts
        ]
        packed = self._stats_engine.pack_partials(partials)
        names = list(self.stats_variables)
        descs = [self.transport.register(f"sim-{rank}", vec,
                                         meta={"rank": rank,
                                               "analysis": "statistics",
                                               "timestep": step})
                 for rank, vec in enumerate(packed)]
        engine = self._stats_engine

        self.dataspaces.submit_grouped_result(
            "statistics", step, descs,
            compute=lambda payloads: engine.intransit_derive(payloads, names))

    def _submit_topology(self, step: int) -> None:
        boundary_trees = []
        for rank, block in enumerate(self.decomp.blocks()):
            values = self.solver.parts[rank][self.topology_variable]
            bt = compute_boundary_tree(
                values, self._ids[block.slices],
                block_boundary_mask(block, self.decomp.global_shape))
            boundary_trees.append(bt)
        descs = [self.transport.register(f"sim-{rank}", bt,
                                         nbytes=bt.nbytes,
                                         meta={"rank": rank,
                                               "analysis": "topology",
                                               "timestep": step})
                 for rank, bt in enumerate(boundary_trees)]
        cross = self._cross_edges

        if self.streaming_topology:
            # §VI streaming refinement: each subtree is glued the moment
            # its pull completes; cross-block edges close the tree at the
            # end (their endpoints are only all known once every block's
            # boundary vertices have arrived).
            def stream_one(state, bt):
                glue = state if state is not None else StreamingGlue()
                for vid, val in bt.nodes.items():
                    glue.add_vertex(vid, val)
                for hi, lo in bt.edges:
                    glue.add_edge(hi, lo)
                return glue

            def finish(glue):
                for u, v in cross:
                    glue.add_edge(u, v)
                return glue.finalize()

            self.dataspaces.submit_grouped_result(
                "topology", step, descs,
                stream_compute=stream_one, stream_finalize=finish)
        else:
            self.dataspaces.submit_grouped_result(
                "topology", step, descs,
                compute=lambda payloads: glue_boundary_trees(payloads, cross))

    def _submit_visualization(self, step: int) -> None:
        blocks = []
        for rank, block in enumerate(self.decomp.blocks()):
            values = self.solver.parts[rank][self.render_variable]
            blocks.append(downsample_block(values, block.lo, block.hi,
                                           self.downsample_stride))
        field_min = min(float(b.data.min()) for b in blocks)
        field_max = max(float(b.data.max()) for b in blocks)
        tf = self._transfer_function(field_min, field_max)
        descs = [self.transport.register(f"sim-{rank}", b,
                                         meta={"rank": rank,
                                               "analysis": "visualization",
                                               "timestep": step})
                 for rank, b in enumerate(blocks)]
        shape = self.decomp.global_shape
        camera = self.camera

        self.dataspaces.submit_grouped_result(
            "visualization", step, descs,
            compute=lambda payloads: render_intransit(payloads, shape,
                                                      camera, tf))

    def _submit_correlation(self, step: int) -> None:
        """Multivariate statistics [21]: per-rank covariance partials,
        merged and derived serially in-transit into a correlation matrix
        over ``stats_variables``."""
        from repro.analysis.statistics.multivariate import (
            CovarianceAccumulator,
            merge_covariances,
        )
        names = list(self.stats_variables)
        d = len(names)
        packed = []
        for part in self.solver.parts:
            acc, _ = CovarianceAccumulator.from_data(
                {n: part[n].ravel() for n in names})
            packed.append(acc.pack())
        descs = [self.transport.register(f"sim-{rank}", vec,
                                         meta={"rank": rank})
                 for rank, vec in enumerate(packed)]

        def derive_matrix(payloads):
            accs = [CovarianceAccumulator.unpack(v, d) for v in payloads]
            return merge_covariances(accs).correlation()

        self.dataspaces.submit_grouped_result(
            "correlation", step, descs, compute=derive_matrix)

    def _observe_autocorrelation(self) -> None:
        """Per-step in-situ stage: feed each rank's block to its learner."""
        for learner, part in zip(self._autocorr_learners, self.solver.parts):
            learner.observe(part[self.autocorrelation_variable])

    def _submit_autocorrelation(self, step: int) -> None:
        """Ship packed lag partials; serial in-transit derive of rho(k)."""
        packed = [learner.pack() for learner in self._autocorr_learners]
        descs = [self.transport.register(f"sim-{rank}", vec,
                                         meta={"rank": rank})
                 for rank, vec in enumerate(packed)]
        max_lag = self.autocorrelation_max_lag

        self.dataspaces.submit_grouped_result(
            "autocorrelation", step, descs,
            compute=lambda payloads: derive_autocorrelation(payloads, max_lag))

    def _render_insitu(self, step: int, result: FrameworkResult) -> None:
        field = self._gather(self.render_variable)
        tf = self._transfer_function(float(field.min()), float(field.max()))
        result.insitu_images[step] = render_blocks_insitu(
            field, self.decomp, self.camera, tf)

    # -- driver --------------------------------------------------------------------

    def run(self, n_steps: int, analysis_interval: int = 1) -> FrameworkResult:
        """Advance the simulation, analysing every ``analysis_interval``-th
        step (step 0 state is analysed after the first advance).

        The staging engine is drained after every step, so in-transit
        results complete concurrently with the run and steering rules can
        adjust the live cadence (``self.analysis_interval``).
        """
        if n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {n_steps}")
        if analysis_interval < 1:
            raise ValueError("analysis_interval must be >= 1")
        self.analysis_interval = analysis_interval
        result = FrameworkResult()
        last_analysed: int | None = None
        for step in range(n_steps):
            self.solver.step()
            if "autocorrelation" in self.analyses:
                self._observe_autocorrelation()
            due = (last_analysed is None
                   or step - last_analysed >= self.analysis_interval)
            if due:
                last_analysed = step
                if self._tracer.enabled:
                    self._tracer.counter("framework.analysed_steps")
                if "statistics" in self.analyses:
                    self._traced_submit("statistics", step,
                                        self._submit_statistics)
                if "topology" in self.analyses:
                    self._traced_submit("topology", step, self._submit_topology)
                if "visualization" in self.analyses:
                    self._traced_submit("visualization", step,
                                        self._submit_visualization)
                if "correlation" in self.analyses:
                    self._traced_submit("correlation", step,
                                        self._submit_correlation)
                if "visualization_insitu" in self.analyses:
                    self._render_insitu(step, result)
                if self.keep_fields:
                    result.temperature_fields[step] = self._gather("T")
            # Drain the staging engine: in-transit results for this step
            # complete now, making steering decisions causal.
            if self._tracer.enabled:
                with self._tracer.span("staging.drain", lane="driver",
                                       category="driver", step=step):
                    self.engine.run()
            else:
                self.engine.run()
            fresh = self._collect(result)
            self._apply_steering(result, fresh)

        if ("autocorrelation" in self.analyses
                and self.solver.step_count > 1):
            self._submit_autocorrelation(n_steps - 1)
        self.dataspaces.shutdown_buckets()
        self.engine.run()
        self._collect(result)
        result.bytes_moved = self.transport.bytes_moved()
        return result

    def _traced_submit(self, analysis: str, step: int, submit) -> None:
        """Run one in-situ stage + task submission under a span.

        The span's trace-clock duration is ~0 (the DES clock does not
        advance while in-situ Python code runs); the wall-clock duration is
        the real in-situ cost — export with ``clock="wall"`` to see it.
        """
        if self._tracer.enabled:
            with self._tracer.span(f"submit:{analysis}", lane="driver",
                                   category="insitu", stage="insitu",
                                   analysis=analysis, step=step) as sp:
                # Start the causal flow at the in-situ stage so vmpi
                # collective hops land on it; the submitted task adopts
                # it via DataSpaces.next_flow.
                flow = self._tracer.flow_begin("task", src_span=sp,
                                               analysis=analysis, step=step)
                self.dataspaces.next_flow = flow
                self._stats_engine.comm.flow = flow
                try:
                    submit(step)
                finally:
                    self._stats_engine.comm.flow = None
                    self.dataspaces.next_flow = None
            self._tracer.counter(f"framework.submit.{analysis}")
        else:
            submit(step)

    def _collect(self, result: FrameworkResult) -> list[TaskResult]:
        """Fold newly completed in-transit tasks into the result.

        ``all_results()`` is sorted by finish time, which only grows
        across drains, so the already-collected prefix is stable.
        """
        all_tasks = self.dataspaces.all_results()
        fresh = all_tasks[len(result.task_results):]
        for task in fresh:
            result.task_results.append(task)
            if task.analysis == "statistics":
                result.statistics[task.timestep] = task.value
            elif task.analysis == "topology":
                result.merge_trees[task.timestep] = task.value
            elif task.analysis == "visualization":
                result.hybrid_images[task.timestep] = task.value
            elif task.analysis == "autocorrelation":
                result.autocorrelation = task.value
            elif task.analysis == "correlation":
                result.correlations[task.timestep] = task.value
        return fresh

    def _apply_steering(self, result: FrameworkResult,
                        fresh: list[TaskResult]) -> None:
        """Evaluate steering rules against results completed this step."""
        if not fresh or not self.steering:
            return
        from repro.core.steering import SteeringEvent
        for task in fresh:
            for rule in self.steering:
                before = self.analysis_interval
                if rule.consider(self, task):
                    event = SteeringEvent(
                        rule=rule.name, timestep=task.timestep,
                        analysis=task.analysis,
                        detail={"analysis_interval": self.analysis_interval,
                                "previous_interval": before})
                    result.steering_events.append(event)
                    self.dataspaces.put("steering", len(result.steering_events),
                                        event)
