"""Trade-offs between in-situ, in-transit, and post-processing (§VI).

"We have plans to use the current system as a test bed to experiment
trade-offs between in-situ, in-transit, and post-processing algorithms."
This module implements that test bed on the calibrated machine model. It
quantifies the abstract's three headline claims for any analysis workload:

* **temporal resolution** — the stride at which analysis results exist;
* **I/O cost** — time added to the simulation's critical path for
  checkpointing vs in-situ stages + asynchronous movement;
* **time to insight** — latency from a timestep's data existing in memory
  to its analysis results being available.

Three strategies are compared:

* ``post-processing`` — checkpoint every S-th step to Lustre; read back
  and analyse after the run;
* ``concurrent hybrid`` — the paper's approach: in-situ filtering +
  asynchronous in-transit completion at every analysed step;
* ``fully in-situ`` — run the complete analysis on the simulation cores
  (bounded below by the in-situ rows of Table II for viz/stats; for
  topology the serial glue would also run on the critical path).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.runner import ScaledExperiment
from repro.core.workload import AnalyticsVariant


@dataclass(frozen=True)
class StrategyOutcome:
    """One strategy's cost profile for a fixed-length run."""

    strategy: str
    #: Steps between successive analysed states.
    temporal_stride: int
    #: Seconds added to the simulation's critical path, per *simulation* step
    #: (amortised over the analysis stride).
    critical_path_per_step: float
    #: Seconds from a timestep's data existing to its results existing.
    time_to_insight: float
    #: Total extra bytes written to persistent storage per analysed step.
    storage_bytes: int
    #: The experiment's simulated step time — the denominator of
    #: :attr:`slowdown_percent`. Derived from the configuration's
    #: ``simulation_step_time()`` by the model, never hard-coded.
    sim_step_time: float

    @property
    def slowdown_percent(self) -> float:
        if self.sim_step_time <= 0:
            raise ValueError(
                f"sim_step_time must be > 0, got {self.sim_step_time}")
        return 100.0 * self.critical_path_per_step / self.sim_step_time


class TradeoffModel:
    """Compares analysis-delivery strategies on a ScaledExperiment."""

    def __init__(self, experiment: ScaledExperiment,
                 n_buckets: int | None = None) -> None:
        self.exp = experiment
        self.breakdown = experiment.breakdown()
        self.n_buckets = (n_buckets if n_buckets is not None
                          else experiment.config.n_intransit_cores)

    def _mk(self, strategy: str, stride: int, critical: float,
            insight: float, storage: int) -> StrategyOutcome:
        return StrategyOutcome(strategy=strategy, temporal_stride=stride,
                               critical_path_per_step=critical,
                               time_to_insight=insight,
                               storage_bytes=storage,
                               sim_step_time=self.breakdown.simulation_time)

    # -- strategies ----------------------------------------------------------

    def postprocessing(self, checkpoint_stride: int,
                       run_steps: int) -> StrategyOutcome:
        """Save raw state every ``checkpoint_stride`` steps; analyse after
        the run completes.

        Time to insight for the *first* saved step: the rest of the run
        must finish before post-processing starts, then its checkpoint is
        read and analysed. We report the run-average insight latency
        (half the run) + read + analysis.
        """
        if checkpoint_stride < 1 or run_steps < 1:
            raise ValueError("checkpoint_stride and run_steps must be >= 1")
        b = self.breakdown
        critical = b.io_write_time / checkpoint_stride
        # Serial post-processing of one snapshot: read + the in-transit-
        # equivalent computation for every analysis (statistics derive,
        # serial render, serial global merge tree) on the full raw data.
        analysis_time = b.io_read_time
        for v in (AnalyticsVariant.VIS_HYBRID, AnalyticsVariant.TOPO_HYBRID,
                  AnalyticsVariant.STATS_HYBRID):
            row = b.analytics[v.value]
            analysis_time += row.intransit_time + row.insitu_time
        mean_wait_for_run_end = run_steps / 2 * (b.simulation_time + critical)
        insight = mean_wait_for_run_end + analysis_time
        return self._mk("post-processing", checkpoint_stride, critical,
                        insight, b.data_bytes)

    def postprocessing_compressed(self, checkpoint_stride: int,
                                  run_steps: int,
                                  compression_ratio: float = 10.0,
                                  compress_rate_per_cell: float = 2.0e-7
                                  ) -> StrategyOutcome:
        """Post-processing with ISABELA-style in-situ compression [6].

        Checkpoints shrink by ``compression_ratio`` (cutting write/read
        times proportionally) at the price of an in-situ compression pass
        over every cell of every variable. Queries/analyses still wait for
        the run to end.
        """
        if compression_ratio <= 1.0:
            raise ValueError("compression_ratio must exceed 1")
        if compress_rate_per_cell <= 0:
            raise ValueError("compress_rate_per_cell must be positive")
        base = self.postprocessing(checkpoint_stride, run_steps)
        b = self.breakdown
        w = self.exp.workload
        compress_time = (compress_rate_per_cell * w.block_cells * w.n_vars)
        critical = (b.io_write_time / compression_ratio
                    + compress_time) / checkpoint_stride
        insight = (base.time_to_insight
                   - b.io_read_time * (1.0 - 1.0 / compression_ratio))
        return self._mk("post-processing (compressed)", checkpoint_stride,
                        critical, insight,
                        int(b.data_bytes / compression_ratio))

    def concurrent_hybrid(self, analysis_interval: int = 1) -> StrategyOutcome:
        """The paper's strategy: per analysed step, in-situ stages run on
        the critical path; movement and in-transit complete asynchronously
        (buckets permitting — checked against the multiplexing knee)."""
        if analysis_interval < 1:
            raise ValueError("analysis_interval must be >= 1")
        b = self.breakdown
        hybrid = [AnalyticsVariant.VIS_HYBRID, AnalyticsVariant.TOPO_HYBRID,
                  AnalyticsVariant.STATS_HYBRID]
        insitu = sum(b.analytics[v.value].insitu_time for v in hybrid)
        critical = insitu / analysis_interval
        insight = max(b.analytics[v.value].movement_time
                      + b.analytics[v.value].intransit_time for v in hybrid)
        # results only; raw state never touches disk
        storage = sum(b.analytics[v.value].movement_bytes for v in hybrid) // 100
        return self._mk("concurrent hybrid", analysis_interval, critical,
                        insight, storage)

    def fully_insitu(self, analysis_interval: int = 1) -> StrategyOutcome:
        """Everything on the simulation cores: the data-parallel analyses
        use their in-situ variants; topology's serial glue has no
        data-parallel formulation (§II) and lands on the critical path."""
        if analysis_interval < 1:
            raise ValueError("analysis_interval must be >= 1")
        b = self.breakdown
        critical = (b.analytics[AnalyticsVariant.VIS_INSITU.value].insitu_time
                    + b.analytics[AnalyticsVariant.STATS_INSITU.value].insitu_time
                    + b.analytics[AnalyticsVariant.TOPO_HYBRID.value].insitu_time
                    + b.analytics[AnalyticsVariant.TOPO_HYBRID.value].intransit_time)
        critical /= analysis_interval
        return self._mk("fully in-situ", analysis_interval, critical,
                        critical, 0)

    def sustainable(self, outcome: StrategyOutcome) -> bool:
        """Can the staging area absorb this cadence? (concurrent only)."""
        if outcome.strategy != "concurrent hybrid":
            return True
        b = self.breakdown
        topo = b.analytics[AnalyticsVariant.TOPO_HYBRID.value]
        task = topo.movement_time + topo.intransit_time
        cadence = outcome.temporal_stride * b.simulation_time
        return task <= cadence * self.n_buckets
