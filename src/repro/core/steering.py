"""Computational steering off in-transit results (paper §V).

"...there are several advantages to a concurrent approach, including
computational steering, on-the-fly visualization, and feature tracking."

A :class:`SteeringRule` pairs a predicate over completed in-transit task
results with an action on the running framework. The framework drains the
staging engine after every simulation step, evaluates the rules against
newly completed results, applies the actions, and records every firing in
the shared space (name ``"steering"``) so all components can observe the
decision history — the DataSpaces-mediated coordination pattern of §IV.

Rule factories below cover the steering moves the paper's use case wants:
refining the analysis cadence when interesting topology appears, and
triggering a checkpoint when an event (e.g. an ignition burst) fires.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.control.hysteresis import Cooldown
from repro.staging.descriptors import TaskResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.framework import HybridFramework


@dataclass
class SteeringRule:
    """When ``predicate(result)`` holds, run ``action(framework, result)``.

    An action may return ``False`` to report that it had no effect (e.g.
    a cadence change to the interval already in force); such no-op
    considerations do not count as firings and are not recorded in the
    shared-space decision history — a refine/coarsen rule pair therefore
    cannot flap the history with repeated identical decisions.
    """

    name: str
    predicate: Callable[[TaskResult], bool]
    #: Returns ``False`` for an ineffective (no-op) application; any other
    #: return value (including ``None``) counts as a firing.
    action: Callable[["HybridFramework", TaskResult], Any]
    #: Fire at most this many times (None = unlimited).
    max_firings: int | None = None
    #: Hysteresis: after a firing, suppress re-firing until the observed
    #: result's timestep has advanced by at least this many steps. The
    #: same :class:`~repro.control.hysteresis.Cooldown` primitive damps
    #: the placement controller's decisions.
    cooldown_steps: int = 0
    firings: int = field(default=0, init=False)
    _cooldown: Cooldown = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._cooldown = Cooldown(self.cooldown_steps)

    def consider(self, framework: "HybridFramework", result: TaskResult) -> bool:
        """Evaluate and (maybe) fire; returns True if the rule fired."""
        if self.max_firings is not None and self.firings >= self.max_firings:
            return False
        if not self._cooldown.ready(result.timestep):
            return False
        if not self.predicate(result):
            return False
        if self.action(framework, result) is False:
            return False  # no effective change — not a firing
        self.firings += 1
        self._cooldown.fire(result.timestep)
        return True


def refine_cadence_on_topology(n_maxima: int, new_interval: int,
                               min_persistence: float = 0.0,
                               cooldown_steps: int = 0) -> SteeringRule:
    """Analyse more often once the merge tree shows >= ``n_maxima``
    features — the "capture intermittent events at higher frequency"
    steering move. Fires only when the interval actually tightens."""
    if n_maxima < 1 or new_interval < 1:
        raise ValueError("n_maxima and new_interval must be >= 1")

    def predicate(result: TaskResult) -> bool:
        if result.analysis != "topology" or result.value is None:
            return False
        tree = result.value.reduced()
        if min_persistence > 0:
            from repro.analysis.topology.simplify import simplify
            tree = simplify(tree, min_persistence)
        return len(tree.leaves()) >= n_maxima

    def action(framework: "HybridFramework", result: TaskResult) -> Any:
        tightened = min(framework.analysis_interval, new_interval)
        if tightened == framework.analysis_interval:
            return False
        framework.analysis_interval = tightened
        return True

    return SteeringRule(name=f"refine-cadence(>={n_maxima} maxima)",
                        predicate=predicate, action=action,
                        cooldown_steps=cooldown_steps)


def checkpoint_on_hot_spot(threshold: float, path: str,
                           variable: str = "T") -> SteeringRule:
    """Write a full checkpoint the first time the in-transit statistics
    report ``max(variable) >= threshold`` (an ignition event)."""

    def predicate(result: TaskResult) -> bool:
        return (result.analysis == "statistics"
                and result.value is not None
                and variable in result.value
                and result.value[variable].maximum >= threshold)

    def action(framework: "HybridFramework", result: TaskResult) -> None:
        from repro.io.bp import BPFile
        fields = framework.solver.assemble()
        with BPFile.create(path, attrs={"step": result.timestep,
                                        "trigger": "hot-spot",
                                        "threshold": threshold}) as bp:
            for name, arr in fields.items():
                bp.write(name, arr)

    return SteeringRule(name=f"checkpoint(max {variable} >= {threshold})",
                        predicate=predicate, action=action,
                        max_firings=1)


def coarsen_cadence_when_quiet(max_maxima: int, new_interval: int,
                               cooldown_steps: int = 0) -> SteeringRule:
    """Back off the analysis cadence while the field is featureless —
    reclaiming the in-situ budget the paper's §V discussion motivates.
    Fires only when the interval actually widens."""
    if max_maxima < 0 or new_interval < 1:
        raise ValueError("max_maxima must be >= 0, new_interval >= 1")

    def predicate(result: TaskResult) -> bool:
        if result.analysis != "topology" or result.value is None:
            return False
        return len(result.value.reduced().leaves()) <= max_maxima

    def action(framework: "HybridFramework", result: TaskResult) -> Any:
        widened = max(framework.analysis_interval, new_interval)
        if widened == framework.analysis_interval:
            return False
        framework.analysis_interval = widened
        return True

    return SteeringRule(name=f"coarsen-cadence(<={max_maxima} maxima)",
                        predicate=predicate, action=action,
                        cooldown_steps=cooldown_steps)


@dataclass(frozen=True)
class SteeringEvent:
    """One recorded rule firing."""

    rule: str
    timestep: int
    analysis: str
    detail: dict[str, Any]
