"""The virtual communicator: SPMD execution + functional collectives.

``VirtualComm`` runs all ranks of an SPMD program inside one process. Rank
bodies execute sequentially in rank order (deterministic), and collectives
operate on the list of per-rank contributions. A :class:`CommTracker`
records every collective's modeled time and byte volume so the performance
layer can charge communication to the simulated machine.
"""

from __future__ import annotations

import pickle
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.backend import kernel
from repro.machine.gemini import GeminiNetwork
from repro.obs.flow import EDGE_COLLECTIVE, FlowContext
from repro.obs.tracer import get_tracer
from repro.vmpi import collectives as coll


def payload_bytes(value: Any) -> int:
    """Byte size of a collective payload.

    NumPy arrays report their buffer size; other objects are costed at
    their pickle size (mirroring mpi4py's lowercase-method semantics).
    """
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


@dataclass
class CommRecord:
    """One collective operation's modeled cost."""

    op: str
    n_ranks: int
    nbytes: int
    time: float


@dataclass
class CommTracker:
    """Accumulates modeled communication costs for a VirtualComm."""

    records: list[CommRecord] = field(default_factory=list)
    #: Causal flow the communicator's collectives currently feed (set by
    #: the driver around an in-situ stage; None = untracked).
    flow: FlowContext | None = None

    def __post_init__(self) -> None:
        self._tracer = get_tracer()

    def add(self, op: str, n_ranks: int, nbytes: int, time: float) -> None:
        self.records.append(CommRecord(op, n_ranks, nbytes, time))
        if self._tracer.enabled:
            # Single chokepoint for every VirtualComm collective.
            self._tracer.counter(f"vmpi.{op}")
            self._tracer.counter("vmpi.coll_bytes", nbytes)
            self._tracer.metrics.histogram("vmpi.coll_time").observe(time)
            self._tracer.instant(f"vmpi.{op}", lane="vmpi", n_ranks=n_ranks,
                                 nbytes=nbytes, modeled_time=time)
            if self.flow is not None:
                self._tracer.flow_step(self.flow, EDGE_COLLECTIVE, "vmpi",
                                       op=op, n_ranks=n_ranks, nbytes=nbytes,
                                       modeled_time=time,
                                       rounds=coll.rounds(op, n_ranks))

    @property
    def total_time(self) -> float:
        return sum(r.time for r in self.records)

    @property
    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self.records)

    def count(self, op: str) -> int:
        return sum(1 for r in self.records if r.op == op)

    def clear(self) -> None:
        self.records.clear()


@kernel("vmpi.pairwise_reduce")
def _pairwise_reduce(values: list[Any], op: Callable[[Any, Any], Any]) -> Any:
    """Tree-order (pairwise) reduction — the order real MPI trees use.

    Pairwise order matters for floating-point reproducibility claims: it is
    deterministic for a fixed rank count and numerically better conditioned
    than left-to-right folding.

    Backend seam: the numpy backend stacks same-shape ndarray contributions
    and folds whole tree levels in single elementwise array operations —
    the *same* pairing, so results stay bit-identical.
    """
    vals = list(values)
    if not vals:
        raise ValueError("cannot reduce an empty contribution list")
    while len(vals) > 1:
        nxt = []
        for i in range(0, len(vals) - 1, 2):
            nxt.append(op(vals[i], vals[i + 1]))
        if len(vals) % 2:
            nxt.append(vals[-1])
        vals = nxt
    return vals[0]


@kernel("vmpi.scan")
def _scan_fold(values: list[Any], op: Callable[[Any, Any], Any]) -> list[Any]:
    """Inclusive left-fold prefix reduction (MPI_Scan operation order).

    Backend seam: the numpy backend maps whitelisted operators onto
    ``ufunc.accumulate`` over the stacked contributions, which applies the
    identical left-to-right fold in one pass.
    """
    out: list[Any] = []
    acc = None
    for v in values:
        acc = v if acc is None else op(acc, v)
        out.append(acc)
    return out


class VirtualComm:
    """A communicator over ``n_ranks`` virtual ranks.

    Functional collectives take a sequence of length ``n_ranks`` holding
    each rank's contribution and return what MPI would deliver. Every call
    is costed on ``network`` and recorded in ``tracker``.
    """

    def __init__(self, n_ranks: int, network: GeminiNetwork | None = None,
                 tracker: CommTracker | None = None) -> None:
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        self.n_ranks = n_ranks
        self.network = network or GeminiNetwork()
        self.tracker = tracker or CommTracker()

    @property
    def flow(self) -> FlowContext | None:
        """Causal flow the next collectives charge their hops to
        (stored on the tracker — the single recording chokepoint)."""
        return self.tracker.flow

    @flow.setter
    def flow(self, flow: FlowContext | None) -> None:
        self.tracker.flow = flow

    # -- SPMD driver ---------------------------------------------------------

    def run_spmd(self, fn: Callable[..., Any], *per_rank_args: Sequence[Any]) -> list[Any]:
        """Run ``fn(rank, *args_r)`` for every rank; return per-rank results.

        Each entry of ``per_rank_args`` is a length-``n_ranks`` sequence; the
        rank body receives its own slice, mirroring SPMD data locality.
        """
        for i, seq in enumerate(per_rank_args):
            if len(seq) != self.n_ranks:
                raise ValueError(
                    f"per-rank argument {i} has length {len(seq)}, expected {self.n_ranks}"
                )
        return [fn(rank, *(seq[rank] for seq in per_rank_args))
                for rank in range(self.n_ranks)]

    # -- collectives ----------------------------------------------------------

    def _require_all_ranks(self, values: Sequence[Any]) -> None:
        if len(values) != self.n_ranks:
            raise ValueError(
                f"collective needs {self.n_ranks} contributions, got {len(values)}"
            )

    def bcast(self, value: Any, root: int = 0) -> list[Any]:
        """Broadcast ``value`` from ``root``; returns one reference per rank."""
        self._check_root(root)
        nbytes = payload_bytes(value)
        self.tracker.add("bcast", self.n_ranks, nbytes,
                         coll.bcast_time(self.network, self.n_ranks, nbytes))
        return [value] * self.n_ranks

    def reduce(self, values: Sequence[Any], op: Callable[[Any, Any], Any],
               root: int = 0) -> Any:
        """Reduce all contributions to ``root``; returns the reduced value."""
        self._require_all_ranks(values)
        self._check_root(root)
        nbytes = payload_bytes(values[0])
        self.tracker.add("reduce", self.n_ranks, nbytes,
                         coll.reduce_time(self.network, self.n_ranks, nbytes))
        return _pairwise_reduce(list(values), op)

    def allreduce(self, values: Sequence[Any], op: Callable[[Any, Any], Any]) -> list[Any]:
        """All-reduce: every rank receives the reduced value."""
        self._require_all_ranks(values)
        nbytes = payload_bytes(values[0])
        self.tracker.add("allreduce", self.n_ranks, nbytes,
                         coll.allreduce_time(self.network, self.n_ranks, nbytes))
        result = _pairwise_reduce(list(values), op)
        return [result] * self.n_ranks

    def gather(self, values: Sequence[Any], root: int = 0) -> list[Any]:
        """Gather all contributions to ``root`` (returned as a list)."""
        self._require_all_ranks(values)
        self._check_root(root)
        nbytes = max((payload_bytes(v) for v in values), default=0)
        self.tracker.add("gather", self.n_ranks, nbytes,
                         coll.gather_time(self.network, self.n_ranks, nbytes))
        return list(values)

    def allgather(self, values: Sequence[Any]) -> list[list[Any]]:
        """All ranks receive the full contribution list."""
        self._require_all_ranks(values)
        nbytes = max((payload_bytes(v) for v in values), default=0)
        self.tracker.add("allgather", self.n_ranks, nbytes,
                         coll.allgather_time(self.network, self.n_ranks, nbytes))
        full = list(values)
        return [full] * self.n_ranks

    def alltoall(self, matrix: Sequence[Sequence[Any]]) -> list[list[Any]]:
        """Each rank r sends ``matrix[r][s]`` to rank s; returns the transpose."""
        self._require_all_ranks(matrix)
        for r, row in enumerate(matrix):
            if len(row) != self.n_ranks:
                raise ValueError(f"rank {r} row has length {len(row)}, "
                                 f"expected {self.n_ranks}")
        nbytes = payload_bytes(matrix[0][0]) if self.n_ranks else 0
        self.tracker.add("alltoall", self.n_ranks, nbytes,
                         coll.alltoall_time(self.network, self.n_ranks, nbytes))
        return [[matrix[src][dst] for src in range(self.n_ranks)]
                for dst in range(self.n_ranks)]

    def scan(self, values: Sequence[Any], op: Callable[[Any, Any], Any]
             ) -> list[Any]:
        """Inclusive prefix reduction: rank r receives op-fold of ranks 0..r."""
        self._require_all_ranks(values)
        nbytes = payload_bytes(values[0])
        self.tracker.add("scan", self.n_ranks, nbytes,
                         coll.scan_time(self.network, self.n_ranks, nbytes))
        return _scan_fold(list(values), op)

    def exscan(self, values: Sequence[Any], op: Callable[[Any, Any], Any]
               ) -> list[Any]:
        """Exclusive prefix reduction; rank 0 receives None (MPI semantics)."""
        inclusive = self.scan(values, op)
        return [None] + inclusive[:-1]

    def reduce_scatter(self, matrix: Sequence[Sequence[Any]],
                       op: Callable[[Any, Any], Any]) -> list[Any]:
        """Each rank contributes p chunks; rank i receives the op-reduction
        of every rank's chunk i."""
        self._require_all_ranks(matrix)
        for r, row in enumerate(matrix):
            if len(row) != self.n_ranks:
                raise ValueError(f"rank {r} row has length {len(row)}, "
                                 f"expected {self.n_ranks}")
        nbytes = sum(payload_bytes(c) for c in matrix[0])
        self.tracker.add("reduce_scatter", self.n_ranks, nbytes,
                         coll.reduce_scatter_time(self.network, self.n_ranks,
                                                  nbytes))
        return [_pairwise_reduce([matrix[src][dst]
                                  for src in range(self.n_ranks)], op)
                for dst in range(self.n_ranks)]

    def send_time(self, nbytes: int) -> float:
        """Modeled point-to-point time (exposed for the transport layer)."""
        return coll.point_to_point_time(self.network, nbytes)

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.n_ranks:
            raise ValueError(f"root {root} out of range [0, {self.n_ranks})")
