"""Analytic time models for MPI collectives on a point-to-point network.

Standard LogP-style costs for the tree/ring algorithms production MPIs use.
Each function returns seconds for ``p`` ranks exchanging ``nbytes`` per
rank over a :class:`~repro.machine.gemini.GeminiNetwork`.

These are the costs the performance layer charges when the functional layer
executes a :class:`~repro.vmpi.comm.VirtualComm` collective.
"""

from __future__ import annotations

import math

from repro.machine.gemini import GeminiNetwork


def _check(p: int, nbytes: int) -> None:
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")


def point_to_point_time(net: GeminiNetwork, nbytes: int) -> float:
    """One message between two ranks, DART protocol auto-selected."""
    return net.transfer_time(nbytes)


#: Critical-path message rounds per collective (p ranks) — the round
#: count each ``*_time`` model below charges latency for. Exposed so
#: causal-flow hops can annotate a collective hand-off with its depth.
_ROUND_COUNTS = {
    "bcast": lambda p: math.ceil(math.log2(p)),
    "reduce": lambda p: math.ceil(math.log2(p)),
    "allreduce": lambda p: 2 * math.ceil(math.log2(p)),
    "gather": lambda p: math.ceil(math.log2(p)),
    "allgather": lambda p: p - 1,
    "alltoall": lambda p: p - 1,
    "scan": lambda p: math.ceil(math.log2(p)),
    "exscan": lambda p: math.ceil(math.log2(p)),
    "reduce_scatter": lambda p: math.ceil(math.log2(p)),
}


def rounds(op: str, p: int) -> int:
    """Critical-path rounds of collective ``op`` over ``p`` ranks.

    Unknown ops cost one round — a point-to-point exchange.
    """
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if p == 1:
        return 0
    return int(_ROUND_COUNTS.get(op, lambda _p: 1)(p))


def bcast_time(net: GeminiNetwork, p: int, nbytes: int) -> float:
    """Binomial-tree broadcast: ``ceil(log2 p)`` rounds of one message."""
    _check(p, nbytes)
    if p == 1:
        return 0.0
    rounds = math.ceil(math.log2(p))
    return rounds * net.transfer_time(nbytes)


def reduce_time(net: GeminiNetwork, p: int, nbytes: int) -> float:
    """Binomial-tree reduction to a root (same shape as bcast)."""
    return bcast_time(net, p, nbytes)


def allreduce_time(net: GeminiNetwork, p: int, nbytes: int) -> float:
    """Rabenseifner allreduce: reduce-scatter + allgather.

    ``2 (p-1)/p · n / bw``-bytes of traffic on the critical path plus
    ``2 log2 p`` latency terms.
    """
    _check(p, nbytes)
    if p == 1:
        return 0.0
    rounds = 2 * math.ceil(math.log2(p))
    lat = rounds * net.bte_setup if nbytes > net.smsg_max_bytes else rounds * net.smsg_latency
    bw = net.bte_bandwidth if nbytes > net.smsg_max_bytes else net.smsg_bandwidth
    return lat + 2.0 * (p - 1) / p * nbytes / bw


def gather_time(net: GeminiNetwork, p: int, nbytes: int) -> float:
    """Gather of ``nbytes`` from each rank to a root.

    The root's ingest link serialises the ``(p-1)·n`` bytes; latency is
    pipelined down a binomial tree.
    """
    _check(p, nbytes)
    if p == 1:
        return 0.0
    lat = math.ceil(math.log2(p)) * net.transfer_time(0)
    bw = net.bte_bandwidth if (p - 1) * nbytes > net.smsg_max_bytes else net.smsg_bandwidth
    return lat + (p - 1) * nbytes / bw


def allgather_time(net: GeminiNetwork, p: int, nbytes: int) -> float:
    """Ring allgather: ``p-1`` steps each moving ``nbytes``."""
    _check(p, nbytes)
    if p == 1:
        return 0.0
    return (p - 1) * net.transfer_time(nbytes)


def alltoall_time(net: GeminiNetwork, p: int, nbytes: int) -> float:
    """Pairwise-exchange alltoall: ``p-1`` rounds of ``nbytes`` messages."""
    _check(p, nbytes)
    if p == 1:
        return 0.0
    return (p - 1) * net.transfer_time(nbytes)


def scan_time(net: GeminiNetwork, p: int, nbytes: int) -> float:
    """Hillis-Steele inclusive scan: ``ceil(log2 p)`` exchange rounds."""
    _check(p, nbytes)
    if p == 1:
        return 0.0
    return math.ceil(math.log2(p)) * net.transfer_time(nbytes)


def reduce_scatter_time(net: GeminiNetwork, p: int, nbytes: int) -> float:
    """Pairwise-halving reduce-scatter of ``nbytes`` total per rank:
    moves ``(p-1)/p * nbytes`` over ``log2 p`` latency rounds."""
    _check(p, nbytes)
    if p == 1:
        return 0.0
    rounds = math.ceil(math.log2(p))
    lat = rounds * (net.bte_setup if nbytes > net.smsg_max_bytes
                    else net.smsg_latency)
    bw = net.bte_bandwidth if nbytes > net.smsg_max_bytes else net.smsg_bandwidth
    return lat + (p - 1) / p * nbytes / bw
