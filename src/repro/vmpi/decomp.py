"""3-D block domain decomposition, mirroring S3D's layout.

The paper's runs decompose a ``1600 × 1372 × 430`` grid over
``16 × 28 × 10`` (4480 ranks, ``100 × 49 × 43`` each) or ``32 × 28 × 10``
(8960 ranks, ``50 × 49 × 43`` each). This module reproduces that mapping
and generalises to uneven divisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np


@dataclass(frozen=True)
class Block3D:
    """One rank's sub-brick of the global grid.

    ``lo`` is inclusive, ``hi`` exclusive, in global index space
    (x, y, z ordering to match the paper's ``nx × ny × nz`` notation).
    """

    rank: int
    coords: tuple[int, int, int]
    lo: tuple[int, int, int]
    hi: tuple[int, int, int]

    @property
    def shape(self) -> tuple[int, int, int]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))  # type: ignore[return-value]

    @property
    def n_cells(self) -> int:
        sx, sy, sz = self.shape
        return sx * sy * sz

    @property
    def slices(self) -> tuple[slice, slice, slice]:
        """Slices into a global ``(nx, ny, nz)`` array."""
        return tuple(slice(l, h) for l, h in zip(self.lo, self.hi))  # type: ignore[return-value]

    def extract(self, field: np.ndarray) -> np.ndarray:
        """View of this block's portion of a global field array."""
        if field.shape[:3] != self._global_shape_hint(field):
            pass  # shape is validated by indexing below
        return field[self.slices]

    @staticmethod
    def _global_shape_hint(field: np.ndarray) -> tuple[int, ...]:
        return field.shape[:3]

    def contains(self, point: tuple[int, int, int]) -> bool:
        return all(l <= p < h for l, p, h in zip(self.lo, point, self.hi))


class BlockDecomposition3D:
    """Regular (near-regular for uneven sizes) 3-D block decomposition.

    Rank order is x-fastest (rank = ix + px*(iy + py*iz)), matching common
    Fortran-style SPMD layouts.
    """

    def __init__(self, global_shape: tuple[int, int, int],
                 proc_grid: tuple[int, int, int]) -> None:
        if len(global_shape) != 3 or len(proc_grid) != 3:
            raise ValueError("global_shape and proc_grid must be 3-tuples")
        if any(n < 1 for n in global_shape):
            raise ValueError(f"invalid global shape {global_shape}")
        if any(p < 1 for p in proc_grid):
            raise ValueError(f"invalid process grid {proc_grid}")
        if any(p > n for n, p in zip(global_shape, proc_grid)):
            raise ValueError(
                f"process grid {proc_grid} exceeds grid {global_shape} in some axis"
            )
        self.global_shape = tuple(global_shape)
        self.proc_grid = tuple(proc_grid)
        # Near-even split: first (n % p) blocks get one extra cell.
        self._starts = [self._axis_starts(n, p)
                        for n, p in zip(global_shape, proc_grid)]

    @staticmethod
    def _axis_starts(n: int, p: int) -> list[int]:
        base, extra = divmod(n, p)
        starts = [0]
        for i in range(p):
            starts.append(starts[-1] + base + (1 if i < extra else 0))
        return starts

    @property
    def n_ranks(self) -> int:
        px, py, pz = self.proc_grid
        return px * py * pz

    def rank_of_coords(self, coords: tuple[int, int, int]) -> int:
        px, py, pz = self.proc_grid
        ix, iy, iz = coords
        if not (0 <= ix < px and 0 <= iy < py and 0 <= iz < pz):
            raise IndexError(f"coords {coords} out of process grid {self.proc_grid}")
        return ix + px * (iy + py * iz)

    def coords_of_rank(self, rank: int) -> tuple[int, int, int]:
        if not 0 <= rank < self.n_ranks:
            raise IndexError(f"rank {rank} out of range [0, {self.n_ranks})")
        px, py, _pz = self.proc_grid
        ix = rank % px
        iy = (rank // px) % py
        iz = rank // (px * py)
        return (ix, iy, iz)

    def block(self, rank: int) -> Block3D:
        coords = self.coords_of_rank(rank)
        lo = tuple(self._starts[a][coords[a]] for a in range(3))
        hi = tuple(self._starts[a][coords[a] + 1] for a in range(3))
        return Block3D(rank=rank, coords=coords, lo=lo, hi=hi)  # type: ignore[arg-type]

    def blocks(self) -> list[Block3D]:
        return [self.block(r) for r in range(self.n_ranks)]

    def rank_containing(self, point: tuple[int, int, int]) -> int:
        """Rank owning a global grid point."""
        coords = []
        for a in range(3):
            if not 0 <= point[a] < self.global_shape[a]:
                raise IndexError(f"point {point} outside grid {self.global_shape}")
            coords.append(int(np.searchsorted(self._starts[a], point[a], side="right")) - 1)
        return self.rank_of_coords(tuple(coords))  # type: ignore[arg-type]

    def neighbors(self, rank: int) -> list[int]:
        """Face/edge/corner-adjacent ranks (26-neighborhood, no wraparound)."""
        px, py, pz = self.proc_grid
        ix, iy, iz = self.coords_of_rank(rank)
        out = []
        for dx, dy, dz in product((-1, 0, 1), repeat=3):
            if dx == dy == dz == 0:
                continue
            jx, jy, jz = ix + dx, iy + dy, iz + dz
            if 0 <= jx < px and 0 <= jy < py and 0 <= jz < pz:
                out.append(self.rank_of_coords((jx, jy, jz)))
        return out

    def scatter(self, field: np.ndarray) -> list[np.ndarray]:
        """Split a global field into per-rank copies (rank order)."""
        if field.shape[:3] != self.global_shape:
            raise ValueError(
                f"field shape {field.shape[:3]} != decomposition {self.global_shape}"
            )
        return [np.ascontiguousarray(field[b.slices]) for b in self.blocks()]

    def gather(self, parts: list[np.ndarray]) -> np.ndarray:
        """Reassemble per-rank blocks into a global field."""
        if len(parts) != self.n_ranks:
            raise ValueError(f"expected {self.n_ranks} parts, got {len(parts)}")
        trailing = parts[0].shape[3:]
        out = np.empty(self.global_shape + trailing, dtype=parts[0].dtype)
        for b, part in zip(self.blocks(), parts):
            if part.shape[:3] != b.shape:
                raise ValueError(
                    f"rank {b.rank}: part shape {part.shape[:3]} != block {b.shape}"
                )
            out[b.slices] = part
        return out
