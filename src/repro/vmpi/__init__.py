"""Virtual MPI: SPMD execution and collectives without an MPI runtime.

The paper's codes (S3D, the VTK statistics engine, the in-situ analytics)
are MPI programs. This package reproduces their *semantics* inside one
process:

* :class:`~repro.vmpi.decomp.BlockDecomposition3D` mirrors S3D's 3-D
  domain decomposition (each core owns an ``nx × ny × nz`` sub-brick);
* :class:`~repro.vmpi.comm.VirtualComm` runs per-rank callables and provides
  functional collectives (reduce, allreduce, gather, alltoall, bcast) over
  the actual per-rank buffers, so results are bit-comparable to serial
  references;
* :mod:`~repro.vmpi.collectives` provides analytic time costs for each
  collective on a given network model, charged by the performance layer.
"""

from repro.vmpi.decomp import Block3D, BlockDecomposition3D
from repro.vmpi.comm import CommTracker, VirtualComm
from repro.vmpi.collectives import (
    allgather_time,
    allreduce_time,
    alltoall_time,
    bcast_time,
    gather_time,
    point_to_point_time,
    reduce_time,
)

__all__ = [
    "Block3D",
    "BlockDecomposition3D",
    "CommTracker",
    "VirtualComm",
    "allgather_time",
    "allreduce_time",
    "alltoall_time",
    "bcast_time",
    "gather_time",
    "point_to_point_time",
    "reduce_time",
]
