"""Finite-difference stencils (periodic) and block ghost exchange.

All operators are vectorised NumPy with periodic wrap via ``np.roll``.
The decomposed solver pads each block with ghost layers copied from
neighbouring blocks (:func:`pad_with_ghosts`), applies the same stencils,
then crops — tests assert bitwise agreement with the global operators.
"""

from __future__ import annotations

import numpy as np

from repro.vmpi.decomp import BlockDecomposition3D


def gradient(f: np.ndarray, spacing: tuple[float, float, float]
             ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Second-order central gradient with periodic wrap."""
    out = []
    for axis in range(3):
        h = spacing[axis]
        out.append((np.roll(f, -1, axis) - np.roll(f, 1, axis)) / (2.0 * h))
    return tuple(out)  # type: ignore[return-value]


def laplacian(f: np.ndarray, spacing: tuple[float, float, float]) -> np.ndarray:
    """Second-order 7-point Laplacian with periodic wrap."""
    out = np.zeros_like(f)
    for axis in range(3):
        h2 = spacing[axis] ** 2
        out += (np.roll(f, -1, axis) - 2.0 * f + np.roll(f, 1, axis)) / h2
    return out


def upwind_advection(f: np.ndarray, velocity: tuple[np.ndarray, np.ndarray, np.ndarray],
                     spacing: tuple[float, float, float]) -> np.ndarray:
    """First-order upwind ``-(u . grad f)`` with periodic wrap.

    Upwinding keeps the explicit scheme monotone at the jet's sharp
    gradients, which matters for keeping species mass fractions in [0, 1].
    """
    dfdt = np.zeros_like(f)
    for axis, u in enumerate(velocity):
        h = spacing[axis]
        fwd = (np.roll(f, -1, axis) - f) / h       # one-sided toward +axis
        bwd = (f - np.roll(f, 1, axis)) / h        # one-sided toward -axis
        dfdt -= np.where(u > 0, u * bwd, u * fwd)
    return dfdt


def vorticity_magnitude(velocity: tuple[np.ndarray, np.ndarray, np.ndarray],
                        spacing: tuple[float, float, float]) -> np.ndarray:
    """|curl u| — the field whose fine vortical structures Fig. 1 tracks."""
    u, v, w = velocity
    _du_dx, du_dy, du_dz = gradient(u, spacing)
    dv_dx, _dv_dy, dv_dz = gradient(v, spacing)
    dw_dx, dw_dy, _dw_dz = gradient(w, spacing)
    wx = dw_dy - dv_dz
    wy = du_dz - dw_dx
    wz = dv_dx - du_dy
    return np.sqrt(wx * wx + wy * wy + wz * wz)


def pad_with_ghosts(parts: list[np.ndarray], decomp: BlockDecomposition3D,
                    width: int = 1) -> list[np.ndarray]:
    """Pad every block with ``width`` ghost layers from its neighbours.

    Equivalent to S3D's halo exchange with periodic global topology. The
    implementation assembles the global array and re-slices with wrap; the
    *communication volume* this represents is charged separately by the
    performance layer (each block exchanges its six faces).
    """
    if width < 1:
        raise ValueError(f"ghost width must be >= 1, got {width}")
    if min(decomp.global_shape) < width:
        raise ValueError(
            f"ghost width {width} exceeds smallest global extent "
            f"{min(decomp.global_shape)}")
    global_field = decomp.gather(parts)
    padded_global = np.pad(global_field, [(width, width)] * 3, mode="wrap")
    out = []
    for b in decomp.blocks():
        sl = tuple(slice(lo, hi + 2 * width) for lo, hi in zip(b.lo, b.hi))
        out.append(np.ascontiguousarray(padded_global[sl]))
    return out


def crop_ghosts(part: np.ndarray, width: int = 1) -> np.ndarray:
    """Remove ghost layers added by :func:`pad_with_ghosts`."""
    if width < 1:
        raise ValueError(f"ghost width must be >= 1, got {width}")
    sl = tuple(slice(width, -width) for _ in range(3))
    return part[sl]


def halo_exchange_bytes(decomp: BlockDecomposition3D, width: int = 1,
                        itemsize: int = 8, n_vars: int = 1) -> int:
    """Bytes each rank sends in one halo exchange (six faces, no corners)."""
    total = 0
    b = decomp.block(0)
    sx, sy, sz = b.shape
    faces = 2 * (sy * sz + sx * sz + sx * sy)
    total = faces * width * itemsize * n_vars
    return total
