"""S3D proxy: a miniature turbulent-combustion solver.

The paper drives its framework with S3D, a first-principles DNS code for
turbulent combustion [51]. The analyses, however, only require *fields with
combustion-like structure*: a temperature field with intermittent ignition
kernels, species mass fractions, and a turbulent velocity field with
fine-scale vortical structures. This package provides exactly that at
laptop scale:

* :class:`~repro.sim.grid.StructuredGrid3D` — uniform structured grid;
* :class:`~repro.sim.fields.FieldSet` — S3D's 14 solution variables
  (T, P, u, v, w and 9 species mass fractions);
* :mod:`~repro.sim.stencil` — finite-difference operators and the ghost
  exchange used by the decomposed solver;
* :mod:`~repro.sim.chemistry` — single-step Arrhenius H2/O2 kinetics with
  heat release (a reduced stand-in for S3D's detailed mechanism);
* :mod:`~repro.sim.turbulence` — divergence-free synthetic turbulence
  (random Fourier modes) for initial/background velocity;
* :class:`~repro.sim.lifted_flame.LiftedFlameCase` — the lifted hydrogen
  jet flame configuration of §V, including intermittent ignition kernels;
* :class:`~repro.sim.s3d.S3DProxy` — the explicit advection–diffusion–
  reaction solver, plus :class:`~repro.sim.s3d.DecomposedS3D` which steps
  the same equations block-parallel over a
  :class:`~repro.vmpi.decomp.BlockDecomposition3D` with ghost exchange.
"""

from repro.sim.grid import StructuredGrid3D
from repro.sim.fields import SPECIES_NAMES, VARIABLE_NAMES, FieldSet
from repro.sim.chemistry import ArrheniusChemistry
from repro.sim.turbulence import synthetic_turbulence
from repro.sim.lifted_flame import LiftedFlameCase
from repro.sim.s3d import DecomposedS3D, S3DProxy, SolverParams
from repro.sim.checkpoint import restore_checkpoint, save_checkpoint
from repro.sim.diagnostics import (
    add_diagnostics,
    heat_release_rate,
    mixture_fraction,
    scalar_dissipation,
    takeno_flame_index,
)

__all__ = [
    "SolverParams",
    "save_checkpoint",
    "restore_checkpoint",
    "add_diagnostics",
    "heat_release_rate",
    "mixture_fraction",
    "scalar_dissipation",
    "takeno_flame_index",
    "StructuredGrid3D",
    "FieldSet",
    "SPECIES_NAMES",
    "VARIABLE_NAMES",
    "ArrheniusChemistry",
    "synthetic_turbulence",
    "LiftedFlameCase",
    "S3DProxy",
    "DecomposedS3D",
]
