"""Combustion diagnostics derived from the solution state.

The analyses in the paper's motivating studies (lifted-flame
stabilisation [52], extinction/reignition [30]) operate on *derived*
fields as much as on primitives: mixture fraction, scalar dissipation
rate, and heat-release rate. These are standard data-parallel point/stencil
operations — ideal in-situ stages — implemented here against the
:class:`~repro.sim.fields.FieldSet`.
"""

from __future__ import annotations

import numpy as np

from repro.sim.chemistry import ArrheniusChemistry
from repro.sim.fields import FieldSet
from repro.sim.stencil import gradient


def mixture_fraction(fields: FieldSet, fuel_h2: float = 0.3,
                     oxidizer_o2: float = 0.233) -> np.ndarray:
    """Bilger-style mixture fraction from the element mass balance.

    The element coupling function is ``beta = Z_H - Z_O / s`` with
    ``Z_H = Y_H2 + Y_H2O/9``, ``Z_O = Y_O2 + 8 Y_H2O/9`` and the
    stoichiometric mass ratio ``s = 8``; the H2O contributions cancel,
    leaving ``beta = Y_H2 - Y_O2 / 8`` — exactly conserved under the
    one-step reaction (``dH2 = -w/9`` cancels ``dO2 = -8w/9`` over 8).
    Normalising between the oxidizer (``beta_ox``) and fuel (``beta_fu``)
    stream values yields Z in [0, 1]: 0 in pure oxidizer, 1 in pure fuel.
    """
    if fuel_h2 <= 0:
        raise ValueError(f"fuel_h2 must be positive, got {fuel_h2}")
    if oxidizer_o2 <= 0:
        raise ValueError(f"oxidizer_o2 must be positive, got {oxidizer_o2}")
    beta = fields["H2"] - fields["O2"] / 8.0
    beta_ox = -oxidizer_o2 / 8.0
    beta_fu = fuel_h2
    z = (beta - beta_ox) / (beta_fu - beta_ox)
    return np.clip(z, 0.0, 1.0)


def stoichiometric_mixture_fraction(fuel_h2: float = 0.3,
                                    oxidizer_o2: float = 0.233) -> float:
    """Z_st: where fuel and oxidizer are in stoichiometric proportion.

    beta = 0 at stoichiometry for the hydrogen-based coupling function.
    """
    beta_ox = -oxidizer_o2 / 8.0
    beta_fu = fuel_h2
    return (0.0 - beta_ox) / (beta_fu - beta_ox)


def scalar_dissipation(fields: FieldSet, diffusivity: float,
                       fuel_h2: float = 0.3, oxidizer_o2: float = 0.233
                       ) -> np.ndarray:
    """``chi = 2 D |grad Z|^2`` — the mixing-rate field whose balance
    against kinetics controls ignition-kernel survival (§V's case study)."""
    if diffusivity <= 0:
        raise ValueError(f"diffusivity must be positive, got {diffusivity}")
    z = mixture_fraction(fields, fuel_h2, oxidizer_o2)
    gx, gy, gz = gradient(z, fields.grid.spacing)
    return 2.0 * diffusivity * (gx * gx + gy * gy + gz * gz)


def heat_release_rate(fields: FieldSet,
                      chemistry: ArrheniusChemistry | None = None
                      ) -> np.ndarray:
    """``q * w``: the instantaneous volumetric heat release — the standard
    flame marker (burning regions of [43] are its superlevel sets)."""
    chem = chemistry or ArrheniusChemistry()
    rate = chem.reaction_rate(fields["T"], fields["H2"], fields["O2"])
    return chem.heat_release * rate


def takeno_flame_index(fields: FieldSet) -> np.ndarray:
    """Takeno index ``grad Y_H2 . grad Y_O2`` (normalised to [-1, 1]).

    Positive: premixed burning (fuel and oxidizer gradients aligned);
    negative: non-premixed (opposed) — the regime classifier lifted-flame
    studies use at the flame base.
    """
    spacing = fields.grid.spacing
    gf = gradient(fields["H2"], spacing)
    go = gradient(fields["O2"], spacing)
    dot = sum(a * b for a, b in zip(gf, go))
    norm = (np.sqrt(sum(a * a for a in gf)) * np.sqrt(sum(b * b for b in go)))
    with np.errstate(invalid="ignore", divide="ignore"):
        index = np.where(norm > 1e-12, dot / np.maximum(norm, 1e-300), 0.0)
    return np.clip(index, -1.0, 1.0)


def add_diagnostics(fields: FieldSet, diffusivity: float = 1.5e-3,
                    chemistry: ArrheniusChemistry | None = None) -> FieldSet:
    """Attach Z, chi, HRR and the flame index as extra fields (in place).

    The in-situ stage computing these costs one gradient sweep per
    derived field — the kind of cheap filtering §III's guidelines target.
    """
    fields["Z"] = mixture_fraction(fields)
    fields["chi"] = scalar_dissipation(fields, diffusivity)
    fields["HRR"] = heat_release_rate(fields, chemistry)
    fields["FI"] = takeno_flame_index(fields)
    return fields
