"""The solution state: S3D's 14 field variables.

The paper's runs carry 14 double-precision variables per grid point
(Table I). We use the canonical lifted-H2-flame set: temperature, pressure,
three velocity components, and nine species mass fractions of the H2/air
system.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.sim.grid import StructuredGrid3D

SPECIES_NAMES: tuple[str, ...] = (
    "H2", "O2", "H2O", "H", "O", "OH", "HO2", "H2O2", "N2",
)

VARIABLE_NAMES: tuple[str, ...] = ("T", "P", "u", "v", "w") + SPECIES_NAMES

assert len(VARIABLE_NAMES) == 14  # matches Table I's "No. of variables"


class FieldSet:
    """Named double-precision fields on one grid.

    Behaves like an ordered mapping from variable name to ``(nx, ny, nz)``
    array; iteration order is :data:`VARIABLE_NAMES` order for variables
    that exist.
    """

    def __init__(self, grid: StructuredGrid3D,
                 names: tuple[str, ...] = VARIABLE_NAMES) -> None:
        self.grid = grid
        self._names = tuple(names)
        self._data: dict[str, np.ndarray] = {
            name: grid.zeros() for name in self._names
        }

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._data[name]
        except KeyError:
            raise KeyError(
                f"no field {name!r}; available: {self._names}"
            ) from None

    def __setitem__(self, name: str, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=np.float64)
        if value.shape != self.grid.shape:
            raise ValueError(
                f"field {name!r} shape {value.shape} != grid {self.grid.shape}"
            )
        if name not in self._data:
            self._names = (*self._names, name)
        self._data[name] = value

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def items(self):
        return ((name, self._data[name]) for name in self._names)

    @property
    def nbytes(self) -> int:
        """Total solution-state size — Table I's "Data size"."""
        return sum(arr.nbytes for arr in self._data.values())

    def velocity(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self["u"], self["v"], self["w"]

    def species(self) -> dict[str, np.ndarray]:
        return {s: self._data[s] for s in SPECIES_NAMES if s in self._data}

    def copy(self) -> "FieldSet":
        out = FieldSet(self.grid, self._names)
        for name in self._names:
            out._data[name] = self._data[name].copy()
        return out

    def as_array(self) -> np.ndarray:
        """Stack all variables into ``(nx, ny, nz, n_vars)`` (C-contiguous)."""
        return np.stack([self._data[n] for n in self._names], axis=-1)

    @classmethod
    def from_array(cls, grid: StructuredGrid3D, arr: np.ndarray,
                   names: tuple[str, ...] = VARIABLE_NAMES) -> "FieldSet":
        if arr.shape != (*grid.shape, len(names)):
            raise ValueError(
                f"array shape {arr.shape} != {(*grid.shape, len(names))}"
            )
        fs = cls(grid, names)
        for i, name in enumerate(names):
            fs._data[name] = np.ascontiguousarray(arr[..., i])
        return fs
