"""Single-step Arrhenius H2/O2 chemistry with heat release.

A reduced stand-in for S3D's detailed hydrogen mechanism: one global
reaction ``2 H2 + O2 -> 2 H2O`` with Arrhenius rate
``w = A * Y_H2 * Y_O2 * exp(-Ta / T)``. Radical species (H, O, OH, HO2,
H2O2) are carried as trace fields proportional to the reaction rate so all
14 variables contain meaningful, analysis-relevant structure.

Units are nondimensional (temperature normalised by the coflow
temperature); what matters for the analyses is the *shape*: an ignition
kernel is a localised region where T rises rapidly once the mixture is
within flammability limits, exactly the intermittent feature §V's
lifted-flame study tracks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ArrheniusChemistry:
    """One-step global H2 oxidation."""

    pre_exponential: float = 80.0     # A
    activation_temperature: float = 8.0  # Ta (nondimensional)
    heat_release: float = 6.0         # temperature rise per unit reaction
    #: Trace-radical yield coefficients (fraction of reaction rate).
    radical_yield: float = 0.02

    def __post_init__(self) -> None:
        if self.pre_exponential < 0 or self.activation_temperature < 0:
            raise ValueError("Arrhenius parameters must be non-negative")

    def reaction_rate(self, T: np.ndarray, Y_H2: np.ndarray,
                      Y_O2: np.ndarray) -> np.ndarray:
        """``w = A Y_H2 Y_O2 exp(-Ta/T)`` (clipped to physical Y)."""
        yh2 = np.clip(Y_H2, 0.0, 1.0)
        yo2 = np.clip(Y_O2, 0.0, 1.0)
        Tsafe = np.maximum(T, 1e-3)
        return self.pre_exponential * yh2 * yo2 * np.exp(
            -self.activation_temperature / Tsafe)

    def source_terms(self, T: np.ndarray, Y: dict[str, np.ndarray]
                     ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Temperature and species sources for one evaluation.

        Mass stoichiometry of ``2 H2 + O2 -> 2 H2O`` (by mass: 4 g H2 +
        32 g O2 -> 36 g H2O, i.e. fractions 1/9 and 8/9 of the consumed
        mass): per unit reaction rate, dY_H2 = -1/9, dY_O2 = -8/9,
        dY_H2O = +1.
        """
        w = self.reaction_rate(T, Y["H2"], Y["O2"])
        dT = self.heat_release * w
        r = self.radical_yield * w
        dY = {
            "H2": -w / 9.0,
            "O2": -8.0 * w / 9.0,
            "H2O": w * (1.0 - 5.0 * self.radical_yield),
            # Radicals appear where the reaction is active and recombine
            # (first-order decay handled by the solver's relaxation).
            "H": r, "O": r, "OH": r, "HO2": r, "H2O2": r,
            "N2": np.zeros_like(w),
        }
        return dT, dY
