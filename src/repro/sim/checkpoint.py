"""Checkpoint/restart for the S3D proxy via the ADIOS-like I/O layer.

Round-trips the complete solver state — all 14 fields, step counter, time
step, and the ignition-kernel RNG state — so a restarted run is bitwise
identical to an uninterrupted one (tested). This is the substrate for the
post-processing comparison: checkpoints written here are what the
conventional pipeline would read back hours later.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.io.bp import BPFile
from repro.sim.s3d import S3DProxy


def save_checkpoint(solver: S3DProxy, path: str | os.PathLike) -> int:
    """Write the solver's full state to one BP file; returns bytes written."""
    rng_state = json.dumps(solver.case._rng.bit_generator.state)
    attrs = {
        "step_count": solver.step_count,
        "dt": solver.dt,
        "rng_state": rng_state,
        "grid_shape": list(solver.grid.shape),
        "grid_lengths": list(solver.grid.lengths),
        "kernel_history": [[s, list(c)] for s, c in solver.kernel_history],
    }
    with BPFile.create(path, attrs=attrs) as bp:
        for name, arr in solver.fields.items():
            bp.write(name, arr)
    return Path(path).stat().st_size


def restore_checkpoint(solver: S3DProxy, path: str | os.PathLike) -> None:
    """Restore a solver's state in place from a checkpoint.

    The solver must have been constructed with the same grid; fields,
    counters and the kernel-seeding RNG are all rewound so subsequent
    steps reproduce the original run exactly.
    """
    bp = BPFile.open(path)
    shape = tuple(bp.attrs["grid_shape"])
    if shape != solver.grid.shape:
        raise ValueError(
            f"checkpoint grid {shape} != solver grid {solver.grid.shape}")
    for name in bp.variables:
        solver.fields[name] = bp.read(name)
    solver.step_count = int(bp.attrs["step_count"])
    solver.dt = float(bp.attrs["dt"])
    solver.kernel_history = [(int(s), tuple(c))
                             for s, c in bp.attrs["kernel_history"]]
    solver.case._rng.bit_generator.state = json.loads(bp.attrs["rng_state"])
