"""The lifted hydrogen jet flame configuration (paper §V, [52]).

A cold fuel jet (H2 diluted in N2) issues in +x into a heated air coflow.
Ignition kernels form *intermittently* near the flame base — the transient
features whose tracking motivates the whole framework — modeled here as
stochastic small hot spots seeded in the mixing layer where the mixture is
flammable, which then grow or dissipate under the solver's dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.chemistry import ArrheniusChemistry
from repro.sim.fields import FieldSet
from repro.sim.grid import StructuredGrid3D
from repro.sim.turbulence import synthetic_turbulence
from repro.util.rng import seeded_rng


@dataclass
class LiftedFlameCase:
    """Initial condition + ignition-kernel forcing for the jet flame."""

    grid: StructuredGrid3D
    jet_velocity: float = 2.0
    coflow_velocity: float = 0.5
    jet_radius_fraction: float = 0.15      # of min(Ly, Lz)
    coflow_temperature: float = 1.0        # nondimensional reference
    jet_temperature: float = 0.4
    turbulence_rms: float = 0.35
    kernel_rate: float = 0.5               # expected kernels per step
    kernel_amplitude: float = 2.5          # peak T boost of a new kernel
    kernel_radius_cells: float = 3.0
    seed: int = 7

    def __post_init__(self) -> None:
        if not 0 < self.jet_radius_fraction < 0.5:
            raise ValueError("jet_radius_fraction must be in (0, 0.5)")
        if self.kernel_rate < 0:
            raise ValueError("kernel_rate must be >= 0")
        self._rng = seeded_rng(self.seed, 1)

    # -- initial condition ----------------------------------------------------

    def initial_fields(self) -> FieldSet:
        """Jet profile + turbulence + quiescent chemistry."""
        grid = self.grid
        fs = FieldSet(grid)
        X, Y, Z = grid.meshgrid()
        _Lx, Ly, Lz = grid.lengths

        # Radial distance from the jet axis (centered in y, z).
        r = np.sqrt((Y - Ly / 2.0) ** 2 + (Z - Lz / 2.0) ** 2)
        radius = self.jet_radius_fraction * min(Ly, Lz)
        # Smooth tanh shear layer.
        jet = 0.5 * (1.0 - np.tanh((r - radius) / (0.25 * radius)))

        u_t, v_t, w_t = synthetic_turbulence(
            grid, rms_velocity=self.turbulence_rms, seed=self.seed)
        fs["u"] = self.coflow_velocity + (self.jet_velocity - self.coflow_velocity) * jet + u_t
        fs["v"] = v_t
        fs["w"] = w_t

        fs["T"] = self.coflow_temperature + (self.jet_temperature
                                             - self.coflow_temperature) * jet
        fs["P"] = np.ones(grid.shape)

        # Fuel in the jet (H2 diluted in N2), air outside (O2 + N2).
        fs["H2"] = 0.3 * jet
        fs["O2"] = 0.233 * (1.0 - jet)
        fs["N2"] = 1.0 - fs["H2"] - fs["O2"]
        for trace in ("H2O", "H", "O", "OH", "HO2", "H2O2"):
            fs[trace] = np.zeros(grid.shape)
        return fs

    # -- intermittent ignition kernels -------------------------------------------

    def flammable_mask(self, fs: FieldSet) -> np.ndarray:
        """Cells where both fuel and oxidiser are present (mixing layer)."""
        return (fs["H2"] > 0.02) & (fs["O2"] > 0.02)

    def seed_kernels(self, fs: FieldSet, step: int) -> list[tuple[int, int, int]]:
        """Stochastically ignite kernels in the flammable mixing layer.

        Returns the centers seeded this step. Kernel lifetime under the
        solver dynamics is ~10 steps (advection + dissipation), matching
        the paper's "intermittent phenomena that occur on the order of 10
        simulation timesteps".
        """
        n_new = int(self._rng.poisson(self.kernel_rate))
        if n_new == 0:
            return []
        mask = self.flammable_mask(fs)
        candidates = np.argwhere(mask)
        if candidates.size == 0:
            return []
        centers = []
        T = fs["T"]
        X, Y, Z = np.indices(self.grid.shape)
        for _ in range(n_new):
            cx, cy, cz = candidates[int(self._rng.integers(len(candidates)))]
            d2 = (X - cx) ** 2 + (Y - cy) ** 2 + (Z - cz) ** 2
            bump = self.kernel_amplitude * np.exp(
                -d2 / (2.0 * self.kernel_radius_cells ** 2))
            np.maximum(T, self.coflow_temperature + bump, out=T)
            centers.append((int(cx), int(cy), int(cz)))
        return centers
