"""Uniform structured 3-D grid with periodic topology."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class StructuredGrid3D:
    """A uniform grid over ``[0, Lx) x [0, Ly) x [0, Lz)``, periodic.

    The solver treats all boundaries as periodic (the jet configuration
    places its structure well inside the domain), which keeps the explicit
    scheme simple and conservative.
    """

    shape: tuple[int, int, int]
    lengths: tuple[float, float, float] = (1.0, 1.0, 1.0)

    def __post_init__(self) -> None:
        if len(self.shape) != 3 or any(n < 2 for n in self.shape):
            raise ValueError(f"shape must be 3 axes of >= 2 cells, got {self.shape}")
        if any(length <= 0 for length in self.lengths):
            raise ValueError(f"lengths must be positive, got {self.lengths}")

    @property
    def spacing(self) -> tuple[float, float, float]:
        return tuple(length / n for length, n in zip(self.lengths, self.shape))  # type: ignore[return-value]

    @property
    def n_cells(self) -> int:
        nx, ny, nz = self.shape
        return nx * ny * nz

    def axes(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cell-center coordinates along each axis."""
        return tuple(
            (np.arange(n) + 0.5) * (length / n)
            for n, length in zip(self.shape, self.lengths)
        )  # type: ignore[return-value]

    def meshgrid(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Full 3-D coordinate arrays (ij indexing; shape == grid shape)."""
        x, y, z = self.axes()
        return np.meshgrid(x, y, z, indexing="ij")  # type: ignore[return-value]

    def zeros(self, n_components: int | None = None) -> np.ndarray:
        shape = self.shape if n_components is None else (*self.shape, n_components)
        return np.zeros(shape, dtype=np.float64)

    def cfl_dt(self, max_speed: float, diffusivity: float, safety: float = 0.4) -> float:
        """Stable explicit time step for advection + diffusion.

        ``dt <= safety * min(h / |u|, h^2 / (2 d D))`` over all axes.
        """
        if max_speed < 0 or diffusivity < 0:
            raise ValueError("max_speed and diffusivity must be non-negative")
        h = min(self.spacing)
        limits = []
        if max_speed > 0:
            limits.append(h / max_speed)
        if diffusivity > 0:
            limits.append(h * h / (6.0 * diffusivity))
        if not limits:
            raise ValueError("need nonzero speed or diffusivity for a CFL step")
        return safety * min(limits)
