"""Divergence-free synthetic turbulence (random Fourier modes).

Kraichnan-style synthesis: a sum of random solenoidal Fourier modes with a
prescribed energy spectrum ``E(k) ~ k^4 exp(-2 (k/k0)^2)`` (a standard
von Karman-like low-Re model). Used for the jet's background velocity and
for the fine vortical structures Fig. 1 tracks.
"""

from __future__ import annotations

import numpy as np

from repro.sim.grid import StructuredGrid3D
from repro.util.rng import seeded_rng


def synthetic_turbulence(grid: StructuredGrid3D, n_modes: int = 32,
                         rms_velocity: float = 1.0, peak_wavenumber: float = 4.0,
                         seed: int = 0) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return a divergence-free velocity field ``(u, v, w)``.

    Each mode contributes ``a x k_hat * cos(k . x + phi)``; since the
    amplitude is perpendicular to the wavevector, the field is exactly
    solenoidal (checked by tests via the discrete divergence).
    """
    if n_modes < 1:
        raise ValueError(f"n_modes must be >= 1, got {n_modes}")
    if rms_velocity < 0:
        raise ValueError(f"rms_velocity must be >= 0, got {rms_velocity}")
    rng = seeded_rng(seed)
    X, Y, Z = grid.meshgrid()
    u = np.zeros(grid.shape)
    v = np.zeros(grid.shape)
    w = np.zeros(grid.shape)

    # Sample wavenumber magnitudes from the model spectrum.
    k_mags = rng.gamma(shape=2.5, scale=peak_wavenumber / 2.5, size=n_modes)
    two_pi_over_L = [2.0 * np.pi / length for length in grid.lengths]
    for m in range(n_modes):
        # Random direction; quantise to integer mode numbers so the field
        # is exactly periodic on the grid.
        direction = rng.normal(size=3)
        direction /= np.linalg.norm(direction)
        n_ints = np.rint(k_mags[m] * direction).astype(int)
        if not n_ints.any():
            n_ints[int(rng.integers(3))] = 1
        k_vec = np.array([n_ints[a] * two_pi_over_L[a] for a in range(3)])
        k_hat = k_vec / np.linalg.norm(k_vec)

        # Solenoidal amplitude: random vector projected off k_hat.
        a = rng.normal(size=3)
        a -= np.dot(a, k_hat) * k_hat
        norm = np.linalg.norm(a)
        if norm < 1e-12:
            continue
        a /= norm
        phase = rng.uniform(0.0, 2.0 * np.pi)
        envelope = np.cos(k_vec[0] * X + k_vec[1] * Y + k_vec[2] * Z + phase)
        u += a[0] * envelope
        v += a[1] * envelope
        w += a[2] * envelope

    # Normalise to the requested rms.
    rms = np.sqrt(np.mean(u * u + v * v + w * w))
    if rms > 0 and rms_velocity > 0:
        scale = rms_velocity / rms
        u *= scale
        v *= scale
        w *= scale
    elif rms_velocity == 0:
        u[:] = v[:] = w[:] = 0.0
    return u, v, w
