"""The S3D proxy solver: explicit advection–diffusion–reaction.

:class:`S3DProxy` advances the 14-variable state on the global grid;
:class:`DecomposedS3D` advances the identical equations block-parallel over
a :class:`~repro.vmpi.decomp.BlockDecomposition3D` with one-layer ghost
exchange — tests assert the two produce bitwise-identical states, the
reproduction's stand-in for S3D's MPI-correctness.

Physics per step (explicit Euler, frozen velocity):

* ``dT/dt   = -(u.grad)T + alpha lap T + q w``
* ``dYk/dt  = -(u.grad)Yk + D lap Yk + nu_k w  (- lambda Yk for radicals)``

with ``w`` the one-step Arrhenius rate. Species are clipped to [0, 1]
after each update (the first-order upwind scheme is monotone, clipping
only guards chemistry round-off).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.costmodel.models import OpDescriptor
from repro.obs.tracer import get_tracer
from repro.sim.chemistry import ArrheniusChemistry
from repro.sim.fields import SPECIES_NAMES, FieldSet
from repro.sim.grid import StructuredGrid3D
from repro.sim.lifted_flame import LiftedFlameCase
from repro.sim.stencil import (
    crop_ghosts,
    laplacian,
    pad_with_ghosts,
    upwind_advection,
)
from repro.vmpi.decomp import BlockDecomposition3D

_RADICALS = ("H", "O", "OH", "HO2", "H2O2")
_TRANSPORTED = ("T",) + SPECIES_NAMES  # velocity is frozen; P is held fixed


@dataclass
class SolverParams:
    """Transport and numerics parameters shared by both solver variants."""

    thermal_diffusivity: float = 2.0e-3
    species_diffusivity: float = 1.5e-3
    radical_decay: float = 5.0
    dt: float | None = None  # None -> CFL-derived at construction
    cfl_safety: float = 0.4
    #: "euler" (default) or "rk2" (Heun's method — S3D itself uses a
    #: multi-stage explicit RK; rk2 exercises the same multi-exchange
    #: structure at laptop scale).
    integrator: str = "euler"

    def __post_init__(self) -> None:
        if self.integrator not in ("euler", "rk2"):
            raise ValueError(
                f"integrator must be 'euler' or 'rk2', got {self.integrator!r}")

    def resolve_dt(self, grid: StructuredGrid3D, max_speed: float) -> float:
        if self.dt is not None:
            if self.dt <= 0:
                raise ValueError(f"dt must be positive, got {self.dt}")
            return self.dt
        diff = max(self.thermal_diffusivity, self.species_diffusivity)
        return grid.cfl_dt(max_speed, diff, self.cfl_safety)


def _rhs(state: dict[str, np.ndarray], spacing: tuple[float, float, float],
         chemistry: ArrheniusChemistry, params: SolverParams
         ) -> dict[str, np.ndarray]:
    """Right-hand sides for all transported variables (pointwise + stencil)."""
    velocity = (state["u"], state["v"], state["w"])
    dT_chem, dY_chem = chemistry.source_terms(
        state["T"], {s: state[s] for s in SPECIES_NAMES})

    rhs: dict[str, np.ndarray] = {}
    rhs["T"] = (upwind_advection(state["T"], velocity, spacing)
                + params.thermal_diffusivity * laplacian(state["T"], spacing)
                + dT_chem)
    for s in SPECIES_NAMES:
        r = (upwind_advection(state[s], velocity, spacing)
             + params.species_diffusivity * laplacian(state[s], spacing)
             + dY_chem[s])
        if s in _RADICALS:
            r = r - params.radical_decay * state[s]
        rhs[s] = r
    return rhs


def _apply_update(state: dict[str, np.ndarray], rhs: dict[str, np.ndarray],
                  dt: float) -> None:
    state["T"] += dt * rhs["T"]
    np.maximum(state["T"], 1e-3, out=state["T"])
    for s in SPECIES_NAMES:
        state[s] += dt * rhs[s]
        np.clip(state[s], 0.0, 1.0, out=state[s])


def _midpoint_state(state: dict[str, np.ndarray], rhs: dict[str, np.ndarray],
                    dt: float) -> dict[str, np.ndarray]:
    """Heun predictor: transported variables advanced by a full Euler step,
    velocity carried frozen."""
    mid = {c: state[c] for c in ("u", "v", "w")}
    for name in _TRANSPORTED:
        mid[name] = state[name] + dt * rhs[name]
    return mid


def _combine_heun(rhs1: dict[str, np.ndarray], rhs2: dict[str, np.ndarray]
                  ) -> dict[str, np.ndarray]:
    return {name: 0.5 * (rhs1[name] + rhs2[name]) for name in rhs1}


class S3DProxy:
    """Global-grid solver. ``fields`` is advanced in place by :meth:`step`."""

    def __init__(self, case: LiftedFlameCase,
                 chemistry: ArrheniusChemistry | None = None,
                 params: SolverParams | None = None,
                 seed_kernels: bool = True) -> None:
        self.case = case
        self.grid = case.grid
        self.chemistry = chemistry or ArrheniusChemistry()
        self.params = params or SolverParams()
        self.seed_kernels = seed_kernels
        self.fields = case.initial_fields()
        max_speed = max(float(np.max(np.abs(self.fields[c])))
                        for c in ("u", "v", "w"))
        self.dt = self.params.resolve_dt(self.grid, max_speed)
        self.step_count = 0
        self.kernel_history: list[tuple[int, tuple[int, int, int]]] = []
        self._tracer = get_tracer()

    def step(self, n: int = 1) -> FieldSet:
        """Advance ``n`` steps; returns the (live) field set."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        spacing = self.grid.spacing
        tracer = self._tracer
        for _ in range(n):
            with tracer.span("sim.step", lane="sim", stage="simulation",
                             step=self.step_count, solver="global"):
                if self.seed_kernels:
                    for center in self.case.seed_kernels(self.fields,
                                                         self.step_count):
                        self.kernel_history.append((self.step_count, center))
                state = {name: self.fields[name] for name in self.fields.names}
                with tracer.span("sim.rhs", lane="sim", category="sim"):
                    rhs = _rhs(state, spacing, self.chemistry, self.params)
                if self.params.integrator == "rk2":
                    mid = _midpoint_state(state, rhs, self.dt)
                    with tracer.span("sim.rhs", lane="sim", category="sim"):
                        rhs2 = _rhs(mid, spacing, self.chemistry, self.params)
                    rhs = _combine_heun(rhs, rhs2)
                with tracer.span("sim.update", lane="sim", category="sim"):
                    _apply_update(state, rhs, self.dt)
                self.step_count += 1
        return self.fields

    def op_descriptor(self) -> OpDescriptor:
        """Per-step, per-rank cost descriptor (full grid = 1 rank here)."""
        return OpDescriptor("s3d.step", self.grid.n_cells)


class DecomposedS3D:
    """Block-parallel solver over a 3-D decomposition with ghost exchange.

    Each rank holds only its block of every variable; one ghost layer is
    exchanged per step (the stencils are radius-1). Kernel seeding — a
    global stochastic event — is applied on the assembled temperature
    field and re-scattered, mirroring how S3D applies global forcing.
    """

    def __init__(self, case: LiftedFlameCase, decomp: BlockDecomposition3D,
                 chemistry: ArrheniusChemistry | None = None,
                 params: SolverParams | None = None,
                 seed_kernels: bool = True) -> None:
        if decomp.global_shape != case.grid.shape:
            raise ValueError(
                f"decomposition {decomp.global_shape} != grid {case.grid.shape}")
        self.case = case
        self.grid = case.grid
        self.decomp = decomp
        self.chemistry = chemistry or ArrheniusChemistry()
        self.params = params or SolverParams()
        self.seed_kernels = seed_kernels

        initial = case.initial_fields()
        self.names = initial.names
        #: parts[rank][var] -> block array
        self.parts: list[dict[str, np.ndarray]] = [
            {name: np.ascontiguousarray(initial[name][b.slices])
             for name in self.names}
            for b in decomp.blocks()
        ]
        max_speed = max(float(np.max(np.abs(initial[c]))) for c in ("u", "v", "w"))
        self.dt = self.params.resolve_dt(self.grid, max_speed)
        self.step_count = 0
        self._tracer = get_tracer()

    def _gather_var(self, name: str) -> np.ndarray:
        return self.decomp.gather([p[name] for p in self.parts])

    def _scatter_var(self, name: str, global_field: np.ndarray) -> None:
        for part, piece in zip(self.parts, self.decomp.scatter(global_field)):
            part[name] = piece

    def step(self, n: int = 1) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        spacing = self.grid.spacing
        ghosted_names = ("u", "v", "w") + _TRANSPORTED
        tracer = self._tracer
        for _ in range(n):
            with tracer.span("sim.step", lane="sim", stage="simulation",
                             step=self.step_count, solver="decomposed"):
                if self.seed_kernels:
                    # Global forcing: assemble T, seed, scatter back.
                    fs = FieldSet(self.grid, ("T", "H2", "O2"))
                    fs["T"] = self._gather_var("T")
                    fs["H2"] = self._gather_var("H2")
                    fs["O2"] = self._gather_var("O2")
                    self.case.seed_kernels(fs, self.step_count)
                    self._scatter_var("T", fs["T"])

                # Halo exchange: one ghost layer for every stencil operand.
                with tracer.span("sim.halo", lane="sim", category="sim"):
                    ghosted: dict[str, list[np.ndarray]] = {
                        name: pad_with_ghosts([p[name] for p in self.parts],
                                              self.decomp)
                        for name in dict.fromkeys(ghosted_names)
                    }
                with tracer.span("sim.rhs", lane="sim", category="sim"):
                    rhs_per_rank: list[dict[str, np.ndarray]] = []
                    for rank in range(self.decomp.n_ranks):
                        state_g = {name: ghosted[name][rank] for name in ghosted}
                        rhs_g = _rhs(state_g, spacing, self.chemistry,
                                     self.params)
                        rhs_per_rank.append(
                            {name: crop_ghosts(r) for name, r in rhs_g.items()})

                if self.params.integrator == "rk2":
                    # Predictor blocks, then a SECOND halo exchange before the
                    # corrector RHS — the multi-exchange structure of S3D's
                    # multi-stage RK.
                    mid_parts = [
                        {**{c: part[c] for c in ("u", "v", "w")},
                         **{name: part[name] + self.dt * rhs[name]
                            for name in _TRANSPORTED}}
                        for part, rhs in zip(self.parts, rhs_per_rank)
                    ]
                    with tracer.span("sim.halo", lane="sim", category="sim"):
                        ghosted_mid = {
                            name: pad_with_ghosts([m[name] for m in mid_parts],
                                                  self.decomp)
                            for name in dict.fromkeys(ghosted_names)
                        }
                    with tracer.span("sim.rhs", lane="sim", category="sim"):
                        for rank in range(self.decomp.n_ranks):
                            mid_g = {name: ghosted_mid[name][rank]
                                     for name in ghosted_mid}
                            rhs2_g = _rhs(mid_g, spacing, self.chemistry,
                                          self.params)
                            rhs2 = {name: crop_ghosts(r)
                                    for name, r in rhs2_g.items()}
                            rhs_per_rank[rank] = _combine_heun(
                                rhs_per_rank[rank], rhs2)

                with tracer.span("sim.update", lane="sim", category="sim"):
                    for part, rhs in zip(self.parts, rhs_per_rank):
                        _apply_update(part, rhs, self.dt)
                self.step_count += 1

    def assemble(self) -> FieldSet:
        """Gather all blocks into a global :class:`FieldSet`."""
        fs = FieldSet(self.grid, self.names)
        for name in self.names:
            fs[name] = self._gather_var(name)
        return fs

    def rank_op_descriptor(self, rank: int) -> OpDescriptor:
        return OpDescriptor("s3d.step", self.decomp.block(rank).n_cells)
