"""``repro.backend`` — swappable kernel backends for the hot paths.

The four hot paths identified by ``repro blame`` makespan share (DES
event dispatch, vmpi collectives, merge-tree union-find/glue, and the
statistics engine's learn/merge kernels) dispatch through this package.
Two backends ship:

* ``reference`` — the original pure-python implementations, unchanged,
  living at their original sites as the bodies of ``@kernel`` functions;
* ``numpy`` — vectorized kernels (batched event-queue, stacked
  collective folds, array union-find sweeps, single-pass vectorized
  moments) validated *bit-identically* against the reference by
  ``tests/test_backends.py``.

Select a backend with the ``REPRO_BACKEND`` environment variable, the
``python -m repro --backend`` CLI flag, or programmatically::

    from repro.backend import use_backend
    with use_backend("numpy"):
        tree, arc = compute_merge_tree(field)

See DESIGN.md §5 for the dispatch rules and the equivalence contract.
"""

from __future__ import annotations

from repro.backend.registry import (
    DEFAULT_BACKEND,
    ENV_VAR,
    available_backends,
    get_backend,
    kernel,
    kernel_impl,
    kernel_names,
    known_backends,
    register_backend,
    resolve_backend,
    set_backend,
    use_backend,
)

__all__ = [
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "available_backends",
    "get_backend",
    "kernel",
    "kernel_impl",
    "kernel_names",
    "known_backends",
    "register_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
]


def _load_numpy_backend():
    """Lazy loader: importing the module is the availability probe."""
    from repro.backend import numpy_backend

    return numpy_backend.KERNELS


register_backend("numpy", _load_numpy_backend)
