"""The reference backend, as a backend table.

The reference implementations are the decorated ``@kernel`` bodies and
live at their original sites (``des/engine.py``, ``vmpi/comm.py``,
``analysis/topology/*.py``, ``analysis/statistics/*.py``); dispatch
falls through to them whenever no override exists, so this table is
intentionally empty. It exists so tooling can treat ``reference``
uniformly with every other backend and so :func:`reference_kernels`
can enumerate the canonical implementations for the equivalence suite.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.backend.registry import _REFERENCE

#: No overrides: every kernel dispatches to its reference body.
KERNELS: dict[str, Callable[..., Any]] = {}


def reference_kernels() -> dict[str, Callable[..., Any]]:
    """Kernel name -> reference implementation (the validation oracles)."""
    return dict(_REFERENCE)
