"""The ``numpy`` backend: vectorized kernels for the four hot paths.

Every kernel here is **bit-identical** to its reference implementation on
the outputs the analyses consume — the equivalence contract of DESIGN.md
§5, enforced by ``tests/test_backends.py``. The techniques:

* same pairing / same fold order — tree reductions fold whole levels in
  one elementwise array operation using exactly the reference's pairing,
  so each IEEE operation sees the same operands;
* per-row pairwise summation — numpy's ``sum`` over the contiguous axis
  of a stacked ``(rows, m)`` array applies the same pairwise summation
  as summing each row alone, so batched sums equal per-block sums;
* vectorized precompute + identical sweep — the merge-tree kernels build
  neighbour tables and sweep ranks with array operations, then run the
  reference's union-find sweep over plain python lists (numpy scalar
  indexing is the reference's real cost), preserving visit order and
  union order exactly;
* a kernel that cannot guarantee exactness for its inputs (unknown
  operator, mixed shapes, zero-count accumulators) falls back to the
  reference implementation rather than approximate.

Importing this module is the backend's availability probe: an
environment without numpy raises ``ImportError`` here and the registry
falls back to ``reference`` with a single warning.
"""

from __future__ import annotations

import heapq
import operator
from collections.abc import Callable
from typing import Any

import numpy as np

from repro.backend.registry import _REFERENCE


def _ref(name: str) -> Callable[..., Any]:
    """The reference implementation (the fallback for inexact cases)."""
    return _REFERENCE[name]


# ---------------------------------------------------------------------------
# (1) DES event dispatch: calendar/batched-heap event queue
# ---------------------------------------------------------------------------


class ArrayEventQueue:
    """Batched-heap event queue with bit-identical ``(when, seq)`` order.

    Freshly pushed events land in a binary heap identical to the
    reference's; once it outgrows ``FLUSH_THRESHOLD`` the whole heap is
    flushed into ``when`` / ``seq`` arrays sorted by one lexsort (the
    payloads move to a seq-keyed dict). Same-timestamp runs in the
    sorted arrays are then located with ``searchsorted`` and extracted
    in one slice — "pop all same-timestamp events in one array
    operation" — so event storms (a timestep's worth of simultaneous
    completions) are sorted and batched vectorially, while a
    steady-state trickle stays on the plain-heap fast path.
    """

    FLUSH_THRESHOLD = 256

    __slots__ = ("_pending", "_times", "_seqs", "_lo", "_hi", "_head",
                 "_payload", "_batch", "_batch_when", "_mixed", "_flush_at")

    def __init__(self) -> None:
        # heapq of (when, seq, fn, arg) — the reference representation.
        self._pending: list[tuple[float, int, Callable[[Any], None], Any]] = []
        self._times = np.empty(0, dtype=np.float64)
        self._seqs = np.empty(0, dtype=np.int64)
        self._lo = 0       # cursor into the sorted arrays
        self._hi = 0       # their length, as a plain int (hot-path compare)
        self._head = 0.0   # float(self._times[self._lo]) — cached scalar
        self._payload: dict[int, tuple[Callable[[Any], None], Any]] = {}
        #: Current same-timestamp run, reversed so pop() yields seq order.
        self._batch: list[tuple[int, Callable[[Any], None], Any]] = []
        self._batch_when: float | None = None
        #: False while no flushed events or batch exist — then the pop
        #: and peek paths are byte-for-byte the reference heap's, so a
        #: steady-state trickle pays one flag test for the machinery.
        self._mixed = False
        #: Flush once pending outgrows max(threshold, flushed remainder):
        #: merging equal-or-larger runs keeps the re-sorts amortised
        #: O(log n) per event instead of quadratic under monotonic fill.
        self._flush_at = self.FLUSH_THRESHOLD

    def push(self, when: float, seq: int, fn: Callable[[Any], None],
             arg: Any) -> None:
        heapq.heappush(self._pending, (when, seq, fn, arg))
        if len(self._pending) >= self._flush_at:
            self._flush()

    def _flush(self) -> None:
        pending = self._pending
        pt = np.fromiter((e[0] for e in pending), dtype=np.float64,
                         count=len(pending))
        ps = np.fromiter((e[1] for e in pending), dtype=np.int64,
                         count=len(pending))
        payload = self._payload
        for e in pending:
            payload[e[1]] = (e[2], e[3])
        pending.clear()
        if self._lo < self._hi:
            pt = np.concatenate([self._times[self._lo:], pt])
            ps = np.concatenate([self._seqs[self._lo:], ps])
        order = np.lexsort((ps, pt))
        self._times = pt[order]
        self._seqs = ps[order]
        self._lo = 0
        self._hi = int(pt.size)
        self._head = float(self._times[0])
        self._mixed = True
        self._flush_at = max(self.FLUSH_THRESHOLD, self._hi)

    def next_time(self) -> float | None:
        if not self._mixed:
            pending = self._pending
            return pending[0][0] if pending else None
        best: float | None = self._batch_when if self._batch else None
        if self._pending:
            t = self._pending[0][0]
            if best is None or t < best:
                best = t
        if self._lo < self._hi:
            t = self._head
            if best is None or t < best:
                best = t
        return best

    def pop_due(self, when: float
                ) -> tuple[Callable[[Any], None], Any] | None:
        if not self._mixed:
            pending = self._pending
            if pending and pending[0][0] == when:
                _when, _seq, fn, arg = heapq.heappop(pending)
                return fn, arg
            return None
        batch = self._batch
        if batch:
            if self._batch_when == when:
                _seq, fn, arg = batch.pop()
                if not batch and self._lo == self._hi:
                    self._mixed = False
                    self._flush_at = self.FLUSH_THRESHOLD
                return fn, arg
            # Out-of-band pop: an event earlier than the current batch
            # was pushed after the batch was cut. The engine never does
            # this (simulated time is monotone) but the reference heap
            # supports it, so spill the batch back into the pending heap
            # and fall through to the uniform paths.
            bw = self._batch_when
            for s, fn, arg in batch:
                heapq.heappush(self._pending, (bw, s, fn, arg))
            batch.clear()
            self._batch_when = None
        if self._lo < self._hi and self._head == when:
            self._extract_batch(when)
            return self.pop_due(when)
        pending = self._pending
        if pending and pending[0][0] == when:
            _when, _seq, fn, arg = heapq.heappop(pending)
            return fn, arg
        return None

    def _extract_batch(self, when: float) -> None:
        # The whole same-timestamp run of the sorted arrays, in one slice.
        payload = self._payload
        hi = int(np.searchsorted(self._times, when, side="right"))
        entries = [(s, *payload.pop(s))
                   for s in self._seqs[self._lo:hi].tolist()]
        self._lo = hi
        if hi < self._hi:
            self._head = float(self._times[hi])
        # Merge in pending events at the same timestamp (scheduled since
        # the last flush; their seqs interleave with the array run's).
        pending = self._pending
        while pending and pending[0][0] == when:
            _when, s, fn, arg = heapq.heappop(pending)
            entries.append((s, fn, arg))
            entries.sort(key=lambda e: e[0])
        entries.reverse()  # list.pop() then yields ascending seq
        self._batch = entries
        self._batch_when = when

    def __len__(self) -> int:
        return (len(self._batch) + len(self._pending)
                + self._hi - self._lo)

    def __bool__(self) -> bool:
        return len(self) > 0


def make_event_queue_numpy() -> ArrayEventQueue:
    return ArrayEventQueue()


# ---------------------------------------------------------------------------
# (2) vmpi collectives: stacked whole-level folds
# ---------------------------------------------------------------------------

_UFUNC_BY_OP: dict[Any, np.ufunc] = {
    operator.add: np.add,
    operator.mul: np.multiply,
    min: np.minimum,
    max: np.maximum,
}


def _resolve_ufunc(op: Callable[[Any, Any], Any]) -> np.ufunc | None:
    if isinstance(op, np.ufunc) and op.nin == 2:
        return op
    return _UFUNC_BY_OP.get(op)


def _stackable(vals: list[Any]) -> bool:
    return (all(isinstance(v, np.ndarray) for v in vals)
            and len({(v.shape, v.dtype) for v in vals}) == 1)


#: Stack ndarray contributions only in the many-small-buffers regime —
#: measured: for large per-rank buffers the reference loop already runs
#: one ufunc per pair and is memory-bound, so stacking merely adds the
#: conversion cost, while thousands of small partials (the per-rank
#: model exchanges of the paper) amortise it severalfold. Module-level
#: so tests can force either path.
PAIRWISE_STACK_MIN_RANKS = 512
PAIRWISE_STACK_MAX_ELEMS = 64
SCAN_STACK_MIN_RANKS = 512
SCAN_STACK_MAX_ELEMS = 32


def pairwise_reduce_numpy(values: list[Any],
                          op: Callable[[Any, Any], Any]) -> Any:
    """Tree reduction folding whole levels in single array operations.

    Identical pairing to the reference ((0,1), (2,3), …, odd tail
    carried), so every elementwise IEEE operation sees the same operands
    — bit-identical results. Non-array payloads or unrecognised
    operators fall back to the reference loop.
    """
    vals = list(values)
    if not vals:
        raise ValueError("cannot reduce an empty contribution list")
    if getattr(op, "is_moment_merge", False) and len(vals) > 1:
        # Same pairing as merge_moments' tree fold — route there so the
        # whole reduction runs through the vectorized Pébay formulas.
        return merge_moments_numpy(vals)
    ufunc = _resolve_ufunc(op)
    if ufunc is None or len(vals) < 2:
        return _ref("vmpi.pairwise_reduce")(vals, op)
    first = vals[0]
    if isinstance(first, np.ndarray):
        if (len(vals) >= PAIRWISE_STACK_MIN_RANKS
                and first.size <= PAIRWISE_STACK_MAX_ELEMS
                and _stackable(vals)):
            stack = np.asarray(vals)
            scalar = False
        else:
            return _ref("vmpi.pairwise_reduce")(vals, op)
    elif all(isinstance(v, float) for v in vals):
        stack = np.array(vals, dtype=np.float64)
        scalar = True
    else:
        return _ref("vmpi.pairwise_reduce")(vals, op)
    while stack.shape[0] > 1:
        m = stack.shape[0]
        even = m - (m % 2)
        merged = ufunc(stack[0:even:2], stack[1:even:2])
        if m % 2:
            merged = np.concatenate([merged, stack[-1:]])
        stack = merged
    return float(stack[0]) if scalar else stack[0]


def scan_numpy(values: list[Any], op: Callable[[Any, Any], Any]) -> list[Any]:
    """Inclusive prefix fold via ``ufunc.accumulate`` (sequential, the
    identical left-to-right order) over the stacked contributions.

    Gated to the many-small-contributions regime: accumulate along the
    rank axis strides across rows, so for large payloads the reference's
    sequential adds are faster.
    """
    vals = list(values)
    ufunc = _resolve_ufunc(op)
    if (ufunc is None or len(vals) < SCAN_STACK_MIN_RANKS
            or not isinstance(vals[0], np.ndarray)
            or vals[0].size > SCAN_STACK_MAX_ELEMS
            or not _stackable(vals)):
        return _ref("vmpi.scan")(vals, op)
    acc = ufunc.accumulate(np.asarray(vals), axis=0)
    out = list(acc)
    out[0] = vals[0]  # reference hands rank 0 its own contribution back
    return out


# ---------------------------------------------------------------------------
# (3) topology: vectorized precompute + list-based union-find sweeps
# ---------------------------------------------------------------------------


def _grid_strides(shape: tuple[int, ...]) -> list[int]:
    strides: list[int] = []
    s = 1
    for extent in reversed(shape):
        strides.append(s)
        s *= extent
    strides.reverse()
    return strides


def merge_tree_numpy(field: np.ndarray, id_map: np.ndarray | None = None):
    """Grid merge tree: vectorized neighbour table and sweep ranks, then
    the reference's union-find sweep over plain lists.

    The sweep visits vertices in the same order, probes neighbours in the
    same (−stride, +stride per axis) order, and performs the same find /
    union sequence, so the tree and ``vertex_arc`` are bit-identical.
    """
    from repro.analysis.topology.merge_tree import MergeTree

    values_arr = np.asarray(field, dtype=np.float64).ravel()
    n = values_arr.size
    if n == 0:
        raise ValueError("cannot compute the merge tree of an empty field")
    shape = tuple(np.asarray(field).shape)
    if id_map is not None:
        ids = np.asarray(id_map).ravel()
        if ids.size != n:
            raise ValueError(f"id_map size {ids.size} != field size {n}")
        if np.unique(ids).size != n:
            raise ValueError("id_map must assign distinct ids")
    else:
        ids = np.arange(n, dtype=np.int64)

    order = np.lexsort((ids, values_arr))[::-1]
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)

    # Neighbour table in _iter_grid_neighbors order: per axis −st then
    # +st, with −1 marking out-of-bounds.
    idx = np.arange(n)
    rem = idx
    nbr_cols = []
    for axis, st in enumerate(_grid_strides(shape)):
        coord = rem // st
        rem = rem % st
        nbr_cols.append(np.where(coord > 0, idx - st, -1))
        nbr_cols.append(np.where(coord < shape[axis] - 1, idx + st, -1))
    nbrs_l = np.stack(nbr_cols, axis=1).tolist()

    order_l = order.tolist()
    rank_l = rank.tolist()
    ids_l = [int(x) for x in ids.tolist()]
    values_l = values_arr.tolist()

    parent_uf = list(range(n))
    comp_node = [-1] * n
    vertex_arc_local = [-1] * n
    tree = MergeTree()

    for i, v in enumerate(order_l):
        neighbor_roots: list[int] = []
        for u in nbrs_l[v]:
            if u >= 0 and rank_l[u] < i:  # processed earlier in the sweep
                x = u
                while parent_uf[x] != x:  # find with path halving
                    parent_uf[x] = parent_uf[parent_uf[x]]
                    x = parent_uf[x]
                if x not in neighbor_roots:
                    neighbor_roots.append(x)
        if not neighbor_roots:
            tree.add_node(ids_l[v], values_l[v])
            comp_node[v] = v
            vertex_arc_local[v] = v
        elif len(neighbor_roots) == 1:
            r = neighbor_roots[0]
            parent_uf[v] = r
            x = v
            while parent_uf[x] != x:
                parent_uf[x] = parent_uf[parent_uf[x]]
                x = parent_uf[x]
            comp_node[x] = comp_node[r]
            vertex_arc_local[v] = comp_node[r]
        else:
            tree.add_node(ids_l[v], values_l[v])
            for r in neighbor_roots:
                tree.set_parent(ids_l[comp_node[r]], ids_l[v])
                parent_uf[r] = v
            x = v
            while parent_uf[x] != x:
                parent_uf[x] = parent_uf[parent_uf[x]]
                x = parent_uf[x]
            comp_node[x] = v
            vertex_arc_local[v] = v

    vertex_arc = ids[np.asarray(vertex_arc_local,
                                dtype=np.int64)].reshape(shape)
    return tree, vertex_arc


def _graph_sweep(ids: list[int], vals_l: list[float], order_l: list[int],
                 rank_l: list[int], adj: list[int], offsets: list[int]):
    """The reference graph sweep over CSR adjacency and plain lists."""
    from repro.analysis.topology.merge_tree import MergeTree

    n = len(ids)
    parent_uf = list(range(n))
    latest = [-1] * n
    tree = MergeTree()
    for i, vi in enumerate(order_l):
        vid = ids[vi]
        tree.add_node(vid, vals_l[vi])
        roots: list[int] = []
        for j in range(offsets[vi], offsets[vi + 1]):
            nb = adj[j]
            if rank_l[nb] < i:
                x = nb
                while parent_uf[x] != x:
                    parent_uf[x] = parent_uf[parent_uf[x]]
                    x = parent_uf[x]
                if x not in roots:
                    roots.append(x)
        for r in roots:
            tree.set_parent(latest[r], vid)
            parent_uf[r] = vi
        x = vi
        while parent_uf[x] != x:
            parent_uf[x] = parent_uf[parent_uf[x]]
            x = parent_uf[x]
        latest[x] = vid
    return tree


def _graph_csr(ids_arr: np.ndarray, edges: list[tuple[int, int]],
               n: int) -> tuple[list[int], list[int]] | None:
    """CSR adjacency preserving the reference's per-vertex edge order.

    Returns ``None`` when an edge references an unknown vertex (caller
    decides the error semantics).
    """
    if not edges:
        return [], [0] * (n + 1)
    ea = np.asarray(edges, dtype=np.int64).reshape(len(edges), 2)
    pos = np.searchsorted(ids_arr, ea)
    ok = (pos < n) & (ids_arr[np.minimum(pos, n - 1)] == ea)
    if not bool(ok.all()):
        return None
    # Directed entries in reference append order: u→v then v→u per edge.
    src = pos.ravel()
    dst = pos[:, ::-1].ravel()
    order = np.argsort(src, kind="stable")
    counts = np.bincount(src, minlength=n)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    return dst[order].tolist(), offsets.tolist()


def graph_merge_tree_numpy(values: dict[int, float],
                           edges: list[tuple[int, int]]):
    """Augmented merge tree of a graph: vectorized sweep order and CSR
    adjacency, then the identical union-find sweep."""
    if not values:
        raise ValueError("cannot compute the merge tree of an empty graph")
    ids = sorted(values)
    n = len(ids)
    ids_arr = np.array(ids, dtype=np.int64)
    vals = np.array([values[vid] for vid in ids], dtype=np.float64)
    csr = _graph_csr(ids_arr, edges, n)
    if csr is None:
        # Reproduce the reference's first-offender KeyError.
        for u, v in edges:
            if u not in values or v not in values:
                raise KeyError(f"edge ({u},{v}) references unknown vertex")
        raise AssertionError("unreachable")
    adj, offsets = csr
    order = np.lexsort((ids_arr, vals))[::-1]
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)
    return _graph_sweep(ids, vals.tolist(), order.tolist(), rank.tolist(),
                        adj, offsets)


def glue_batch_numpy(boundary_trees, cross_edges):
    """Batch glue: one union-find sweep over the combined vertex/edge
    set instead of streaming chain-merges.

    The augmented merge tree is unique given the (value, id) total
    order, so this equals ``StreamingGlue``'s output node-for-node and
    arc-for-arc. Streaming-order error semantics (duplicate vertices,
    self-edges, undeclared endpoints) are reproduced exactly.
    """
    values: dict[int, float] = {}
    for bt in boundary_trees:
        for vid, val in bt.nodes.items():
            vid = int(vid)
            if vid in values:
                raise ValueError(f"vertex {vid} already streamed")
            values[vid] = float(val)
    edges: list[tuple[int, int]] = []
    for bt in boundary_trees:
        edges.extend(bt.edges)
    edges.extend(cross_edges)
    checked: list[tuple[int, int]] = []
    for u, v in edges:
        u, v = int(u), int(v)
        if u == v:
            raise ValueError(f"self-edge on vertex {u}")
        for x in (u, v):
            if x not in values:
                raise KeyError(
                    f"edge ({u},{v}) streamed before vertex {x} was declared")
        checked.append((u, v))
    if not values:
        from repro.analysis.topology.merge_tree import MergeTree

        return MergeTree()
    return graph_merge_tree_numpy(values, checked)


# ---------------------------------------------------------------------------
# (4) statistics: batched single-pass moments / contingency / autocorrelation
# ---------------------------------------------------------------------------


#: Batch only small-to-medium blocks — measured: beyond ~2048 elements
#: the stacked temporaries blow the cache while the per-block reference
#: (itself vectorised) stays resident, so batching loses. Module-level
#: so tests can force either path.
LEARN_BLOCK_MAX_ELEMS = 2048


def learn_blocks_numpy(blocks):
    """Batched learn: stack same-size blocks and compute every block's
    aggregates in shared axis-wise passes (per-row pairwise sums are
    identical to per-block sums)."""
    from repro.analysis.statistics.moments import MomentAccumulator

    arrs = [np.asarray(b, dtype=np.float64).ravel() for b in blocks]
    if not arrs:
        return []
    m = arrs[0].size
    if (m == 0 or m > LEARN_BLOCK_MAX_ELEMS
            or any(a.size != m for a in arrs)):
        return _ref("statistics.learn_blocks")(blocks)
    stack = np.stack(arrs)
    if not np.all(np.isfinite(stack)):
        # Re-run per block so the error surfaces exactly as the
        # reference raises it (first offending block).
        return _ref("statistics.learn_blocks")(blocks)
    means = np.mean(stack, axis=1)
    d = stack - means[:, None]
    d2 = d * d
    mins = np.min(stack, axis=1)
    maxs = np.max(stack, axis=1)
    m2 = np.sum(d2, axis=1)
    m3 = np.sum(d2 * d, axis=1)
    m4 = np.sum(d2 * d2, axis=1)
    return [MomentAccumulator(n=m, minimum=float(mins[i]),
                              maximum=float(maxs[i]), mean=float(means[i]),
                              M2=float(m2[i]), M3=float(m3[i]),
                              M4=float(m4[i]))
            for i in range(len(arrs))]


def _pebay_pair(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized ``MomentAccumulator.merge`` over packed rows.

    Term-for-term the same expressions (and evaluation order) as the
    scalar formulas, so each elementwise IEEE operation matches.
    """
    na = a[..., 0]
    nb = b[..., 0]
    n = na + nb
    delta = b[..., 3] - a[..., 3]
    delta2 = delta * delta
    out = np.empty_like(a)
    out[..., 0] = n
    out[..., 1] = np.minimum(a[..., 1], b[..., 1])
    out[..., 2] = np.maximum(a[..., 2], b[..., 2])
    out[..., 3] = a[..., 3] + delta * nb / n
    out[..., 4] = a[..., 4] + b[..., 4] + delta2 * na * nb / n
    out[..., 5] = (a[..., 5] + b[..., 5]
                   + delta * delta2 * na * nb * (na - nb) / (n * n)
                   + 3.0 * delta * (na * b[..., 4] - nb * a[..., 4]) / n)
    out[..., 6] = (a[..., 6] + b[..., 6]
                   + delta2 * delta2 * na * nb
                   * (na * na - na * nb + nb * nb) / (n * n * n)
                   + 6.0 * delta2
                   * (na * na * b[..., 4] + nb * nb * a[..., 4]) / (n * n)
                   + 4.0 * delta * (na * b[..., 5] - nb * a[..., 5]) / n)
    return out


def _fold_packed(arr: np.ndarray) -> np.ndarray:
    """Pairwise tree fold over axis 0 with the reference's pairing."""
    while arr.shape[0] > 1:
        m = arr.shape[0]
        even = m - (m % 2)
        merged = _pebay_pair(arr[0:even:2], arr[1:even:2])
        if m % 2:
            merged = np.concatenate([merged, arr[-1:]])
        arr = merged
    return arr[0]


def _unpack_moments(vec: np.ndarray):
    from repro.analysis.statistics.moments import MomentAccumulator

    return MomentAccumulator(n=int(vec[0]), minimum=float(vec[1]),
                             maximum=float(vec[2]), mean=float(vec[3]),
                             M2=float(vec[4]), M3=float(vec[5]),
                             M4=float(vec[6]))


def merge_moments_numpy(accs):
    """Tree merge of accumulators, folding whole levels elementwise."""
    accs = list(accs)
    if not accs:
        raise ValueError("cannot merge an empty accumulator list")
    if len(accs) == 1:
        return accs[0]
    # Tuple rows beat per-accumulator pack() calls ~3x; the float64
    # conversion of each field is identical either way.
    arr = np.array([(a.n, a.minimum, a.maximum, a.mean, a.M2, a.M3, a.M4)
                    for a in accs], dtype=np.float64)
    if np.any(arr[:, 0] == 0):
        # Empty accumulators short-circuit pairwise in the reference;
        # keep those exact semantics by deferring to it.
        return _ref("statistics.merge_moments")(accs)
    return _unpack_moments(_fold_packed(arr))


def merge_packed_moments_numpy(packed, n_vars: int):
    """Merge every variable's rank partials at once: reshape to
    ``(ranks, n_vars, 7)`` and fold the rank axis."""
    packed = list(packed)
    if not packed or n_vars == 0:
        return _ref("statistics.merge_packed_moments")(packed, n_vars)
    arr = np.stack([np.asarray(v, dtype=np.float64) for v in packed])
    arr = arr.reshape(len(packed), n_vars, 7)
    if np.any(arr[:, :, 0] == 0):
        return _ref("statistics.merge_packed_moments")(packed, n_vars)
    merged = _fold_packed(arr)
    return [_unpack_moments(merged[i]) for i in range(n_vars)]


def bivariate_histogram_numpy(x, y, x_edges, y_edges, shape):
    """Joint histogram as one ``bincount`` over linearised cell indices
    (identical integer counts to the scatter-add reference)."""
    nx, ny = shape
    xi = np.clip(np.searchsorted(x_edges, x, side="right") - 1, 0, nx - 1)
    yi = np.clip(np.searchsorted(y_edges, y, side="right") - 1, 0, ny - 1)
    flat = np.bincount(xi * ny + yi, minlength=nx * ny)
    return flat.astype(np.int64).reshape(nx, ny)


def autocorr_cross_sums_numpy(current, history):
    """All lags' cross sums in batched axis-wise passes; the current
    field's own sums are computed once instead of once per lag."""
    x = np.asarray(current, dtype=np.float64).ravel()
    if not history:
        return np.empty((0, 6), dtype=np.float64)
    ys = [np.asarray(h, dtype=np.float64).ravel() for h in history]
    if any(y.shape != x.shape for y in ys):
        return _ref("statistics.autocorr_cross_sums")(current, history)
    stack = np.stack(ys)
    out = np.empty((len(ys), 6), dtype=np.float64)
    out[:, 0] = x.size
    out[:, 1] = float(x.sum())
    out[:, 2] = stack.sum(axis=1)
    out[:, 3] = float((x * x).sum())
    out[:, 4] = (stack * stack).sum(axis=1)
    out[:, 5] = (x[None, :] * stack).sum(axis=1)
    return out


def autocorr_merge_numpy(packed_partials, max_lag: int):
    """Left-fold the rank partials for every lag at once (additions in
    the same rank order as the reference)."""
    if max_lag == 0:
        return np.empty((0, 6), dtype=np.float64)
    if not packed_partials:
        return np.zeros((max_lag, 6), dtype=np.float64)
    arr = np.stack([np.asarray(v, dtype=np.float64)
                    for v in packed_partials])
    arr = arr.reshape(arr.shape[0], max_lag, 6)
    acc = np.zeros((max_lag, 6), dtype=np.float64)
    for r in range(arr.shape[0]):
        acc = acc + arr[r]
    return acc


KERNELS: dict[str, Callable[..., Any]] = {
    "des.event_queue": make_event_queue_numpy,
    "vmpi.pairwise_reduce": pairwise_reduce_numpy,
    "vmpi.scan": scan_numpy,
    "topology.merge_tree": merge_tree_numpy,
    "topology.graph_merge_tree": graph_merge_tree_numpy,
    "topology.glue_batch": glue_batch_numpy,
    "statistics.learn_blocks": learn_blocks_numpy,
    "statistics.merge_moments": merge_moments_numpy,
    "statistics.merge_packed_moments": merge_packed_moments_numpy,
    "statistics.bivariate_histogram": bivariate_histogram_numpy,
    "statistics.autocorr_cross_sums": autocorr_cross_sums_numpy,
    "statistics.autocorr_merge": autocorr_merge_numpy,
}
