"""The kernel registry and backend seam.

Hot-path functions are declared with the :func:`kernel` decorator: the
decorated body is the **reference** implementation (pure python / plain
numpy, the code every other backend is validated against), and the
decorator returns a dispatching wrapper that consults the *active
backend* on every call.

A backend is a named mapping ``{kernel name -> implementation}``.
Backends register a lazy *loader* so that optional dependencies are only
imported when the backend is first used; a backend whose loader raises
``ImportError`` is simply unavailable and resolution falls back to
``reference`` with a single warning (never an import-time failure —
``numpy`` is an optional extra, ``pip install repro[fast]``).

Selection precedence, checked per call (cheap — one module-level read
plus an environment lookup):

1. an explicit :func:`set_backend` / :func:`use_backend` override;
2. the ``REPRO_BACKEND`` environment variable;
3. the default, ``reference``.

Every override implementation is required to be *bit-identical* to its
reference kernel on the outputs the analyses consume (merge-tree arcs,
statistics moments, collective results, DES replay digests) — enforced
by ``tests/test_backends.py``.

When tracing is enabled, each dispatched kernel call is recorded as a
``kernel.<name>`` span tagged ``kernel=<name>`` and ``backend=<active>``
(factory kernels opt out with ``traced=False``), which is what lets
``repro blame --top-kernels`` rank kernels by makespan share.
"""

from __future__ import annotations

import functools
import os
import warnings
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import Any

from repro.obs.tracer import get_tracer

__all__ = [
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "available_backends",
    "get_backend",
    "kernel",
    "kernel_names",
    "register_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
]

DEFAULT_BACKEND = "reference"
ENV_VAR = "REPRO_BACKEND"

#: Kernel name -> reference implementation (the decorated bodies).
_REFERENCE: dict[str, Callable[..., Any]] = {}
#: Backend name -> lazy loader returning {kernel name -> impl}.
_LOADERS: dict[str, Callable[[], dict[str, Callable[..., Any]]]] = {}
#: Backend name -> loaded kernel table (``None`` = loader failed).
_LOADED: dict[str, dict[str, Callable[..., Any]] | None] = {"reference": {}}
#: Explicit in-process override (set_backend / use_backend).
_override: str | None = None
#: Backends we have already warned about (one warning per process).
_warned: set[str] = set()


def register_backend(name: str,
                     loader: Callable[[], dict[str, Callable[..., Any]]]
                     ) -> None:
    """Register a backend's lazy kernel-table loader.

    The loader runs at most once, on first use; an ``ImportError`` marks
    the backend unavailable (resolution then falls back to reference).
    """
    if name == DEFAULT_BACKEND:
        raise ValueError("the reference backend cannot be replaced")
    _LOADERS[name] = loader
    _LOADED.pop(name, None)


def _load(name: str) -> dict[str, Callable[..., Any]] | None:
    """Kernel table for ``name`` (``None`` if unavailable)."""
    if name not in _LOADED:
        loader = _LOADERS.get(name)
        if loader is None:
            _LOADED[name] = None
        else:
            try:
                _LOADED[name] = dict(loader())
            except ImportError as exc:
                _LOADED[name] = None
                _warn_once(name, f"backend {name!r} is unavailable "
                                 f"({exc}); falling back to "
                                 f"{DEFAULT_BACKEND!r}")
    return _LOADED[name]


def _warn_once(name: str, message: str) -> None:
    if name not in _warned:
        _warned.add(name)
        warnings.warn(message, RuntimeWarning, stacklevel=3)


def known_backends() -> list[str]:
    """Every registered backend name, available or not."""
    return sorted({DEFAULT_BACKEND, *_LOADERS, *(k for k in _LOADED)})


def available_backends() -> list[str]:
    """Backend names whose kernel tables load successfully."""
    return [name for name in known_backends() if _load(name) is not None]


def resolve_backend(requested: str | None = None) -> str:
    """Resolve a backend request to a *usable* backend name.

    ``None`` consults the override, then ``REPRO_BACKEND``, then the
    default. An unknown or unavailable backend warns once and resolves
    to ``reference``.
    """
    name = requested or _override or os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    if name == DEFAULT_BACKEND:
        return name
    if name not in _LOADERS:
        _warn_once(name, f"unknown backend {name!r} (known: "
                         f"{', '.join(known_backends())}); falling back "
                         f"to {DEFAULT_BACKEND!r}")
        return DEFAULT_BACKEND
    if _load(name) is None:
        return DEFAULT_BACKEND
    return name


def get_backend() -> str:
    """The active backend name (after availability fallback)."""
    return resolve_backend()


def set_backend(name: str | None) -> str | None:
    """Set (or with ``None`` clear) the in-process backend override.

    Returns the previous override so callers can restore it.
    """
    global _override
    previous = _override
    if name is not None:
        resolve_backend(name)  # surface unknown/unavailable warnings now
    _override = name
    return previous


@contextmanager
def use_backend(name: str | None) -> Iterator[str]:
    """Context manager: run a block under a specific backend."""
    previous = set_backend(name)
    try:
        yield get_backend()
    finally:
        set_backend(previous)


def kernel_names() -> list[str]:
    """Every kernel declared through :func:`kernel`, sorted."""
    return sorted(_REFERENCE)


def kernel(name: str, traced: bool = True) -> Callable[[Callable[..., Any]],
                                                       Callable[..., Any]]:
    """Declare a hot-path kernel; the decorated body is the reference.

    The wrapper dispatches each call to the active backend's override
    (falling back to the reference body when the backend does not
    provide this kernel). ``traced=False`` suppresses the per-call
    ``kernel.<name>`` span — used for factory kernels whose cost is
    construction, not compute.
    """
    if name in _REFERENCE:
        raise ValueError(f"kernel {name!r} already declared")

    def decorate(ref: Callable[..., Any]) -> Callable[..., Any]:
        _REFERENCE[name] = ref

        @functools.wraps(ref)
        def dispatch(*args: Any, **kwargs: Any) -> Any:
            backend = resolve_backend()
            if backend == DEFAULT_BACKEND:
                fn = ref
            else:
                table = _load(backend)
                fn = table.get(name, ref) if table else ref
            if traced:
                tracer = get_tracer()
                if tracer.enabled:
                    with tracer.span(f"kernel.{name}", lane="kernel",
                                     kernel=name, backend=backend):
                        return fn(*args, **kwargs)
            return fn(*args, **kwargs)

        dispatch.kernel_name = name
        dispatch.reference = ref
        return dispatch

    return decorate


def kernel_impl(name: str, backend: str | None = None) -> Callable[..., Any]:
    """The raw implementation a backend would dispatch to (for tests and
    benchmarks that compare implementations without the span wrapper)."""
    if name not in _REFERENCE:
        raise KeyError(f"unknown kernel {name!r}")
    resolved = resolve_backend(backend)
    if resolved != DEFAULT_BACKEND:
        table = _load(resolved)
        if table and name in table:
            return table[name]
    return _REFERENCE[name]
