"""3-D torus network topology (Gemini's wiring on the XK6).

Jaguar's Gemini interconnect is a 3-D torus; per-hop latency is small but
at 18k+ nodes the diameter matters for worst-case transfers. This module
provides node placement and hop counting; the
:meth:`~repro.machine.gemini.GeminiNetwork.transfer_time` ``hops``
parameter consumes the result.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TorusTopology:
    """A ``dims[0] x dims[1] x dims[2]`` torus of nodes."""

    dims: tuple[int, int, int]

    def __post_init__(self) -> None:
        if len(self.dims) != 3 or any(d < 1 for d in self.dims):
            raise ValueError(f"dims must be 3 positive extents, got {self.dims}")

    @property
    def n_nodes(self) -> int:
        x, y, z = self.dims
        return x * y * z

    @classmethod
    def jaguar(cls) -> "TorusTopology":
        """Jaguar XK6's torus: 25 x 32 x 24 Gemini ASICs (each serving two
        nodes; we model at node granularity with 25 x 32 x 24 ~ 19,200
        >= 18,688 slots)."""
        return cls((25, 32, 24))

    def coords_of(self, node: int) -> tuple[int, int, int]:
        if not 0 <= node < self.n_nodes:
            raise IndexError(f"node {node} out of range [0, {self.n_nodes})")
        x, y, _z = self.dims
        return (node % x, (node // x) % y, node // (x * y))

    def node_at(self, coords: tuple[int, int, int]) -> int:
        x, y, z = self.dims
        cx, cy, cz = (coords[0] % x, coords[1] % y, coords[2] % z)
        return cx + x * (cy + y * cz)

    def hops(self, a: int, b: int) -> int:
        """Minimal torus (periodic Manhattan) distance between two nodes."""
        ca, cb = self.coords_of(a), self.coords_of(b)
        total = 0
        for axis in range(3):
            d = abs(ca[axis] - cb[axis])
            total += min(d, self.dims[axis] - d)
        return total

    @property
    def diameter(self) -> int:
        return sum(d // 2 for d in self.dims)

    def mean_hops_sample(self, n_pairs: int = 1000, seed: int = 0) -> float:
        """Monte-Carlo mean hop count between uniform random node pairs."""
        from repro.util.rng import seeded_rng
        if n_pairs < 1:
            raise ValueError("n_pairs must be >= 1")
        rng = seeded_rng(seed)
        pairs = rng.integers(0, self.n_nodes, size=(n_pairs, 2))
        return float(sum(self.hops(int(a), int(b)) for a, b in pairs) / n_pairs)

    def place_ranks(self, n_ranks: int, cores_per_node: int) -> list[int]:
        """Contiguous rank -> node placement (the default ALPS policy)."""
        if n_ranks < 1 or cores_per_node < 1:
            raise ValueError("n_ranks and cores_per_node must be >= 1")
        needed = -(-n_ranks // cores_per_node)
        if needed > self.n_nodes:
            raise ValueError(
                f"{n_ranks} ranks at {cores_per_node}/node need {needed} "
                f"nodes > torus capacity {self.n_nodes}")
        return [r // cores_per_node for r in range(n_ranks)]
