"""Lustre-like parallel filesystem model.

Table I of the paper notes that (a) file-per-process I/O achieves near-peak
bandwidth over a wide range of core counts, and (b) aggregate bandwidth is
limited by the number of Object Storage Targets (OSTs), so with constant
total data size the read/write times do not depend on core count. This
model captures exactly that: aggregate bandwidth saturates at
``n_osts * per-OST bandwidth`` regardless of how many clients write.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import GB


@dataclass(frozen=True)
class LustreModel:
    """OST-limited aggregate-bandwidth storage model.

    Defaults are calibrated so that 98.5 GB reads in ~6.56 s and writes in
    ~3.28 s (Table I): aggregate read ≈ 15 GB/s, write ≈ 30 GB/s.
    """

    n_osts: int = 672
    ost_read_bw: float = 15.0 * GB / 672   # bytes/s per OST
    ost_write_bw: float = 30.0 * GB / 672
    #: Per-client open/close + metadata overhead for file-per-process I/O.
    metadata_latency: float = 1.0e-3
    #: Per-client bandwidth ceiling (a single client cannot saturate the FS).
    client_bw: float = 2.0 * GB

    def __post_init__(self) -> None:
        if self.n_osts < 1:
            raise ValueError(f"n_osts must be >= 1, got {self.n_osts}")
        if min(self.ost_read_bw, self.ost_write_bw, self.client_bw) <= 0:
            raise ValueError("bandwidths must be positive")

    @property
    def aggregate_read_bw(self) -> float:
        return self.n_osts * self.ost_read_bw

    @property
    def aggregate_write_bw(self) -> float:
        return self.n_osts * self.ost_write_bw

    def _time(self, total_bytes: int, n_clients: int, agg_bw: float) -> float:
        if total_bytes < 0:
            raise ValueError(f"total_bytes must be non-negative, got {total_bytes}")
        if n_clients < 1:
            raise ValueError(f"n_clients must be >= 1, got {n_clients}")
        # Effective bandwidth: client-side ceiling until enough clients
        # participate to saturate the OSTs, then flat (core-count independent).
        bw = min(agg_bw, n_clients * self.client_bw)
        return self.metadata_latency + total_bytes / bw

    def read_time(self, total_bytes: int, n_clients: int) -> float:
        """Seconds for ``n_clients`` to collectively read ``total_bytes``."""
        return self._time(total_bytes, n_clients, self.aggregate_read_bw)

    def write_time(self, total_bytes: int, n_clients: int) -> float:
        """Seconds for ``n_clients`` to collectively write ``total_bytes``."""
        return self._time(total_bytes, n_clients, self.aggregate_write_bw)
