"""Machine models: node/system specs, Gemini-like network, Lustre-like storage.

This package replaces the paper's physical testbed (Jaguar, the Cray XK6 at
ORNL) with parameterised analytic models. Calibration constants for Jaguar
live in :mod:`repro.costmodel.jaguar`; this package defines the *structure*
(what a node, network, and parallel filesystem are) independent of any one
machine.
"""

from repro.machine.specs import MachineSpec, NodeSpec, jaguar_xk6
from repro.machine.gemini import GeminiNetwork, Protocol
from repro.machine.lustre import LustreModel
from repro.machine.torus import TorusTopology

__all__ = [
    "MachineSpec",
    "NodeSpec",
    "jaguar_xk6",
    "GeminiNetwork",
    "Protocol",
    "LustreModel",
    "TorusTopology",
]
