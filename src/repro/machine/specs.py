"""Node and machine specifications.

A :class:`MachineSpec` bundles the three models the cost layer needs:
compute (per-core rates), network (:class:`~repro.machine.gemini.GeminiNetwork`)
and storage (:class:`~repro.machine.lustre.LustreModel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.gemini import GeminiNetwork
from repro.machine.lustre import LustreModel
from repro.util.units import GB, TB


@dataclass(frozen=True)
class NodeSpec:
    """A single compute node."""

    cores: int
    memory_bytes: int
    #: Sustained double-precision rate per core used for flop-class costing.
    core_gflops: float

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.core_gflops <= 0:
            raise ValueError("core_gflops must be positive")


@dataclass(frozen=True)
class MachineSpec:
    """A full system: nodes + interconnect + parallel filesystem."""

    name: str
    n_nodes: int
    node: NodeSpec
    network: GeminiNetwork = field(default_factory=GeminiNetwork)
    filesystem: LustreModel = field(default_factory=LustreModel)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")

    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.node.cores

    @property
    def total_memory_bytes(self) -> int:
        return self.n_nodes * self.node.memory_bytes

    def validate_allocation(self, n_cores: int) -> None:
        """Raise if an allocation request exceeds the machine."""
        if n_cores < 1:
            raise ValueError(f"allocation must be >= 1 core, got {n_cores}")
        if n_cores > self.total_cores:
            raise ValueError(
                f"allocation of {n_cores} cores exceeds {self.name}'s "
                f"{self.total_cores} cores"
            )


def jaguar_xk6() -> MachineSpec:
    """The paper's testbed: Jaguar XK6 at ORNL.

    18,688 nodes, one 16-core AMD Opteron 6200 per node, Gemini interconnect,
    600 TB total memory (= 32 GB/node), Lustre ("Spider") storage.
    """
    return MachineSpec(
        name="Jaguar-XK6",
        n_nodes=18688,
        node=NodeSpec(cores=16, memory_bytes=32 * GB, core_gflops=9.2),
        network=GeminiNetwork(),
        filesystem=LustreModel(),
    )


def laptop() -> MachineSpec:
    """A small reference machine for tests and examples."""
    return MachineSpec(
        name="laptop",
        n_nodes=1,
        node=NodeSpec(cores=8, memory_bytes=16 * GB, core_gflops=4.0),
        network=GeminiNetwork(),
        filesystem=LustreModel(n_osts=1, ost_read_bw=0.5 * GB, ost_write_bw=0.4 * GB),
    )


# Sanity constant used in docs/tests: Jaguar's total memory as reported.
JAGUAR_TOTAL_MEMORY_BYTES = 18688 * 32 * GB
assert JAGUAR_TOTAL_MEMORY_BYTES // TB == 584  # ~600 TB as reported in §V
