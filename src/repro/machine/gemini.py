"""Gemini-like interconnect model with size-adaptive protocol selection.

Section IV of the paper describes DART's use of Cray Gemini's uGNI
interface: the *Short Message* (SMSG) mechanism (built on Fast Memory
Access, FMA) for small messages — lowest latency, OS-bypass, high message
rate — and the *Block Transfer Engine* (BTE) RDMA Get/Put for large
transfers — higher setup cost but full link bandwidth with
computation/communication overlap.

This module models both mechanisms analytically (latency + size/bandwidth)
and reproduces DART's dynamic selection by message size.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.units import GB, KB


class Protocol(enum.Enum):
    """Transfer mechanism chosen by the transport layer."""

    SMSG = "smsg"  # FMA short message: low latency, limited size
    BTE = "bte"    # Block Transfer Engine RDMA: high bandwidth


@dataclass(frozen=True)
class GeminiNetwork:
    """Analytic two-regime network model.

    Default constants approximate published Gemini microbenchmarks:
    ~1.5 us small-message latency, ~6 GB/s per-direction injection
    bandwidth, ~10 us RDMA post/completion overhead.
    """

    smsg_latency: float = 1.5e-6          # seconds, per SMSG message
    smsg_bandwidth: float = 1.2 * GB      # bytes/s in the FMA regime
    smsg_max_bytes: int = 16 * KB         # DART's switch-over threshold
    bte_setup: float = 1.0e-5             # seconds, RDMA post + event
    bte_bandwidth: float = 6.0 * GB       # bytes/s sustained RDMA
    #: Per-hop latency for topology-aware costing (3-D torus average hops
    #: are folded into the base latencies; this is exposed for ablations).
    hop_latency: float = 1.0e-7

    def __post_init__(self) -> None:
        if min(self.smsg_latency, self.bte_setup, self.hop_latency) < 0:
            raise ValueError("latencies must be non-negative")
        if min(self.smsg_bandwidth, self.bte_bandwidth) <= 0:
            raise ValueError("bandwidths must be positive")
        if self.smsg_max_bytes < 1:
            raise ValueError("smsg_max_bytes must be >= 1")

    def select_protocol(self, nbytes: int) -> Protocol:
        """DART's size-adaptive mechanism choice (§IV)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        return Protocol.SMSG if nbytes <= self.smsg_max_bytes else Protocol.BTE

    def transfer_time(self, nbytes: int, protocol: Protocol | None = None,
                      hops: int = 0) -> float:
        """Seconds to move ``nbytes`` point-to-point.

        ``protocol=None`` applies DART's automatic selection; passing an
        explicit protocol supports the ablation benchmark that sweeps the
        switch-over threshold.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        proto = protocol or self.select_protocol(nbytes)
        extra = hops * self.hop_latency
        if proto is Protocol.SMSG:
            return self.smsg_latency + nbytes / self.smsg_bandwidth + extra
        return self.bte_setup + nbytes / self.bte_bandwidth + extra

    def crossover_bytes(self) -> float:
        """Message size where SMSG and BTE cost the same.

        Below this size SMSG is faster; above, BTE. Solves
        ``l_s + n/b_s = l_b + n/b_b`` for ``n``.
        """
        inv = 1.0 / self.smsg_bandwidth - 1.0 / self.bte_bandwidth
        if inv <= 0:
            return 0.0
        return (self.bte_setup - self.smsg_latency) / inv
