"""Text-mode Gantt charts for schedule traces.

Renders per-actor activity spans on a character timeline — used by the
benchmark harness to visualise bucket occupancy in the Fig.-5 schedule
replays (which bucket held which task, when). :func:`spans_from_trace`
adapts :class:`repro.obs.Trace` span records so traced runs render the
same way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Span:
    """One activity: an actor busy on a label during [start, end)."""

    actor: str
    start: float
    end: float
    label: str = ""

    def __post_init__(self) -> None:
        if not (math.isfinite(self.start) and math.isfinite(self.end)):
            raise ValueError(f"span times must be finite, got "
                             f"[{self.start}, {self.end})")
        if self.end < self.start:
            raise ValueError(f"span ends ({self.end}) before it starts "
                             f"({self.start})")


def spans_from_trace(trace_or_spans, clock: str = "des") -> list[Span]:
    """Adapt tracer span records to Gantt :class:`Span`s.

    Accepts a :class:`repro.obs.Trace` (or any object with
    ``closed_spans()``) or a plain iterable of closed span records; the
    record's lane becomes the actor. ``clock`` is ``"des"``/``"trace"``
    for the trace clock or ``"wall"`` for wall time.
    """
    if clock not in ("des", "trace", "wall"):
        raise ValueError(f"clock must be 'des', 'trace' or 'wall', "
                         f"got {clock!r}")
    closed = getattr(trace_or_spans, "closed_spans", None)
    records = closed() if callable(closed) else trace_or_spans
    out = []
    for rec in records:
        if not rec.closed:
            continue
        if clock == "wall":
            start, end = rec.wall_start, rec.wall_end
        else:
            start, end = rec.t_start, rec.t_end
        out.append(Span(actor=rec.lane, start=start, end=end, label=rec.name))
    return out


def render_gantt(spans: list[Span], width: int = 72,
                 t0: float | None = None, t1: float | None = None) -> str:
    """Render spans as one text row per actor.

    Each actor's row shows '#' where it is busy; overlapping spans on one
    actor merge visually. The header shows the time range.
    """
    if not spans:
        return "(no spans)"
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    lo = min(s.start for s in spans) if t0 is None else t0
    hi = max(s.end for s in spans) if t1 is None else t1
    if hi <= lo:
        hi = lo + 1.0
    scale = width / (hi - lo)

    # Group once instead of re-scanning every span per actor (the old
    # per-actor scan made rendering quadratic in the span count).
    by_actor: dict[str, list[Span]] = {}
    for s in spans:
        by_actor.setdefault(s.actor, []).append(s)
    actors = sorted(by_actor)
    name_w = max(len(a) for a in actors)
    lines = [f"{'':{name_w}} |{lo:.1f}s{'':{max(0, width - 12)}}{hi:.1f}s"]
    for actor in actors:
        row = [" "] * width
        for s in by_actor[actor]:
            a = int((s.start - lo) * scale)
            b = max(a + 1, int((s.end - lo) * scale))
            for i in range(max(a, 0), min(b, width)):
                row[i] = "#"
        lines.append(f"{actor:{name_w}} |{''.join(row)}|")
    return "\n".join(lines)


def utilisation(spans: list[Span], t0: float, t1: float) -> dict[str, float]:
    """Busy fraction per actor over [t0, t1) (overlaps merged)."""
    if t1 <= t0:
        raise ValueError(f"empty window [{t0}, {t1})")
    by_actor: dict[str, list[tuple[float, float]]] = {}
    for s in spans:
        a, b = max(s.start, t0), min(s.end, t1)
        if b > a:
            by_actor.setdefault(s.actor, []).append((a, b))
    out: dict[str, float] = {}
    for actor, intervals in by_actor.items():
        intervals.sort()
        busy = 0.0
        cur_a, cur_b = intervals[0]
        for a, b in intervals[1:]:
            if a > cur_b:
                busy += cur_b - cur_a
                cur_a, cur_b = a, b
            else:
                cur_b = max(cur_b, b)
        busy += cur_b - cur_a
        out[actor] = busy / (t1 - t0)
    return out
