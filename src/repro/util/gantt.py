"""Text-mode Gantt charts for schedule traces.

Renders per-actor activity spans on a character timeline — used by the
benchmark harness to visualise bucket occupancy in the Fig.-5 schedule
replays (which bucket held which task, when).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Span:
    """One activity: an actor busy on a label during [start, end)."""

    actor: str
    start: float
    end: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span ends ({self.end}) before it starts "
                             f"({self.start})")


def render_gantt(spans: list[Span], width: int = 72,
                 t0: float | None = None, t1: float | None = None) -> str:
    """Render spans as one text row per actor.

    Each actor's row shows '#' where it is busy; overlapping spans on one
    actor merge visually. The header shows the time range.
    """
    if not spans:
        return "(no spans)"
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    lo = min(s.start for s in spans) if t0 is None else t0
    hi = max(s.end for s in spans) if t1 is None else t1
    if hi <= lo:
        hi = lo + 1.0
    scale = width / (hi - lo)

    actors = sorted({s.actor for s in spans})
    name_w = max(len(a) for a in actors)
    lines = [f"{'':{name_w}} |{lo:.1f}s{'':{max(0, width - 12)}}{hi:.1f}s"]
    for actor in actors:
        row = [" "] * width
        for s in spans:
            if s.actor != actor:
                continue
            a = int((s.start - lo) * scale)
            b = max(a + 1, int((s.end - lo) * scale))
            for i in range(max(a, 0), min(b, width)):
                row[i] = "#"
        lines.append(f"{actor:{name_w}} |{''.join(row)}|")
    return "\n".join(lines)


def utilisation(spans: list[Span], t0: float, t1: float) -> dict[str, float]:
    """Busy fraction per actor over [t0, t1) (overlaps merged)."""
    if t1 <= t0:
        raise ValueError(f"empty window [{t0}, {t1})")
    by_actor: dict[str, list[tuple[float, float]]] = {}
    for s in spans:
        a, b = max(s.start, t0), min(s.end, t1)
        if b > a:
            by_actor.setdefault(s.actor, []).append((a, b))
    out: dict[str, float] = {}
    for actor, intervals in by_actor.items():
        intervals.sort()
        busy = 0.0
        cur_a, cur_b = intervals[0]
        for a, b in intervals[1:]:
            if a > cur_b:
                busy += cur_b - cur_a
                cur_a, cur_b = a, b
            else:
                cur_b = max(cur_b, b)
        busy += cur_b - cur_a
        out[actor] = busy / (t1 - t0)
    return out
