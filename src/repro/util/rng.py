"""Deterministic random-number helpers.

Every stochastic component in the library (turbulence synthesis, workload
generators, scheduler jitter models) takes an explicit seed so runs are
reproducible; this module centralises the Generator construction.
"""

from __future__ import annotations

import numpy as np


def seeded_rng(seed: int | None, *streams: int) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``(seed, *streams)``.

    ``streams`` identifies independent substreams (e.g. one per virtual
    rank) derived from the same root seed, so that per-rank randomness is
    both reproducible and uncorrelated with rank count.
    """
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(np.random.SeedSequence(seed).spawn(1)[0] if not streams
                                 else np.random.SeedSequence((seed, *streams)))
