"""Byte and time unit helpers.

The paper reports sizes in MB/GB (decimal semantics are irrelevant at the
precision quoted; we use binary units, matching typical HPC tooling) and
times in seconds. These helpers keep conversions in one place.
"""

from __future__ import annotations

KB: int = 1024
MB: int = 1024**2
GB: int = 1024**3
TB: int = 1024**4


def bytes_to_mb(n: float) -> float:
    """Convert a byte count to mebibytes."""
    return n / MB


def bytes_to_gb(n: float) -> float:
    """Convert a byte count to gibibytes."""
    return n / GB


def fmt_bytes(n: float) -> str:
    """Human-readable byte count, e.g. ``fmt_bytes(98.5 * GB) == '98.50 GB'``."""
    if n < 0:
        raise ValueError(f"byte count must be non-negative, got {n}")
    for unit, name in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if n >= unit:
            return f"{n / unit:.2f} {name}"
    return f"{n:.0f} B"


def fmt_seconds(t: float) -> str:
    """Human-readable duration: microseconds through hours."""
    if t < 0:
        raise ValueError(f"duration must be non-negative, got {t}")
    if t < 1e-3:
        return f"{t * 1e6:.1f} us"
    if t < 1.0:
        return f"{t * 1e3:.2f} ms"
    if t < 120.0:
        return f"{t:.2f} s"
    if t < 7200.0:
        return f"{t / 60.0:.1f} min"
    return f"{t / 3600.0:.2f} h"
