"""Plain-text table rendering for benchmark harnesses.

The benchmark scripts print the same rows the paper's tables report;
``TextTable`` renders them with aligned columns so the output is directly
comparable to Tables I and II.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


class TextTable:
    """Accumulate rows and render an aligned plain-text table.

    >>> t = TextTable(["metric", "4896", "9440"])
    >>> t.add_row(["Simulation time (sec.)", 16.85, 8.42])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, header: Sequence[str], title: str | None = None) -> None:
        self.title = title
        self.header = [str(h) for h in header]
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        cells = [self._fmt(c) for c in row]
        if len(cells) != len(self.header):
            raise ValueError(
                f"row has {len(cells)} cells, header has {len(self.header)}"
            )
        self.rows.append(cells)

    @staticmethod
    def _fmt(cell: object) -> str:
        if isinstance(cell, float):
            if cell != 0 and abs(cell) < 0.01:
                return f"{cell:.4g}"
            return f"{cell:.2f}"
        return str(cell)

    def render(self) -> str:
        widths = [len(h) for h in self.header]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        sep = "-+-".join("-" * w for w in widths)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.header, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
