"""Minimal image output (PPM/PGM) and comparison metrics.

The visualization benchmarks write rendered frames as binary PPM so the
in-situ vs. hybrid images (paper Fig. 2) can be inspected without any
imaging dependency.
"""

from __future__ import annotations

import os

import numpy as np


def _validate_rgb(img: np.ndarray) -> np.ndarray:
    img = np.asarray(img)
    if img.ndim != 3 or img.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) image, got shape {img.shape}")
    return img


def write_ppm(path: str | os.PathLike, img: np.ndarray) -> None:
    """Write an ``(H, W, 3)`` float [0,1] or uint8 image as binary PPM (P6)."""
    img = _validate_rgb(img)
    if img.dtype != np.uint8:
        img = (np.clip(img, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    h, w, _ = img.shape
    with open(path, "wb") as f:
        f.write(f"P6\n{w} {h}\n255\n".encode("ascii"))
        f.write(img.tobytes())


def write_pgm(path: str | os.PathLike, img: np.ndarray) -> None:
    """Write an ``(H, W)`` float [0,1] or uint8 image as binary PGM (P5)."""
    img = np.asarray(img)
    if img.ndim != 2:
        raise ValueError(f"expected (H, W) image, got shape {img.shape}")
    if img.dtype != np.uint8:
        img = (np.clip(img, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    h, w = img.shape
    with open(path, "wb") as f:
        f.write(f"P5\n{w} {h}\n255\n".encode("ascii"))
        f.write(img.tobytes())


def image_rmse(a: np.ndarray, b: np.ndarray) -> float:
    """Root-mean-square error between two images of identical shape."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.sqrt(np.mean((a - b) ** 2)))
