"""Shared utilities: units, deterministic RNG, image output, text tables, timers.

These helpers are intentionally dependency-free (NumPy only) so that every
other subpackage can rely on them without import cycles.
"""

from repro.util.units import (
    KB,
    MB,
    GB,
    TB,
    bytes_to_mb,
    bytes_to_gb,
    fmt_bytes,
    fmt_seconds,
)
from repro.util.rng import seeded_rng
from repro.util.tables import TextTable
from repro.util.timer import WallTimer
from repro.util.image import write_ppm, write_pgm, image_rmse

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "bytes_to_mb",
    "bytes_to_gb",
    "fmt_bytes",
    "fmt_seconds",
    "seeded_rng",
    "TextTable",
    "WallTimer",
    "write_ppm",
    "write_pgm",
    "image_rmse",
]
