"""`repro.obs.capacity` — the byte-accurate capacity accounting plane.

Everything else in the observability stack reasons about staging memory
*analytically*: `ScaledExperiment.staging_memory_needed` is a formula,
and quotas, SLOs and the placement controller all consume it. This
module adds the measured side — a DES-time **resource ledger** that
records every staging-region allocate/free in the
:class:`~repro.transport.rdma.RdmaRegistry` and every granted-bytes wire
interval in :class:`~repro.transport.dart.DartTransport` as *attributed*
ledger entries (tenant/job via the tracer's ambient
:meth:`~repro.obs.tracer.Tracer.context`, shard via the attach site,
analysis/timestep via the region metadata).

On top of the ledger:

* exact per-tenant / per-shard / per-source resident-bytes accounting
  with high/low watermarks (integer bytes, so per-tenant totals sum to
  the global total with zero error);
* a **leak detector** — after a run drains, every consumer task has
  settled and every ``drop_version`` gc has run, so any region still
  resident in a registry is a leak; :meth:`CapacityLedger.scan_leaks`
  reports each with its allocating attribution (source node, analysis,
  timestep, tenant/job);
* a **headroom model** — the measured peak resident bytes reconciled
  against the analytic ``staging_memory_needed`` bound (clean runs must
  measure at or under the bound; the gap is surfaced as
  ``capacity.headroom_bytes``);
* ``kind=capacity`` events on the :class:`~repro.obs.live.TelemetryBus`
  — stamped from the DES clock only, so same-seed streams are
  byte-identical;
* per-tenant memory/bandwidth :class:`~repro.obs.live.SloObjective`
  factories for the :class:`~repro.obs.live.BurnRateMonitor`.

Determinism and overhead contract: the ledger only exists when a run
asks for one (or tracing is on); the registry/transport hot paths pay a
single ``ledger is None`` check when it does not, keeping the <5%
disabled-tracer overhead guard intact. All byte quantities are integers
and all timestamps are DES seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.obs.live import KIND_CAPACITY, SloObjective
from repro.obs.metrics import Gauge
from repro.obs.tracer import get_tracer
from repro.util.tables import TextTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.transport.dart import DartTransport
    from repro.transport.rdma import RdmaRegion, RdmaRegistry

__all__ = [
    "CapacityLedger",
    "CapacityReport",
    "LedgerEntry",
    "TransferEntry",
    "capacity_objectives",
    "run_capacity_scenario",
]

#: Attribution key used when no tenant/job context tag is in effect.
UNATTRIBUTED = "-"

#: Source-node name the synthetic retention fault registers under (the
#: ``--inject-leak`` leg of the capacity smoke gate).
LEAK_INJECTOR_NODE = "fault-injector"


@dataclass(frozen=True)
class LedgerEntry:
    """One staging-memory ledger transition (register / release / leak)."""

    t: float
    op: str  # "register" | "release" | "leak"
    region_id: str
    nbytes: int
    #: Global resident bytes immediately after this transition.
    resident: int
    shard: str
    source: str
    tenant: str
    job: str
    analysis: str | None = None
    timestep: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {"t": self.t, "op": self.op, "region_id": self.region_id,
                "nbytes": self.nbytes, "resident": self.resident,
                "shard": self.shard, "source": self.source,
                "tenant": self.tenant, "job": self.job,
                "analysis": self.analysis, "timestep": self.timestep}


@dataclass(frozen=True)
class TransferEntry:
    """One granted-bytes NIC interval (the wire time of an RDMA pull)."""

    t_start: float
    t_end: float
    nbytes: int
    protocol: str
    src: str
    dest: str
    shard: str
    tenant: str
    job: str
    analysis: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {"t_start": self.t_start, "t_end": self.t_end,
                "nbytes": self.nbytes, "protocol": self.protocol,
                "src": self.src, "dest": self.dest, "shard": self.shard,
                "tenant": self.tenant, "job": self.job,
                "analysis": self.analysis}


class _ScopeAccount:
    """Integer resident-bytes accounting for one attribution scope."""

    __slots__ = ("resident", "registered", "released", "nic_bytes", "gauge")

    def __init__(self, name: str, clock: Callable[[], float]) -> None:
        self.resident = 0
        self.registered = 0
        self.released = 0
        self.nic_bytes = 0
        self.gauge = Gauge(name, clock=clock)

    def to_dict(self) -> dict[str, Any]:
        wm = self.gauge.watermark()
        return {"resident_bytes": self.resident,
                "registered_bytes": self.registered,
                "released_bytes": self.released,
                "nic_bytes": self.nic_bytes,
                "peak_bytes": int(wm["max"]) if wm["max"] is not None else 0,
                "peak_t": wm["max_t"]}


@dataclass
class CapacityReport:
    """Everything one ledger measured, as plain JSON-safe data.

    ``by_tenant`` / ``by_shard`` / ``by_source`` break the same integer
    byte totals down by attribution scope, so each breakdown's
    ``registered_bytes`` (and ``released_bytes``, ``nic_bytes``) sums
    exactly to the corresponding global total.
    """

    analytic_bound_bytes: int | None
    peak_resident_bytes: int
    peak_t: float | None
    final_resident_bytes: int
    registered_bytes_total: int
    released_bytes_total: int
    n_registers: int
    n_releases: int
    nic_peak_bytes: int
    nic_peak_t: float | None
    nic_bytes_total: int
    nic_busy_seconds: float
    n_transfers: int
    by_tenant: dict[str, dict[str, Any]] = field(default_factory=dict)
    by_shard: dict[str, dict[str, Any]] = field(default_factory=dict)
    by_source: dict[str, dict[str, Any]] = field(default_factory=dict)
    by_analysis: dict[str, dict[str, Any]] = field(default_factory=dict)
    leaks: list[dict[str, Any]] = field(default_factory=list)
    resident_series: list[tuple[float, int]] | None = None
    #: 1 when this run measured past its analytic bound, else 0 (summed
    #: by :meth:`merge` so a campaign view counts offending runs).
    headroom_violations: int = 0

    @property
    def headroom_bytes(self) -> int | None:
        if self.analytic_bound_bytes is None:
            return None
        return self.analytic_bound_bytes - self.peak_resident_bytes

    @property
    def clean(self) -> bool:
        """No leaks and no headroom violation."""
        return not self.leaks and self.headroom_violations == 0

    def to_dict(self, series_cap: int | None = 240) -> dict[str, Any]:
        series = self.resident_series
        if series is not None and series_cap is not None \
                and len(series) > series_cap:
            stride = len(series) / series_cap
            series = [series[int(i * stride)] for i in range(series_cap)]
        return {
            "analytic_bound_bytes": self.analytic_bound_bytes,
            "peak_resident_bytes": self.peak_resident_bytes,
            "peak_t": self.peak_t,
            "headroom_bytes": self.headroom_bytes,
            "headroom_violations": self.headroom_violations,
            "final_resident_bytes": self.final_resident_bytes,
            "registered_bytes_total": self.registered_bytes_total,
            "released_bytes_total": self.released_bytes_total,
            "n_registers": self.n_registers,
            "n_releases": self.n_releases,
            "nic_peak_bytes": self.nic_peak_bytes,
            "nic_peak_t": self.nic_peak_t,
            "nic_bytes_total": self.nic_bytes_total,
            "nic_busy_seconds": self.nic_busy_seconds,
            "n_transfers": self.n_transfers,
            "by_tenant": self.by_tenant,
            "by_shard": self.by_shard,
            "by_source": self.by_source,
            "by_analysis": self.by_analysis,
            "leaks": self.leaks,
            "resident_series": series,
        }

    def watermark_table(self) -> str:
        """Aligned per-scope watermark table (the `repro capacity` view)."""
        t = TextTable(["scope", "peak bytes", "at t", "registered",
                       "released", "resident", "nic bytes"],
                      title="capacity watermarks")
        t.add_row(["global", self.peak_resident_bytes,
                   f"{self.peak_t:.4f}" if self.peak_t is not None else "-",
                   self.registered_bytes_total, self.released_bytes_total,
                   self.final_resident_bytes, self.nic_bytes_total])
        for label, scopes in (("tenant", self.by_tenant),
                              ("shard", self.by_shard),
                              ("source", self.by_source)):
            for name, acct in sorted(scopes.items()):
                peak_t = acct.get("peak_t")
                t.add_row([f"{label}:{name}", acct["peak_bytes"],
                           f"{peak_t:.4f}" if peak_t is not None else "-",
                           acct["registered_bytes"], acct["released_bytes"],
                           acct["resident_bytes"], acct["nic_bytes"]])
        return t.render()

    def leak_table(self) -> str:
        if not self.leaks:
            return "(no leaks)"
        t = TextTable(["region", "bytes", "shard", "source", "analysis",
                       "step", "tenant", "job"], title="leaked regions")
        for leak in self.leaks:
            t.add_row([leak["region_id"], leak["nbytes"], leak["shard"],
                       leak["source"], leak["analysis"] or "-",
                       leak["timestep"] if leak["timestep"] is not None
                       else "-", leak["tenant"], leak["job"]])
        return t.render()

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "CapacityReport":
        """Rebuild a report from :meth:`to_dict` output (the schedule
        cache round-trip; pass ``series_cap=None`` when serializing for
        an exact rebuild)."""
        series = d.get("resident_series")
        return cls(
            analytic_bound_bytes=d.get("analytic_bound_bytes"),
            peak_resident_bytes=d["peak_resident_bytes"],
            peak_t=d.get("peak_t"),
            final_resident_bytes=d["final_resident_bytes"],
            registered_bytes_total=d["registered_bytes_total"],
            released_bytes_total=d["released_bytes_total"],
            n_registers=d["n_registers"],
            n_releases=d["n_releases"],
            nic_peak_bytes=d["nic_peak_bytes"],
            nic_peak_t=d.get("nic_peak_t"),
            nic_bytes_total=d["nic_bytes_total"],
            nic_busy_seconds=d["nic_busy_seconds"],
            n_transfers=d["n_transfers"],
            by_tenant=d.get("by_tenant", {}),
            by_shard=d.get("by_shard", {}),
            by_source=d.get("by_source", {}),
            by_analysis=d.get("by_analysis", {}),
            leaks=d.get("leaks", []),
            resident_series=([(p[0], p[1]) for p in series]
                             if series is not None else None),
            headroom_violations=d.get("headroom_violations", 0),
        )

    @classmethod
    def merge(cls, reports: list["CapacityReport"]) -> "CapacityReport":
        """Aggregate several runs' reports into one campaign view.

        Totals and breakdowns sum; peaks take the per-run maximum (runs
        are sequential on the service clock, never co-resident); the
        per-run resident series and analytic bounds do not compose, so
        the merged report carries neither — headroom accounting survives
        as the summed violation count.
        """
        if not reports:
            raise ValueError("cannot merge zero capacity reports")

        def merge_scopes(key: str) -> dict[str, dict[str, Any]]:
            out: dict[str, dict[str, Any]] = {}
            for rep in reports:
                for name, acct in getattr(rep, key).items():
                    cur = out.setdefault(name, {
                        "resident_bytes": 0, "registered_bytes": 0,
                        "released_bytes": 0, "nic_bytes": 0,
                        "peak_bytes": 0, "peak_t": None})
                    for f in ("resident_bytes", "registered_bytes",
                              "released_bytes", "nic_bytes"):
                        cur[f] += acct[f]
                    if acct["peak_bytes"] > cur["peak_bytes"]:
                        cur["peak_bytes"] = acct["peak_bytes"]
                        cur["peak_t"] = acct.get("peak_t")
            return out

        peak = max(reports, key=lambda r: r.peak_resident_bytes)
        nic_peak = max(reports, key=lambda r: r.nic_peak_bytes)
        return cls(
            analytic_bound_bytes=None,
            peak_resident_bytes=peak.peak_resident_bytes,
            peak_t=peak.peak_t,
            final_resident_bytes=sum(r.final_resident_bytes
                                     for r in reports),
            registered_bytes_total=sum(r.registered_bytes_total
                                       for r in reports),
            released_bytes_total=sum(r.released_bytes_total
                                     for r in reports),
            n_registers=sum(r.n_registers for r in reports),
            n_releases=sum(r.n_releases for r in reports),
            nic_peak_bytes=nic_peak.nic_peak_bytes,
            nic_peak_t=nic_peak.nic_peak_t,
            nic_bytes_total=sum(r.nic_bytes_total for r in reports),
            nic_busy_seconds=sum(r.nic_busy_seconds for r in reports),
            n_transfers=sum(r.n_transfers for r in reports),
            by_tenant=merge_scopes("by_tenant"),
            by_shard=merge_scopes("by_shard"),
            by_source=merge_scopes("by_source"),
            by_analysis=merge_scopes("by_analysis"),
            leaks=[leak for r in reports for leak in r.leaks],
            resident_series=None,
            headroom_violations=sum(r.headroom_violations for r in reports),
        )


class CapacityLedger:
    """DES-time ledger of staging-memory and NIC-bandwidth consumption.

    Attach it to the transports of a run (:meth:`attach_transport`) and
    bind the run's DES clock (:meth:`bind_clock`); the registry and
    transport hot paths call :meth:`on_register` / :meth:`on_release` /
    :meth:`on_transfer` behind a single ``ledger is not None`` check.
    After the run drains, :meth:`finalize` scans the registries for
    leaked regions and assembles the :class:`CapacityReport`.
    """

    def __init__(self, clock: Callable[[], float] | None = None,
                 analytic_bound_bytes: int | None = None) -> None:
        self._clock: Callable[[], float] = clock or (lambda: 0.0)
        self.analytic_bound_bytes = analytic_bound_bytes
        self._tracer = get_tracer()
        self.entries: list[LedgerEntry] = []
        self.transfers: list[TransferEntry] = []
        self.resident_bytes = 0
        self.registered_bytes_total = 0
        self.released_bytes_total = 0
        self.n_registers = 0
        self.n_releases = 0
        self._resident_gauge = Gauge("capacity.resident_bytes",
                                     clock=self.now, record_series=True)
        self._scopes: dict[str, dict[str, _ScopeAccount]] = {
            "tenant": {}, "shard": {}, "source": {}, "analysis": {}}
        #: (shard, region_id) -> attribution captured at register time, so
        #: a release (or leak scan) outside the allocating context still
        #: credits the right tenant/shard. Keyed by shard too: region ids
        #: are minted per registry, so distinct shards can reuse one id.
        self._attribution: dict[tuple[str, str], dict[str, Any]] = {}
        self._registries: list[tuple[str, "RdmaRegistry"]] = []
        self._pending_leak_bytes: int | None = None
        self._report: CapacityReport | None = None

    # -- wiring ---------------------------------------------------------------

    def now(self) -> float:
        return self._clock()

    @property
    def peak_resident_bytes(self) -> int:
        """Running high-water mark of global resident staging bytes."""
        wm = self._resident_gauge.watermark()
        return int(wm["max"]) if wm["max"] is not None else 0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Use the run's DES clock (``lambda: engine.now``)."""
        self._clock = clock

    def attach_transport(self, transport: "DartTransport",
                         shard: str = "shard0") -> None:
        """Hook one transport (and its registry) into the ledger."""
        transport.ledger = self
        transport.ledger_shard = shard
        self.attach_registry(transport.registry, shard=shard)

    def attach_registry(self, registry: "RdmaRegistry",
                        shard: str = "shard0") -> None:
        registry.ledger = self
        registry.ledger_shard = shard
        self._registries.append((shard, registry))
        if self._pending_leak_bytes is not None:
            # Seeded retention fault: a real region registered through
            # the real path, never released — the leak scan must find it.
            nbytes = self._pending_leak_bytes
            self._pending_leak_bytes = None
            registry.register(LEAK_INJECTOR_NODE, payload=None,
                              nbytes=nbytes,
                              meta={"analysis": "injected-leak",
                                    "timestep": -1})

    def inject_leak(self, nbytes: int = 1 << 20) -> None:
        """Arm a synthetic retention fault for the next registry attach
        (the ``--inject-leak`` capacity-smoke leg)."""
        if nbytes <= 0:
            raise ValueError(f"leak bytes must be > 0, got {nbytes}")
        self._pending_leak_bytes = int(nbytes)

    # -- ledger transitions ---------------------------------------------------

    def _scope(self, kind: str, name: str) -> _ScopeAccount:
        scopes = self._scopes[kind]
        acct = scopes.get(name)
        if acct is None:
            acct = scopes[name] = _ScopeAccount(
                f"capacity.{kind}.{name}", clock=self.now)
        return acct

    def _attr_tags(self) -> tuple[str, str]:
        tags = self._tracer.context_tags()
        return (tags.get("tenant") or UNATTRIBUTED,
                tags.get("job") or UNATTRIBUTED)

    def on_register(self, region: "RdmaRegion", shard: str) -> None:
        t = self.now()
        tenant, job = self._attr_tags()
        nbytes = int(region.nbytes)
        analysis = region.meta.get("analysis")
        timestep = region.meta.get("timestep")
        self.resident_bytes += nbytes
        self.registered_bytes_total += nbytes
        self.n_registers += 1
        self._resident_gauge.set(self.resident_bytes)
        attribution = {"tenant": tenant, "job": job, "shard": shard,
                       "source": region.source_node, "analysis": analysis,
                       "timestep": timestep, "nbytes": nbytes}
        self._attribution[(shard, region.region_id)] = attribution
        for kind, name in (("tenant", tenant), ("shard", shard),
                           ("source", region.source_node),
                           ("analysis", analysis or UNATTRIBUTED)):
            acct = self._scope(kind, name)
            acct.resident += nbytes
            acct.registered += nbytes
            acct.gauge.set(acct.resident)
        self.entries.append(LedgerEntry(
            t=t, op="register", region_id=region.region_id, nbytes=nbytes,
            resident=self.resident_bytes, shard=shard,
            source=region.source_node, tenant=tenant, job=job,
            analysis=analysis, timestep=timestep))
        self._publish("capacity.register", t, shard, tenant, job,
                      region=region.region_id, nbytes=nbytes,
                      resident=self.resident_bytes, analysis=analysis,
                      step=timestep)

    def on_release(self, region: "RdmaRegion", shard: str) -> None:
        t = self.now()
        attribution = self._attribution.pop((shard, region.region_id), None)
        if attribution is None:
            # Registered before the ledger attached: attribute to the
            # releasing context so the books still balance.
            tenant, job = self._attr_tags()
            attribution = {"tenant": tenant, "job": job, "shard": shard,
                           "source": region.source_node,
                           "analysis": region.meta.get("analysis"),
                           "timestep": region.meta.get("timestep"),
                           "nbytes": int(region.nbytes)}
            self.resident_bytes += attribution["nbytes"]
            self.registered_bytes_total += attribution["nbytes"]
            for kind, name in self._scope_keys(attribution):
                acct = self._scope(kind, name)
                acct.resident += attribution["nbytes"]
                acct.registered += attribution["nbytes"]
        nbytes = attribution["nbytes"]
        self.resident_bytes -= nbytes
        self.released_bytes_total += nbytes
        self.n_releases += 1
        self._resident_gauge.set(self.resident_bytes)
        for kind, name in self._scope_keys(attribution):
            acct = self._scope(kind, name)
            acct.resident -= nbytes
            acct.released += nbytes
            acct.gauge.set(acct.resident)
        self.entries.append(LedgerEntry(
            t=t, op="release", region_id=region.region_id, nbytes=nbytes,
            resident=self.resident_bytes, shard=attribution["shard"],
            source=attribution["source"], tenant=attribution["tenant"],
            job=attribution["job"], analysis=attribution["analysis"],
            timestep=attribution["timestep"]))
        self._publish("capacity.release", t, attribution["shard"],
                      attribution["tenant"], attribution["job"],
                      region=region.region_id, nbytes=nbytes,
                      resident=self.resident_bytes,
                      analysis=attribution["analysis"],
                      step=attribution["timestep"])

    @staticmethod
    def _scope_keys(attribution: dict[str, Any]
                    ) -> tuple[tuple[str, str], ...]:
        return (("tenant", attribution["tenant"]),
                ("shard", attribution["shard"]),
                ("source", attribution["source"]),
                ("analysis", attribution["analysis"] or UNATTRIBUTED))

    def on_transfer(self, t_start: float, t_end: float, nbytes: int,
                    protocol: str, src: str, dest: str, shard: str,
                    analysis: str | None = None) -> None:
        """Record one granted-bytes NIC interval (the wire time of a
        pull, excluding NIC-channel queueing)."""
        tenant, job = self._attr_tags()
        nbytes = int(nbytes)
        self.transfers.append(TransferEntry(
            t_start=t_start, t_end=t_end, nbytes=nbytes, protocol=protocol,
            src=src, dest=dest, shard=shard, tenant=tenant, job=job,
            analysis=analysis))
        for kind, name in (("tenant", tenant), ("shard", shard),
                           ("source", src),
                           ("analysis", analysis or UNATTRIBUTED)):
            self._scope(kind, name).nic_bytes += nbytes
        self._publish("capacity.transfer", t_end, shard, tenant, job,
                      nbytes=nbytes, protocol=protocol, src=src, dest=dest,
                      t_start=t_start, analysis=analysis)

    def _publish(self, name: str, t: float, shard: str, tenant: str,
                 job: str, **data: Any) -> None:
        bus = self._tracer.bus
        if bus is not None:
            bus.publish(KIND_CAPACITY, name, t=t, lane=shard,
                        tenant=None if tenant == UNATTRIBUTED else tenant,
                        job_id=None if job == UNATTRIBUTED else job, **data)

    # -- leak detection & the report -----------------------------------------

    def scan_leaks(self) -> list[dict[str, Any]]:
        """Regions still resident across every attached registry.

        Call after the run drains: every consumer task has settled and
        gc has run, so whatever is left was never freed."""
        leaks: list[dict[str, Any]] = []
        for shard, registry in self._registries:
            for region_id in sorted(registry.region_ids()):
                region = registry.lookup(region_id)
                attribution = self._attribution.get((shard, region_id), {})
                leaks.append({
                    "region_id": region_id,
                    "nbytes": int(region.nbytes),
                    "shard": attribution.get("shard", shard),
                    "source": region.source_node,
                    "analysis": region.meta.get("analysis"),
                    "timestep": region.meta.get("timestep"),
                    "tenant": attribution.get("tenant", UNATTRIBUTED),
                    "job": attribution.get("job", UNATTRIBUTED),
                    "pull_count": region.pull_count,
                })
        return leaks

    def finalize(self) -> CapacityReport:
        """Scan for leaks and assemble the report (idempotent)."""
        if self._report is not None:
            return self._report
        leaks = self.scan_leaks()
        t = self.now()
        for leak in leaks:
            self.entries.append(LedgerEntry(
                t=t, op="leak", region_id=leak["region_id"],
                nbytes=leak["nbytes"], resident=self.resident_bytes,
                shard=leak["shard"], source=leak["source"],
                tenant=leak["tenant"], job=leak["job"],
                analysis=leak["analysis"], timestep=leak["timestep"]))
            self._publish("capacity.leak", t, leak["shard"], leak["tenant"],
                          leak["job"], region=leak["region_id"],
                          nbytes=leak["nbytes"], analysis=leak["analysis"],
                          step=leak["timestep"])
        nic_peak, nic_peak_t, nic_busy = self._nic_occupancy()
        wm = self._resident_gauge.watermark()
        peak = int(wm["max"]) if wm["max"] is not None else 0
        bound = self.analytic_bound_bytes
        violations = int(bound is not None and peak > bound)
        if self._tracer.enabled:
            metrics = self._tracer.metrics
            metrics.gauge("capacity.peak_resident_bytes").set(peak)
            if bound is not None:
                metrics.gauge("capacity.headroom_bytes").set(bound - peak)
            metrics.gauge("capacity.nic_peak_bytes").set(nic_peak)
            metrics.gauge("capacity.leaked_regions").set(len(leaks))
        self._report = CapacityReport(
            analytic_bound_bytes=bound,
            peak_resident_bytes=peak,
            peak_t=wm["max_t"],
            final_resident_bytes=self.resident_bytes,
            registered_bytes_total=self.registered_bytes_total,
            released_bytes_total=self.released_bytes_total,
            n_registers=self.n_registers,
            n_releases=self.n_releases,
            nic_peak_bytes=nic_peak,
            nic_peak_t=nic_peak_t,
            nic_bytes_total=sum(tr.nbytes for tr in self.transfers),
            nic_busy_seconds=nic_busy,
            n_transfers=len(self.transfers),
            by_tenant={k: v.to_dict()
                       for k, v in self._scopes["tenant"].items()},
            by_shard={k: v.to_dict()
                      for k, v in self._scopes["shard"].items()},
            by_source={k: v.to_dict()
                       for k, v in self._scopes["source"].items()},
            by_analysis={k: v.to_dict()
                         for k, v in self._scopes["analysis"].items()},
            leaks=leaks,
            resident_series=list(self._resident_gauge.series or []),
            headroom_violations=violations,
        )
        return self._report

    def _nic_occupancy(self) -> tuple[int, float | None, float]:
        """Peak concurrent granted bytes, when it was reached, and total
        seconds any transfer occupied the wire (interval sweep)."""
        if not self.transfers:
            return 0, None, 0.0
        events: list[tuple[float, int, int]] = []
        for tr in self.transfers:
            # At equal times, releases (order 0) precede grants (order 1)
            # so back-to-back transfers do not count as concurrent.
            events.append((tr.t_start, 1, tr.nbytes))
            events.append((tr.t_end, 0, -tr.nbytes))
        events.sort(key=lambda e: (e[0], e[1]))
        active = 0
        peak = 0
        peak_t: float | None = None
        busy = 0.0
        busy_since: float | None = None
        for t, _order, delta in events:
            prev = active
            active += delta
            if prev == 0 and active > 0:
                busy_since = t
            elif prev > 0 and active == 0 and busy_since is not None:
                busy += t - busy_since
                busy_since = None
            if active > peak:
                peak = active
                peak_t = t
        return peak, peak_t, busy


# ---------------------------------------------------------------------------
# SLO objectives
# ---------------------------------------------------------------------------


def capacity_objectives(memory_frac_target: float = 1.0,
                        nic_frac_target: float = 1.0
                        ) -> tuple[SloObjective, ...]:
    """Per-tenant capacity objectives for the burn-rate monitor.

    * ``staging-memory`` — a job's ledger-measured peak resident staging
      bytes stay within ``memory_frac_target`` of its analytic
      ``staging_memory_needed`` bound (fraction > 1 means the model
      under-provisioned);
    * ``nic-bandwidth`` — the job's peak concurrent granted NIC bytes
      stay within ``nic_frac_target`` of the same bound (the in-flight
      data a pull storm pins on the wire at once).
    """
    return (
        SloObjective(name="staging-memory", metric="staging_peak_frac",
                     target=memory_frac_target),
        SloObjective(name="nic-bandwidth", metric="nic_peak_frac",
                     target=nic_frac_target, severity="ticket"),
    )


# ---------------------------------------------------------------------------
# The `repro capacity` scenario
# ---------------------------------------------------------------------------


def run_capacity_scenario(n_steps: int = 6, n_buckets: int = 4,
                          analysis_interval: int = 1, n_shards: int = 1,
                          tenants: tuple[str, ...] = ("alpha", "beta"),
                          inject_leak: bool = False,
                          leak_bytes: int = 1 << 20) -> dict[str, Any]:
    """Replay one Fig. 5-shaped campaign per tenant with the ledger on.

    Runs each tenant's replay under its own ambient tracer context (so
    every ledger entry is tenant-attributed), optionally arming a seeded
    retention fault on the final tenant's run, and merges the per-run
    reports into the campaign view. Returns the per-tenant reports, the
    merged report, and the ``kind=capacity`` event stream (one canonical
    JSONL line per event — byte-identical across same-seed runs).
    """
    from repro.obs.live import TelemetryBus, event_to_json
    from repro.obs.tracer import get_tracer, tracing

    with tracing() as tracer:
        bus = tracer.attach_bus(TelemetryBus())
        sub = bus.subscribe("capacity-scenario")
        reports: dict[str, CapacityReport] = {}
        makespans: dict[str, float] = {}
        for i, tenant in enumerate(tenants):
            exp = _scenario_experiment()
            ledger = CapacityLedger()
            if inject_leak and i == len(tenants) - 1:
                ledger.inject_leak(leak_bytes)
            with get_tracer().context(tenant=tenant, job=f"{tenant}-cap"):
                sched = exp.run_schedule(
                    n_steps=n_steps + i, n_buckets=n_buckets,
                    analysis_interval=analysis_interval,
                    n_shards=n_shards, capacity=ledger)
            reports[tenant] = sched.capacity
            makespans[tenant] = sched.makespan
        merged = CapacityReport.merge(list(reports.values()))
        events = [event_to_json(e) for e in sub.poll()
                  if e.kind == KIND_CAPACITY]
        tracer.attach_bus(None)
    return {"tenants": reports, "merged": merged, "events": events,
            "makespans": makespans, "inject_leak": inject_leak}


def _scenario_experiment() -> Any:
    """The replay experiment the capacity scenario (and smoke CI)
    measures — the paper's 4896-core allocation, same as `repro perf`."""
    from repro.core.runner import ExperimentConfig, ScaledExperiment
    return ScaledExperiment(ExperimentConfig.paper_4896())
