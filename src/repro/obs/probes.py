"""Live probes: periodic DES-clock sampling of gauges plus SLO rules.

A :class:`ProbeSampler` attaches to a :class:`~repro.des.engine.Engine`
(``engine.attach_probe``) and is driven by the event loop itself: every
time the simulated clock advances, the sampler back-fills one sample per
elapsed ``interval`` boundary for each registered probe (a zero-argument
callable reading live state — scheduler queue depth, NIC occupancy,
bucket utilisation, RDMA-registered bytes). Because DES state only
changes at events, sampling at dispatch granularity reproduces exactly
what a real periodic sampler would have seen, without keeping the event
heap alive or perturbing the schedule.

Two kinds of SLO rule ride on the sampler:

* :class:`SloRule` — judged against a probe's value at every sample
  instant (e.g. *scheduler backlog stays under 4x the bucket count*);
* :class:`SummarySlo` — judged once over the finished trace's stage
  totals (e.g. the paper's headline budget: *in-situ work takes < 5% of
  the timestep*).

A rule breach emits an ``slo.breach`` instant into the trace (visible in
Perfetto) and an :class:`SloAlert` record; re-breaching only alerts again
after the rule has recovered, so a sustained violation is one alert, not
one per sample.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.obs.tracer import NullTracer, Tracer, get_tracer

__all__ = [
    "SloAlert",
    "SloRule",
    "SummarySlo",
    "ProbeSampler",
    "standard_probes",
    "default_slos",
    "insitu_share_slo",
]

_OPS: dict[str, Callable[[float, float], bool]] = {
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
}


@dataclass
class SloAlert:
    """One rule breach at one instant of the run."""

    rule: str
    t: float
    value: float
    threshold: float
    message: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"rule": self.rule, "t": self.t, "value": self.value,
                "threshold": self.threshold, "message": self.message}


@dataclass(frozen=True)
class SloRule:
    """A requirement on a sampled probe: healthy iff ``value op threshold``."""

    name: str
    probe: str
    op: str
    threshold: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"op must be one of {sorted(_OPS)}, "
                             f"got {self.op!r}")

    def healthy(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "kind": "sampled", "probe": self.probe,
                "op": self.op, "threshold": self.threshold,
                "description": self.description}


@dataclass(frozen=True)
class SummarySlo:
    """A requirement on the finished run, evaluated over stage totals.

    ``value_of`` reduces the ``stage -> total seconds`` map to one
    figure; the rule is healthy iff ``value op threshold``.
    """

    name: str
    value_of: Callable[[dict[str, float]], float]
    op: str
    threshold: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"op must be one of {sorted(_OPS)}, "
                             f"got {self.op!r}")

    def healthy(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "kind": "summary", "op": self.op,
                "threshold": self.threshold,
                "description": self.description}


def insitu_share_slo(budget: float = 0.05) -> SummarySlo:
    """The paper's headline budget: in-situ work < 5% of the timestep."""

    def share(totals: dict[str, float]) -> float:
        insitu = totals.get("insitu", 0.0)
        step = insitu + totals.get("simulation", 0.0)
        return insitu / step if step else 0.0

    return SummarySlo(
        name="insitu-share",
        value_of=share,
        op="<",
        threshold=budget,
        description=f"in-situ share of the timestep stays under "
                    f"{100 * budget:.0f}% (the paper's budget)",
    )


class ProbeSampler:
    """Periodic sampler over live gauges, driven by the DES clock.

    Attach with ``engine.attach_probe(sampler)`` *before* ``engine.run``.
    Samples land in :attr:`series` (``name -> [(t, value), ...]``), are
    mirrored into the tracer's ``probe.<name>`` gauges (so they reach the
    Chrome counter track), and feed the sampled SLO rules. Call
    :meth:`finalize` once the run has drained to evaluate summary rules.
    """

    def __init__(self, interval: float,
                 probes: dict[str, Callable[[], float]],
                 slos: tuple[SloRule | SummarySlo, ...] = (),
                 tracer: Tracer | NullTracer | None = None,
                 start: float = 0.0,
                 max_samples: int = 100_000) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.interval = interval
        self.probes = dict(probes)
        self.rules: tuple[SloRule | SummarySlo, ...] = tuple(slos)
        self.tracer = tracer if tracer is not None else get_tracer()
        self.series: dict[str, list[tuple[float, float]]] = {
            name: [] for name in self.probes}
        self.alerts: list[SloAlert] = []
        self.n_samples = 0
        self.max_samples = max_samples
        self._next = start
        self._breached: set[str] = set()
        #: (rule id, instant) pairs already alerted — a sampled rule and
        #: a summary rule sharing a name must not double-fire one window.
        self._alerted: set[tuple[str, float]] = set()
        self._sampled_rules = [r for r in self.rules
                               if isinstance(r, SloRule)]
        self._summary_rules = [r for r in self.rules
                               if isinstance(r, SummarySlo)]
        # Bound once, lazily: (name, fn, series list, gauge) per probe —
        # the per-sample loop must not re-do registry/dict lookups.
        self._rows: list[tuple[str, Callable[[], float], list, Any]] | None \
            = None

    # -- engine hook ---------------------------------------------------------

    def on_advance(self, now: float) -> None:
        """Called by the engine whenever the simulated clock advances."""
        while self._next <= now + 1e-12 and self.n_samples < self.max_samples:
            self._sample(self._next)
            self._next += self.interval

    def _sample(self, t: float) -> None:
        self.n_samples += 1
        rows = self._rows
        if rows is None:
            metrics = self.tracer.metrics
            rows = self._rows = [
                (name, fn, self.series[name], metrics.gauge("probe." + name))
                for name, fn in self.probes.items()]
        check_rules = bool(self._sampled_rules)
        bus = getattr(self.tracer, "bus", None)
        ctx = self.tracer.context_tags() if bus is not None else {}
        values: dict[str, float] = {}
        for name, fn, series, _gauge in rows:
            value = fn()
            series.append((t, value))
            if bus is not None:
                bus.publish("probe", name, t=t, lane="probe",
                            tenant=ctx.get("tenant"), job_id=ctx.get("job"),
                            value=value)
            if check_rules:
                values[name] = value
        for rule in self._sampled_rules:
            value = values.get(rule.probe)
            if value is None:
                continue
            if rule.healthy(value):
                self._breached.discard(rule.name)
            elif rule.name not in self._breached:
                self._breached.add(rule.name)
                self._alert(rule.name, t, value, rule.threshold,
                            rule.description or
                            f"{rule.probe} {rule.op} {rule.threshold} "
                            f"violated")

    # -- summary rules -------------------------------------------------------

    def finalize(self, trace: Any) -> list[SloAlert]:
        """Evaluate summary SLOs over the finished trace's stage totals
        and mirror the sampled series into the ``probe.<name>`` gauges.

        The mirror happens here, not per sample — the sampler sits on
        the engine's dispatch path, so the hot loop records into its own
        lists only; gauges get the identical end-state (last value,
        min/max, sample count) in one pass after the run drains.
        """
        if self._rows is not None:
            for _name, _fn, series, gauge in self._rows:
                # One bulk mirror replays the whole series: envelope,
                # sample count, and timestamped samples all match a
                # per-sample gauge.set() exactly.
                gauge.mirror(series)
        totals = trace.stage_totals()
        end = max((s.t_end for s in trace.closed_spans()), default=0.0)
        for rule in self._summary_rules:
            value = rule.value_of(totals)
            if not rule.healthy(value):
                self._alert(rule.name, end, value, rule.threshold,
                            rule.description or f"summary SLO {rule.name} "
                                                f"violated")
        return self.alerts

    def _alert(self, rule: str, t: float, value: float, threshold: float,
               message: str) -> None:
        key = (rule, t)
        if key in self._alerted:
            # A sampled and a summary rule with the same id judging the
            # same window alert once, not once per rule kind.
            return
        self._alerted.add(key)
        self.alerts.append(SloAlert(rule=rule, t=t, value=value,
                                    threshold=threshold, message=message))
        if self.tracer.enabled:
            self.tracer.instant("slo.breach", lane="slo", rule=rule,
                                value=value, threshold=threshold)


def standard_probes(ds: Any, transport: Any) -> dict[str, Callable[[], float]]:
    """The canonical gauge set over a DataSpaces + DartTransport pair:
    scheduler queue depth, idle/busy buckets, NIC channel occupancy, and
    live RDMA-registered bytes."""
    sched = ds.scheduler

    def busy_buckets() -> float:
        return ds.live_buckets() - sched.idle_buckets

    return {
        "sched.queue_depth": lambda: float(sched.pending_tasks),
        "sched.idle_buckets": lambda: float(sched.idle_buckets),
        "bucket.busy": busy_buckets,
        "nic.busy_channels": lambda: float(transport.nic_busy_channels()),
        "rdma.live_bytes": lambda: float(transport.registry.live_bytes()),
    }


def default_slos(n_buckets: int,
                 insitu_budget: float = 0.05
                 ) -> tuple[SloRule | SummarySlo, ...]:
    """The default rule set for a staging replay: bounded scheduler
    backlog (a queue deeper than 4x the bucket pool means staging has
    stopped absorbing the arrival rate) plus the paper's in-situ budget."""
    return (
        SloRule(
            name="queue-backlog",
            probe="sched.queue_depth",
            op="<=",
            threshold=4.0 * n_buckets,
            description=f"scheduler backlog stays within 4x the "
                        f"{n_buckets}-bucket pool",
        ),
        insitu_share_slo(insitu_budget),
    )
