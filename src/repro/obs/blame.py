"""Latency blame attribution and run-vs-run trace diffing.

Answers the paper's attribution questions *exactly*: every second
between a window's start and end lands in exactly one of the five
:data:`~repro.obs.flow.BLAME_BUCKETS` —

* **compute** — simulation / in-situ / in-transit span residencies and
  service hand-offs;
* **transport** — wire-transfer residencies, SMSG notifies, vmpi
  collective rounds;
* **queue_wait** — scheduler FCFS queueing and NIC channel grants;
* **retry_backoff** — failed attempts plus their exponential backoff
  (pull faults, lease expiries);
* **scheduler_idle** — time no recorded span or edge explains.

The decomposition walks a causal chain (the whole-run causal critical
path, or one timestep's flow chain) with a **cursor**: each gap before a
span is partitioned by the flow hops that arrived in it, each span
residency is charged to its stage's bucket, and the cursor only moves
forward — so the bucket totals telescope to the window length exactly
(overlapping streaming-prefetch spans are clamped, never double
counted).

:func:`diff_traces` aligns two runs (flows matched by ``task_id``, then
by ``(analysis, step)`` order) and reports per-stage, per-bucket,
per-edge-kind, and per-step deltas — e.g. fault-injected vs fault-free,
or two scheduler configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.analysis import causal_critical_path
from repro.obs.flow import (
    BLAME_BUCKETS,
    BLAME_SCHEDULER_IDLE,
    FlowContext,
    blame_bucket_for_edge,
    blame_bucket_for_stage,
)
from repro.obs.tracer import SpanRecord, Trace
from repro.util.tables import TextTable

__all__ = [
    "BlameBreakdown",
    "StepBlame",
    "BlameReport",
    "KernelUsage",
    "blame",
    "flow_edge_totals",
    "top_kernels",
    "kernel_table",
    "TraceDiff",
    "diff_traces",
]


@dataclass
class BlameBreakdown:
    """One window's exact decomposition into the five blame buckets."""

    t_start: float
    t_end: float
    buckets: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in BLAME_BUCKETS:
            self.buckets.setdefault(name, 0.0)

    @property
    def window(self) -> float:
        return self.t_end - self.t_start

    @property
    def total(self) -> float:
        return sum(self.buckets.values())

    def check(self, tol: float = 1e-6) -> bool:
        """The exact-sum invariant: buckets sum to the window length."""
        return abs(self.total - self.window) <= tol

    def share(self, bucket: str) -> float:
        return self.buckets[bucket] / self.window if self.window else 0.0


def _arrival_hops(trace: Trace) -> dict[int, list]:
    """Span id -> the flow hops that led into that span (checkpoint hops
    since the previous span on the chain, plus the entering hop itself)."""
    arrival: dict[int, list] = {}
    for flow in trace.flows:
        seg: list = []
        for hop in flow.hops:
            seg.append(hop)
            if hop.span_id is not None:
                arrival.setdefault(hop.span_id, []).extend(seg)
                seg = []
    return arrival


def _decompose(chain: list[SpanRecord], arrival: dict[int, list],
               t_start: float | None = None,
               t_end: float | None = None) -> BlameBreakdown:
    """Cursor-discipline decomposition of ``[t_start, t_end]`` along a
    time-ordered span chain. Gaps are partitioned by the hops that
    arrived at the next span; residencies charge the span's stage;
    anything unexplained is scheduler idle."""
    if not chain:
        return BlameBreakdown(t_start=0.0, t_end=0.0)
    lo = chain[0].t_start if t_start is None else t_start
    hi = chain[-1].t_end if t_end is None else t_end
    buckets = dict.fromkeys(BLAME_BUCKETS, 0.0)
    cursor = lo
    for span in chain:
        # Partition the gap [cursor, span.t_start] by arriving hop times.
        for hop in arrival.get(span.span_id, ()):
            t = min(hop.t, span.t_start)
            seg = t - cursor
            if seg > 0:
                buckets[blame_bucket_for_edge(hop.kind)] += seg
                cursor = t
        leftover = span.t_start - cursor
        if leftover > 0:
            buckets[BLAME_SCHEDULER_IDLE] += leftover
            cursor = span.t_start
        # Residency beyond the cursor (overlaps clamp to zero).
        top = min(span.t_end, hi)
        resid = top - max(cursor, span.t_start)
        if resid > 0:
            buckets[blame_bucket_for_stage(span.stage)] += resid
            cursor = max(cursor, top)
    if hi > cursor:
        buckets[BLAME_SCHEDULER_IDLE] += hi - cursor
    return BlameBreakdown(t_start=lo, t_end=hi, buckets=buckets)


def flow_edge_totals(trace: Trace, flow: FlowContext) -> dict[str, float]:
    """Exact per-edge-kind time along one flow (span residencies jump
    the cursor, so — unlike :meth:`FlowContext.edge_totals` — wire and
    compute time never leak into edge buckets)."""
    smap = trace.span_map()
    out: dict[str, float] = {}
    cursor = flow.t_begin
    for hop in flow.hops:
        seg = hop.t - cursor
        if seg > 0:
            out[hop.kind] = out.get(hop.kind, 0.0) + seg
            cursor = hop.t
        if hop.span_id is not None:
            span = smap.get(hop.span_id)
            if span is not None and span.closed:
                cursor = max(cursor, span.t_end)
    return out


@dataclass
class StepBlame:
    """One timestep's end-to-end latency, decomposed.

    The window runs from the step's simulation span start (the flow's
    begin when no sim span exists) to the finish of the step's
    last-completing flow — the step's true end-to-end latency.
    """

    step: Any
    breakdown: BlameBreakdown
    flow_id: int
    n_flows: int

    @property
    def latency(self) -> float:
        return self.breakdown.window


@dataclass
class BlameReport:
    """The full attribution picture of one trace."""

    #: Whole-run decomposition along the causal critical path.
    overall: BlameBreakdown
    #: Per-timestep decompositions (steps with at least one closed flow).
    steps: list[StepBlame] = field(default_factory=list)
    #: Exact per-edge-kind totals summed over every closed flow.
    edge_totals: dict[str, float] = field(default_factory=dict)
    #: ``"causal"`` when flow edges drove the path, else ``"heuristic"``.
    method: str = "causal"

    @property
    def makespan(self) -> float:
        return self.overall.window

    def table(self) -> str:
        t = TextTable(["bucket", "time (s)", "share"],
                      title=f"blame attribution ({self.method} path, "
                            f"makespan {self.makespan:.4f} s)")
        for name in BLAME_BUCKETS:
            t.add_row([name, round(self.overall.buckets[name], 4),
                       f"{100 * self.overall.share(name):.1f}%"])
        lines = [t.render()]
        if self.steps:
            st = TextTable(["step", "latency (s)"]
                           + [b for b in BLAME_BUCKETS],
                           title="per-timestep end-to-end latency")
            for s in self.steps:
                st.add_row([s.step, round(s.latency, 4)]
                           + [round(s.breakdown.buckets[b], 4)
                              for b in BLAME_BUCKETS])
            lines.append(st.render())
        if self.edge_totals:
            et = TextTable(["edge kind", "time (s)"],
                           title="edge-kind totals (all flows)")
            for kind, total in sorted(self.edge_totals.items(),
                                      key=lambda kv: -kv[1]):
                et.add_row([kind, round(total, 6)])
            lines.append(et.render())
        return "\n\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "method": self.method,
            "makespan": self.makespan,
            "overall": dict(self.overall.buckets),
            "edge_totals": dict(self.edge_totals),
            "steps": [{"step": s.step, "latency": s.latency,
                       "n_flows": s.n_flows,
                       "buckets": dict(s.breakdown.buckets)}
                      for s in self.steps],
        }


def _step_chains(trace: Trace) -> list[tuple[Any, FlowContext, int]]:
    """(step, last-finishing closed flow, flow count) per step value."""
    smap = trace.span_map()
    by_step: dict[Any, list[FlowContext]] = {}
    for flow in trace.flows:
        if not flow.closed or "step" not in flow.tags:
            continue
        by_step.setdefault(flow.tags["step"], []).append(flow)
    out = []
    for step, flows in by_step.items():
        last = max(flows, key=lambda f: smap[f.dst_span_id].t_end)
        out.append((step, last, len(flows)))
    out.sort(key=lambda item: (str(type(item[0])), item[0]))
    return out


def blame(trace: Trace, per_step: bool = True) -> BlameReport:
    """Decompose the trace's makespan (and each step's latency) into the
    five blame buckets, exactly."""
    path = causal_critical_path(trace)
    arrival = _arrival_hops(trace)
    overall = _decompose(path.spans, arrival)

    steps: list[StepBlame] = []
    if per_step and trace.flows:
        smap = trace.span_map()
        for step, flow, n_flows in _step_chains(trace):
            chain = [smap[sid] for sid in flow.span_ids() if sid in smap]
            chain = [s for s in chain if s.closed]
            sim_spans = trace.spans_with(stage="simulation", step=step)
            if sim_spans:
                chain = [sim_spans[0]] + [s for s in chain
                                          if s is not sim_spans[0]]
            chain.sort(key=lambda s: (s.t_start, s.t_end))
            if not chain:
                continue
            steps.append(StepBlame(
                step=step, flow_id=flow.flow_id, n_flows=n_flows,
                breakdown=_decompose(chain, arrival)))

    edge_totals: dict[str, float] = {}
    for flow in trace.flows:
        if not flow.closed:
            continue
        for kind, total in flow_edge_totals(trace, flow).items():
            edge_totals[kind] = edge_totals.get(kind, 0.0) + total
    return BlameReport(overall=overall, steps=steps,
                       edge_totals=edge_totals, method=path.method)


# -- kernel attribution --------------------------------------------------------


@dataclass
class KernelUsage:
    """One kernel's aggregate wall time across a trace.

    Kernel spans are the ``kernel.<name>`` spans the backend seam opens
    around every dispatched hot-path call (see :mod:`repro.backend`);
    they carry ``kernel=`` and ``backend=`` tags and no ``stage`` tag, so
    they never perturb stage totals or critical paths — this is the
    read side of that instrumentation.
    """

    kernel: str
    backend: str
    calls: int
    wall_s: float
    #: Fraction of the total kernel wall time across the trace.
    share: float

    def to_dict(self) -> dict[str, Any]:
        return {"kernel": self.kernel, "backend": self.backend,
                "calls": self.calls, "wall_s": self.wall_s,
                "share": self.share}


def top_kernels(trace: Trace, n: int | None = None) -> list[KernelUsage]:
    """Rank kernel-tagged spans by total wall time, descending.

    This is the blame view the backend work is guided by: which hot
    paths actually dominate, under which backend, and how the ranking
    shifts when a vectorized backend is switched on.
    """
    totals: dict[tuple[str, str], tuple[int, float]] = {}
    for span in trace.closed_spans():
        kname = span.tags.get("kernel")
        if kname is None:
            continue
        key = (str(kname), str(span.tags.get("backend", "?")))
        calls, wall = totals.get(key, (0, 0.0))
        totals[key] = (calls + 1, wall + span.wall_duration)
    grand = sum(wall for _, wall in totals.values())
    usages = [KernelUsage(kernel=k, backend=b, calls=calls, wall_s=wall,
                          share=(wall / grand) if grand > 0 else 0.0)
              for (k, b), (calls, wall) in totals.items()]
    usages.sort(key=lambda u: (-u.wall_s, u.kernel, u.backend))
    return usages[:n] if n is not None else usages


def kernel_table(usages: list[KernelUsage]) -> str:
    """Render a kernel ranking as a text table."""
    if not usages:
        return ("no kernel spans recorded (kernel dispatch is traced "
                "only while a tracer is enabled)")
    t = TextTable(["kernel", "backend", "calls", "wall (s)", "share"],
                  title="kernel wall-time ranking")
    for u in usages:
        t.add_row([u.kernel, u.backend, u.calls, round(u.wall_s, 6),
                   f"{100 * u.share:.1f}%"])
    return t.render()


# -- trace diffing -------------------------------------------------------------


@dataclass
class FlowDelta:
    """One aligned flow's latency change between two runs."""

    key: str
    latency_a: float
    latency_b: float

    @property
    def delta(self) -> float:
        return self.latency_b - self.latency_a


@dataclass
class TraceDiff:
    """Run B relative to run A: positive deltas mean B is slower."""

    a_label: str
    b_label: str
    makespan_a: float
    makespan_b: float
    #: stage -> (A total, B total), union of both runs' stages.
    stage_totals: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: blame bucket -> (A, B) from the whole-run decompositions.
    blame_buckets: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: edge kind -> (A, B) exact flow-edge totals.
    edge_totals: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: step -> (A latency, B latency) for steps present in both runs.
    step_latencies: dict[Any, tuple[float, float]] = field(default_factory=dict)
    #: Aligned flows, sorted by |delta| descending.
    flows: list[FlowDelta] = field(default_factory=list)
    #: Flows present in only one run (alignment misses).
    unmatched_a: int = 0
    unmatched_b: int = 0

    @property
    def makespan_delta(self) -> float:
        return self.makespan_b - self.makespan_a

    def blame_delta(self, bucket: str) -> float:
        a, b = self.blame_buckets.get(bucket, (0.0, 0.0))
        return b - a

    def blame_delta_share(self, bucket: str) -> float:
        """This bucket's share of the makespan delta (0 when equal)."""
        if self.makespan_delta == 0:
            return 0.0
        return self.blame_delta(bucket) / self.makespan_delta

    def dominant_bucket(self) -> str | None:
        """The blame bucket explaining the largest slice of the delta."""
        if not self.blame_buckets:
            return None
        return max(self.blame_buckets,
                   key=lambda k: abs(self.blame_delta(k)))

    def table(self, max_flows: int = 10) -> str:
        head = (f"trace diff: {self.b_label} vs {self.a_label} — makespan "
                f"{self.makespan_b:.4f} s vs {self.makespan_a:.4f} s "
                f"({self.makespan_delta:+.4f} s)")
        lines = [head]
        bt = TextTable(["blame bucket", f"{self.a_label} (s)",
                        f"{self.b_label} (s)", "delta (s)",
                        "share of Δmakespan"],
                       title="blame bucket deltas")
        for name in BLAME_BUCKETS:
            a, b = self.blame_buckets.get(name, (0.0, 0.0))
            bt.add_row([name, round(a, 4), round(b, 4), round(b - a, 4),
                        f"{100 * self.blame_delta_share(name):.1f}%"])
        lines.append(bt.render())
        if self.stage_totals:
            st = TextTable(["stage", f"{self.a_label} (s)",
                            f"{self.b_label} (s)", "delta (s)"],
                           title="per-stage totals")
            for stage in sorted(self.stage_totals):
                a, b = self.stage_totals[stage]
                st.add_row([stage, round(a, 4), round(b, 4),
                            round(b - a, 4)])
            lines.append(st.render())
        if self.edge_totals:
            et = TextTable(["edge kind", f"{self.a_label} (s)",
                            f"{self.b_label} (s)", "delta (s)"],
                           title="flow-edge totals")
            for kind in sorted(self.edge_totals):
                a, b = self.edge_totals[kind]
                et.add_row([kind, round(a, 6), round(b, 6),
                            round(b - a, 6)])
            lines.append(et.render())
        if self.flows:
            ft = TextTable(["flow", f"{self.a_label} (s)",
                            f"{self.b_label} (s)", "delta (s)"],
                           title=f"largest per-flow latency deltas "
                                 f"(top {min(max_flows, len(self.flows))})")
            for fd in self.flows[:max_flows]:
                ft.add_row([fd.key, round(fd.latency_a, 4),
                            round(fd.latency_b, 4), round(fd.delta, 4)])
            lines.append(ft.render())
        if self.unmatched_a or self.unmatched_b:
            lines.append(f"unmatched flows: {self.unmatched_a} only in "
                         f"{self.a_label}, {self.unmatched_b} only in "
                         f"{self.b_label}")
        return "\n\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "a_label": self.a_label,
            "b_label": self.b_label,
            "makespan_a": self.makespan_a,
            "makespan_b": self.makespan_b,
            "makespan_delta": self.makespan_delta,
            "blame_buckets": {k: list(v)
                              for k, v in self.blame_buckets.items()},
            "stage_totals": {k: list(v)
                             for k, v in self.stage_totals.items()},
            "edge_totals": {k: list(v)
                            for k, v in self.edge_totals.items()},
            "step_latencies": {str(k): list(v)
                               for k, v in self.step_latencies.items()},
            "flows": [{"key": f.key, "a": f.latency_a, "b": f.latency_b,
                       "delta": f.delta} for f in self.flows],
            "unmatched_a": self.unmatched_a,
            "unmatched_b": self.unmatched_b,
            "dominant_bucket": self.dominant_bucket(),
        }


def _trace_makespan(trace: Trace) -> float:
    return max((s.t_end for s in trace.closed_spans()), default=0.0)


def _flow_latencies(trace: Trace) -> dict[str, float]:
    """Alignment key -> end-to-end latency for every closed flow.

    Keys prefer the stable ``task_id`` tag; flows without one fall back
    to ``analysis/step`` with a disambiguating arrival index, which
    aligns deterministic runs of the same configuration.
    """
    smap = trace.span_map()
    out: dict[str, float] = {}
    fallback_counts: dict[str, int] = {}
    for flow in trace.flows:
        if not flow.closed:
            continue
        dst = smap.get(flow.dst_span_id)
        if dst is None or not dst.closed:
            continue
        key = flow.tags.get("task_id")
        if key is None:
            base = (f"{flow.tags.get('analysis', flow.kind)}"
                    f"/t{flow.tags.get('step', '?')}")
            n = fallback_counts.get(base, 0)
            fallback_counts[base] = n + 1
            key = f"{base}/#{n}"
        out[str(key)] = dst.t_end - flow.t_begin
    return out


def diff_traces(a: Trace, b: Trace, a_label: str = "A",
                b_label: str = "B") -> TraceDiff:
    """Align two runs and report what changed, and why.

    B is the run under scrutiny (fault-injected, new scheduler config);
    A is the reference. Positive deltas mean B spent more.
    """
    report_a = blame(a)
    report_b = blame(b)

    stages_a = a.stage_totals()
    stages_b = b.stage_totals()
    stage_totals = {stage: (stages_a.get(stage, 0.0),
                            stages_b.get(stage, 0.0))
                    for stage in sorted(set(stages_a) | set(stages_b))}
    blame_buckets = {name: (report_a.overall.buckets[name],
                            report_b.overall.buckets[name])
                    for name in BLAME_BUCKETS}
    edge_totals = {kind: (report_a.edge_totals.get(kind, 0.0),
                          report_b.edge_totals.get(kind, 0.0))
                   for kind in sorted(set(report_a.edge_totals)
                                      | set(report_b.edge_totals))}
    steps_a = {s.step: s.latency for s in report_a.steps}
    steps_b = {s.step: s.latency for s in report_b.steps}
    step_latencies = {step: (steps_a[step], steps_b[step])
                      for step in sorted(set(steps_a) & set(steps_b),
                                         key=str)}

    lat_a = _flow_latencies(a)
    lat_b = _flow_latencies(b)
    matched = sorted(set(lat_a) & set(lat_b))
    flows = sorted((FlowDelta(key=k, latency_a=lat_a[k], latency_b=lat_b[k])
                    for k in matched),
                   key=lambda fd: -abs(fd.delta))
    return TraceDiff(
        a_label=a_label, b_label=b_label,
        makespan_a=_trace_makespan(a), makespan_b=_trace_makespan(b),
        stage_totals=stage_totals, blame_buckets=blame_buckets,
        edge_totals=edge_totals, step_latencies=step_latencies,
        flows=flows,
        unmatched_a=len(set(lat_a) - set(lat_b)),
        unmatched_b=len(set(lat_b) - set(lat_a)),
    )
