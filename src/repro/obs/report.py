"""Self-contained HTML performance dashboard (no external assets).

Renders a :class:`~repro.obs.perf.RunStore`'s trajectory — plus an
optional regression-gate report — into one HTML file with inline SVG:

* metric trajectory cards (sparkline across runs, last value, delta);
* a Fig. 5/6-style stage-breakdown panel (stacked horizontal bars:
  in-situ / data movement / in-transit per task);
* the SLO rule list and any alert instants from the live probes;
* a fault-recovery panel (MTTR, reassignments, restarts across runs);
* the per-metric verdict table when a gate comparison is supplied.

Everything is generated text: no JavaScript, no fonts, no CDN. Hover
detail rides on native SVG/``title`` tooltips and a ``<details>`` table
mirrors the plotted numbers, so the page degrades to plain data. Colors
follow a validated light/dark palette (categorical slots for series,
reserved status colors for verdicts) declared once as CSS custom
properties.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Any

from repro.obs.blame import TraceDiff
from repro.obs.flow import BLAME_BUCKETS
from repro.obs.perf import RegressionReport, RunRecord

__all__ = ["render_dashboard", "write_dashboard",
           "render_trace_diff", "write_trace_diff"]

#: Blame bucket -> reserved palette slot (stable across panels).
_BUCKET_COLORS = {
    "compute": "var(--series-1)",
    "transport": "var(--series-2)",
    "queue_wait": "var(--series-3)",
    "retry_backoff": "var(--warning)",
    "scheduler_idle": "var(--muted)",
}

_STAGE_SERIES = (  # fixed order -> categorical slots 1..3
    ("in-situ", "var(--series-1)"),
    ("data movement", "var(--series-2)"),
    ("in-transit", "var(--series-3)"),
)

_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px;
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--text-1);
}
.viz-root {
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --text-1: #0b0b0b; --text-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --good: #0ca30c; --warning: #fab219; --critical: #d03b3b;
  --delta-good: #006300;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --page: #0d0d0d; --surface-1: #1a1a19;
    --text-1: #ffffff; --text-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --delta-good: #0ca30c;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; color: var(--text-1); }
.meta { color: var(--text-2); margin-bottom: 10px; }
.meta code { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 4px; padding: 1px 5px; }
.cards { display: flex; flex-wrap: wrap; gap: 10px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 12px; min-width: 190px;
}
.card .name { color: var(--text-2); font-size: 12px;
  overflow-wrap: anywhere; }
.card .value { font-size: 20px; margin: 2px 0; }
.card .delta { font-size: 12px; color: var(--text-2); }
.card .delta.up { color: var(--critical); }
.card .delta.down { color: var(--delta-good); }
.panel {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 14px;
}
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { text-align: left; padding: 4px 10px 4px 0;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums; }
th { color: var(--text-2); font-weight: 600; }
td.num, th.num { text-align: right; }
.status { font-weight: 600; }
.status.regressed, .status.missing { color: var(--critical); }
.status.improved { color: var(--delta-good); }
.status.ok { color: var(--text-2); font-weight: 400; }
.status.new, .status.info { color: var(--muted); font-weight: 400; }
.legend { display: flex; gap: 16px; color: var(--text-2);
  font-size: 12px; margin: 6px 0 10px; }
.legend .swatch { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 5px; vertical-align: -1px; }
.alert { margin: 4px 0; }
.alert .dot { display: inline-block; width: 8px; height: 8px;
  border-radius: 50%; margin-right: 7px; }
.ok-line { color: var(--text-2); }
details { margin-top: 14px; color: var(--text-2); }
summary { cursor: pointer; }
.spark { display: block; }
footer { margin-top: 28px; color: var(--muted); font-size: 12px; }
"""


def _esc(text: Any) -> str:
    return html.escape(str(text), quote=True)


def _fmt(value: float | None) -> str:
    if value is None:
        return "—"
    mag = abs(value)
    if value == int(value) and mag < 1e15:
        return f"{int(value):,}"
    if mag != 0 and (mag >= 1e6 or mag < 1e-3):
        return f"{value:.3e}"
    return f"{value:,.4g}"


def _sparkline(values: list[float], width: int = 170, height: int = 40,
               label: str = "") -> str:
    """Inline SVG sparkline: a 2px series-1 line with an end dot."""
    if not values:
        return ""
    pad = 4
    lo, hi = min(values), max(values)
    span = hi - lo
    n = len(values)

    def xy(i: int, v: float) -> tuple[float, float]:
        x = pad + (width - 2 * pad) * (i / (n - 1) if n > 1 else 0.5)
        frac = (v - lo) / span if span else 0.5
        y = height - pad - (height - 2 * pad) * frac
        return x, y

    points = " ".join(f"{x:.1f},{y:.1f}"
                      for x, y in (xy(i, v) for i, v in enumerate(values)))
    ex, ey = xy(n - 1, values[-1])
    title = (f"{_esc(label)}: {n} runs, min {_fmt(lo)}, max {_fmt(hi)}, "
             f"last {_fmt(values[-1])}")
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="{title}"><title>{title}</title>'
        f'<polyline points="{points}" fill="none" stroke="var(--series-1)" '
        f'stroke-width="2" stroke-linejoin="round" '
        f'stroke-linecap="round"/>'
        f'<circle cx="{ex:.1f}" cy="{ey:.1f}" r="3" '
        f'fill="var(--series-1)"/></svg>'
    )


def _trajectory_cards(records: list[RunRecord],
                      metrics: list[str]) -> list[str]:
    parts: list[str] = ['<div class="cards">']
    for name in metrics:
        values = [r.metrics[name] for r in records if name in r.metrics]
        if not values:
            continue
        delta_html = ""
        if len(values) >= 2 and values[-2] != 0:
            rel = (values[-1] - values[-2]) / abs(values[-2])
            if abs(rel) > 1e-12:
                cls = "up" if rel > 0 else "down"
                arrow = "▲" if rel > 0 else "▼"
                delta_html = (f'<div class="delta {cls}">{arrow} '
                              f'{100 * rel:+.2f}% vs previous run</div>')
            else:
                delta_html = '<div class="delta">unchanged</div>'
        parts.append(
            f'<div class="card"><div class="name">{_esc(name)}</div>'
            f'<div class="value">{_fmt(values[-1])}</div>'
            f'{_sparkline(values, label=name)}{delta_html}</div>')
    parts.append("</div>")
    return parts


def _stage_breakdown_panel(breakdown: dict[str, dict[str, float]]
                           ) -> list[str]:
    """Stacked horizontal bars, one row per task, shared linear scale."""
    width, bar_h, gap = 560, 18, 2
    label_w, value_w = 150, 90
    plot_w = width - label_w - value_w
    totals = {task: sum(bars.values()) for task, bars in breakdown.items()}
    scale_max = max(totals.values(), default=0.0) or 1.0
    parts = ['<div class="panel">', '<div class="legend">']
    for series, color in _STAGE_SERIES:
        parts.append(f'<span><span class="swatch" '
                     f'style="background:{color}"></span>'
                     f'{_esc(series)}</span>')
    parts.append("</div>")
    n = len(breakdown)
    svg_h = n * (bar_h + 10) + 4
    parts.append(f'<svg width="{width}" height="{svg_h}" '
                 f'viewBox="0 0 {width} {svg_h}" role="img" '
                 f'aria-label="per-timestep stage breakdown">')
    y = 2.0
    for task, bars in breakdown.items():
        parts.append(f'<text x="{label_w - 8}" y="{y + bar_h - 5}" '
                     f'text-anchor="end" fill="var(--text-2)" '
                     f'font-size="12">{_esc(task)}</text>')
        x = float(label_w)
        for series, color in _STAGE_SERIES:
            value = bars.get(series, 0.0)
            if value <= 0:
                continue
            w = max(plot_w * value / scale_max - gap, 1.0)
            title = f"{_esc(task)} — {_esc(series)}: {value:.3f} s"
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
                f'height="{bar_h}" rx="2" fill="{color}">'
                f'<title>{title}</title></rect>')
            x += w + gap
        parts.append(f'<text x="{x + 6:.1f}" y="{y + bar_h - 5}" '
                     f'fill="var(--text-1)" font-size="12">'
                     f'{totals[task]:.2f} s</text>')
        y += bar_h + 10
    parts.append("</svg></div>")
    return parts


def _slo_panel(slo_rules: list[dict[str, Any]],
               alerts: list[dict[str, Any]]) -> list[str]:
    parts = ['<div class="panel">']
    breached = {a.get("rule") for a in alerts}
    if slo_rules:
        for rule in slo_rules:
            name = rule.get("name", "?")
            desc = rule.get("description") or (
                f"{rule.get('probe', 'summary')} {rule.get('op')} "
                f"{rule.get('threshold')}")
            if name in breached:
                parts.append(f'<div class="alert"><span class="dot" '
                             f'style="background:var(--critical)"></span>'
                             f'<strong>✕ {_esc(name)}</strong> — breached '
                             f'<span class="ok-line">({_esc(desc)})</span>'
                             f'</div>')
            else:
                parts.append(f'<div class="alert"><span class="dot" '
                             f'style="background:var(--good)"></span>'
                             f'✓ {_esc(name)} '
                             f'<span class="ok-line">({_esc(desc)})</span>'
                             f'</div>')
    if alerts:
        parts.append("<table><tr><th>rule</th><th class='num'>t (s)</th>"
                     "<th class='num'>value</th><th class='num'>threshold"
                     "</th><th>message</th></tr>")
        for a in alerts:
            parts.append(
                f"<tr><td>{_esc(a.get('rule'))}</td>"
                f"<td class='num'>{_fmt(a.get('t'))}</td>"
                f"<td class='num'>{_fmt(a.get('value'))}</td>"
                f"<td class='num'>{_fmt(a.get('threshold'))}</td>"
                f"<td>{_esc(a.get('message', ''))}</td></tr>")
        parts.append("</table>")
    elif not slo_rules:
        parts.append('<div class="ok-line">no SLO rules were attached to '
                     'the last recorded run</div>')
    else:
        parts.append('<div class="ok-line">no alerts — every rule held '
                     'for the whole run</div>')
    parts.append("</div>")
    return parts


def _verdict_panel(report: RegressionReport, max_rows: int = 60
                   ) -> list[str]:
    counts = report.counts()
    summary = ", ".join(f"{counts[k]} {k}" for k in
                        ("regressed", "missing", "improved", "ok", "new",
                         "info") if counts.get(k))
    state = ("<span class='status ok'>PASS</span>" if report.ok
             else "<span class='status regressed'>FAIL</span>")
    parts = [f'<div class="panel"><p>Gate: {state} '
             f'<span class="ok-line">({_esc(summary)}; baseline of '
             f'{report.n_baseline_records} records)</span></p>']
    order = {"regressed": 0, "missing": 1, "improved": 2, "new": 3,
             "ok": 4, "info": 5}
    rows = sorted(report.verdicts,
                  key=lambda v: (order.get(v.status, 9), v.metric))
    parts.append("<table><tr><th>metric</th><th class='num'>baseline</th>"
                 "<th class='num'>value</th><th class='num'>delta</th>"
                 "<th>verdict</th></tr>")
    for v in rows[:max_rows]:
        rel = v.rel_delta
        delta = ("—" if rel is None
                 else f"{100 * rel:+.2f}%" if abs(rel) != float("inf")
                 else f"{v.delta:+.4g}")
        parts.append(
            f"<tr><td>{_esc(v.metric)}</td>"
            f"<td class='num'>{_fmt(v.median)}</td>"
            f"<td class='num'>{_fmt(v.value)}</td>"
            f"<td class='num'>{delta}</td>"
            f"<td><span class='status {_esc(v.status)}'>{_esc(v.status)}"
            f"</span></td></tr>")
    parts.append("</table>")
    if len(rows) > max_rows:
        parts.append(f'<div class="ok-line">({len(rows) - max_rows} more '
                     f'rows not shown)</div>')
    parts.append("</div>")
    return parts


def _probe_cards(probe_series: dict[str, list[list[float]]]) -> list[str]:
    parts = ['<div class="cards">']
    for name in sorted(probe_series):
        series = probe_series[name]
        if not series:
            continue
        values = [float(v) for _t, v in series]
        parts.append(
            f'<div class="card"><div class="name">{_esc(name)}</div>'
            f'<div class="value">{_fmt(values[-1])}</div>'
            f'{_sparkline(values, label=name)}'
            f'<div class="delta">{len(values)} samples, peak '
            f'{_fmt(max(values))}</div></div>')
    parts.append("</div>")
    return parts


def _capacity_panel(cap: dict[str, Any]) -> list[str]:
    """The capacity-ledger panel: headroom headline, resident-bytes
    sparkline, per-scope watermark rows, and any leaked regions."""
    parts = ['<div class="panel">']
    bound = cap.get("analytic_bound_bytes")
    peak = cap.get("peak_resident_bytes", 0)
    headroom = cap.get("headroom_bytes")
    leaks = cap.get("leaks") or []
    violated = bool(cap.get("headroom_violations"))
    state_cls = "regressed" if (leaks or violated) else "ok"
    state = "LEAK/OVERRUN" if (leaks or violated) else "clean"
    parts.append(
        f'<p><span class="status {state_cls}">{state}</span> '
        f'<span class="ok-line">— measured peak {_fmt(peak)} bytes vs '
        f'analytic bound {_fmt(bound)} bytes '
        f'(headroom {_fmt(headroom)}); NIC peak '
        f'{_fmt(cap.get("nic_peak_bytes"))} bytes over '
        f'{_fmt(cap.get("n_transfers"))} transfers, '
        f'{len(leaks)} leaked region(s)</span></p>')
    series = cap.get("resident_series") or []
    if series:
        values = [float(v) for _t, v in series]
        parts.append(
            f'<div class="card"><div class="name">resident staging bytes '
            f'(DES clock)</div><div class="value">{_fmt(values[-1])}</div>'
            f'{_sparkline(values, label="capacity.resident_bytes")}'
            f'<div class="delta">{len(values)} ledger transitions, peak '
            f'{_fmt(max(values))}</div></div>')
    scope_rows: list[tuple[str, dict[str, Any]]] = []
    for label, key in (("tenant", "by_tenant"), ("shard", "by_shard"),
                       ("source", "by_source")):
        for name, acct in sorted((cap.get(key) or {}).items()):
            scope_rows.append((f"{label}:{name}", acct))
    if scope_rows:
        parts.append("<table><tr><th>scope</th><th class='num'>peak</th>"
                     "<th class='num'>registered</th>"
                     "<th class='num'>released</th>"
                     "<th class='num'>resident</th>"
                     "<th class='num'>nic bytes</th></tr>")
        for name, acct in scope_rows:
            parts.append(
                f"<tr><td>{_esc(name)}</td>"
                f"<td class='num'>{_fmt(acct.get('peak_bytes'))}</td>"
                f"<td class='num'>{_fmt(acct.get('registered_bytes'))}</td>"
                f"<td class='num'>{_fmt(acct.get('released_bytes'))}</td>"
                f"<td class='num'>{_fmt(acct.get('resident_bytes'))}</td>"
                f"<td class='num'>{_fmt(acct.get('nic_bytes'))}</td></tr>")
        parts.append("</table>")
    if leaks:
        parts.append("<table><tr><th>leaked region</th>"
                     "<th class='num'>bytes</th><th>shard</th>"
                     "<th>source</th><th>analysis</th><th>tenant</th></tr>")
        for leak in leaks:
            parts.append(
                f"<tr><td>{_esc(leak.get('region_id'))}</td>"
                f"<td class='num'>{_fmt(leak.get('nbytes'))}</td>"
                f"<td>{_esc(leak.get('shard'))}</td>"
                f"<td>{_esc(leak.get('source'))}</td>"
                f"<td>{_esc(leak.get('analysis') or '-')}</td>"
                f"<td>{_esc(leak.get('tenant'))}</td></tr>")
        parts.append("</table>")
    parts.append("</div>")
    return parts


def _runs_table(records: list[RunRecord], metrics: list[str],
                max_runs: int = 8) -> list[str]:
    recent = records[-max_runs:]
    parts = ["<details><summary>Data table (recent runs × metrics)"
             "</summary><table><tr><th>metric</th>"]
    for rec in recent:
        parts.append(f"<th class='num'>{_esc(rec.created_at[:10])}<br>"
                     f"{_esc((rec.git_sha or rec.run_id)[:8])}</th>")
    parts.append("</tr>")
    for name in metrics:
        parts.append(f"<tr><td>{_esc(name)}</td>")
        for rec in recent:
            parts.append(f"<td class='num'>"
                         f"{_fmt(rec.metrics.get(name))}</td>")
        parts.append("</tr>")
    parts.append("</table></details>")
    return parts


def render_dashboard(records: list[RunRecord],
                     report: RegressionReport | None = None,
                     title: str = "repro — cross-run performance"
                     ) -> str:
    """Render the store's records (oldest first) into one HTML page."""
    parts: list[str] = [
        "<!DOCTYPE html>", '<html lang="en"><head>',
        '<meta charset="utf-8">',
        '<meta name="viewport" content="width=device-width, '
        'initial-scale=1">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style>", "</head>",
        '<body class="viz-root">',
        f"<h1>{_esc(title)}</h1>",
    ]
    if not records:
        parts.append('<p class="meta">No run records yet — run '
                     '<code>python -m repro perf record</code> first.</p>')
        parts.append("</body></html>")
        return "\n".join(parts)

    last = records[-1]
    machine = last.machine.get("name", "unknown machine")
    parts.append(
        f'<p class="meta">{len(records)} recorded runs · last: '
        f'<code>{_esc(last.run_id)}</code> at {_esc(last.created_at)} '
        f'(git <code>{_esc((last.git_sha or "n/a")[:12])}</code>, '
        f'source {_esc(last.source)}, modeled machine '
        f'{_esc(machine)})</p>')

    if report is not None:
        parts.append("<h2>Regression gate</h2>")
        parts.extend(_verdict_panel(report))

    metric_names = sorted(last.metrics)
    parts.append("<h2>Metric trajectories across runs</h2>")
    parts.extend(_trajectory_cards(records, metric_names))

    breakdown = last.meta.get("stage_breakdown") or {}
    if breakdown:
        parts.append("<h2>Per-timestep stage breakdown (Fig. 6)</h2>")
        parts.extend(_stage_breakdown_panel(breakdown))

    parts.append("<h2>SLO rules &amp; alerts</h2>")
    parts.extend(_slo_panel(last.meta.get("slo_rules") or [],
                            last.meta.get("alerts") or []))

    capacity = last.meta.get("capacity")
    if capacity:
        parts.append("<h2>Capacity ledger (staging memory &amp; NIC)</h2>")
        parts.extend(_capacity_panel(capacity))

    fault_metrics = [m for m in metric_names if m.startswith("faults.")]
    if fault_metrics:
        parts.append("<h2>Fault recovery (MTTR &amp; reassignments)</h2>")
        parts.extend(_trajectory_cards(records, fault_metrics))

    probe_series = last.meta.get("probe_series") or {}
    if probe_series:
        parts.append("<h2>Live probes (last run, DES clock)</h2>")
        parts.extend(_probe_cards(probe_series))

    parts.extend(_runs_table(records, metric_names))
    parts.append("<footer>generated by <code>python -m repro perf "
                 "report</code> — self-contained, no external assets"
                 "</footer>")
    parts.append("</body></html>")
    return "\n".join(parts)


def _blame_stack_panel(diff: TraceDiff) -> list[str]:
    """Two stacked bars (run A over run B), each split into the five
    blame buckets on a shared linear scale — the visual answer to
    "where did the extra time go"."""
    width, bar_h, gap = 560, 18, 2
    label_w, value_w = 150, 90
    plot_w = width - label_w - value_w
    rows = [
        (diff.a_label, {k: v[0] for k, v in diff.blame_buckets.items()}),
        (diff.b_label, {k: v[1] for k, v in diff.blame_buckets.items()}),
    ]
    totals = {label: sum(bars.values()) for label, bars in rows}
    scale_max = max(totals.values(), default=0.0) or 1.0
    parts = ['<div class="panel">', '<div class="legend">']
    for bucket in BLAME_BUCKETS:
        parts.append(f'<span><span class="swatch" '
                     f'style="background:{_BUCKET_COLORS[bucket]}"></span>'
                     f'{_esc(bucket)}</span>')
    parts.append("</div>")
    svg_h = len(rows) * (bar_h + 10) + 4
    parts.append(f'<svg width="{width}" height="{svg_h}" '
                 f'viewBox="0 0 {width} {svg_h}" role="img" '
                 f'aria-label="blame bucket comparison">')
    y = 2.0
    for label, bars in rows:
        parts.append(f'<text x="{label_w - 8}" y="{y + bar_h - 5}" '
                     f'text-anchor="end" fill="var(--text-2)" '
                     f'font-size="12">{_esc(label)}</text>')
        x = float(label_w)
        for bucket in BLAME_BUCKETS:
            value = bars.get(bucket, 0.0)
            if value <= 0:
                continue
            w = max(plot_w * value / scale_max - gap, 1.0)
            title = f"{_esc(label)} — {_esc(bucket)}: {value:.4f} s"
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
                f'height="{bar_h}" rx="2" '
                f'fill="{_BUCKET_COLORS[bucket]}">'
                f'<title>{title}</title></rect>')
            x += w + gap
        parts.append(f'<text x="{x + 6:.1f}" y="{y + bar_h - 5}" '
                     f'fill="var(--text-1)" font-size="12">'
                     f'{totals[label]:.2f} s</text>')
        y += bar_h + 10
    parts.append("</svg></div>")
    return parts


def _diff_tables_panel(diff: TraceDiff, max_flows: int = 12) -> list[str]:
    parts = ['<div class="panel">']
    parts.append(f"<table><tr><th>blame bucket</th>"
                 f"<th class='num'>{_esc(diff.a_label)} (s)</th>"
                 f"<th class='num'>{_esc(diff.b_label)} (s)</th>"
                 f"<th class='num'>delta (s)</th>"
                 f"<th class='num'>share of Δmakespan</th></tr>")
    for bucket in BLAME_BUCKETS:
        a, b = diff.blame_buckets.get(bucket, (0.0, 0.0))
        delta = b - a
        cls = ("up" if delta > 1e-12 else "down" if delta < -1e-12 else "")
        share = (f"{100 * diff.blame_delta_share(bucket):.1f}%"
                 if diff.makespan_delta else "—")
        parts.append(
            f"<tr><td><span class='swatch' style='background:"
            f"{_BUCKET_COLORS[bucket]}'></span> {_esc(bucket)}</td>"
            f"<td class='num'>{_fmt(a)}</td><td class='num'>{_fmt(b)}</td>"
            f"<td class='num'><span class='delta {cls}'>{delta:+.4g}"
            f"</span></td><td class='num'>{share}</td></tr>")
    parts.append("</table>")
    if diff.flows:
        parts.append(f"<details><summary>Largest per-flow latency deltas "
                     f"({min(max_flows, len(diff.flows))} of "
                     f"{len(diff.flows)} aligned flows)</summary>"
                     f"<table><tr><th>flow</th>"
                     f"<th class='num'>{_esc(diff.a_label)} (s)</th>"
                     f"<th class='num'>{_esc(diff.b_label)} (s)</th>"
                     f"<th class='num'>delta (s)</th></tr>")
        for fd in diff.flows[:max_flows]:
            parts.append(f"<tr><td>{_esc(fd.key)}</td>"
                         f"<td class='num'>{_fmt(fd.latency_a)}</td>"
                         f"<td class='num'>{_fmt(fd.latency_b)}</td>"
                         f"<td class='num'>{fd.delta:+.4g}</td></tr>")
        parts.append("</table></details>")
    if diff.edge_totals:
        parts.append(f"<details><summary>Flow-edge totals</summary>"
                     f"<table><tr><th>edge kind</th>"
                     f"<th class='num'>{_esc(diff.a_label)} (s)</th>"
                     f"<th class='num'>{_esc(diff.b_label)} (s)</th>"
                     f"<th class='num'>delta (s)</th></tr>")
        for kind in sorted(diff.edge_totals):
            a, b = diff.edge_totals[kind]
            parts.append(f"<tr><td>{_esc(kind)}</td>"
                         f"<td class='num'>{_fmt(a)}</td>"
                         f"<td class='num'>{_fmt(b)}</td>"
                         f"<td class='num'>{b - a:+.4g}</td></tr>")
        parts.append("</table></details>")
    if diff.unmatched_a or diff.unmatched_b:
        parts.append(f'<div class="ok-line">unmatched flows: '
                     f'{diff.unmatched_a} only in {_esc(diff.a_label)}, '
                     f'{diff.unmatched_b} only in {_esc(diff.b_label)}'
                     f'</div>')
    parts.append("</div>")
    return parts


def render_trace_diff(diff: TraceDiff,
                      title: str = "repro — trace diff") -> str:
    """Render a :class:`~repro.obs.blame.TraceDiff` as a standalone HTML
    page in the dashboard's visual language (inline SVG, no JS)."""
    dominant = diff.dominant_bucket()
    delta = diff.makespan_delta
    cls = "up" if delta > 1e-12 else "down" if delta < -1e-12 else ""
    parts: list[str] = [
        "<!DOCTYPE html>", '<html lang="en"><head>',
        '<meta charset="utf-8">',
        '<meta name="viewport" content="width=device-width, '
        'initial-scale=1">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style>", "</head>",
        '<body class="viz-root">',
        f"<h1>{_esc(title)}</h1>",
        f'<p class="meta">{_esc(diff.b_label)} vs {_esc(diff.a_label)} — '
        f'makespan {_fmt(diff.makespan_b)} s vs {_fmt(diff.makespan_a)} s '
        f'(<span class="delta {cls}">{delta:+.4g} s</span>)'
        + (f'; dominant bucket: <code>{_esc(dominant)}</code>'
           if dominant else "") + "</p>",
        "<h2>Blame buckets</h2>",
    ]
    parts.extend(_blame_stack_panel(diff))
    parts.append("<h2>Deltas</h2>")
    parts.extend(_diff_tables_panel(diff))
    parts.append("<footer>generated by <code>python -m repro trace "
                 "--diff</code> — self-contained, no external assets"
                 "</footer>")
    parts.append("</body></html>")
    return "\n".join(parts)


def write_trace_diff(path: str | Path, diff: TraceDiff,
                     title: str = "repro — trace diff") -> Path:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_trace_diff(diff, title), encoding="utf-8")
    return out


def write_dashboard(path: str | Path, records: list[RunRecord],
                    report: RegressionReport | None = None,
                    title: str = "repro — cross-run performance") -> Path:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_dashboard(records, report, title),
                   encoding="utf-8")
    return out
