"""Causal flow model: explicit hand-off edges between pipeline actors.

A **flow** is the recorded journey of one unit of work (an in-transit
task, a pulled region, a collective) through the pipeline's hand-off
points. Where :func:`repro.obs.analysis.critical_path` *guesses*
causality from time ordering, a flow *records* it: each hand-off appends
a :class:`FlowHop` carrying the trace-clock time the work arrived at the
next actor and the **edge kind** that explains the segment of time since
the previous hop.

The hop chain reads as alternating residencies and edges::

    src span ──notify──▶ scheduler ──queue──▶ task span ──grant──▶ ...

* a hop **without** a ``span_id`` is a checkpoint (the scheduler saw the
  descriptor, a retry backoff expired);
* a hop **with** a ``span_id`` is the flow *entering* that span (its
  ``t`` is the span's start) — the span's own duration is residency,
  charged by stage, while the gap before it is charged to the hop's
  edge kind.

Edge kinds map onto the paper's attribution questions through
:data:`EDGE_BLAME` / :data:`STAGE_BLAME`: every second of a timestep's
end-to-end latency lands in exactly one of :data:`BLAME_BUCKETS`
(see :mod:`repro.obs.blame` for the exact-sum decomposition).

This module is pure data — no tracer import — so the tracer, exporter,
and analysis layers can all depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "FlowHop",
    "FlowContext",
    "EDGE_NOTIFY",
    "EDGE_QUEUE",
    "EDGE_GRANT",
    "EDGE_RETRY",
    "EDGE_SERVICE",
    "EDGE_COLLECTIVE",
    "EDGE_KINDS",
    "BLAME_COMPUTE",
    "BLAME_TRANSPORT",
    "BLAME_QUEUE_WAIT",
    "BLAME_RETRY_BACKOFF",
    "BLAME_SCHEDULER_IDLE",
    "BLAME_BUCKETS",
    "EDGE_BLAME",
    "STAGE_BLAME",
    "blame_bucket_for_edge",
    "blame_bucket_for_stage",
]

# -- edge kinds: what explains the time between two hops ----------------------

#: Descriptor on the wire (DART SMSG header to the scheduler).
EDGE_NOTIFY = "notify"
#: Waiting in the scheduler's FCFS queue for a free bucket.
EDGE_QUEUE = "queue"
#: Waiting for a NIC channel grant before the RDMA wire transfer.
EDGE_GRANT = "grant"
#: A failed attempt plus its exponential backoff (pull fault or lease
#: expiry re-dispatch).
EDGE_RETRY = "retry"
#: Hand-off into a compute stage (bucket task body, in-transit kernel).
EDGE_SERVICE = "service"
#: A vmpi collective round (bcast/allreduce/... time model).
EDGE_COLLECTIVE = "collective"

EDGE_KINDS = (EDGE_NOTIFY, EDGE_QUEUE, EDGE_GRANT, EDGE_RETRY,
              EDGE_SERVICE, EDGE_COLLECTIVE)

# -- blame buckets: where a second of makespan is charged ---------------------

BLAME_COMPUTE = "compute"
BLAME_TRANSPORT = "transport"
BLAME_QUEUE_WAIT = "queue_wait"
BLAME_RETRY_BACKOFF = "retry_backoff"
BLAME_SCHEDULER_IDLE = "scheduler_idle"

#: Fixed bucket order for reports; every decomposition sums exactly to
#: its window over these five.
BLAME_BUCKETS = (BLAME_COMPUTE, BLAME_TRANSPORT, BLAME_QUEUE_WAIT,
                 BLAME_RETRY_BACKOFF, BLAME_SCHEDULER_IDLE)

#: Edge kind -> blame bucket for the *gap* the hop closes.
EDGE_BLAME = {
    EDGE_NOTIFY: BLAME_TRANSPORT,
    EDGE_COLLECTIVE: BLAME_TRANSPORT,
    EDGE_QUEUE: BLAME_QUEUE_WAIT,
    EDGE_GRANT: BLAME_QUEUE_WAIT,
    EDGE_RETRY: BLAME_RETRY_BACKOFF,
    EDGE_SERVICE: BLAME_COMPUTE,
}

#: Span ``stage`` tag -> blame bucket for the span's residency.
STAGE_BLAME = {
    "simulation": BLAME_COMPUTE,
    "insitu": BLAME_COMPUTE,
    "intransit": BLAME_COMPUTE,
    "movement": BLAME_TRANSPORT,
}


def blame_bucket_for_edge(kind: str) -> str:
    """Bucket charged for a gap explained by ``kind`` (unknown kinds are
    scheduler idle — unexplained time must not inflate a real bucket)."""
    return EDGE_BLAME.get(kind, BLAME_SCHEDULER_IDLE)


def blame_bucket_for_stage(stage: str | None) -> str:
    """Bucket charged for a span residency in ``stage``."""
    return STAGE_BLAME.get(stage or "", BLAME_COMPUTE)


@dataclass
class FlowHop:
    """One hand-off point along a flow.

    ``t`` is the trace-clock arrival time; ``kind`` explains the segment
    *ending* at ``t`` (the gap since the previous hop / flow begin).
    A hop with ``span_id`` marks the flow entering that span.
    """

    t: float
    kind: str
    lane: str
    span_id: int | None = None
    tags: dict[str, Any] = field(default_factory=dict)


@dataclass(eq=False)
class FlowContext:
    """The recorded causal chain of one unit of work.

    Created by :meth:`repro.obs.tracer.Tracer.flow_begin` (usually at an
    in-situ submit, with the producer span as the source) and carried by
    value through every hand-off; each layer appends hops without having
    to know what came before or after it.
    """

    flow_id: int
    kind: str
    t_begin: float
    src_span_id: int | None = None
    dst_span_id: int | None = None
    hops: list[FlowHop] = field(default_factory=list)
    tags: dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.dst_span_id is not None

    def span_ids(self) -> list[int]:
        """Span ids the flow passes through, source first (dst included
        when closed; hops through the dst span are not repeated)."""
        ids: list[int] = []
        if self.src_span_id is not None:
            ids.append(self.src_span_id)
        for hop in self.hops:
            if hop.span_id is not None and hop.span_id not in ids:
                ids.append(hop.span_id)
        if self.dst_span_id is not None and self.dst_span_id not in ids:
            ids.append(self.dst_span_id)
        return ids

    def edge_totals(self) -> dict[str, float]:
        """Time per edge kind along the chain: each hop charges the gap
        since the previous hop (or ``t_begin``) to its kind.

        This is the *naive* hop-gap view: the residency of a span the
        flow entered lands in the **next** edge's gap, because hop times
        mark span starts. For the exact decomposition that charges span
        residencies to their stage buckets, use
        :func:`repro.obs.blame.blame` (cursor discipline over the trace).
        """
        out: dict[str, float] = {}
        cursor = self.t_begin
        for hop in self.hops:
            seg = max(0.0, hop.t - cursor)
            out[hop.kind] = out.get(hop.kind, 0.0) + seg
            cursor = max(cursor, hop.t)
        return out
