"""Trace analysis: critical-path extraction and breakdown reconciliation.

The critical path answers the paper's central scheduling question: *which
stage bounds the per-timestep makespan* — the stencil sweep on the sim
cores, the RDMA movement, or the in-transit glue? It is extracted over the
recorded span DAG, whose edges are

* **lane order** — a span is preceded by the latest span on the same lane
  that ended before it started (a bucket finishing one task before the
  next);
* **link tags** — spans sharing a tag value (``step`` by default) are
  causally ordered by time (the sim span of step *n* releases step *n*'s
  movement and in-transit spans);
* **explicit ``follows`` tags** — a span carrying ``follows=<span_id>``
  (or a list of ids) names its producers directly.

Walking back from the last-finishing span and always choosing the
*latest-ending* predecessor yields the blocking chain; gaps between
consecutive path spans are genuine waits (queueing, NIC contention).

:func:`reconcile_totals` checks traced per-stage totals against an
expected breakdown (e.g. :class:`repro.core.breakdown.TimingBreakdown`
figures) — the guard that keeps the observability layer honest.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.obs.tracer import SpanRecord, Trace
from repro.util.tables import TextTable

__all__ = [
    "CriticalPath",
    "critical_path",
    "causal_critical_path",
    "PathReconcile",
    "reconcile_paths",
    "ReconcileRow",
    "reconcile_totals",
    "reconcile_table",
]


@dataclass
class CriticalPath:
    """The blocking chain of spans ending at the trace's last finish."""

    spans: list[SpanRecord] = field(default_factory=list)
    #: sink finish minus first path span start (the bounded makespan).
    makespan: float = 0.0
    #: Sum of path span durations (trace clock).
    busy_time: float = 0.0
    #: Makespan minus busy time: queueing/contention gaps along the path.
    wait_time: float = 0.0
    #: Path busy time attributed per ``stage`` tag.
    stage_totals: dict[str, float] = field(default_factory=dict)
    #: How the path's edges were derived: ``"heuristic"`` (time-ordering
    #: guesses) or ``"causal"`` (recorded flow edges).
    method: str = "heuristic"

    @property
    def bounding_stage(self) -> str | None:
        """The stage holding the largest share of the path's busy time."""
        if not self.stage_totals:
            return None
        return max(self.stage_totals, key=lambda k: self.stage_totals[k])

    def table(self, max_rows: int = 40) -> str:
        t = TextTable(["lane", "span", "stage", "start (s)", "dur (s)",
                       "wait before (s)"],
                      title="critical path (last-finishing chain)")
        shown = self.spans[-max_rows:]
        prev_end: float | None = (shown[0].t_start if shown else None)
        for span in shown:
            wait = max(0.0, span.t_start - prev_end) if prev_end is not None else 0.0
            t.add_row([span.lane, span.name, span.tags.get("stage", "—"),
                       round(span.t_start, 4), round(span.duration, 4),
                       round(wait, 4)])
            prev_end = span.t_end
        lines = [t.render()]
        if len(self.spans) > max_rows:
            lines.append(f"({len(self.spans) - max_rows} earlier path spans "
                         f"not shown)")
        lines.append(f"makespan {self.makespan:.4f} s = busy "
                     f"{self.busy_time:.4f} s + wait {self.wait_time:.4f} s; "
                     f"bounded by: {self.bounding_stage or 'n/a'}")
        if self.stage_totals:
            share = TextTable(["stage", "path time (s)", "share"],
                              title="path time by stage")
            for stage, total in sorted(self.stage_totals.items(),
                                       key=lambda kv: -kv[1]):
                frac = total / self.busy_time if self.busy_time else 0.0
                share.add_row([stage, round(total, 4), f"{100 * frac:.1f}%"])
            lines.append(share.render())
        return "\n\n".join(lines)


def _predecessor(candidates: list[SpanRecord], ends: list[float],
                 before: float) -> SpanRecord | None:
    """Latest-ending span in a (t_end-sorted) list with t_end <= before."""
    i = bisect.bisect_right(ends, before)
    return candidates[i - 1] if i else None


def critical_path(trace: Trace, spans: list[SpanRecord] | None = None,
                  link_tags: tuple[str, ...] = ("step",),
                  sink: SpanRecord | None = None,
                  eps: float = 1e-9) -> CriticalPath:
    """Extract the blocking chain ending at ``sink`` (default: the span
    with the greatest finish time).

    By default the DAG is built over stage-tagged spans — the disjoint
    per-stage activities — so parents that merely wrap children do not
    double count. Pass ``spans`` to analyse a custom subset.
    """
    if spans is None:
        spans = [s for s in trace.closed_spans() if "stage" in s.tags]
    if not spans:
        return CriticalPath()

    by_id = {s.span_id: s for s in spans}
    by_lane: dict[str, list[SpanRecord]] = {}
    by_link: dict[tuple[str, object], list[SpanRecord]] = {}
    for s in spans:
        by_lane.setdefault(s.lane, []).append(s)
        for tag in link_tags:
            if tag in s.tags:
                by_link.setdefault((tag, s.tags[tag]), []).append(s)
    lane_ends: dict[str, list[float]] = {}
    for lane, group in by_lane.items():
        group.sort(key=lambda s: (s.t_end, s.span_id))
        lane_ends[lane] = [s.t_end for s in group]
    link_ends: dict[tuple[str, object], list[float]] = {}
    for key, group in by_link.items():
        group.sort(key=lambda s: (s.t_end, s.span_id))
        link_ends[key] = [s.t_end for s in group]

    current = sink or max(spans, key=lambda s: (s.t_end, s.span_id))
    path = [current]
    visited = {current.span_id}
    while True:
        cutoff = current.t_start + eps
        candidates: list[SpanRecord] = []
        pred = _predecessor(by_lane[current.lane], lane_ends[current.lane],
                            cutoff)
        if pred is not None:
            candidates.append(pred)
        for tag in link_tags:
            if tag in current.tags:
                key = (tag, current.tags[tag])
                pred = _predecessor(by_link[key], link_ends[key], cutoff)
                if pred is not None:
                    candidates.append(pred)
        follows = current.tags.get("follows")
        if follows is not None:
            ids = follows if isinstance(follows, (list, tuple)) else (follows,)
            for span_id in ids:
                producer = by_id.get(span_id)
                if producer is not None and producer.t_end <= cutoff:
                    candidates.append(producer)
        candidates = [c for c in candidates if c.span_id not in visited]
        if not candidates:
            break
        current = max(candidates, key=lambda s: (s.t_end, s.span_id))
        visited.add(current.span_id)
        path.append(current)
    path.reverse()

    busy = sum(s.duration for s in path)
    makespan = path[-1].t_end - path[0].t_start
    stage_totals: dict[str, float] = {}
    for s in path:
        stage = s.tags.get("stage")
        if stage is not None:
            stage_totals[stage] = stage_totals.get(stage, 0.0) + s.duration
    return CriticalPath(spans=path, makespan=makespan, busy_time=busy,
                        wait_time=max(0.0, makespan - busy),
                        stage_totals=stage_totals)


def causal_critical_path(trace: Trace,
                         spans: list[SpanRecord] | None = None,
                         sink: SpanRecord | None = None,
                         eps: float = 1e-9) -> CriticalPath:
    """Exact critical path over the recorded causal-flow DAG.

    Edges are what the pipeline *recorded* rather than what time ordering
    suggests:

    * **flow edges** — consecutive spans on one
      :class:`~repro.obs.flow.FlowContext` chain (producer span → wire
      transfer(s) → in-transit consumer), recorded at every hand-off;
    * **lane order** — the serial predecessor on the same lane, exact
      for single-actor lanes (a bucket cannot start a task before
      finishing the previous one);
    * **explicit ``follows`` tags**, as in :func:`critical_path`.

    The per-``link_tags`` guessing of the heuristic path is *not* used.
    Traces recorded without flows fall back to :func:`critical_path`
    (the result's ``method`` says which ran).
    """
    if not trace.flows:
        return critical_path(trace, spans=spans, sink=sink, eps=eps)
    if spans is None:
        spans = [s for s in trace.closed_spans() if "stage" in s.tags]
    if not spans:
        return CriticalPath(method="causal")

    by_id = {s.span_id: s for s in spans}
    producers: dict[int, list[SpanRecord]] = {}
    for flow in trace.flows:
        chain = flow.span_ids()
        for a, b in zip(chain, chain[1:]):
            if a in by_id and b in by_id:
                producers.setdefault(b, []).append(by_id[a])
    by_lane: dict[str, list[SpanRecord]] = {}
    for s in spans:
        by_lane.setdefault(s.lane, []).append(s)
    lane_ends: dict[str, list[float]] = {}
    for lane, group in by_lane.items():
        group.sort(key=lambda s: (s.t_end, s.span_id))
        lane_ends[lane] = [s.t_end for s in group]

    current = sink or max(spans, key=lambda s: (s.t_end, s.span_id))
    path = [current]
    visited = {current.span_id}
    while True:
        cutoff = current.t_start + eps
        candidates: list[SpanRecord] = []
        pred = _predecessor(by_lane[current.lane], lane_ends[current.lane],
                            cutoff)
        if pred is not None:
            candidates.append(pred)
        for producer in producers.get(current.span_id, ()):
            # Overlapping producers (streaming prefetch) are not blocking.
            if producer.t_end <= cutoff:
                candidates.append(producer)
        follows = current.tags.get("follows")
        if follows is not None:
            ids = follows if isinstance(follows, (list, tuple)) else (follows,)
            for span_id in ids:
                producer = by_id.get(span_id)
                if producer is not None and producer.t_end <= cutoff:
                    candidates.append(producer)
        candidates = [c for c in candidates if c.span_id not in visited]
        if not candidates:
            break
        current = max(candidates, key=lambda s: (s.t_end, s.span_id))
        visited.add(current.span_id)
        path.append(current)
    path.reverse()

    busy = sum(s.duration for s in path)
    makespan = path[-1].t_end - path[0].t_start
    stage_totals: dict[str, float] = {}
    for s in path:
        stage = s.tags.get("stage")
        if stage is not None:
            stage_totals[stage] = stage_totals.get(stage, 0.0) + s.duration
    return CriticalPath(spans=path, makespan=makespan, busy_time=busy,
                        wait_time=max(0.0, makespan - busy),
                        stage_totals=stage_totals, method="causal")


@dataclass
class PathReconcile:
    """Causal vs heuristic critical path, side by side.

    The heuristic can only *under*-link (it misses hand-offs that leave
    no shared tag), so the causal path must explain at least as large a
    window: ``ok`` checks ``causal.makespan >= heuristic.makespan`` (and
    that both end on the same sink time) within ``eps``.
    """

    causal: CriticalPath
    heuristic: CriticalPath
    eps: float = 1e-9

    @property
    def makespan_delta(self) -> float:
        return self.causal.makespan - self.heuristic.makespan

    @property
    def busy_delta(self) -> float:
        return self.causal.busy_time - self.heuristic.busy_time

    @property
    def ok(self) -> bool:
        return self.causal.makespan >= self.heuristic.makespan - self.eps

    def table(self) -> str:
        t = TextTable(["path", "spans", "makespan (s)", "busy (s)",
                       "wait (s)", "bounded by"],
                      title="causal vs heuristic critical path")
        for cp in (self.causal, self.heuristic):
            t.add_row([cp.method, len(cp.spans), round(cp.makespan, 4),
                       round(cp.busy_time, 4), round(cp.wait_time, 4),
                       cp.bounding_stage or "n/a"])
        verdict = ("agree" if abs(self.makespan_delta) <= self.eps else
                   f"causal explains {self.makespan_delta:+.4f} s more"
                   if self.ok else
                   f"HEURISTIC OVER-LINKS by {-self.makespan_delta:.4f} s")
        return t.render() + f"\nreconcile: {verdict}"


def reconcile_paths(trace: Trace, eps: float = 1e-9) -> PathReconcile:
    """Extract both paths from one trace and pair them for comparison."""
    return PathReconcile(causal=causal_critical_path(trace, eps=eps),
                         heuristic=critical_path(trace, eps=eps),
                         eps=eps)


@dataclass
class ReconcileRow:
    """One stage's expected-vs-traced comparison."""

    stage: str
    expected: float
    observed: float

    @property
    def rel_err(self) -> float:
        if self.expected == 0.0:
            return abs(self.observed)
        return abs(self.observed - self.expected) / abs(self.expected)

    def ok(self, tolerance: float) -> bool:
        return self.rel_err <= tolerance


def reconcile_totals(observed: dict[str, float], expected: dict[str, float]
                     ) -> list[ReconcileRow]:
    """Compare traced per-stage totals against model-expected totals."""
    return [ReconcileRow(stage=stage, expected=exp,
                         observed=observed.get(stage, 0.0))
            for stage, exp in sorted(expected.items())]


def reconcile_table(rows: list[ReconcileRow], tolerance: float = 0.01) -> str:
    t = TextTable(["stage", "model (s)", "traced (s)", "rel err", "ok"],
                  title=f"trace vs core.breakdown (tolerance "
                        f"{100 * tolerance:.1f}%)")
    for row in rows:
        t.add_row([row.stage, round(row.expected, 4),
                   round(row.observed, 4), f"{100 * row.rel_err:.3f}%",
                   "yes" if row.ok(tolerance) else "NO"])
    return t.render()
