"""Metrics registry: counters, gauges, and histograms.

The registry is the numeric side of :mod:`repro.obs` — bytes moved,
protocol picks, queue depths, bucket occupancy, retries. Instruments are
created on first use (``registry.counter("dart.bytes_pulled")``) and are
cheap enough to update from hot paths; when the registry is created with a
clock and ``record_series=True`` every update also appends a
``(time, value)`` sample so exporters can emit Chrome ``C`` (counter)
events and queue-depth timelines.

A :data:`NULL_METRICS` registry backs the disabled tracer: its instruments
are shared no-op singletons, so instrumentation sites pay one attribute
lookup and a no-op call when tracing is off.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.util.tables import TextTable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
]


class Counter:
    """Monotonically increasing count (events, bytes, retries)."""

    __slots__ = ("name", "value", "series", "_clock")

    def __init__(self, name: str, clock: Callable[[], float] | None = None,
                 record_series: bool = False) -> None:
        self.name = name
        self.value: float = 0
        self.series: list[tuple[float, float]] | None = (
            [] if record_series and clock is not None else None)
        self._clock = clock

    def inc(self, delta: float = 1) -> None:
        if delta < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(delta={delta})")
        self.value += delta
        if self.series is not None:
            self.series.append((self._clock(), self.value))


class Gauge:
    """Last-written value with running min/max (queue depth, live bytes)."""

    __slots__ = ("name", "value", "vmin", "vmax", "n_samples", "series",
                 "_clock")

    def __init__(self, name: str, clock: Callable[[], float] | None = None,
                 record_series: bool = False) -> None:
        self.name = name
        self.value: float = 0.0
        self.vmin: float = float("inf")
        self.vmax: float = float("-inf")
        self.n_samples = 0
        self.series: list[tuple[float, float]] | None = (
            [] if record_series and clock is not None else None)
        self._clock = clock

    def set(self, value: float) -> None:
        self.value = value
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)
        self.n_samples += 1
        if self.series is not None:
            self.series.append((self._clock(), value))


class Histogram:
    """Distribution of observed values (transfer sizes, span durations)."""

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    @property
    def vmin(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def vmax(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1,
                          round(p / 100 * (len(ordered) - 1))))
        return ordered[rank]


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for the disabled tracer."""

    __slots__ = ()
    name = "null"
    value = 0
    series = None
    values: list[float] = []

    def inc(self, delta: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Name-keyed collection of instruments, created on first use."""

    def __init__(self, clock: Callable[[], float] | None = None,
                 record_series: bool = False) -> None:
        self._clock = clock
        self._record_series = record_series
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name, self._clock,
                                                 self._record_series)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name, self._clock,
                                             self._record_series)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(name)
        return inst

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All current values as plain (JSON-safe) data."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: {"last": g.value, "min": g.vmin, "max": g.vmax,
                           "samples": g.n_samples}
                       for n, g in sorted(self.gauges.items())
                       if g.n_samples},
            "histograms": {n: {"count": h.count, "total": h.total,
                               "mean": h.mean, "min": h.vmin, "max": h.vmax,
                               "p50": h.percentile(50), "p99": h.percentile(99)}
                           for n, h in sorted(self.histograms.items())
                           if h.count},
        }

    def summary(self) -> str:
        """Aligned text tables of every instrument (via ``util.tables``)."""
        snap = self.snapshot()
        parts: list[str] = []
        if snap["counters"]:
            t = TextTable(["counter", "value"], title="counters")
            for name, value in snap["counters"].items():
                t.add_row([name, value])
            parts.append(t.render())
        if snap["gauges"]:
            t = TextTable(["gauge", "last", "min", "max", "samples"],
                          title="gauges")
            for name, g in snap["gauges"].items():
                t.add_row([name, g["last"], g["min"], g["max"], g["samples"]])
            parts.append(t.render())
        if snap["histograms"]:
            t = TextTable(["histogram", "count", "mean", "p50", "p99", "max"],
                          title="histograms")
            for name, h in snap["histograms"].items():
                t.add_row([name, h["count"], h["mean"], h["p50"], h["p99"],
                           h["max"]])
            parts.append(t.render())
        return "\n\n".join(parts) if parts else "(no metrics)"


class _NullMetricsRegistry(MetricsRegistry):
    """Registry whose instruments are shared no-ops (disabled tracing)."""

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]


NULL_METRICS = _NullMetricsRegistry()
