"""Metrics registry: counters, gauges, and histograms.

The registry is the numeric side of :mod:`repro.obs` — bytes moved,
protocol picks, queue depths, bucket occupancy, retries. Instruments are
created on first use (``registry.counter("dart.bytes_pulled")``) and are
cheap enough to update from hot paths; when the registry is created with a
clock and ``record_series=True`` every update also appends a
``(time, value)`` sample so exporters can emit Chrome ``C`` (counter)
events and queue-depth timelines.

A :data:`NULL_METRICS` registry backs the disabled tracer: its instruments
are shared no-op singletons, so instrumentation sites pay one attribute
lookup and a no-op call when tracing is off.
"""

from __future__ import annotations

import math
import random
import zlib
from collections.abc import Callable
from typing import Any

from repro.util.tables import TextTable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
]


class Counter:
    """Monotonically increasing count (events, bytes, retries)."""

    __slots__ = ("name", "value", "series", "_clock")

    def __init__(self, name: str, clock: Callable[[], float] | None = None,
                 record_series: bool = False) -> None:
        self.name = name
        self.value: float = 0
        self.series: list[tuple[float, float]] | None = (
            [] if record_series and clock is not None else None)
        self._clock = clock

    def inc(self, delta: float = 1) -> None:
        if delta < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(delta={delta})")
        self.value += delta
        if self.series is not None:
            self.series.append((self._clock(), self.value))


class Gauge:
    """Last-written value with running min/max (queue depth, live bytes).

    Alongside the min/max envelope the gauge records *when* each
    watermark was first reached (trace-clock time, i.e. DES seconds once
    an engine attaches): :meth:`watermark` returns the exact running
    high/low marks with their timestamps. A watermark timestamp is the
    first sample that set the mark — later equal samples do not move it.
    """

    __slots__ = ("name", "value", "vmin", "vmax", "t_vmin", "t_vmax",
                 "n_samples", "series", "_clock")

    def __init__(self, name: str, clock: Callable[[], float] | None = None,
                 record_series: bool = False) -> None:
        self.name = name
        self.value: float = 0.0
        self.vmin: float = float("inf")
        self.vmax: float = float("-inf")
        self.t_vmin: float = math.nan
        self.t_vmax: float = math.nan
        self.n_samples = 0
        self.series: list[tuple[float, float]] | None = (
            [] if record_series and clock is not None else None)
        self._clock = clock

    def set(self, value: float) -> None:
        self.value = value
        # The clock is only consulted when a watermark moves, so hot
        # paths that hover inside the envelope pay nothing extra.
        if value < self.vmin:
            self.vmin = value
            self.t_vmin = self._clock() if self._clock is not None else math.nan
        if value > self.vmax:
            self.vmax = value
            self.t_vmax = self._clock() if self._clock is not None else math.nan
        self.n_samples += 1
        if self.series is not None:
            self.series.append((self._clock(), value))

    def watermark(self) -> dict[str, float | int | None]:
        """Exact running high/low water marks with their timestamps.

        ``max_t``/``min_t`` are the trace-clock times the marks were
        first reached (None before any sample, or when the gauge has no
        clock)."""
        if not self.n_samples:
            return {"last": None, "max": None, "max_t": None,
                    "min": None, "min_t": None, "samples": 0}
        return {"last": self.value,
                "max": self.vmax,
                "max_t": None if math.isnan(self.t_vmax) else self.t_vmax,
                "min": self.vmin,
                "min_t": None if math.isnan(self.t_vmin) else self.t_vmin,
                "samples": self.n_samples}

    def mirror(self, samples: list[tuple[float, float]]) -> None:
        """Bulk-replay a ``(time, value)`` series into the gauge.

        Produces the exact end-state of calling :meth:`set` once per
        sample at its recorded time — last value, min/max envelope,
        sample count, and (when the registry records series) the
        timestamped series itself — without touching the live clock, so
        post-run mirrors (e.g. :meth:`repro.obs.probes.ProbeSampler.finalize`)
        keep the samples' original timestamps.
        """
        if not samples:
            return
        values = [v for _t, v in samples]
        self.value = values[-1]
        lo, hi = min(values), max(values)
        if lo < self.vmin:
            self.vmin = lo
            self.t_vmin = next(t for t, v in samples if v == lo)
        if hi > self.vmax:
            self.vmax = hi
            self.t_vmax = next(t for t, v in samples if v == hi)
        self.n_samples += len(samples)
        if self.series is not None:
            self.series.extend(samples)


class Histogram:
    """Distribution of observed values (transfer sizes, span durations).

    Count, total, mean, min and max are exact regardless of retention.
    The raw observations back the percentiles; with ``max_samples`` set
    they are capped by reservoir sampling (algorithm R, seeded per name so
    runs stay deterministic), bounding memory on long runs while keeping
    the percentile estimate unbiased. The sorted view is cached between
    observations, so repeated ``percentile()`` calls (two per histogram
    per registry ``snapshot()``) cost one sort at most.
    """

    __slots__ = ("name", "values", "max_samples", "_count", "_total",
                 "_vmin", "_vmax", "_sorted", "_rng")

    def __init__(self, name: str, max_samples: int | None = None) -> None:
        if max_samples is not None and max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self.values: list[float] = []
        self.max_samples = max_samples
        self._count = 0
        self._total = 0.0
        self._vmin = float("inf")
        self._vmax = float("-inf")
        self._sorted: list[float] | None = None
        self._rng: random.Random | None = None

    def observe(self, value: float) -> None:
        self._count += 1
        self._total += value
        if value < self._vmin:
            self._vmin = value
        if value > self._vmax:
            self._vmax = value
        if self.max_samples is None or len(self.values) < self.max_samples:
            self.values.append(value)
            self._sorted = None
            return
        # Reservoir replacement: keep each of the _count observations with
        # equal probability max_samples/_count.
        if self._rng is None:
            self._rng = random.Random(zlib.crc32(self.name.encode()))
        j = self._rng.randrange(self._count)
        if j < self.max_samples:
            self.values[j] = value
            self._sorted = None

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def vmin(self) -> float:
        return self._vmin if self._count else 0.0

    @property
    def vmax(self) -> float:
        return self._vmax if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.values:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self.values)
        ordered = self._sorted
        rank = max(0, min(len(ordered) - 1,
                          round(p / 100 * (len(ordered) - 1))))
        return ordered[rank]


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for the disabled tracer."""

    __slots__ = ()
    name = "null"
    value = 0
    series = None
    values: list[float] = []

    def inc(self, delta: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def mirror(self, samples: list[tuple[float, float]]) -> None:
        pass

    def watermark(self) -> dict[str, float | int | None]:
        return {"last": None, "max": None, "max_t": None,
                "min": None, "min_t": None, "samples": 0}

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Name-keyed collection of instruments, created on first use."""

    def __init__(self, clock: Callable[[], float] | None = None,
                 record_series: bool = False,
                 histogram_max_samples: int | None = None) -> None:
        self._clock = clock
        self._record_series = record_series
        self._histogram_max_samples = histogram_max_samples
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name, self._clock,
                                                 self._record_series)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name, self._clock,
                                             self._record_series)
        return inst

    def histogram(self, name: str,
                  max_samples: int | None = None) -> Histogram:
        """Get or create a histogram. ``max_samples`` (first call only)
        overrides the registry-wide reservoir cap for this instrument."""
        inst = self.histograms.get(name)
        if inst is None:
            cap = (max_samples if max_samples is not None
                   else self._histogram_max_samples)
            inst = self.histograms[name] = Histogram(name, max_samples=cap)
        return inst

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All current values as plain (JSON-safe) data."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: {"last": g.value, "min": g.vmin, "max": g.vmax,
                           "samples": g.n_samples}
                       for n, g in sorted(self.gauges.items())
                       if g.n_samples},
            "histograms": {n: {"count": h.count, "total": h.total,
                               "mean": h.mean, "min": h.vmin, "max": h.vmax,
                               "p50": h.percentile(50), "p99": h.percentile(99)}
                           for n, h in sorted(self.histograms.items())
                           if h.count},
        }

    def summary(self) -> str:
        """Aligned text tables of every instrument (via ``util.tables``)."""
        snap = self.snapshot()
        parts: list[str] = []
        if snap["counters"]:
            t = TextTable(["counter", "value"], title="counters")
            for name, value in snap["counters"].items():
                t.add_row([name, value])
            parts.append(t.render())
        if snap["gauges"]:
            t = TextTable(["gauge", "last", "min", "max", "samples"],
                          title="gauges")
            for name, g in snap["gauges"].items():
                t.add_row([name, g["last"], g["min"], g["max"], g["samples"]])
            parts.append(t.render())
        if snap["histograms"]:
            t = TextTable(["histogram", "count", "mean", "p50", "p99", "max"],
                          title="histograms")
            for name, h in snap["histograms"].items():
                t.add_row([name, h["count"], h["mean"], h["p50"], h["p99"],
                           h["max"]])
            parts.append(t.render())
        return "\n\n".join(parts) if parts else "(no metrics)"


class _NullMetricsRegistry(MetricsRegistry):
    """Registry whose instruments are shared no-ops (disabled tracing)."""

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str, max_samples: int | None = None
                  ) -> Histogram:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]


NULL_METRICS = _NullMetricsRegistry()
