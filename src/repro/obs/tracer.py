"""Dual-clock tracer: spans, instants, and counters over actor lanes.

Every span records *both* clocks:

* the **trace clock** (``t_start``/``t_end``) — the DES simulated time
  when an :class:`~repro.des.engine.Engine` has attached itself to the
  tracer (the engine does this automatically at construction when tracing
  is enabled), otherwise wall seconds since the tracer was created;
* the **wall clock** (``wall_start``/``wall_end``) — ``perf_counter``
  time of the real numpy work, always.

Spans live on *lanes* — one per actor (a rank, a staging bucket, the
scheduler, the sim driver) — and nest per lane: a span begun while another
is open on the same lane records it as its parent. Overlapping,
non-nesting spans on one lane (streaming prefetch pulls) are legal; the
Chrome exporter splits them onto sub-rows.

Tracing is off by default and *near-zero cost* when off: the module-level
singleton is a :class:`NullTracer` whose ``enabled`` flag instrument sites
check once (or whose methods are shared no-ops). Enable it for a run with
:func:`enable_tracing` / the :func:`tracing` context manager **before**
constructing the objects to observe — sites capture the tracer at
construction.
"""

from __future__ import annotations

import itertools
import math
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

from repro.obs.flow import FlowContext, FlowHop
from repro.obs.metrics import NULL_METRICS, MetricsRegistry

__all__ = [
    "SpanRecord",
    "InstantRecord",
    "Trace",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing",
]


@dataclass(eq=False)
class SpanRecord:
    """One traced activity on a lane, timed against both clocks."""

    name: str
    lane: str
    span_id: int
    parent_id: int | None
    t_start: float
    wall_start: float
    category: str | None = None
    tags: dict[str, Any] = field(default_factory=dict)
    t_end: float = math.nan
    wall_end: float = math.nan
    #: Flow ids arriving at / leaving this span (None until a flow binds,
    #: so untraced spans pay nothing for the causal layer).
    flow_in: list[int] | None = None
    flow_out: list[int] | None = None

    @property
    def closed(self) -> bool:
        return not math.isnan(self.t_end)

    @property
    def duration(self) -> float:
        """Trace-clock duration (DES seconds when an engine is attached)."""
        return self.t_end - self.t_start

    @property
    def wall_duration(self) -> float:
        return self.wall_end - self.wall_start

    @property
    def stage(self) -> str | None:
        """The pipeline stage this span charges (``stage`` tag), if any."""
        return self.tags.get("stage")


@dataclass(eq=False)
class InstantRecord:
    """A point event on a lane (data-ready, assignment, notification)."""

    name: str
    lane: str
    t: float
    wall_t: float
    tags: dict[str, Any] = field(default_factory=dict)


@dataclass
class Trace:
    """Everything one tracer recorded."""

    spans: list[SpanRecord] = field(default_factory=list)
    instants: list[InstantRecord] = field(default_factory=list)
    flows: list[FlowContext] = field(default_factory=list)
    #: Bumped by the tracer whenever a span closes (the set that feeds
    #: :meth:`spans_with` changed) — invalidates the lazy tag index.
    version: int = 0
    _tag_index: dict[tuple[str, Any], list[SpanRecord]] | None = field(
        default=None, repr=False, compare=False)
    _tag_index_key: tuple[int, int] | None = field(
        default=None, repr=False, compare=False)

    def lanes(self) -> list[str]:
        seen = {s.lane for s in self.spans} | {i.lane for i in self.instants}
        return sorted(seen)

    def closed_spans(self) -> list[SpanRecord]:
        return [s for s in self.spans if s.closed]

    def open_spans(self) -> list[SpanRecord]:
        return [s for s in self.spans if not s.closed]

    def span_map(self) -> dict[int, SpanRecord]:
        """Span id -> span, for resolving flow chains."""
        return {s.span_id: s for s in self.spans}

    def _index(self) -> dict[tuple[str, Any], list[SpanRecord]]:
        """(key, value) -> closed spans, rebuilt when the trace changed.

        Unhashable tag *values* are left out of the index; they are only
        reachable through the linear fallback in :meth:`spans_with`
        (which an unhashable *query* value triggers).
        """
        key = (self.version, len(self.spans))
        if self._tag_index is None or self._tag_index_key != key:
            index: dict[tuple[str, Any], list[SpanRecord]] = {}
            for s in self.spans:
                if not s.closed:
                    continue
                for k, v in s.tags.items():
                    try:
                        index.setdefault((k, v), []).append(s)
                    except TypeError:
                        pass
            self._tag_index = index
            self._tag_index_key = key
        return self._tag_index

    def spans_with(self, **tags: Any) -> list[SpanRecord]:
        """Closed spans whose tags include every given key/value.

        Served from a lazy tag index (one dict probe per tag) instead of
        a full scan; blame and diff call this per step, per stage.
        """
        if not tags:
            return self.closed_spans()
        try:
            index = self._index()
            groups = [index.get((k, v), []) for k, v in tags.items()]
        except TypeError:  # unhashable query value: fall back to a scan
            return [s for s in self.closed_spans()
                    if all(s.tags.get(k) == v for k, v in tags.items())]
        if len(groups) == 1:
            return list(groups[0])
        smallest = min(groups, key=len)
        rest = [(k, v) for k, v in tags.items()]
        return [s for s in smallest
                if all(s.tags.get(k) == v for k, v in rest)]

    def stage_totals(self, clock: str = "trace") -> dict[str, float]:
        """Total duration per ``stage`` tag (spans without one are skipped).

        Stage-tagged spans never nest inside same-stage spans at the
        instrumentation sites, so a plain sum does not double count.
        """
        if clock not in ("trace", "wall"):
            raise ValueError(f"clock must be 'trace' or 'wall', got {clock!r}")
        out: dict[str, float] = {}
        for s in self.closed_spans():
            stage = s.tags.get("stage")
            if stage is None:
                continue
            dur = s.duration if clock == "trace" else s.wall_duration
            out[stage] = out.get(stage, 0.0) + dur
        return out


class Tracer:
    """Recording tracer. See the module docstring for the clock model."""

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._wall_epoch = time.perf_counter()
        self._clock = clock or (lambda: time.perf_counter() - self._wall_epoch)
        self.metrics = MetricsRegistry(clock=self.now, record_series=True)
        self.trace = Trace()
        self._stacks: dict[str, list[SpanRecord]] = {}
        self._ids = itertools.count(1)
        self._flow_ids = itertools.count(1)
        #: Live telemetry bus (:class:`repro.obs.live.TelemetryBus`), or
        #: None — every publish site is behind an ``is not None`` check.
        self.bus: Any = None
        #: Ambient tags (tenant/job ids) merged into every span/instant
        #: opened while a :meth:`context` block is active.
        self._ctx: dict[str, Any] = {}

    # -- clocks --------------------------------------------------------------

    def now(self) -> float:
        """Current trace-clock time (DES time once an engine attaches)."""
        return self._clock()

    def attach_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def attach_engine(self, engine: Any) -> None:
        """Use ``engine.now`` as the trace clock (the DES engine calls this
        from its constructor when tracing is enabled; last engine wins)."""
        self.attach_clock(lambda: engine.now)

    # -- live bus & ambient context ------------------------------------------

    def attach_bus(self, bus: Any) -> Any:
        """Stream closed spans and instants onto a live
        :class:`~repro.obs.live.TelemetryBus` (pass None to detach)."""
        self.bus = bus
        return bus

    @contextmanager
    def context(self, **tags: Any) -> Iterator[dict[str, Any]]:
        """Merge ``tags`` into the ambient context for the block.

        Every span, instant and bus event recorded inside the block
        carries these tags — this is how tenant/job attribution crosses
        the two-level DES boundary (the service engine opens the context,
        and everything the inner replay engine records inherits it).
        None-valued tags are skipped; inner contexts shadow outer ones
        and the previous context is restored on exit.
        """
        previous = self._ctx
        merged = dict(previous)
        merged.update((k, v) for k, v in tags.items() if v is not None)
        self._ctx = merged
        try:
            yield merged
        finally:
            self._ctx = previous

    def context_tags(self) -> dict[str, Any]:
        """A copy of the ambient context tags currently in effect."""
        return dict(self._ctx)

    def _publish(self, kind: str, name: str, lane: str, t: float,
                 tags: dict[str, Any], data: dict[str, Any]) -> None:
        self.bus.publish(kind, name, t=t, lane=lane,
                         tenant=tags.get("tenant"), job_id=tags.get("job"),
                         **data)

    # -- spans ---------------------------------------------------------------

    def begin(self, name: str, lane: str = "main",
              category: str | None = None, **tags: Any) -> SpanRecord:
        """Open a span on ``lane``; the open span below it (if any) becomes
        its parent. Close it with :meth:`end` (LIFO order not required)."""
        stack = self._stacks.setdefault(lane, [])
        if self._ctx:
            tags = {**self._ctx, **tags}
        rec = SpanRecord(
            name=name, lane=lane, span_id=next(self._ids),
            parent_id=stack[-1].span_id if stack else None,
            t_start=self.now(), wall_start=time.perf_counter(),
            category=category, tags=tags,
        )
        stack.append(rec)
        self.trace.spans.append(rec)
        return rec

    def end(self, span: SpanRecord, **tags: Any) -> SpanRecord:
        if span.closed:
            raise RuntimeError(f"span {span.name!r} already ended")
        span.t_end = self.now()
        span.wall_end = time.perf_counter()
        span.tags.update(tags)
        stack = self._stacks.get(span.lane)
        if stack and span in stack:
            stack.remove(span)
        self.trace.version += 1
        if self.bus is not None:
            self._publish("span", span.name, span.lane, span.t_end, span.tags,
                          {"t_start": span.t_start,
                           "duration": span.duration,
                           "stage": span.tags.get("stage"),
                           "category": span.category})
        return span

    @contextmanager
    def span(self, name: str, lane: str = "main",
             category: str | None = None, **tags: Any) -> Iterator[SpanRecord]:
        rec = self.begin(name, lane, category, **tags)
        try:
            yield rec
        finally:
            self.end(rec)

    def add_span(self, name: str, lane: str, t_start: float, t_end: float,
                 category: str | None = None,
                 parent_id: int | None = None, **tags: Any) -> SpanRecord:
        """Record an already-timed span with explicit trace-clock times
        (model-generated timelines, e.g. the closed-form sim schedule)."""
        if t_end < t_start:
            raise ValueError(f"span ends ({t_end}) before it starts "
                             f"({t_start})")
        if self._ctx:
            tags = {**self._ctx, **tags}
        wall = time.perf_counter()
        rec = SpanRecord(name=name, lane=lane, span_id=next(self._ids),
                         parent_id=parent_id, t_start=t_start,
                         wall_start=wall, category=category, tags=tags,
                         t_end=t_end, wall_end=wall)
        self.trace.spans.append(rec)
        self.trace.version += 1
        if self.bus is not None:
            self._publish("span", name, lane, t_end, tags,
                          {"t_start": t_start, "duration": t_end - t_start,
                           "stage": tags.get("stage"), "category": category})
        return rec

    # -- causal flows --------------------------------------------------------

    def flow_begin(self, kind: str, src_span: SpanRecord | None = None,
                   t: float | None = None, **tags: Any) -> FlowContext:
        """Open a causal flow, optionally anchored at a producer span.

        The returned context is carried by value through every hand-off;
        downstream layers append hops with :meth:`flow_step` /
        :meth:`flow_through` and close it with :meth:`flow_end`.
        """
        flow = FlowContext(
            flow_id=next(self._flow_ids), kind=kind,
            t_begin=self.now() if t is None else t,
            src_span_id=src_span.span_id if src_span is not None else None,
            tags=tags,
        )
        if src_span is not None:
            if src_span.flow_out is None:
                src_span.flow_out = []
            src_span.flow_out.append(flow.flow_id)
        self.trace.flows.append(flow)
        return flow

    def flow_step(self, flow: FlowContext | None, kind: str, lane: str,
                  t: float | None = None, **tags: Any) -> FlowHop | None:
        """Record a checkpoint hop: the flow reached ``lane`` at ``t``,
        and the time since the previous hop is explained by ``kind``."""
        if flow is None:
            return None
        hop = FlowHop(t=self.now() if t is None else t, kind=kind,
                      lane=lane, tags=tags)
        flow.hops.append(hop)
        return hop

    def flow_through(self, flow: FlowContext | None, kind: str,
                     span: SpanRecord, **tags: Any) -> FlowHop | None:
        """Record the flow entering ``span`` (a wire transfer, a bucket
        task body): hop time is the span's start, and the span carries
        the flow id both in and out."""
        if flow is None:
            return None
        hop = FlowHop(t=span.t_start, kind=kind, lane=span.lane,
                      span_id=span.span_id, tags=tags)
        flow.hops.append(hop)
        if span.flow_in is None:
            span.flow_in = []
        span.flow_in.append(flow.flow_id)
        if span.flow_out is None:
            span.flow_out = []
        span.flow_out.append(flow.flow_id)
        return hop

    def flow_end(self, flow: FlowContext | None, kind: str,
                 span: SpanRecord, **tags: Any) -> FlowContext | None:
        """Close the flow at its destination span (the in-transit compute
        span that consumed the work)."""
        if flow is None:
            return None
        flow.hops.append(FlowHop(t=span.t_start, kind=kind, lane=span.lane,
                                 span_id=span.span_id, tags=tags))
        flow.dst_span_id = span.span_id
        if span.flow_in is None:
            span.flow_in = []
        span.flow_in.append(flow.flow_id)
        return flow

    # -- instants & counters -------------------------------------------------

    def instant(self, name: str, lane: str = "main", **tags: Any
                ) -> InstantRecord:
        if self._ctx:
            tags = {**self._ctx, **tags}
        rec = InstantRecord(name=name, lane=lane, t=self.now(),
                            wall_t=time.perf_counter(), tags=tags)
        self.trace.instants.append(rec)
        if self.bus is not None:
            data = {k: v for k, v in tags.items()
                    if k not in ("tenant", "job")}
            self._publish("instant", name, lane, rec.t, tags, data)
        return rec

    def counter(self, name: str, delta: float = 1) -> None:
        """Shorthand for ``metrics.counter(name).inc(delta)``."""
        self.metrics.counter(name).inc(delta)


class _NullSpan:
    """Inert span handed out by the disabled tracer."""

    __slots__ = ()
    name = lane = ""
    span_id = 0
    parent_id = None
    t_start = t_end = wall_start = wall_end = math.nan
    category = None
    closed = False
    stage = None
    flow_in = flow_out = None

    @property
    def tags(self) -> dict[str, Any]:
        return {}


_NULL_SPAN = _NullSpan()


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """Disabled tracer: every operation is a shared no-op.

    Instrument sites hold a reference to this singleton when tracing is
    off, so the per-call cost is an attribute check (``tracer.enabled``)
    or a no-op method call — the "near-zero overhead when disabled"
    contract the hot paths rely on.
    """

    enabled = False
    metrics = NULL_METRICS
    #: No bus under the null tracer: every publish site checks
    #: ``bus is not None`` (or ``enabled``) and compiles out.
    bus = None

    @property
    def trace(self) -> Trace:
        return Trace()

    def now(self) -> float:
        return 0.0

    def attach_clock(self, clock: Callable[[], float]) -> None:
        pass

    def attach_engine(self, engine: Any) -> None:
        pass

    def attach_bus(self, bus: Any) -> None:
        return None

    def context(self, **tags: Any) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def context_tags(self) -> dict[str, Any]:
        return {}

    def begin(self, name: str, lane: str = "main",
              category: str | None = None, **tags: Any) -> _NullSpan:
        return _NULL_SPAN

    def end(self, span: Any, **tags: Any) -> _NullSpan:
        return _NULL_SPAN

    def span(self, name: str, lane: str = "main",
             category: str | None = None, **tags: Any) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def add_span(self, name: str, lane: str, t_start: float, t_end: float,
                 category: str | None = None,
                 parent_id: int | None = None, **tags: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, lane: str = "main", **tags: Any) -> None:
        return None

    def counter(self, name: str, delta: float = 1) -> None:
        pass

    # Flow propagation compiles out: a None flow short-circuits every
    # hop site, so hot paths pay one ``is None`` check at most.

    def flow_begin(self, kind: str, src_span: Any = None,
                   t: float | None = None, **tags: Any) -> None:
        return None

    def flow_step(self, flow: Any, kind: str, lane: str,
                  t: float | None = None, **tags: Any) -> None:
        return None

    def flow_through(self, flow: Any, kind: str, span: Any,
                     **tags: Any) -> None:
        return None

    def flow_end(self, flow: Any, kind: str, span: Any,
                 **tags: Any) -> None:
        return None


NULL_TRACER = NullTracer()

_TRACER: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The active tracer (the shared :data:`NULL_TRACER` when disabled)."""
    return _TRACER


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    global _TRACER
    _TRACER = tracer
    return tracer


def enable_tracing(clock: Callable[[], float] | None = None) -> Tracer:
    """Install (and return) a fresh recording tracer.

    Call before constructing the engine/framework/solver to observe —
    instrumentation sites capture the active tracer at construction.
    """
    tracer = Tracer(clock=clock)
    set_tracer(tracer)
    return tracer


def disable_tracing() -> None:
    set_tracer(NULL_TRACER)


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Context manager: install a tracer, restore the previous one after."""
    previous = get_tracer()
    active = tracer or Tracer()
    set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)
