"""Cross-run performance records and the regression gate.

The paper's argument is a set of *times and sizes per timestep* (Figs.
5–6, Tables I–II); this module gives the reproduction a memory of those
figures across runs. Three pieces:

* :class:`RunRecord` / :class:`RunStore` — one canonical, append-friendly
  schema for "what one run measured": a flat ``metrics`` map (stage
  totals, critical-path busy/wait, scheduler figures, fault-recovery
  stats, wall timings), plus provenance (git SHA, the modeled
  :class:`~repro.machine.specs.MachineSpec` fingerprint) and a ``meta``
  blob carrying dashboard payloads (probe time series, SLO alerts, the
  Fig.-6 stage breakdown). The same schema is written by the benchmark
  harness (``benchmarks/conftest.py``), the resilience experiment, and
  the ``python -m repro perf`` CLI.
* :class:`Baseline` + :func:`compare_record` — the regression detector:
  per-metric rolling median over the last *N* records with a MAD-based
  noise band, per-metric tolerance/direction overrides via glob-matched
  :class:`MetricPolicy` rules, and a table of per-metric verdicts
  (``ok`` / ``improved`` / ``regressed`` / ``new`` / ``missing`` /
  ``info``). CI gates on :attr:`RegressionReport.ok`.
* :func:`collect_run_record` — the canonical probe workload: a traced
  DES replay of the staging schedule (with live probes and SLO rules)
  plus a seeded fault-recovery scenario, reduced to the metric map.

Simulated-time metrics are deterministic for a given tree, so on an
unchanged tree every gated metric compares exactly equal to the committed
baseline; wall-clock metrics carry a ``wall.`` prefix and are recorded
but never gated (they vary per host).
"""

from __future__ import annotations

import fnmatch
import json
import os
import subprocess
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.machine.specs import MachineSpec
from repro.util.tables import TextTable

__all__ = [
    "RunRecord",
    "RunStore",
    "MetricPolicy",
    "Baseline",
    "MetricVerdict",
    "RegressionReport",
    "DEFAULT_POLICIES",
    "machine_fingerprint",
    "git_sha",
    "collect_run_record",
    "compare_record",
]

SCHEMA_VERSION = 1


def machine_fingerprint(spec: MachineSpec) -> dict[str, Any]:
    """The modeled machine reduced to the fields that pin the cost model.

    Deliberately excludes anything host-specific: two machines replaying
    the same modeled system must produce identical fingerprints, so the
    deterministic metrics stay comparable across laptops and CI.
    """
    return {
        "name": spec.name,
        "n_nodes": spec.n_nodes,
        "cores_per_node": spec.node.cores,
        "node_memory_bytes": spec.node.memory_bytes,
        "core_gflops": spec.node.core_gflops,
    }


def git_sha(repo_dir: str | Path | None = None) -> str | None:
    """Current git HEAD SHA, or ``None`` outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_dir) if repo_dir else None,
            capture_output=True, text=True, timeout=10, check=False)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


@dataclass
class RunRecord:
    """One run's canonical measurements plus provenance."""

    run_id: str
    created_at: str
    source: str
    metrics: dict[str, float]
    git_sha: str | None = None
    machine: dict[str, Any] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    @classmethod
    def new(cls, source: str, metrics: dict[str, float],
            machine: dict[str, Any] | None = None,
            meta: dict[str, Any] | None = None,
            repo_dir: str | Path | None = None) -> "RunRecord":
        return cls(
            run_id=uuid.uuid4().hex[:12],
            created_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            source=source,
            metrics={k: float(v) for k, v in metrics.items()},
            git_sha=git_sha(repo_dir),
            machine=machine or {},
            meta=meta or {},
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "created_at": self.created_at,
            "source": self.source,
            "git_sha": self.git_sha,
            "machine": self.machine,
            "metrics": self.metrics,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunRecord":
        return cls(
            run_id=str(data.get("run_id", "unknown")),
            created_at=str(data.get("created_at", "")),
            source=str(data.get("source", "unknown")),
            metrics={str(k): float(v)
                     for k, v in (data.get("metrics") or {}).items()},
            git_sha=data.get("git_sha"),
            machine=dict(data.get("machine") or {}),
            meta=dict(data.get("meta") or {}),
            schema=int(data.get("schema", SCHEMA_VERSION)),
        )


class RunStore:
    """Append-friendly store of run records: one JSONL file per store.

    A store is a directory holding ``runs.jsonl``; appending is a single
    ``O_APPEND`` write, so concurrent benchmark sessions never clobber
    each other. The committed baseline under
    ``benchmarks/results/baseline/`` is just a store directory checked
    into git.
    """

    FILENAME = "runs.jsonl"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    @property
    def path(self) -> Path:
        return self.root / self.FILENAME

    def append(self, record: RunRecord) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_dict(), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
        return self.path

    def records(self) -> list[RunRecord]:
        """All records, oldest first (file order; ties keep file order)."""
        if not self.path.exists():
            return []
        out: list[RunRecord] = []
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(RunRecord.from_dict(json.loads(line)))
                except (json.JSONDecodeError, TypeError, ValueError):
                    continue  # a torn/foreign line never poisons the store
        return out

    def last(self, n: int) -> list[RunRecord]:
        return self.records()[-n:]

    def __len__(self) -> int:
        return len(self.records())


# -- regression detection ----------------------------------------------------


@dataclass(frozen=True)
class MetricPolicy:
    """How one metric (glob pattern) is judged against the baseline.

    ``direction`` is the *good* direction: ``"lower"`` (times, queue
    waits — higher is a regression), ``"higher"`` (throughputs), or
    ``"both"`` (invariants like task counts — any drift is a regression).
    ``gate=False`` records the comparison informationally but never fails
    the gate (wall-clock figures across heterogeneous hosts).
    """

    pattern: str
    tolerance: float = 0.05
    direction: str = "lower"
    gate: bool = True
    #: MAD multiplier for the noise band (3 x scaled MAD ~ 3 sigma).
    mad_k: float = 3.0

    def __post_init__(self) -> None:
        if self.direction not in ("lower", "higher", "both"):
            raise ValueError(f"direction must be lower/higher/both, "
                             f"got {self.direction!r}")
        if self.tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {self.tolerance}")

    def matches(self, metric: str) -> bool:
        return fnmatch.fnmatchcase(metric, self.pattern)


#: First match wins; the trailing ``*`` rule is the default.
DEFAULT_POLICIES: tuple[MetricPolicy, ...] = (
    MetricPolicy("wall.*", gate=False),
    MetricPolicy("count.*", tolerance=0.0, direction="both"),
    MetricPolicy("probe.samples", tolerance=0.0, direction="both"),
    MetricPolicy("slo.alerts", tolerance=0.0, direction="lower"),
    MetricPolicy("faults.*", tolerance=0.02, direction="lower"),
    MetricPolicy("controller.speedup", tolerance=0.02, direction="higher"),
    MetricPolicy("controller.decisions", tolerance=0.0, direction="both"),
    MetricPolicy("controller.pool_final", tolerance=0.0, direction="both"),
    # Ledger byte figures are deterministic invariants; leaks and
    # headroom violations must stay at zero, headroom may only shrink
    # deliberately.
    MetricPolicy("capacity.leaked_regions", tolerance=0.0,
                 direction="lower"),
    MetricPolicy("capacity.headroom_violations", tolerance=0.0,
                 direction="lower"),
    MetricPolicy("capacity.headroom_bytes", tolerance=0.0,
                 direction="higher"),
    MetricPolicy("capacity.*", tolerance=0.0, direction="both"),
    MetricPolicy("*", tolerance=0.02, direction="lower"),
)

_MAD_SCALE = 1.4826  # scaled MAD estimates sigma under normal noise


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass
class Baseline:
    """Per-metric rolling statistics over the last *N* baseline records."""

    stats: dict[str, tuple[float, float, int]]  # metric -> (median, MAD, n)
    n_records: int = 0
    window: int = 0

    @classmethod
    def from_records(cls, records: list[RunRecord],
                     window: int = 5) -> "Baseline":
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        recent = records[-window:]
        by_metric: dict[str, list[float]] = {}
        for rec in recent:
            for name, value in rec.metrics.items():
                by_metric.setdefault(name, []).append(value)
        stats: dict[str, tuple[float, float, int]] = {}
        for name, values in by_metric.items():
            med = _median(values)
            mad = _median([abs(v - med) for v in values])
            stats[name] = (med, mad, len(values))
        return cls(stats=stats, n_records=len(recent), window=window)

    def __contains__(self, metric: str) -> bool:
        return metric in self.stats


@dataclass
class MetricVerdict:
    """One metric's comparison against the baseline."""

    metric: str
    status: str  # ok | improved | regressed | new | missing | info
    value: float | None
    median: float | None
    band: float = 0.0
    gated: bool = True

    @property
    def delta(self) -> float | None:
        if self.value is None or self.median is None:
            return None
        return self.value - self.median

    @property
    def rel_delta(self) -> float | None:
        d = self.delta
        if d is None:
            return None
        if self.median == 0.0:
            return float("inf") if d else 0.0
        return d / abs(self.median)

    @property
    def failed(self) -> bool:
        return self.gated and self.status in ("regressed", "missing")


@dataclass
class RegressionReport:
    """Every metric's verdict for one record-vs-baseline comparison."""

    verdicts: list[MetricVerdict]
    n_baseline_records: int = 0

    @property
    def ok(self) -> bool:
        return not any(v.failed for v in self.verdicts)

    def by_status(self, *statuses: str) -> list[MetricVerdict]:
        return [v for v in self.verdicts if v.status in statuses]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for v in self.verdicts:
            out[v.status] = out.get(v.status, 0) + 1
        return out

    def table(self) -> str:
        t = TextTable(["metric", "baseline", "value", "delta", "band",
                       "verdict"],
                      title=f"regression gate vs baseline "
                            f"({self.n_baseline_records} records)")
        order = {"regressed": 0, "missing": 1, "improved": 2, "new": 3,
                 "ok": 4, "info": 5}
        for v in sorted(self.verdicts,
                        key=lambda v: (order.get(v.status, 9), v.metric)):
            rel = v.rel_delta
            delta = ("—" if rel is None
                     else f"{100 * rel:+.2f}%" if abs(rel) != float("inf")
                     else f"{v.delta:+.4g}")
            t.add_row([
                v.metric,
                "—" if v.median is None else f"{v.median:.6g}",
                "—" if v.value is None else f"{v.value:.6g}",
                delta,
                f"{v.band:.3g}",
                v.status.upper() if v.failed else v.status,
            ])
        return t.render()


def _policy_for(metric: str, policies: tuple[MetricPolicy, ...]
                ) -> MetricPolicy:
    for pol in policies:
        if pol.matches(metric):
            return pol
    return MetricPolicy("*")


def compare_record(record: RunRecord, baseline: Baseline,
                   policies: tuple[MetricPolicy, ...] = DEFAULT_POLICIES,
                   ) -> RegressionReport:
    """Judge every metric of ``record`` against the baseline statistics.

    The noise band per metric is ``max(tol * |median|, mad_k * 1.4826 *
    MAD)``: the relative tolerance dominates for deterministic metrics
    (MAD = 0), the MAD term widens the band where the baseline itself is
    noisy. Values inside the band are ``ok``; outside, the policy's
    direction decides ``improved`` vs ``regressed``.
    """
    verdicts: list[MetricVerdict] = []
    for name, value in sorted(record.metrics.items()):
        pol = _policy_for(name, policies)
        if name not in baseline:
            verdicts.append(MetricVerdict(name, "new", value, None,
                                          gated=False))
            continue
        med, mad, _n = baseline.stats[name]
        band = max(pol.tolerance * abs(med), pol.mad_k * _MAD_SCALE * mad)
        delta = value - med
        if not pol.gate:
            status = "info"
        elif abs(delta) <= band:
            status = "ok"
        elif pol.direction == "both":
            status = "regressed"
        elif pol.direction == "lower":
            status = "regressed" if delta > 0 else "improved"
        else:  # higher is better
            status = "regressed" if delta < 0 else "improved"
        verdicts.append(MetricVerdict(name, status, value, med, band=band,
                                      gated=pol.gate))
    for name in sorted(set(baseline.stats) - set(record.metrics)):
        pol = _policy_for(name, policies)
        med, _mad, _n = baseline.stats[name]
        verdicts.append(MetricVerdict(name, "missing", None, med,
                                      gated=pol.gate))
    return RegressionReport(verdicts=verdicts,
                            n_baseline_records=baseline.n_records)


# -- the canonical probe workload --------------------------------------------


def _downsample(series: list[tuple[float, float]], cap: int = 120
                ) -> list[list[float]]:
    """Thin a time series to <= cap points (always keeping the last)."""
    if len(series) <= cap:
        return [[t, v] for t, v in series]
    stride = (len(series) + cap - 1) // cap
    picked = series[::stride]
    if picked[-1] != series[-1]:
        picked.append(series[-1])
    return [[t, v] for t, v in picked]


def collect_run_record(n_steps: int = 10, n_buckets: int = 8,
                       source: str = "cli",
                       perturb: dict[str, float] | None = None,
                       probe_interval_frac: float = 0.25,
                       fault_seed: int = 0,
                       repo_dir: str | Path | None = None) -> RunRecord:
    """Run the canonical observability workload and record it.

    Three phases: (1) a traced DES replay of the staging schedule with
    live probes and SLO rules attached; (2) the seeded crash-recovery
    scenario from :mod:`repro.faults`; (3) a traced laptop-scale
    functional pipeline run that exercises the backend kernels and
    yields the per-kernel wall timings (``wall.kernel.<name>_s``) and
    the ``meta["top_kernels"]`` ranking — recorded under whichever
    backend is active, with the backend name in ``meta["backend"]``.
    ``perturb`` maps cost-model operation names to rate multipliers —
    the knob tests and humans use to demonstrate that an artificially
    slowed stage trips the gate.
    """
    from repro.backend import get_backend
    from repro.core import ExperimentConfig, ScaledExperiment
    from repro.costmodel.jaguar import jaguar_cost_model
    from repro.faults import FaultConfig, run_resilience_experiment
    from repro.obs.analysis import critical_path
    from repro.obs.blame import top_kernels
    from repro.obs.tracer import tracing

    wall_start = time.perf_counter()
    cost = jaguar_cost_model()
    for op, factor in (perturb or {}).items():
        cost = cost.with_rate(op, cost.rate(op) * factor)
    exp = ScaledExperiment(ExperimentConfig.paper_4896(), cost_model=cost)
    sim_dt = exp.simulation_step_time()
    probe_interval = max(sim_dt * probe_interval_frac, 1e-9)
    tracer, sched, _expected = exp.traced_schedule(
        n_steps=n_steps, n_buckets=n_buckets,
        probe_interval=probe_interval)
    totals = tracer.trace.stage_totals()
    cp = critical_path(tracer.trace)
    snap = tracer.metrics.snapshot()
    counters = snap["counters"]
    sampler = sched.probes

    insitu = totals.get("insitu", 0.0)
    simulation = totals.get("simulation", 0.0)
    step_total = insitu + simulation
    metrics: dict[str, float] = {
        "trace.simulation_s": simulation,
        "trace.insitu_s": insitu,
        "trace.movement_intransit_s": (totals.get("movement", 0.0)
                                       + totals.get("intransit", 0.0)),
        "trace.insitu_share": insitu / step_total if step_total else 0.0,
        "sched.makespan_s": sched.makespan,
        "sched.max_queue_wait_s": sched.max_queue_wait(),
        "cp.makespan_s": cp.makespan,
        "cp.busy_s": cp.busy_time,
        "cp.wait_s": cp.wait_time,
        "count.tasks_done": counters.get("bucket.tasks_done", 0.0),
        "count.bytes_pulled": counters.get("dart.bytes_pulled", 0.0),
        "count.des_dispatch": counters.get("des.dispatch", 0.0),
    }
    alerts: list[dict[str, Any]] = []
    probe_series: dict[str, list[list[float]]] = {}
    if sampler is not None:
        metrics["probe.samples"] = float(sampler.n_samples)
        metrics["slo.alerts"] = float(len(sampler.alerts))
        for gname, series in sampler.series.items():
            if series:
                metrics[f"probe.{gname}.max"] = max(v for _, v in series)
        alerts = [a.to_dict() for a in sampler.alerts]
        probe_series = {name: _downsample(series)
                        for name, series in sampler.series.items()}

    # Phase 1's replay ran under the tracer, so the capacity ledger was
    # attached by default; its figures gate like every other
    # deterministic metric, and the full report feeds the dashboard.
    cap = sched.capacity
    capacity_meta: dict[str, Any] | None = None
    if cap is not None:
        metrics["capacity.peak_resident_bytes"] = float(
            cap.peak_resident_bytes)
        metrics["capacity.registered_bytes"] = float(
            cap.registered_bytes_total)
        metrics["capacity.nic_peak_bytes"] = float(cap.nic_peak_bytes)
        metrics["capacity.nic_bytes_total"] = float(cap.nic_bytes_total)
        metrics["capacity.transfers"] = float(cap.n_transfers)
        metrics["capacity.leaked_regions"] = float(len(cap.leaks))
        metrics["capacity.headroom_violations"] = float(
            cap.headroom_violations)
        if cap.headroom_bytes is not None:
            metrics["capacity.headroom_bytes"] = float(cap.headroom_bytes)
        capacity_meta = cap.to_dict()

    fault_report = run_resilience_experiment(
        FaultConfig(seed=fault_seed, crash_rate=100.0, horizon=0.06),
        n_tasks=32, n_buckets=4)
    metrics.update(fault_report.to_metrics())

    # Phase 3: kernel-tagged functional run (wall-clock, never gated).
    from repro.core import HybridFramework
    from repro.sim import LiftedFlameCase, StructuredGrid3D
    from repro.vmpi import BlockDecomposition3D

    shape = (16, 12, 8)
    with tracing() as ktracer:
        fw = HybridFramework(LiftedFlameCase(StructuredGrid3D(shape),
                                             seed=7),
                             BlockDecomposition3D(shape, (2, 2, 1)),
                             n_buckets=2)
        fw.run(3)
    usages = top_kernels(ktracer.trace)
    for u in usages:
        metrics[f"wall.kernel.{u.kernel}_s"] = u.wall_s

    # Phase 4: a small deterministic multi-tenant service batch, so the
    # service-layer figures (queue waits, cache hit rate, quota holds,
    # per-shard load) ride the same record/gate path as everything else.
    # Runs under its own tracing block to keep phase-1 metrics untouched;
    # tenant-b's 1-job quota forces a hold, the duplicate spec forces a
    # cache hit, and the sharded spec populates the per-shard gauges.
    from repro.service import CampaignService, JobSpec, TenantQuota

    with tracing() as stracer:
        svc = CampaignService(
            workers=3, quotas=[TenantQuota("tenant-b", max_concurrent=1)])
        svc.run_batch([
            JobSpec(tenant="tenant-a", name="replay", n_steps=2, n_buckets=3),
            JobSpec(tenant="tenant-a", name="rerun", n_steps=2, n_buckets=3),
            JobSpec(tenant="tenant-b", name="sharded-1", n_steps=2,
                    n_buckets=4, n_shards=2),
            JobSpec(tenant="tenant-b", name="sharded-2", n_steps=2,
                    n_buckets=4, n_shards=2),
        ])
    ssnap = stracer.metrics.snapshot()
    waits = ssnap["histograms"].get("service.queue_wait_s")
    if waits is not None:
        metrics["service.queue_wait_mean_s"] = waits["mean"]
        metrics["service.queue_wait_max_s"] = waits["max"]
    for gname, gauge in ssnap["gauges"].items():
        if gname.startswith("service."):
            metrics[gname] = gauge["last"]
    metrics["service.jobs_done"] = ssnap["counters"].get(
        "service.cache_hits", 0.0) + ssnap["counters"].get(
        "service.cache_misses", 0.0)
    metrics["service.held_events"] = float(
        sum(job.held for job in svc.jobs))

    # Phase 5: the adaptive-controller fault scenario — static vs
    # adaptive makespans and the decision count ride the gate, so a
    # change that silences the controller (or slows its recovery) trips
    # the comparison exactly like a kernel regression would.
    from repro.control import run_control_scenario

    control = run_control_scenario(n_steps=8, n_buckets=4,
                                   seed=fault_seed)
    metrics.update(control.to_metrics())

    metrics["wall.record_s"] = time.perf_counter() - wall_start

    meta = {
        "backend": get_backend(),
        "top_kernels": [u.to_dict() for u in usages],
        "n_steps": n_steps,
        "n_buckets": n_buckets,
        "perturb": dict(perturb or {}),
        "probe_interval_s": probe_interval,
        "alerts": alerts,
        "probe_series": probe_series,
        "capacity": capacity_meta,
        "stage_breakdown": exp.breakdown().fig6_series(),
        "control_decisions": control.controller.decision_log(),
        "control_pool_trajectory": [[t, n] for t, n
                                    in control.controller.pool_trajectory],
        "slo_rules": ([r.describe() for r in sampler.rules]
                      if sampler is not None else []),
        "host": os.uname().sysname if hasattr(os, "uname") else "unknown",
    }
    return RunRecord.new(source=source, metrics=metrics,
                         machine=machine_fingerprint(exp.machine),
                         meta=meta, repo_dir=repo_dir)
